"""Regenerate every table and figure from the paper's evaluation.

Runs the Pmake8 (Figures 2-3), CPU isolation (Figure 5), memory
isolation (Figure 7), and disk bandwidth (Tables 3-4) experiments plus
the ablations, printing paper-vs-measured for each.

This is the same entry point as ``python -m repro.experiments.runner``;
pass section names to run a subset, e.g.::

    python examples/reproduce_paper.py table4 ablations
"""

import sys

from repro.api import paper_main

if __name__ == "__main__":
    raise SystemExit(paper_main(sys.argv[1:]))
