"""Parallel applications: spin barriers and gang scheduling.

The paper's CPU-isolation workload runs Ocean, a barrier-synchronised
SPLASH-2 application.  Applications of that era busy-waited at
barriers, which makes them sensitive to *how* their processes are
dispatched: a member spinning on a CPU while its partner waits in the
run queue burns machine time for nothing.

This example runs a two-process spin-barrier gang next to background
load in the same SPU, with and without gang (co-)scheduling — the
modification the paper's Section 3.1 footnote says gang-scheduled
applications would require.

Run with:  python examples/parallel_apps.py
"""

from repro.api import (
    Barrier,
    BarrierWait,
    Compute,
    DiskSpec,
    Kernel,
    MachineConfig,
    fast_disk,
    format_table,
    msecs,
    piso_scheme,
)


def spin_worker(barrier, phases, phase_ms):
    for _ in range(phases):
        yield Compute(msecs(phase_ms))
        yield BarrierWait(barrier, spin=True)


def run(gang_scheduled: bool):
    machine = MachineConfig(
        ncpus=2,
        memory_mb=32,
        disks=[DiskSpec(geometry=fast_disk())],
        scheme=piso_scheme(),
        seed=3,
    )
    kernel = Kernel(machine)
    spu = kernel.create_spu("lab")
    kernel.boot()

    barrier = Barrier(2)
    behaviors = [spin_worker(barrier, 30, 40.0) for _ in range(2)]
    if gang_scheduled:
        workers = kernel.spawn_gang(behaviors, spu, name="ocean")
    else:
        workers = [kernel.spawn(b, spu, name=f"ocean{i}")
                   for i, b in enumerate(behaviors)]

    def background():
        yield Compute(msecs(3000))

    bg = kernel.spawn(background(), spu, name="analysis")
    kernel.run()

    burned = sum(w.cpu_time_us for w in workers) / 1e6
    return (
        max(w.response_us for w in workers) / 1e6,
        bg.response_us / 1e6,
        burned,
    )


def main():
    useful = 2 * 30 * 0.040
    rows = []
    for gang in (False, True):
        ocean_s, bg_s, burned = run(gang)
        rows.append([
            "gang" if gang else "fragmented",
            f"{ocean_s:.2f}", f"{bg_s:.2f}", f"{burned:.2f}",
            f"{burned - useful:.2f}",
        ])
    print(format_table(
        ["dispatch", "gang resp s", "bg resp s", "gang cpu s", "spin waste s"],
        rows,
        title=f"Spin-barrier gang ({useful:.2f}s of useful CPU) + background",
    ))
    print()
    print("Fragmented dispatch lets one member spin while the other queues;")
    print("co-scheduling burns exactly the useful CPU and nothing more.")


if __name__ == "__main__":
    main()
