"""An elastic shared server: tenants come and go.

The paper's SPU abstraction allows SPUs to be "created and destroyed
dynamically, or ... suspended when they have no active processes and
awakened at a later time" (Section 2.1).  This example exercises that
machinery on an eight-way server:

1. two tenants each own half the machine and run batch work;
2. a third tenant arrives mid-run — the machine is re-divided into
   thirds and the newcomer's jobs start immediately;
3. one of the original tenants finishes and is suspended — its share
   flows back to the remaining two.

A :class:`~repro.metrics.UtilizationSampler` records each tenant's CPU
share over time so the re-divisions are visible in the output.

Run with:  python examples/elastic_server.py
"""

from repro.api import (
    Compute,
    DiskSpec,
    Kernel,
    MachineConfig,
    UtilizationSampler,
    fast_disk,
    format_table,
    msecs,
    piso_scheme,
    secs,
)


def batch(ms):
    yield Compute(msecs(ms))


def main():
    machine = MachineConfig(
        ncpus=8,
        memory_mb=64,
        disks=[DiskSpec(geometry=fast_disk())],
        scheme=piso_scheme(),
    )
    kernel = Kernel(machine)
    tenant_a = kernel.create_spu("tenantA")
    tenant_b = kernel.create_spu("tenantB")
    kernel.boot()

    sampler = UtilizationSampler(kernel, period=msecs(250))
    sampler.start()

    # Phase 1: A and B saturate their halves.
    for _ in range(8):
        kernel.spawn(batch(3000), tenant_a)
    for _ in range(8):
        kernel.spawn(batch(1000), tenant_b)

    state = {}

    def tenant_c_arrives():
        state["c"] = kernel.add_spu("tenantC")
        for _ in range(8):
            kernel.spawn(batch(1500), state["c"])
        print(f"t=1.0s  tenantC arrives; entitlements now "
              + ", ".join(f"{s.name}={s.cpu().entitled}m"
                          for s in kernel.registry.active_user_spus()))

    def maybe_suspend_b():
        if not tenant_b.pids:
            kernel.suspend_spu(tenant_b)
            print(f"t={kernel.engine.now / 1e6:.1f}s  tenantB idle -> suspended;"
                  " its share returns to the pool")

    kernel.engine.at(secs(1), tenant_c_arrives)
    kernel.engine.at(secs(3), maybe_suspend_b)

    print("t=0.0s  tenantA and tenantB each own half of 8 CPUs")
    kernel.run()

    rows = []
    for spu_id, timeline in sorted(sampler.timelines.items()):
        shares = [f"{s.cpu_share * 8:.1f}" for s in timeline.samples[:16]]
        rows.append([timeline.name, " ".join(shares)])
    print()
    print(format_table(
        ["tenant", "CPUs received per 250 ms sample"],
        rows,
        title="CPU allocation over time (watch the re-divisions)",
    ))


if __name__ == "__main__":
    main()
