"""The noisy-neighbour disk problem ("someone is dumping a core file").

Section 4.5 of the paper: with stock head-position (C-SCAN) disk
scheduling, a process streaming a large file to disk can lock out
everyone else's small, scattered requests — exactly what users see
when a large core file is dumped.

This example puts an interactive-style job (many small reads of
scattered files, with think time) on the same disk as a 10 MB file
copy, and compares the three disk scheduling policies.  Watch the
interactive job's per-request wait collapse under PIso while the
copy pays only a modest price.

Run with:  python examples/noisy_neighbor.py
"""

from repro.api import (
    KB,
    MB,
    CopyParams,
    DiskSchedPolicy,
    DiskSpec,
    Kernel,
    MachineConfig,
    ReadFile,
    Sleep,
    copy_job,
    create_copy_files,
    hp97560,
    msecs,
    piso_scheme,
    to_seconds,
)


def interactive_job(files, think_ms=5):
    """Read small scattered files with a little think time in between."""
    for file in files:
        yield ReadFile(file, 0, file.size_bytes)
        yield Sleep(msecs(think_ms))


def run(policy):
    scheme = piso_scheme().with_disk_policy(policy)
    machine = MachineConfig(
        ncpus=2,
        memory_mb=32,
        disks=[DiskSpec(geometry=hp97560(seek_scale=0.5, media_scale=4))],
        scheme=scheme,
    )
    kernel = Kernel(machine)
    interactive = kernel.create_spu("interactive")
    bulk = kernel.create_spu("bulk")
    kernel.boot()

    # Sixty scattered 16 KB files for the interactive job.
    small_files = [
        kernel.fs.create(0, f"mail/{i}", 16 * KB, fragmented=True)
        for i in range(60)
    ]
    copy_params = CopyParams(size_bytes=10 * MB)
    middle = kernel.drives[0].geometry.total_sectors // 2
    src, dst = create_copy_files(kernel.fs, 0, copy_params,
                                 name=f"dump-{policy.value}", at_sector=middle)

    front = kernel.spawn(interactive_job(small_files), interactive,
                         name="interactive")
    kernel.spawn(copy_job(src, dst, copy_params), bulk, name="core-dump")
    kernel.run()

    stats = kernel.drives[0].stats
    return (
        to_seconds(front.response_us),
        stats.mean_wait_ms(interactive.spu_id),
        stats.mean_latency_ms(),
    )


def main():
    print("Interactive job vs a 10 MB core dump on one shared disk\n")
    print(f"{'policy':6s}  {'interactive':>12s}  {'mean wait':>10s}  {'disk lat':>9s}")
    for policy in (DiskSchedPolicy.POS, DiskSchedPolicy.ISO, DiskSchedPolicy.PISO):
        response_s, wait_ms, latency_ms = run(policy)
        print(
            f"{policy.value:6s}  {response_s:>11.2f}s  {wait_ms:>8.1f}ms"
            f"  {latency_ms:>7.2f}ms"
        )
    print()
    print("Pos (stock C-SCAN) lets the dump monopolise the disk; PIso")
    print("bounds the interactive job's waits without round-robin's")
    print("seek penalty.")


if __name__ == "__main__":
    main()
