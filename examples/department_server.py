"""A shared department server with an unequal contract.

The paper's motivating scenario: "project A owns a third of the machine
and project B owns two thirds."  This example encodes that contract
with :class:`WeightedContract`, runs a pmake-style load from both
projects on an eight-way server, and shows that

* CPU time is delivered in the contracted 1:2 ratio while both
  projects are busy, and
* when project B goes home for the night, project A's jobs soak up the
  whole machine (and are revoked when B returns).

Run with:  python examples/department_server.py
"""

from repro.api import (
    Compute,
    DiskSpec,
    Kernel,
    MachineConfig,
    Sleep,
    WeightedContract,
    fast_disk,
    msecs,
    piso_scheme,
    secs,
    to_seconds,
)


def worker(busy_ms):
    yield Compute(msecs(busy_ms))


def night_shift(busy_ms, pause_ms):
    """Project B: works, goes idle, comes back."""
    yield Compute(msecs(busy_ms))
    yield Sleep(msecs(pause_ms))
    yield Compute(msecs(busy_ms))


def main():
    machine = MachineConfig(
        ncpus=8,
        memory_mb=64,
        disks=[DiskSpec(geometry=fast_disk())],
        scheme=piso_scheme(),
        contract=WeightedContract({"projectA": 1, "projectB": 2}),
    )
    kernel = Kernel(machine)
    project_a = kernel.create_spu("projectA")
    project_b = kernel.create_spu("projectB")
    kernel.boot()

    print("Contract: project A owns 1/3 of the machine, project B 2/3.")
    print(f"CPU entitlements: A={project_a.cpu().entitled} milli-CPUs,"
          f" B={project_b.cpu().entitled} milli-CPUs\n")

    # Saturating load from both projects for two simulated seconds.
    for i in range(8):
        kernel.spawn(worker(2000), project_a, name=f"a{i}")
    for i in range(8):
        kernel.spawn(night_shift(1000, 1500), project_b, name=f"b{i}")

    kernel.run(until=secs(2))
    a_cpu = kernel.cpu_account.total(project_a.spu_id)
    b_cpu = kernel.cpu_account.total(project_b.spu_id)
    print(f"After 2 s of saturation and B's pause:")
    print(f"  project A consumed {to_seconds(a_cpu):.2f} CPU-seconds")
    print(f"  project B consumed {to_seconds(b_cpu):.2f} CPU-seconds")
    print(f"  loans granted: {kernel.cpusched.loans_granted},"
          f" revoked: {kernel.cpusched.loans_revoked}")

    kernel.run()
    print("\nWhile B slept, A's jobs borrowed B's six CPUs — and were")
    print("revoked within a 10 ms clock tick when B's jobs returned.")


if __name__ == "__main__":
    main()
