"""Graceful degradation: a shared server losing hardware mid-run.

Two tenants share an 8-CPU, two-disk PIso machine.  Mid-run, disk 1
starts throwing transient I/O errors, then two processors are
hot-removed, then disk 1 dies for good — its queue fails over to
disk 0 and every contract renegotiates over the surviving capacity.
The invariant watchdog re-checks the kernel's conservation laws every
clock tick while this happens.

The narrated timeline shows each fault landing, and the closing report
carries the fault summary (dead disks, offline CPUs, retries,
renegotiations).

Run with:  python examples/failing_hardware.py
"""

from repro.api import (
    KB,
    MB,
    Compute,
    CopyParams,
    CpuRemove,
    DiskFailure,
    DiskSpec,
    DiskTransient,
    FaultInjector,
    FaultPlan,
    InvariantWatchdog,
    Kernel,
    MachineConfig,
    ReadFile,
    copy_job,
    create_copy_files,
    fast_disk,
    format_report,
    machine_report,
    msecs,
    piso_scheme,
)


def service_job(file, rounds=18):
    """Latency-sensitive: compute bursts with occasional cold reads."""
    for i in range(rounds):
        yield Compute(msecs(60))
        if i % 2 == 0:
            yield ReadFile(file, (i * 128 * KB) % (file.size_bytes - 32 * KB),
                           32 * KB)


def main():
    machine = MachineConfig(
        ncpus=8,
        memory_mb=32,
        disks=[DiskSpec(geometry=fast_disk()) for _ in range(2)],
        scheme=piso_scheme(),
    )
    kernel = Kernel(machine)
    service = kernel.create_spu("service")
    batch = kernel.create_spu("batch")
    kernel.boot()

    plan = FaultPlan([
        DiskTransient(at_us=msecs(250), disk=1, duration_us=msecs(400),
                      error_rate=0.5),
        CpuRemove(at_us=msecs(500)),
        CpuRemove(at_us=msecs(501)),
        DiskFailure(at_us=msecs(600), disk=1),
    ])
    injector = FaultInjector(kernel, plan)
    injector.arm()
    watchdog = InvariantWatchdog(kernel)
    watchdog.start()

    jobs = []
    for i in range(3):
        file = kernel.fs.create(0, f"svc-{i}", 512 * KB)
        jobs.append(kernel.spawn(service_job(file), service, name=f"svc-{i}"))
    params = CopyParams(size_bytes=4 * MB)
    for i in range(4):
        src, dst = create_copy_files(kernel.fs, 1, params, name=f"batch{i}")
        kernel.spawn(copy_job(src, dst, params), batch, name=f"copy-{i}")

    kernel.run()

    print("fault timeline:")
    for at_us, what in injector.applied:
        print(f"  t={at_us / 1e3:7.1f} ms  {what}")
    print()
    responses = [j.response_us / 1e6 for j in jobs]
    print(f"service jobs finished in {min(responses):.2f}-{max(responses):.2f} s"
          f" on the degraded machine")
    print(f"watchdog: {watchdog.checks_run} checks,"
          f" {len(watchdog.violations)} violations")
    print()
    print(format_report(machine_report(kernel)))


if __name__ == "__main__":
    main()
