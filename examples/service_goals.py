"""Goal-driven management on top of SPUs (the OS390-WLM connection).

The paper's related work describes IBM's Workload Manager, which takes
high-level performance goals and adjusts allocation to meet them, and
notes that OS390's controls suffice to build performance isolation.
This example shows the converse: SPU entitlements suffice to build
goal-driven management.

A production SPU shares a four-way machine with a best-effort batch
SPU.  Both are saturated, so an equal split gives production only 50%
of its uncontended speed — below its 70% velocity goal.  The
GoalManager notices and shifts contract weight until the goal is met.

Run with:  python examples/service_goals.py
"""

from repro.api import (
    AdaptiveContract,
    Compute,
    DiskSpec,
    GoalManager,
    Kernel,
    MachineConfig,
    VelocityGoal,
    fast_disk,
    format_table,
    msecs,
    piso_scheme,
    secs,
)


def batch(ms):
    yield Compute(msecs(ms))


def main():
    machine = MachineConfig(
        ncpus=4,
        memory_mb=32,
        disks=[DiskSpec(geometry=fast_disk())],
        scheme=piso_scheme(),
        contract=AdaptiveContract(),
    )
    kernel = Kernel(machine)
    production = kernel.create_spu("production")
    best_effort = kernel.create_spu("best-effort")
    kernel.boot()

    manager = GoalManager(kernel)
    manager.set_goal(production, VelocityGoal(target=0.70, importance=1))
    manager.start()

    for _ in range(4):
        kernel.spawn(batch(6000), production)
        kernel.spawn(batch(6000), best_effort)

    print("Goal: production runs at >= 70% of uncontended speed.")
    print("Start: equal weights -> each SPU gets 2 of 4 CPUs (50%).\n")
    kernel.run(until=secs(4))

    rows = [
        [f"{r.time / 1e6:.1f}", f"{r.velocity:.2f}", f"{r.target:.2f}",
         f"{r.weight:.2f}", "yes" if r.satisfied else "no"]
        for r in manager.history
        if r.spu_id == production.spu_id
    ]
    print(format_table(
        ["t (s)", "velocity", "goal", "weight", "met"],
        rows[:14],
        title="Production SPU's goal attainment over time",
    ))
    print(f"\nFinal entitlements: production={production.cpu().entitled}m,"
          f" best-effort={best_effort.cpu().entitled}m of 4000m")


if __name__ == "__main__":
    main()
