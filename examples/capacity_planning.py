"""Capacity planning with the simulator.

A downstream use the paper enables: before signing up another tenant
for the shared server, simulate it.  Here an 8-CPU / 64 MB machine runs
one pmake-style job per tenant under PIso; we sweep the tenant count
and watch mean response, machine utilization, and — the point of
performance isolation — the response of the *first* tenant, which must
not degrade no matter how many neighbours sign up, as long as its
entitlement covers its load.

Run with:  python examples/capacity_planning.py
"""

from repro.api import (
    DiskSpec,
    Kernel,
    MachineConfig,
    PmakeParams,
    create_pmake_files,
    fast_disk,
    format_table,
    machine_report,
    piso_scheme,
    pmake_job,
)

JOB = PmakeParams(n_tasks=6, parallelism=2, compile_ms=400.0, ws_pages=96)


def run_with_tenants(n):
    machine = MachineConfig(
        ncpus=8,
        memory_mb=64,
        disks=[DiskSpec(geometry=fast_disk()) for _ in range(2)],
        scheme=piso_scheme(),
    )
    kernel = Kernel(machine)
    spus = [kernel.create_spu(f"tenant{i}") for i in range(n)]
    kernel.boot()
    jobs = []
    for i, spu in enumerate(spus):
        files = create_pmake_files(kernel.fs, mount=i % 2, params=JOB,
                                   job_name=f"t{i}")
        jobs.append(kernel.spawn(pmake_job(files, JOB), spu, name=f"job{i}"))
    kernel.run()
    report = machine_report(kernel)
    responses = [j.response_us / 1e6 for j in jobs]
    return responses[0], sum(responses) / len(responses), report.cpu_utilization


def main():
    rows = []
    for tenants in (1, 2, 4, 6, 8, 12):
        first, mean, util = run_with_tenants(tenants)
        rows.append([tenants, f"{first:.2f}", f"{mean:.2f}", f"{util * 100:.0f}%"])
    print(format_table(
        ["tenants", "tenant0 resp s", "mean resp s", "cpu busy"],
        rows,
        title="PIso capacity sweep: 8 CPUs, one pmake job per tenant",
    ))
    print()
    print("While a tenant's entitlement (8/n CPUs) covers the job's ~2-CPU")
    print("demand (n <= 4), tenant0 is protected.  Beyond that, entitlements")
    print("drop below demand and response degrades for everyone -- the")
    print("capacity knee this sweep is for finding.")


if __name__ == "__main__":
    main()
