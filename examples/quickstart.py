"""Quickstart: performance isolation in sixty lines.

Builds a four-CPU machine shared by two users.  User "alice" runs one
job; user "bob" dumps five CPU-hungry jobs onto the machine.  The same
workload is run under the three resource-allocation schemes from the
paper, showing the headline result:

* SMP   — bob's load slows alice down (no isolation);
* Quo   — alice is safe, but bob's jobs can't use idle CPUs (no sharing);
* PIso  — alice is safe AND bob gets the idle capacity.

Run with:  python examples/quickstart.py
"""

from repro.api import (
    Compute,
    DiskSpec,
    Kernel,
    MachineConfig,
    fast_disk,
    msecs,
    piso_scheme,
    quota_scheme,
    smp_scheme,
    to_seconds,
)


def cpu_job(duration_ms):
    """One second-ish of pure computation."""
    yield Compute(msecs(duration_ms))


def run(scheme):
    machine = MachineConfig(
        ncpus=4,
        memory_mb=32,
        disks=[DiskSpec(geometry=fast_disk())],
        scheme=scheme,
    )
    kernel = Kernel(machine)
    alice = kernel.create_spu("alice")
    bob = kernel.create_spu("bob")
    kernel.boot()

    alice_job = kernel.spawn(cpu_job(1000), alice, name="alice-job")
    bob_jobs = [
        kernel.spawn(cpu_job(1000), bob, name=f"bob-job{i}") for i in range(5)
    ]
    kernel.run()

    bob_mean = sum(j.response_us for j in bob_jobs) / len(bob_jobs)
    return to_seconds(alice_job.response_us), to_seconds(round(bob_mean))


def main():
    print(f"{'scheme':6s}  {'alice (1 job)':>14s}  {'bob (5 jobs, mean)':>18s}")
    for scheme in (smp_scheme(), quota_scheme(), piso_scheme()):
        alice_s, bob_s = run(scheme)
        print(f"{scheme.name:6s}  {alice_s:>13.2f}s  {bob_s:>17.2f}s")
    print()
    print("PIso keeps alice at her alone-on-the-machine speed (isolation)")
    print("while bob's jobs run as fast as on stock SMP (sharing).")


if __name__ == "__main__":
    main()
