"""Weighted (unequal) contracts across all three resources.

The paper's motivating contract — "project A owns a third of the
machine and project B owns two thirds" — must hold for CPU time,
memory, and disk bandwidth alike.
"""

import pytest

from repro.core import (
    DiskSchedPolicy,
    SPURegistry,
    WeightedContract,
    piso_scheme,
)
from repro.disk import DiskDrive, DiskOp, DiskRequest, hp97560, make_scheduler
from repro.disk.drive import SpuBandwidthLedger
from repro.disk.model import fast_disk
from repro.kernel import Compute, DiskSpec, Kernel, MachineConfig
from repro.sim import Engine
from repro.sim.units import msecs


def build_kernel(weights, ncpus=6, memory_mb=24):
    kernel = Kernel(
        MachineConfig(
            ncpus=ncpus, memory_mb=memory_mb,
            disks=[DiskSpec(geometry=fast_disk())],
            scheme=piso_scheme(),
            contract=WeightedContract(weights),
        )
    )
    spus = {name: kernel.create_spu(name) for name in weights}
    kernel.boot()
    return kernel, spus


class TestCpuWeights:
    def test_entitlements_follow_weights(self):
        kernel, spus = build_kernel({"A": 1, "B": 2})
        assert spus["A"].cpu().entitled == 2000
        assert spus["B"].cpu().entitled == 4000

    def test_cpu_time_delivered_in_ratio(self):
        kernel, spus = build_kernel({"A": 1, "B": 2})
        for name, spu in spus.items():
            for _ in range(6):
                kernel.spawn(iter([Compute(msecs(3000))]), spu)
        kernel.run(until=msecs(1000))
        used_a = kernel.cpu_account.total(spus["A"].spu_id)
        used_b = kernel.cpu_account.total(spus["B"].spu_id)
        assert used_b == pytest.approx(2 * used_a, rel=0.05)


class TestMemoryWeights:
    def test_page_entitlements_follow_weights(self):
        kernel, spus = build_kernel({"A": 1, "B": 3})
        assert spus["B"].memory().entitled == pytest.approx(
            3 * spus["A"].memory().entitled, rel=0.01
        )


class TestDiskWeights:
    def test_bandwidth_delivered_in_ratio(self):
        """Two saturating request streams split the disk by weight."""
        engine = Engine(seed=2)
        registry = SPURegistry()
        a = registry.create("A")
        b = registry.create("B")
        a.disk_bw().set_entitled(1)
        b.disk_bw().set_entitled(3)
        drive = DiskDrive(
            engine, hp97560(media_scale=4), make_scheduler("iso"),
            SpuBandwidthLedger(0, registry),
        )

        # Closed-loop streams: each SPU keeps one request outstanding.
        regions = {a.spu_id: 0, b.spu_id: 2_000_000}
        offsets = {a.spu_id: 0, b.spu_id: 0}

        def resubmit(spu_id):
            def complete(_req):
                if engine.now < 2_000_000:
                    submit(spu_id)
            return complete

        def submit(spu_id):
            sector = regions[spu_id] + offsets[spu_id]
            offsets[spu_id] += 64
            drive.submit(DiskRequest(spu_id, DiskOp.READ, sector, 64,
                                     on_complete=resubmit(spu_id)))

        for spu_id in regions:
            submit(spu_id)
            submit(spu_id)
        engine.run(until=2_000_000)
        moved_a = drive.stats.total_sectors(a.spu_id)
        moved_b = drive.stats.total_sectors(b.spu_id)
        assert moved_b == pytest.approx(3 * moved_a, rel=0.15)

    def test_piso_fairness_criterion_respects_weights(self):
        """Under PIso the heavier SPU fails the criterion later."""
        engine = Engine(seed=2)
        registry = SPURegistry()
        a = registry.create("A")
        b = registry.create("B")
        a.disk_bw().set_entitled(1)
        b.disk_bw().set_entitled(4)
        ledger = SpuBandwidthLedger(0, registry)
        # Equal raw transfer -> B's ratio is a quarter of A's.
        ledger.charge(a.spu_id, 1000, now=0)
        ledger.charge(b.spu_id, 1000, now=0)
        assert ledger.usage_ratio(b.spu_id, 0) == pytest.approx(
            ledger.usage_ratio(a.spu_id, 0) / 4
        )
