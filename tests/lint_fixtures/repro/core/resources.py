"""Fixture: the accounting module itself may write the ledger fields.

This file's path (``core/resources.py`` under the ``repro`` root) is the
one module SL201 exempts — it IS the accounting API.
"""


class Levels:
    def set_entitled(self, value):
        self.entitled = value

    def set_allowed(self, value):
        self.allowed = value

    def acquire(self, amount):
        self.used += amount

    def release(self, amount):
        self.used -= amount
