"""Fixture: every SL3xx rule fires here (positive cases)."""

from repro.sim.units import msecs, pages


def total(delay_ms, now_us):
    return delay_ms + now_us  # SL301: ms + us


def within(size_bytes, quota_pages):
    return size_bytes < quota_pages  # SL301: bytes vs pages


def convert(delay_us):
    return msecs(delay_us)  # SL302: msecs() takes milliseconds


def budget():
    budget_ms = msecs(5)  # SL303: msecs() returns ticks (us)
    return budget_ms


def cache(nbytes):
    return pages(nbytes)  # correct use: no finding
