"""Fixture: unit-correct counterparts of units_bad — no findings."""

from repro.sim.units import msecs, pages, to_millis


def total(delay_us, now_us):
    return delay_us + now_us


def deadline(delay_ms):
    return msecs(delay_ms)


def report(elapsed_us):
    elapsed_ms = to_millis(elapsed_us)
    return elapsed_ms


def cache_budget(nbytes):
    npages = pages(nbytes)
    return npages
