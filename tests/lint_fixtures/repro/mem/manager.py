"""Fixture: a hot module (``mem/manager.py`` tail) whose classes all use
the exempt shapes — __slots__, dataclass, exception — so SL4xx stays
silent, and whose loops hoist allocations."""

from dataclasses import dataclass


class Manager:
    __slots__ = ("pages",)

    def __init__(self):
        self.pages = 0


@dataclass
class Snapshot:
    free: int


class ManagerError(ValueError):
    pass


def drain(queue):
    out = []
    while queue:
        out.append(queue.pop())
    return out
