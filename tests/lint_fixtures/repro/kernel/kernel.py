"""Fixture: SL4xx positives.  The ``kernel/kernel.py`` tail makes this
path count as a hot module, so the hot-path rules apply."""


class Dispatcher:  # SL401: hot class without __slots__
    def __init__(self):
        self.pending = []

    def drain(self, queue):
        while queue:
            item = queue.pop()
            self.pending.append({"item": item})  # SL402: alloc in loop
