"""Fixture: the compliant shapes of eventsafety_bad — no findings."""

from heapq import heappush


class Pool:
    """A class's own ``used`` counter is not the SPU ledger."""

    __slots__ = ("used",)

    def __init__(self):
        self.used = 0

    def grab(self):
        self.used += 1


def adjust(levels, npages):
    levels.set_allowed(npages)


def push(heap, seq, proc, now):
    heappush(heap, (now, seq, proc))


def pick(queue):
    return sorted(queue, key=lambda p: (p.deadline, p.pid))


def oldest(queue):
    return min(queue, key=lambda r: r.request_id)
