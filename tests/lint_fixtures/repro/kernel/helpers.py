"""Fixture: the same shapes as the hot-module fixture, but this path is
not in HOT_MODULES — the SL4xx rules must stay silent."""


class Dispatcher:
    def __init__(self):
        self.pending = []

    def drain(self, queue):
        while queue:
            item = queue.pop()
            self.pending.append({"item": item})
