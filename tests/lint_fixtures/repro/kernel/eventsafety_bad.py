"""Fixture: every SL2xx rule fires here (positive cases)."""

from heapq import heappush


def raise_cap(levels, spu):
    levels.allowed = 100  # SL201: direct ledger write
    spu.entitled += 5  # SL201: augmented ledger write


def recharge(block, target):
    target.used = block.npages  # SL201: `used` on a non-self target


def push_bare(heap, proc):
    heappush(heap, proc)  # SL202: bare payload


def push_pair(heap, proc, now):
    heappush(heap, (now, proc))  # SL202: no sequence tie-break


def pick(queue):
    return sorted(queue, key=lambda p: p.deadline)  # SL203: ties unresolved
