"""Fixture: every SL1xx rule fires here (positive cases).

The ``repro/sim`` path puts this file inside the linter's simulated-world
scope; the surrounding ``tests/lint_fixtures`` tree is never linted by
default, only by the golden-fixture tests.
"""

import os
import random
import time
import uuid


def stamp():
    return time.time()  # SL101: wall clock


def jitter():
    return random.random()  # SL102: global RNG


def token():
    return uuid.uuid4()  # SL102: process entropy


def fresh_rng():
    return random.Random()  # SL103: unseeded instance


def env_mode():
    return os.getenv("REPRO_MODE")  # SL104: env read


def env_flag():
    return os.environ["FLAG"]  # SL104: env subscript


def walk(items):
    for item in {i for i in items}:  # SL105: set iteration
        yield item


def order(objs):
    return sorted(objs, key=lambda o: (id(o), 0))  # SL106: address as key
