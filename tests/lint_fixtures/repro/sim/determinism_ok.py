"""Fixture: deterministic equivalents of determinism_bad — no findings."""

import random


def stamp(engine):
    return engine.now


def jitter(engine):
    return engine.rng.random()


def fresh_rng(engine):
    return engine.fork_rng("component")


def seeded():
    return random.Random(1234)


def walk(items):
    for item in sorted({i for i in items}):
        yield item


def order(objs):
    return sorted(objs, key=lambda o: (o.priority, o.request_id))
