"""Scenario shrinking and repro files: the minimal-repro pipeline."""

import pytest

from repro.chaos.plan import AntagonistBurst
from repro.faults.plan import DiskFailure, FaultPlan
from repro.fuzz.runner import ENV_PLANT, run_scenario
from repro.fuzz.scenario import ScenarioError, ScenarioSpec, WorkloadSpec
from repro.fuzz.shrink import (
    MIN_HORIZON_US,
    load_repro,
    replay,
    repro_record,
    shrink_scenario,
    write_repro,
)
from repro.sim.units import MSEC


def busy_scenario(seed=5):
    """A deliberately over-full scenario for the shrinker to strip."""
    return ScenarioSpec(
        seed=seed, ncpus=4, memory_mb=32, ndisks=2, scheme="piso",
        horizon_us=800 * MSEC,
        workloads=[
            WorkloadSpec(kind="cpu_hog", spu="load0"),
            WorkloadSpec(kind="copy", spu="load1", mount=1),
        ],
        bursts=[
            AntagonistBurst(at_us=50 * MSEC, kind="lock_hogger"),
            AntagonistBurst(at_us=100 * MSEC, kind="cache_polluter"),
        ],
        faults=FaultPlan([DiskFailure(at_us=300 * MSEC, disk=1)]),
    )


class TestShrink:
    def test_page_leak_shrinks_to_the_empty_minimal_machine(self, monkeypatch):
        # The env-planted leak fires regardless of the schedule, so the
        # minimal repro is no events at all on the smallest machine.
        monkeypatch.setenv(ENV_PLANT, "page-leak")
        shrunk = shrink_scenario(busy_scenario(), "page-conservation")
        s = shrunk.scenario
        assert len(s) == 0
        assert (s.ncpus, s.memory_mb, s.ndisks) == (1, 8, 1)
        assert s.horizon_us == MIN_HORIZON_US
        assert shrunk.runs >= 1
        assert not run_scenario(s).ok

    def test_burst_leak_keeps_at_least_one_burst(self, monkeypatch):
        monkeypatch.setenv(ENV_PLANT, "burst-leak")
        shrunk = shrink_scenario(busy_scenario(), "page-conservation")
        s = shrunk.scenario
        assert len(s.bursts) == 1
        assert len(s.workloads) == 0
        assert len(s.faults) == 0
        assert not run_scenario(s).ok

    def test_shrink_refuses_a_passing_scenario(self):
        with pytest.raises(ValueError, match="cannot shrink"):
            shrink_scenario(busy_scenario(), "page-conservation")

    def test_budget_bounds_total_runs(self, monkeypatch):
        monkeypatch.setenv(ENV_PLANT, "page-leak")
        shrunk = shrink_scenario(
            busy_scenario(), "page-conservation", max_runs=3
        )
        assert shrunk.runs <= 3
        # Whatever the budget, the result still fails.
        assert not run_scenario(shrunk.scenario).ok

    def test_disk_floor_respects_remaining_references(self, monkeypatch):
        # With the fault on disk 1 forced to stay (page-leak removes
        # everything, so build a scenario where only a 2-disk event
        # list survives a tiny ddmin budget): the dimension pass must
        # never strand a disk-1 reference on a 1-disk machine —
        # replace_machine would raise ScenarioError if it tried.
        monkeypatch.setenv(ENV_PLANT, "page-leak")
        shrunk = shrink_scenario(
            busy_scenario(), "page-conservation", max_runs=2
        )
        s = shrunk.scenario
        for w in s.workloads:
            assert w.mount < s.ndisks
        for e in s.faults:
            assert getattr(e, "disk", 0) < s.ndisks


class TestReproFiles:
    def make_failing(self, monkeypatch):
        monkeypatch.setenv(ENV_PLANT, "page-leak")
        result = run_scenario(busy_scenario())
        assert not result.ok
        return result

    def test_repro_record_requires_a_violation(self):
        with pytest.raises(ValueError, match="no violation"):
            repro_record(run_scenario(busy_scenario()))

    def test_repro_file_replays_to_the_same_violation(self, tmp_path, monkeypatch):
        result = self.make_failing(monkeypatch)
        path = str(tmp_path / "repro.json")
        write_repro(path, result)
        scenario, recorded = load_repro(path)
        assert scenario.to_dict() == result.scenario.to_dict()
        replayed = replay(path)
        assert not replayed.ok
        assert replayed.violations[0] == recorded
        assert replayed.journal == result.journal

    def test_replay_is_clean_once_the_bug_is_fixed(self, tmp_path, monkeypatch):
        result = self.make_failing(monkeypatch)
        path = str(tmp_path / "repro.json")
        write_repro(path, result)
        monkeypatch.delenv(ENV_PLANT)
        assert replay(path).ok

    def test_load_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "repro.chaos/1"}')
        with pytest.raises(ScenarioError, match="not a fuzz repro"):
            load_repro(str(path))
