"""The experiment registry: lookup, uniform run(), result round-trip."""

import json

import pytest

from repro.api import ExperimentSpec, experiment, get, names, run_experiment
from repro.api import registry as registry_module
from repro.experiments import run_figure_5


EXPECTED = {
    "pmake8", "fig5", "fig7", "table3", "table4",
    "network", "faults", "antagonists", "ablations",
    "fleet_isolation",
}


def test_every_experiment_is_registered():
    assert set(names()) == EXPECTED


def test_quick_subset_is_a_subset():
    quick = set(names(quick_only=True))
    assert quick
    assert quick <= EXPECTED


def test_decorator_returns_driver_unchanged():
    assert get("fig5").fn is run_figure_5


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError, match="registered twice"):
        experiment("fig5")(lambda seed=0: None)


def test_unknown_name_lists_registered():
    with pytest.raises(KeyError, match="no experiment 'nope'"):
        get("nope")


def test_run_produces_uniform_result():
    result = run_experiment(ExperimentSpec(name="table4", seed=0))
    assert result.name == "table4"
    assert result.seed == 0
    assert result.data  # the driver's typed return, untouched
    assert result.records  # the shared flat schema
    payload = result.payload()
    assert set(payload) == {"name", "seed", "records"}
    # canonical_json is a faithful, deterministic serialisation.
    assert json.loads(result.canonical_json()) == payload


def test_run_is_deterministic_for_a_spec():
    spec = ExperimentSpec(name="fig5", seed=0)
    first = run_experiment(spec).canonical_json()
    second = run_experiment(spec).canonical_json()
    assert first == second


def test_spec_is_picklable_and_hashable():
    import pickle

    spec = ExperimentSpec(name="network", seed=3)
    assert pickle.loads(pickle.dumps(spec)) == spec
    assert hash(spec) == hash(ExperimentSpec(name="network", seed=3))


def test_report_uses_renderer():
    exp = get("fig5")
    data = exp.fn(seed=0)
    report = exp.report(data)
    assert "Figure 5" in report


def test_registration_order_is_stable():
    assert names() == list(registry_module._REGISTRY)
