"""Tests for Checkpoint markers, latency distributions, and the
priority-inversion ablation."""

import pytest

from repro.core import piso_scheme
from repro.disk.model import fast_disk
from repro.kernel import Checkpoint, Compute, DiskSpec, Kernel, MachineConfig, Sleep
from repro.sim.units import msecs
from repro.workloads import (
    InteractiveParams,
    burst_latencies_ms,
    cpu_hog,
    interactive_user,
    percentile,
)


def booted(ncpus=1):
    kernel = Kernel(
        MachineConfig(ncpus=ncpus, memory_mb=8,
                      disks=[DiskSpec(geometry=fast_disk())],
                      scheme=piso_scheme())
    )
    spu = kernel.create_spu("u")
    kernel.boot()
    return kernel, spu


class TestCheckpoint:
    def test_markers_record_time(self):
        kernel, spu = booted()

        def job():
            yield Checkpoint("start")
            yield Compute(msecs(10))
            yield Checkpoint("end")

        proc = kernel.spawn(job(), spu)
        kernel.run()
        (l1, t1), (l2, t2) = proc.checkpoints
        assert (l1, l2) == ("start", "end")
        assert t2 - t1 == msecs(10)

    def test_checkpoint_is_free(self):
        kernel, spu = booted()

        def job():
            for _ in range(100):
                yield Checkpoint("x")

        proc = kernel.spawn(job(), spu)
        kernel.run()
        assert proc.response_us == 0
        assert proc.cpu_time_us == 0


class TestBurstLatencies:
    def test_uncontended_latencies_equal_burst(self):
        kernel, spu = booted(ncpus=2)
        params = InteractiveParams(bursts=5, burst_ms=2.0)
        proc = kernel.spawn(interactive_user(params), spu)
        kernel.run()
        latencies = burst_latencies_ms(proc, params)
        assert len(latencies) == 5
        assert all(l == pytest.approx(2.0, abs=0.01) for l in latencies)

    def test_contended_tail_visible(self):
        kernel, spu = booted(ncpus=1)
        params = InteractiveParams(bursts=20, burst_ms=1.0)
        proc = kernel.spawn(interactive_user(params), spu)
        kernel.spawn(cpu_hog(3000), spu)
        kernel.run()
        latencies = burst_latencies_ms(proc, params)
        # The p90 burst waited behind the hog's 30 ms slice.
        assert percentile(latencies, 0.9) > 5.0

    def test_mismatched_markers_rejected(self):
        class Stub:
            checkpoints = [("wake", 0)]

        with pytest.raises(ValueError):
            burst_latencies_ms(Stub(), InteractiveParams())


class TestPercentile:
    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.5) == 2.0
        assert percentile(values, 1.0) == 4.0
        assert percentile(values, 0.01) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1.0], 0.0)


class TestPriorityInversion:
    def test_inheritance_bounds_the_inversion(self):
        from repro.experiments import run_priority_inversion_ablation

        result = run_priority_inversion_ablation()
        # Without inheritance the high-priority process waits out the
        # medium hogs (~500 ms); with it, only the remaining critical
        # section (~100 ms).
        assert result.no_inheritance_wait_ms > 300
        assert result.inheritance_wait_ms < 150
        assert result.speedup > 2.5
