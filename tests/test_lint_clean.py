"""The tree itself must lint clean — with an *empty* baseline.

This is the repo-level guarantee behind ``python -m repro lint``: every
finding on ``src/repro`` is either fixed or suppressed at the site with
an inline ``# simlint: disable=`` carrying a written justification.
The baseline file exists only as a migration vehicle for future rule
rollouts; keeping it empty here means a regression cannot hide behind
a stale grandfathered entry.
"""

from pathlib import Path

from repro.lint import load_baseline, run_lint

ROOT = Path(__file__).resolve().parent.parent


def test_src_repro_is_clean():
    findings = run_lint([str(ROOT / "src" / "repro")], root=str(ROOT))
    assert not findings, (
        "new lint findings:\n" + "\n".join(f.render() for f in findings)
    )


def test_src_repro_is_clean_with_effects():
    findings = run_lint(
        [str(ROOT / "src" / "repro")], root=str(ROOT), effects=True
    )
    assert not findings, (
        "new effect-analysis findings:\n"
        + "\n".join(f.render() for f in findings)
    )


def test_baseline_is_empty():
    baseline = load_baseline(str(ROOT / "lint-baseline.json"))
    assert not baseline.entries, (
        "the baseline must stay empty; suppress at the site with an"
        " inline justification instead: "
        + ", ".join(f"{e.rule} {e.path}" for e in baseline.entries)
    )
