"""The tree itself must lint clean against the checked-in baseline.

This is the repo-level guarantee behind ``python -m repro lint``: every
finding on ``src/repro`` is either fixed or recorded (with a written
justification) in ``lint-baseline.json``, and no baseline entry is dead
weight.
"""

from pathlib import Path

from repro.lint import load_baseline, run_lint
from repro.lint.baseline import TODO_JUSTIFICATION

ROOT = Path(__file__).resolve().parent.parent


def test_src_repro_is_clean_against_the_baseline():
    findings = run_lint([str(ROOT / "src" / "repro")], root=str(ROOT))
    baseline = load_baseline(str(ROOT / "lint-baseline.json"))
    new, _, stale = baseline.diff(findings)
    assert not new, "new lint findings:\n" + "\n".join(f.render() for f in new)
    assert not stale, "stale baseline entries: " + ", ".join(
        f"{e.rule} {e.path}" for e in stale
    )


def test_every_baseline_entry_is_justified():
    baseline = load_baseline(str(ROOT / "lint-baseline.json"))
    assert baseline.entries, "baseline unexpectedly empty"
    for entry in baseline.entries:
        assert entry.justification != TODO_JUSTIFICATION, (
            f"{entry.rule} {entry.path} has a TODO justification"
        )
        assert len(entry.justification) >= 20, (
            f"{entry.rule} {entry.path}: justification too thin"
        )
