"""Tests for kernel tracing and the utilization sampler."""

import pytest

from repro.core import piso_scheme
from repro.disk.model import fast_disk
from repro.kernel import Compute, DiskSpec, Kernel, MachineConfig, SetWorkingSet
from repro.metrics import UtilizationSampler
from repro.sim import Tracer
from repro.sim.units import msecs


def machine(seed=0):
    return MachineConfig(ncpus=2, memory_mb=8,
                         disks=[DiskSpec(geometry=fast_disk())],
                         scheme=piso_scheme(), seed=seed)


def spinner(ms):
    yield Compute(msecs(ms))


class TestKernelTracing:
    def test_default_tracer_is_free(self):
        kernel = Kernel(machine())
        assert not kernel.tracer.enabled
        spu = kernel.create_spu("u")
        kernel.boot()
        kernel.spawn(spinner(10), spu)
        kernel.run()
        assert len(kernel.tracer) == 0

    def test_spawn_and_exit_traced(self):
        tracer = Tracer(categories=["proc"])
        kernel = Kernel(machine(), tracer=tracer)
        spu = kernel.create_spu("u")
        kernel.boot()
        kernel.spawn(spinner(10), spu, name="traced")
        kernel.run()
        kinds = [r.message for r in tracer.by_category("proc")]
        assert kinds == ["spawn", "exit"]
        assert tracer.records[0].fields["name"] == "traced"

    def test_dispatch_traced(self):
        tracer = Tracer(categories=["sched"])
        kernel = Kernel(machine(), tracer=tracer)
        spu = kernel.create_spu("u")
        kernel.boot()
        kernel.spawn(spinner(100), spu)
        kernel.run()
        dispatches = [r for r in tracer.records if r.message == "dispatch"]
        assert dispatches
        assert "cpu" in dispatches[0].fields

    def test_faults_traced(self):
        tracer = Tracer(categories=["mem"])
        kernel = Kernel(machine(), tracer=tracer)
        spu = kernel.create_spu("u")
        kernel.boot()

        def job():
            yield SetWorkingSet(64, fault_cluster_pages=16)
            yield Compute(msecs(50))

        kernel.spawn(job(), spu)
        kernel.run()
        assert tracer.by_category("mem")

    def test_loan_flag_in_dispatch(self):
        tracer = Tracer(categories=["sched"])
        kernel = Kernel(machine(), tracer=tracer)
        a = kernel.create_spu("a")
        kernel.create_spu("b")
        kernel.boot()
        kernel.spawn(spinner(100), a)
        kernel.spawn(spinner(100), a)  # second proc borrows b's CPU
        kernel.run()
        assert any(r.fields.get("loan") for r in tracer.records)


class TestUtilizationSampler:
    def test_samples_cpu_share(self):
        kernel = Kernel(machine())
        a = kernel.create_spu("a")
        b = kernel.create_spu("b")
        kernel.boot()
        sampler = UtilizationSampler(kernel, period=msecs(50))
        sampler.start()
        kernel.spawn(spinner(500), a)
        kernel.run()
        timeline = sampler.timeline_of(a)
        # One process on a two-CPU machine: its SPU's share is 50%.
        assert timeline.mean_cpu_share() == pytest.approx(0.5, abs=0.05)
        assert sampler.timeline_of(b).mean_cpu_share() == 0.0

    def test_memory_levels_sampled(self):
        kernel = Kernel(machine())
        a = kernel.create_spu("a")
        kernel.boot()
        sampler = UtilizationSampler(kernel, period=msecs(20))
        sampler.start()

        def job():
            yield SetWorkingSet(100, fault_cluster_pages=100)
            yield Compute(msecs(200))

        kernel.spawn(job(), a)
        kernel.run()
        assert sampler.timeline_of(a).peak_mem_used() >= 100

    def test_unknown_spu_raises(self):
        kernel = Kernel(machine())
        kernel.create_spu("a")
        kernel.boot()
        sampler = UtilizationSampler(kernel)
        with pytest.raises(KeyError):
            sampler.timeline_of(999)

    def test_double_start_rejected(self):
        kernel = Kernel(machine())
        kernel.create_spu("a")
        kernel.boot()
        sampler = UtilizationSampler(kernel)
        sampler.start()
        with pytest.raises(RuntimeError):
            sampler.start()
        sampler.stop()

    def test_bad_period_rejected(self):
        kernel = Kernel(machine())
        with pytest.raises(ValueError):
            UtilizationSampler(kernel, period=0)

    def test_isolation_visible_in_timeline(self):
        # Under PIso a busy SPU's share never dips below entitlement
        # while it has runnable work, whatever the neighbour does.
        kernel = Kernel(machine())
        a = kernel.create_spu("a")
        b = kernel.create_spu("b")
        kernel.boot()
        sampler = UtilizationSampler(kernel, period=msecs(100))
        sampler.start()
        kernel.spawn(spinner(1000), a)
        for _ in range(4):
            kernel.spawn(spinner(1000), b)
        kernel.run(until=msecs(900))
        # a's entitlement is half the machine = 1 CPU; its single
        # process saturates exactly its share.
        assert sampler.timeline_of(a).min_cpu_share() >= 0.45
