"""Unit and property tests for on-disk layout."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.fs import Extent, LayoutError, Volume
from repro.sim.units import KB, PAGE_SIZE, SECTOR_SIZE


@pytest.fixture
def volume():
    return Volume(total_sectors=100_000, rng=random.Random(7))


class TestExtent:
    def test_end(self):
        assert Extent(10, 5).end == 15

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            Extent(0, 0)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            Extent(-1, 5)


class TestContiguous:
    def test_single_extent(self, volume):
        file = volume.allocate_contiguous("f", 64 * KB)
        assert len(file.extents) == 1
        assert file.extents[0].nsectors == 128

    def test_metadata_sector_precedes_data(self, volume):
        file = volume.allocate_contiguous("f", 4 * KB)
        assert file.metadata_sector < file.extents[0].start

    def test_files_do_not_overlap(self, volume):
        a = volume.allocate_contiguous("a", 64 * KB)
        b = volume.allocate_contiguous("b", 64 * KB)
        assert b.extents[0].start >= a.extents[0].end

    def test_at_sector_pins_placement(self, volume):
        file = volume.allocate_contiguous("f", 4 * KB, at_sector=50_000)
        assert file.extents[0].start >= 50_000

    def test_at_sector_beyond_volume_rejected(self, volume):
        with pytest.raises(LayoutError):
            volume.allocate_contiguous("f", 4 * KB, at_sector=99_999)

    def test_volume_full(self):
        volume = Volume(total_sectors=10)
        with pytest.raises(LayoutError):
            volume.allocate_contiguous("f", 100 * KB)

    def test_duplicate_name_rejected(self, volume):
        volume.allocate_contiguous("f", KB)
        with pytest.raises(LayoutError):
            volume.allocate_contiguous("f", KB)

    def test_zero_size_rejected(self, volume):
        with pytest.raises(LayoutError):
            volume.allocate_contiguous("f", 0)


class TestFragmented:
    def test_splits_into_extents(self, volume):
        file = volume.allocate_fragmented("f", 64 * KB, extent_sectors=16)
        assert len(file.extents) == 8
        assert all(e.nsectors == 16 for e in file.extents[:-1])

    def test_extents_cover_size(self, volume):
        file = volume.allocate_fragmented("f", 50 * KB, extent_sectors=16)
        assert sum(e.nsectors for e in file.extents) == file.nsectors

    def test_deterministic_given_rng(self):
        v1 = Volume(1000, rng=random.Random(3))
        v2 = Volume(1000, rng=random.Random(3))
        f1 = v1.allocate_fragmented("f", 16 * KB)
        f2 = v2.allocate_fragmented("f", 16 * KB)
        assert [e.start for e in f1.extents] == [e.start for e in f2.extents]

    def test_bad_extent_size(self, volume):
        with pytest.raises(LayoutError):
            volume.allocate_fragmented("f", KB, extent_sectors=0)


class TestSectorRuns:
    def test_contiguous_single_run(self, volume):
        file = volume.allocate_contiguous("f", 64 * KB)
        runs = file.sector_runs(0, file.nsectors)
        assert runs == [(file.extents[0].start, 128)]

    def test_fragmented_runs_follow_extents(self, volume):
        file = volume.allocate_fragmented("f", 16 * KB, extent_sectors=16)
        runs = file.sector_runs(0, 32)
        assert [n for _s, n in runs] == [16, 16]
        assert [s for s, _n in runs] == [e.start for e in file.extents]

    def test_mid_file_offset(self, volume):
        file = volume.allocate_fragmented("f", 16 * KB, extent_sectors=16)
        runs = file.sector_runs(8, 16)
        assert runs[0] == (file.extents[0].start + 8, 8)
        assert runs[1] == (file.extents[1].start, 8)

    def test_out_of_range_rejected(self, volume):
        file = volume.allocate_contiguous("f", 4 * KB)
        with pytest.raises(ValueError):
            file.sector_runs(0, file.nsectors + 1)

    def test_block_sector(self, volume):
        file = volume.allocate_contiguous("f", 64 * KB)
        assert file.block_sector(2) == file.extents[0].start + 16

    @given(
        size_kb=st.integers(1, 256),
        extent_sectors=st.integers(1, 64),
        start=st.integers(0, 200),
        count=st.integers(1, 200),
    )
    def test_property_runs_cover_exactly_the_requested_range(
        self, size_kb, extent_sectors, start, count
    ):
        volume = Volume(10_000_000, rng=random.Random(size_kb))
        file = volume.allocate_fragmented("f", size_kb * KB, extent_sectors)
        if start + count > file.nsectors:
            return
        runs = file.sector_runs(start, count)
        assert sum(n for _s, n in runs) == count
        assert all(n > 0 for _s, n in runs)


class TestVolumeLookup:
    def test_get(self, volume):
        file = volume.allocate_contiguous("f", KB)
        assert volume.get("f") is file

    def test_get_missing_raises(self, volume):
        with pytest.raises(LayoutError):
            volume.get("nope")

    def test_nblocks(self, volume):
        file = volume.allocate_contiguous("f", PAGE_SIZE * 3 + 1)
        assert file.nblocks == 4
