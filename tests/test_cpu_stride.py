"""Unit and integration tests for stride scheduling."""

import pytest

from repro.core import MILLI_CPU, piso_scheme, stride_scheme
from repro.cpu import ProcessPriority, StrideCpuScheduler
from repro.disk.model import fast_disk
from repro.kernel import Compute, DiskSpec, Kernel, MachineConfig, Sleep
from repro.sim.units import msecs


class FakeProc:
    def __init__(self, pid, spu_id):
        self.pid = pid
        self.spu_id = spu_id
        self.priority = ProcessPriority()


def sched(tickets=None, ncpus=2):
    return StrideCpuScheduler(
        ncpus, stride_scheme(), tickets if tickets else {1: 1000, 2: 1000}
    )


class TestStrideUnit:
    def test_needs_tickets(self):
        with pytest.raises(ValueError):
            StrideCpuScheduler(2, stride_scheme(), {})

    def test_positive_tickets_required(self):
        with pytest.raises(ValueError):
            StrideCpuScheduler(2, stride_scheme(), {1: 0})

    def test_unknown_spu_rejected_at_enqueue(self):
        s = sched()
        with pytest.raises(ValueError):
            s.enqueue(FakeProc(1, 99))

    def test_min_pass_runs_first(self):
        s = sched()
        s.on_usage(1, 1000)  # SPU 1 has consumed CPU
        s.enqueue(FakeProc(1, 1))
        s.enqueue(FakeProc(2, 2))
        picked = s.pick(s.processors[0], now=0)
        assert picked.spu_id == 2

    def test_pass_advances_inversely_to_tickets(self):
        s = sched(tickets={1: 1000, 2: 2000})
        s.on_usage(1, 100)
        s.on_usage(2, 100)
        assert s.pass_of(1) == pytest.approx(2 * s.pass_of(2))

    def test_usage_of_unticketed_spu_ignored(self):
        s = sched()
        s.on_usage(99, 1000)  # e.g. the kernel SPU; must not raise

    def test_negative_usage_rejected(self):
        with pytest.raises(ValueError):
            sched().on_usage(1, -1)

    def test_rejoining_client_starts_at_min_pass(self):
        s = sched()
        s.on_usage(2, 10_000)
        # SPU 1 was blocked for ages with pass 0; when it rejoins, it
        # must not be allowed to monopolise from its stale pass --
        # its pass is floored at the backlogged minimum.
        s.enqueue(FakeProc(1, 1))
        # Only SPU 1 backlogged -> floor is its own pass; usage moves it.
        assert s.pass_of(1) >= 0

    def test_no_revocations(self):
        s = sched()
        s.enqueue(FakeProc(1, 1))
        assert s.revocations() == []

    def test_set_tickets_adds_client(self):
        s = sched()
        s.set_tickets(3, 500)
        s.enqueue(FakeProc(1, 3))
        assert s.pick(s.processors[0], 0).spu_id == 3

    def test_proportional_long_run(self):
        s = sched(tickets={1: 3000, 2: 1000})
        granted = {1: 0, 2: 0}
        procs = {1: FakeProc(1, 1), 2: FakeProc(2, 2)}
        cpu = s.processors[0]
        for spu in (1, 2):
            s.enqueue(procs[spu])
        for _ in range(400):
            proc = s.pick(cpu, 0)
            granted[proc.spu_id] += 1
            s.on_usage(proc.spu_id, 10_000)  # a 10 ms slice
            s.release(cpu)
            s.enqueue(proc)
        assert granted[1] == pytest.approx(300, abs=3)
        assert granted[2] == pytest.approx(100, abs=3)


def build_kernel(scheme, ncpus=4, seed=1):
    kernel = Kernel(
        MachineConfig(ncpus=ncpus, memory_mb=16,
                      disks=[DiskSpec(geometry=fast_disk())], scheme=scheme,
                      seed=seed)
    )
    a = kernel.create_spu("light")
    b = kernel.create_spu("heavy")
    kernel.boot()
    return kernel, a, b


class TestStrideKernel:
    def test_stride_isolates_like_piso(self):
        def run(scheme):
            kernel, a, b = build_kernel(scheme)

            def job():
                yield Compute(msecs(1000))

            light = kernel.spawn(job(), a)
            for _ in range(5):
                kernel.spawn(job(), b)
            kernel.run()
            return light.response_us

        assert run(stride_scheme()) == pytest.approx(
            run(piso_scheme()), rel=0.05
        )

    def test_stride_shares_idle_capacity(self):
        kernel, a, b = build_kernel(stride_scheme())

        def job():
            yield Compute(msecs(1000))

        heavy = [kernel.spawn(job(), b) for _ in range(4)]
        kernel.run()
        # The light SPU is empty; heavy's 4 jobs get all 4 CPUs.
        assert all(h.response_us == msecs(1000) for h in heavy)

    def test_long_run_cpu_split_matches_tickets(self):
        kernel, a, b = build_kernel(stride_scheme(), ncpus=2)

        def hog():
            yield Compute(msecs(5000))

        for _ in range(4):
            kernel.spawn(hog(), a)
            kernel.spawn(hog(), b)
        kernel.run(until=msecs(2000))
        used_a = kernel.cpu_account.total(a.spu_id)
        used_b = kernel.cpu_account.total(b.spu_id)
        assert used_a == pytest.approx(used_b, rel=0.1)

    def test_dynamic_spu_gets_tickets(self):
        kernel, a, b = build_kernel(stride_scheme())
        c = kernel.add_spu("late")

        def job():
            yield Compute(msecs(100))

        proc = kernel.spawn(job(), c)
        kernel.run()
        assert proc.response_us >= msecs(100)

    def test_interactive_latency_without_revocation(self):
        # Stride has no loans to revoke: a waking interactive process
        # preempts-by-pass at the next natural dispatch point, without
        # waiting out the 10 ms tick.
        kernel, a, b = build_kernel(stride_scheme(), ncpus=2)

        def interactive():
            for _ in range(20):
                yield Sleep(msecs(20))
                yield Compute(msecs(1))

        def hog():
            yield Compute(msecs(5000))

        proc = kernel.spawn(interactive(), a)
        for _ in range(2):
            kernel.spawn(hog(), b)
        kernel.run(until=msecs(2000))
        ideal = 20 * msecs(21)
        # Wake-up latency is bounded by the remaining slice of the
        # running hog (a stride client never waits for a revocation
        # tick plus a full queue round like under SMP).
        assert proc.finished > 0
        assert proc.response_us < ideal + 20 * msecs(31)
