"""Unit and property tests for the hybrid space/time CPU partition."""

import pytest
from hypothesis import given, strategies as st

from repro.core import MILLI_CPU
from repro.cpu import CpuPartition, PartitionError, TimeSharedCpu


class TestIntegralPartition:
    def test_one_cpu_per_spu(self):
        partition = CpuPartition(4, {10: 1000, 11: 1000, 12: 1000, 13: 1000})
        homes = [partition.home_of(c) for c in range(4)]
        assert sorted(homes) == [10, 11, 12, 13]
        assert not any(partition.is_time_shared(c) for c in range(4))

    def test_multiple_cpus_per_spu(self):
        partition = CpuPartition(8, {1: 4000, 2: 4000})
        assert len(partition.cpus_of(1)) == 4
        assert len(partition.cpus_of(2)) == 4

    def test_unassigned_cpu_has_no_home(self):
        partition = CpuPartition(4, {1: 2000})
        unhomed = [c for c in range(4) if partition.home_of(c) is None]
        assert len(unhomed) == 2

    def test_over_committed_rejected(self):
        with pytest.raises(PartitionError):
            CpuPartition(2, {1: 3000})

    def test_zero_cpus_rejected(self):
        with pytest.raises(PartitionError):
            CpuPartition(0, {})


class TestFractionalPartition:
    def test_halves_share_one_cpu(self):
        partition = CpuPartition(1, {1: 500, 2: 500})
        assert partition.is_time_shared(0)

    def test_three_way_split_of_eight(self):
        # 8 CPUs / 3 SPUs = 2666.67 each: 2 dedicated + fractions
        # split across the remaining CPUs.
        shares = {1: 2667, 2: 2667, 3: 2666}
        partition = CpuPartition(8, shares)
        dedicated = sum(len(partition.cpus_of(s)) >= 2 for s in shares)
        assert dedicated == 3

    def test_fraction_split_across_cpus_when_needed(self):
        # 667 * 3 = 2001 > 2 CPUs, fits in 3 only by splitting.
        partition = CpuPartition(3, {1: 667, 2: 667, 3: 666})
        total_by_spu = {1: 0, 2: 0, 3: 0}
        for rotation in partition.time_shared.values():
            for spu, share in rotation.shares.items():
                total_by_spu[spu] += share
        assert total_by_spu == {1: 667, 2: 667, 3: 666}

    def test_tick_returns_changed_cpus(self):
        partition = CpuPartition(1, {1: 500, 2: 500})
        changed = partition.tick()
        assert changed == [0]
        assert partition.home_of(0) in (1, 2)


class TestRotationCredits:
    def test_equal_shares_alternate(self):
        rotation = TimeSharedCpu(0, {1: 500, 2: 500})
        owners = [rotation.advance() for _ in range(10)]
        assert owners.count(1) == owners.count(2) == 5

    def test_proportional_long_run(self):
        rotation = TimeSharedCpu(0, {1: 750, 2: 250})
        owners = [rotation.advance() for _ in range(1000)]
        assert owners.count(1) == 750
        assert owners.count(2) == 250

    def test_idle_slack_yields_none(self):
        rotation = TimeSharedCpu(0, {1: 250})
        owners = [rotation.advance() for _ in range(8)]
        assert owners.count(1) == 2
        assert owners.count(None) == 6

    def test_overcommitted_cpu_rejected(self):
        with pytest.raises(PartitionError):
            TimeSharedCpu(0, {1: 700, 2: 700})

    def test_zero_share_rejected(self):
        with pytest.raises(PartitionError):
            TimeSharedCpu(0, {1: 0})

    def test_empty_shares_always_none(self):
        rotation = TimeSharedCpu(0, {})
        assert rotation.advance() is None

    @given(
        shares=st.lists(st.integers(1, 500), min_size=1, max_size=4).filter(
            lambda s: sum(s) <= MILLI_CPU
        ),
        ticks=st.integers(100, 2000),
    )
    def test_property_long_run_matches_shares(self, shares, ticks):
        mapping = {i + 1: share for i, share in enumerate(shares)}
        rotation = TimeSharedCpu(0, mapping)
        owners = [rotation.advance() for _ in range(ticks)]
        for spu, share in mapping.items():
            expected = ticks * share / MILLI_CPU
            # Deficit round-robin's lag bound is one tick per
            # competing party (including the implicit idle party).
            assert abs(owners.count(spu) - expected) <= 2


@given(
    ncpus=st.integers(1, 16),
    nspus=st.integers(1, 8),
)
def test_property_equal_contract_fits_and_covers(ncpus, nspus):
    """An equal split of any machine always builds, and entitled
    milli-CPUs are fully assigned to dedicated or time-shared CPUs."""
    share = ncpus * MILLI_CPU // nspus
    entitlements = {i + 1: share for i in range(nspus)}
    partition = CpuPartition(ncpus, entitlements)
    assigned = sum(1000 for _c in partition.dedicated)
    assigned += sum(
        sum(r.shares.values()) for r in partition.time_shared.values()
    )
    assert assigned == share * nspus
