"""Calibration checks: the workloads match the paper's reported traffic.

Section 4.5: "The pmake makes a total of 300 requests to the disk ...
The copy makes a total of 1050 requests."  Our substitution table in
DESIGN.md promises the same order of magnitude; these tests pin it.
"""

import pytest

from repro.core import DiskSchedPolicy, piso_scheme
from repro.disk.model import hp97560
from repro.experiments.disk_bandwidth import (
    TABLE3_COPY,
    TABLE3_PMAKE,
    run_pmake_copy,
)
from repro.kernel import DiskSpec, Kernel, MachineConfig
from repro.workloads import copy_job, create_copy_files, create_pmake_files, pmake_job


def solo_kernel(seed=0):
    kernel = Kernel(
        MachineConfig(
            ncpus=2, memory_mb=44,
            disks=[DiskSpec(geometry=hp97560(seek_scale=0.5, media_scale=4))],
            scheme=piso_scheme(), seed=seed,
        )
    )
    spu = kernel.create_spu("solo")
    kernel.boot()
    return kernel, spu


class TestRequestCounts:
    def test_pmake_request_count_near_paper(self):
        kernel, spu = solo_kernel()
        files = create_pmake_files(kernel.fs, 0, TABLE3_PMAKE, job_name="cal")
        kernel.spawn(pmake_job(files, TABLE3_PMAKE), spu)
        kernel.run()
        count = kernel.drives[0].stats.count()
        # Paper: ~300 requests; accept the right order of magnitude.
        assert 150 <= count <= 600

    def test_copy_request_count_near_paper(self):
        kernel, spu = solo_kernel()
        src, dst = create_copy_files(kernel.fs, 0, TABLE3_COPY, name="cal")
        kernel.spawn(copy_job(src, dst, TABLE3_COPY), spu)
        kernel.run()
        count = kernel.drives[0].stats.count()
        # Paper: ~1050 requests for the 20 MB copy.
        assert 600 <= count <= 1500

    def test_pmake_requests_are_scattered(self):
        """Paper: pmake requests "are not all contiguous"."""
        kernel, spu = solo_kernel()
        files = create_pmake_files(kernel.fs, 0, TABLE3_PMAKE, job_name="cal")
        kernel.spawn(pmake_job(files, TABLE3_PMAKE), spu)
        kernel.run()
        reqs = sorted(kernel.drives[0].stats.completed,
                      key=lambda r: r.start_time)
        contiguous = sum(
            1 for a, b in zip(reqs, reqs[1:]) if b.sector == a.last_sector + 1
        )
        assert contiguous < len(reqs) * 0.5

    def test_copy_requests_are_mostly_contiguous(self):
        """Paper: the copy's requests are "mostly contiguous sectors"."""
        kernel, spu = solo_kernel()
        src, dst = create_copy_files(kernel.fs, 0, TABLE3_COPY, name="cal")
        kernel.spawn(copy_job(src, dst, TABLE3_COPY), spu)
        kernel.run()
        reqs = sorted(kernel.drives[0].stats.completed,
                      key=lambda r: r.start_time)
        contiguous = sum(
            1 for a, b in zip(reqs, reqs[1:]) if b.sector == a.last_sector + 1
        )
        assert contiguous > len(reqs) * 0.6

    def test_metadata_sector_rewritten_repeatedly(self):
        """Paper: "many repeated writes of meta-data to a single sector"."""
        kernel, spu = solo_kernel()
        files = create_pmake_files(kernel.fs, 0, TABLE3_PMAKE, job_name="cal")
        kernel.spawn(pmake_job(files, TABLE3_PMAKE), spu)
        kernel.run()
        meta_writes = [
            r for r in kernel.drives[0].stats.completed
            if r.nsectors == 1 and r.sector == files.makefile.metadata_sector
        ]
        assert len(meta_writes) >= TABLE3_PMAKE.n_tasks
