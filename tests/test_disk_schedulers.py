"""Unit tests for disk scheduling policies."""

import pytest

from repro.disk import (
    BlindFairScheduler,
    CScanScheduler,
    DiskOp,
    DiskRequest,
    FairCScanScheduler,
    FifoScheduler,
    NullLedger,
    SstfScheduler,
    cscan_pick,
    make_scheduler,
    sstf_pick,
)
from repro.disk.schedulers import BACKGROUND_STARVATION_LIMIT


def req(spu_id: int, sector: int, n: int = 8, enq: int = 0) -> DiskRequest:
    request = DiskRequest(spu_id=spu_id, op=DiskOp.READ, sector=sector, nsectors=n)
    request.enqueue_time = enq
    return request


class FakeLedger:
    """A ledger with fixed ratios and a designated background SPU."""

    def __init__(self, ratios, background=()):
        self.ratios = ratios
        self.background = set(background)

    def usage_ratio(self, spu_id, now):
        return self.ratios.get(spu_id, 0.0)

    def is_background(self, spu_id):
        return spu_id in self.background


class TestCScanPick:
    def test_picks_nearest_at_or_after_head(self):
        queue = [req(1, 100), req(1, 50), req(1, 70)]
        assert cscan_pick(queue, head_sector=60).sector == 70

    def test_wraps_to_lowest_when_nothing_ahead(self):
        queue = [req(1, 10), req(1, 30)]
        assert cscan_pick(queue, head_sector=100).sector == 10

    def test_exact_head_position_counts_as_ahead(self):
        queue = [req(1, 60), req(1, 80)]
        assert cscan_pick(queue, head_sector=60).sector == 60

    def test_tie_broken_by_arrival(self):
        first = req(1, 50)
        second = req(2, 50)
        assert cscan_pick([second, first], head_sector=0) is first

    def test_empty_queue_raises(self):
        with pytest.raises(ValueError):
            cscan_pick([], 0)


class TestSstfPick:
    def test_picks_closest_either_side(self):
        queue = [req(1, 100), req(1, 40)]
        assert sstf_pick(queue, head_sector=50).sector == 40

    def test_empty_queue_raises(self):
        with pytest.raises(ValueError):
            sstf_pick([], 0)


class TestSimpleSchedulers:
    def test_cscan_ignores_fairness(self):
        sched = CScanScheduler()
        queue = [req(1, 10), req(2, 90)]
        picked = sched.select(queue, 80, 0, FakeLedger({1: 0.0, 2: 100.0}))
        assert picked.spu_id == 2  # position wins despite SPU 2 hogging

    def test_fifo_is_arrival_order(self):
        first = req(2, 999)
        second = req(1, 0)
        sched = FifoScheduler()
        assert sched.select([second, first], 0, 0, NullLedger()) is first

    def test_sstf_scheduler(self):
        sched = SstfScheduler()
        queue = [req(1, 100), req(1, 11)]
        assert sched.select(queue, 10, 0, NullLedger()).sector == 11


class TestBlindFair:
    def test_picks_neediest_spu(self):
        sched = BlindFairScheduler()
        queue = [req(1, 0, enq=0), req(2, 999, enq=0)]
        ledger = FakeLedger({1: 10.0, 2: 1.0})
        assert sched.select(queue, 0, 0, ledger).spu_id == 2

    def test_fifo_within_spu(self):
        sched = BlindFairScheduler()
        first = req(2, 500)
        second = req(2, 5)
        ledger = FakeLedger({2: 0.0})
        assert sched.select([second, first], 0, 0, ledger) is first

    def test_background_spu_deferred(self):
        sched = BlindFairScheduler()
        queue = [req(1, 0, enq=0), req(9, 10, enq=0)]
        ledger = FakeLedger({1: 100.0, 9: 0.0}, background={9})
        assert sched.select(queue, 0, 0, ledger).spu_id == 1

    def test_background_runs_when_alone(self):
        sched = BlindFairScheduler()
        queue = [req(9, 10, enq=0)]
        ledger = FakeLedger({9: 0.0}, background={9})
        assert sched.select(queue, 0, 0, ledger).spu_id == 9

    def test_starved_background_joins_foreground(self):
        sched = BlindFairScheduler()
        old = req(9, 10, enq=0)
        fresh = req(1, 0, enq=BACKGROUND_STARVATION_LIMIT)
        ledger = FakeLedger({1: 100.0, 9: 0.0}, background={9})
        picked = sched.select([old, fresh], 0, BACKGROUND_STARVATION_LIMIT, ledger)
        assert picked.spu_id == 9


class TestFairCScan:
    def test_all_pass_when_balanced(self):
        sched = FairCScanScheduler(bw_difference_threshold=10.0)
        queue = [req(1, 10), req(2, 50)]
        ledger = FakeLedger({1: 5.0, 2: 5.0})
        assert sched.select(queue, 40, 0, ledger).sector == 50  # position order

    def test_hog_is_denied(self):
        sched = FairCScanScheduler(bw_difference_threshold=10.0)
        queue = [req(1, 10), req(2, 50)]
        # SPU 2's ratio exceeds the mean (52.5) by more than 10.
        ledger = FakeLedger({1: 5.0, 2: 100.0})
        assert sched.select(queue, 40, 0, ledger).spu_id == 1

    def test_single_spu_never_fails(self):
        sched = FairCScanScheduler(bw_difference_threshold=0.0)
        queue = [req(2, 50)]
        ledger = FakeLedger({2: 1e9})
        assert sched.select(queue, 0, 0, ledger).spu_id == 2

    def test_zero_threshold_acts_round_robin(self):
        sched = FairCScanScheduler(bw_difference_threshold=0.0)
        queue = [req(1, 10), req(2, 50)]
        ledger = FakeLedger({1: 1.0, 2: 1.1})
        # SPU 2 is even slightly above the mean -> denied.
        assert sched.select(queue, 40, 0, ledger).spu_id == 1

    def test_huge_threshold_degenerates_to_cscan(self):
        sched = FairCScanScheduler(bw_difference_threshold=1e12)
        queue = [req(1, 10), req(2, 50)]
        ledger = FakeLedger({1: 0.0, 2: 1e9})
        assert sched.select(queue, 40, 0, ledger).sector == 50

    def test_eligible_exposes_passing_requests(self):
        sched = FairCScanScheduler(bw_difference_threshold=10.0)
        queue = [req(1, 10), req(2, 50)]
        ledger = FakeLedger({1: 5.0, 2: 100.0})
        assert {r.spu_id for r in sched.eligible(queue, 0, ledger)} == {1}

    def test_background_deferred_even_if_fair(self):
        sched = FairCScanScheduler(bw_difference_threshold=10.0)
        queue = [req(1, 10, enq=0), req(9, 20, enq=0)]
        ledger = FakeLedger({1: 50.0, 9: 0.0}, background={9})
        assert sched.select(queue, 0, 0, ledger).spu_id == 1

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            FairCScanScheduler(bw_difference_threshold=-1.0)


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("pos", CScanScheduler),
            ("iso", BlindFairScheduler),
            ("piso", FairCScanScheduler),
            ("fifo", FifoScheduler),
            ("sstf", SstfScheduler),
        ],
    )
    def test_known_names(self, name, cls):
        assert isinstance(make_scheduler(name), cls)

    def test_case_insensitive(self):
        assert isinstance(make_scheduler("PIso"), FairCScanScheduler)

    def test_threshold_is_threaded(self):
        sched = make_scheduler("piso", bw_difference_threshold=7.0)
        assert sched.bw_difference_threshold == 7.0

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_scheduler("elevator")
