"""Unit tests for the SPU-aware CPU scheduler."""

import pytest

from repro.core import MILLI_CPU, piso_scheme, quota_scheme, smp_scheme
from repro.cpu import CpuPartition, CpuScheduler, ProcessPriority


class FakeProc:
    def __init__(self, pid, spu_id, base=20):
        self.pid = pid
        self.spu_id = spu_id
        self.priority = ProcessPriority(base=base)

    def __repr__(self):
        return f"P{self.pid}@{self.spu_id}"


def build(scheme, ncpus=2, spus=(1, 2)):
    partition = None
    if scheme.cpu_partitioned:
        share = ncpus * MILLI_CPU // len(spus)
        partition = CpuPartition(ncpus, {s: share for s in spus})
    return CpuScheduler(ncpus, scheme, partition)


class TestQueue:
    def test_enqueue_dequeue(self):
        sched = build(smp_scheme())
        proc = FakeProc(1, 1)
        sched.enqueue(proc)
        assert sched.waiting() == 1
        sched.dequeue(proc)
        assert sched.waiting() == 0

    def test_double_enqueue_rejected(self):
        sched = build(smp_scheme())
        proc = FakeProc(1, 1)
        sched.enqueue(proc)
        with pytest.raises(ValueError):
            sched.enqueue(proc)

    def test_waiting_by_spu(self):
        sched = build(smp_scheme())
        sched.enqueue(FakeProc(1, 1))
        sched.enqueue(FakeProc(2, 2))
        assert sched.waiting(1) == 1
        assert sched.waiting(2) == 1


class TestSmpPick:
    def test_any_cpu_takes_best_priority(self):
        sched = build(smp_scheme())
        low = FakeProc(1, 1, base=30)
        high = FakeProc(2, 2, base=10)
        sched.enqueue(low)
        sched.enqueue(high)
        picked = sched.pick(sched.processors[0], now=0)
        assert picked is high

    def test_pick_marks_running(self):
        sched = build(smp_scheme())
        proc = FakeProc(1, 1)
        sched.enqueue(proc)
        cpu = sched.processors[0]
        sched.pick(cpu, 0)
        assert cpu.running is proc
        assert not cpu.on_loan

    def test_pick_on_busy_cpu_rejected(self):
        sched = build(smp_scheme())
        sched.enqueue(FakeProc(1, 1))
        cpu = sched.processors[0]
        sched.pick(cpu, 0)
        with pytest.raises(ValueError):
            sched.pick(cpu, 0)

    def test_empty_queue_picks_none(self):
        sched = build(smp_scheme())
        assert sched.pick(sched.processors[0], 0) is None

    def test_release(self):
        sched = build(smp_scheme())
        proc = FakeProc(1, 1)
        sched.enqueue(proc)
        cpu = sched.processors[0]
        sched.pick(cpu, 0)
        sched.release(cpu)
        assert cpu.idle


class TestPartitionedPick:
    def test_home_process_preferred(self):
        sched = build(quota_scheme())
        home_cpu = next(
            c for c in sched.processors if sched.home_of(c) == 1
        )
        foreign = FakeProc(1, 2, base=0)  # better priority, wrong SPU
        home = FakeProc(2, 1, base=30)
        sched.enqueue(foreign)
        sched.enqueue(home)
        assert sched.pick(home_cpu, 0) is home

    def test_quota_never_borrows(self):
        sched = build(quota_scheme())
        cpu1 = next(c for c in sched.processors if sched.home_of(c) == 1)
        sched.enqueue(FakeProc(1, 2))
        assert sched.pick(cpu1, 0) is None

    def test_piso_borrows_when_home_idle(self):
        sched = build(piso_scheme())
        cpu1 = next(c for c in sched.processors if sched.home_of(c) == 1)
        foreign = FakeProc(1, 2)
        sched.enqueue(foreign)
        picked = sched.pick(cpu1, 0)
        assert picked is foreign
        assert cpu1.on_loan
        assert sched.loans_granted == 1


class TestFindCpu:
    def test_prefers_home_cpu(self):
        sched = build(piso_scheme())
        proc = FakeProc(1, 2)
        cpu = sched.find_cpu_for(proc)
        assert sched.home_of(cpu) == 2

    def test_lends_any_idle_when_home_busy(self):
        sched = build(piso_scheme())
        cpu2 = next(c for c in sched.processors if sched.home_of(c) == 2)
        blocker = FakeProc(9, 2)
        sched.enqueue(blocker)
        sched.pick(cpu2, 0)
        cpu = sched.find_cpu_for(FakeProc(1, 2))
        assert cpu is not None and sched.home_of(cpu) == 1

    def test_quota_returns_none_when_home_busy(self):
        sched = build(quota_scheme())
        cpu2 = next(c for c in sched.processors if sched.home_of(c) == 2)
        sched.enqueue(FakeProc(9, 2))
        sched.pick(cpu2, 0)
        assert sched.find_cpu_for(FakeProc(1, 2)) is None

    def test_none_when_all_busy(self):
        sched = build(smp_scheme())
        for i, cpu in enumerate(sched.processors):
            sched.enqueue(FakeProc(i, 1))
            sched.pick(cpu, 0)
        assert sched.find_cpu_for(FakeProc(99, 1)) is None


class TestRevocation:
    def test_loan_revoked_when_home_work_waits(self):
        sched = build(piso_scheme())
        cpu1 = next(c for c in sched.processors if sched.home_of(c) == 1)
        foreign = FakeProc(1, 2)
        sched.enqueue(foreign)
        sched.pick(cpu1, 0)  # SPU 2's process borrowed SPU 1's CPU
        sched.enqueue(FakeProc(2, 1))  # now SPU 1 has waiting work
        revoked = sched.revocations()
        assert revoked == [cpu1]
        assert sched.loans_revoked == 1

    def test_no_revocation_when_home_cpu_idle(self):
        sched = build(piso_scheme(), ncpus=4, spus=(1, 2))
        cpus1 = [c for c in sched.processors if sched.home_of(c) == 1]
        foreign = FakeProc(1, 2)
        sched.enqueue(foreign)
        sched.pick(cpus1[0], 0)
        sched.enqueue(FakeProc(2, 1))
        # The other home CPU is idle and can serve the waiter.
        assert sched.revocations() == []

    def test_no_revocation_without_waiting_work(self):
        sched = build(piso_scheme())
        cpu1 = next(c for c in sched.processors if sched.home_of(c) == 1)
        sched.enqueue(FakeProc(1, 2))
        sched.pick(cpu1, 0)
        assert sched.revocations() == []

    def test_smp_never_revokes(self):
        sched = build(smp_scheme())
        sched.enqueue(FakeProc(1, 1))
        sched.pick(sched.processors[0], 0)
        sched.enqueue(FakeProc(2, 1))
        assert sched.revocations() == []

    def test_one_revocation_per_waiter(self):
        sched = build(piso_scheme(), ncpus=4, spus=(1, 2))
        cpus1 = [c for c in sched.processors if sched.home_of(c) == 1]
        for i, cpu in enumerate(cpus1):
            sched.enqueue(FakeProc(i, 2))
            sched.pick(cpu, 0)  # both SPU-1 CPUs loaned out
        sched.enqueue(FakeProc(10, 1))  # one waiter
        assert len(sched.revocations()) == 1


class TestConstruction:
    def test_partitioned_scheme_requires_partition(self):
        with pytest.raises(ValueError):
            CpuScheduler(2, piso_scheme(), partition=None)
