"""Tests for the extension features: IPI revocation, migration cost,
loan hold-down (all sketched in Section 3.1 of the paper)."""

import pytest

from repro.core import IsolationParams, piso_scheme, smp_scheme
from repro.disk.model import fast_disk
from repro.kernel import Compute, DiskSpec, Kernel, MachineConfig, Sleep
from repro.sim.units import msecs, usecs


def machine(params, scheme_factory=piso_scheme, ncpus=2, seed=0):
    return MachineConfig(
        ncpus=ncpus, memory_mb=16, disks=[DiskSpec(geometry=fast_disk())],
        scheme=scheme_factory(params), seed=seed,
    )


class TestParamsValidation:
    def test_bad_revocation_mode(self):
        with pytest.raises(ValueError):
            IsolationParams(revocation_mode="smoke-signal")

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            IsolationParams(migration_cost=-1)
        with pytest.raises(ValueError):
            IsolationParams(loan_holddown=-1)
        with pytest.raises(ValueError):
            IsolationParams(ipi_cost=-1)

    def test_defaults_match_paper(self):
        params = IsolationParams()
        assert params.revocation_mode == "tick"
        assert params.migration_cost == 0
        assert params.loan_holddown == 0


def interactive_and_hog(params, bursts=20):
    """One interactive process vs hogs that borrow its CPU."""
    kernel = Kernel(machine(params))
    inter = kernel.create_spu("interactive")
    hog_spu = kernel.create_spu("hog")
    kernel.boot()

    def interactive():
        for _ in range(bursts):
            yield Sleep(msecs(20))
            yield Compute(msecs(1))

    def hog():
        yield Compute(msecs(5000))

    proc = kernel.spawn(interactive(), inter)
    for _ in range(2):
        kernel.spawn(hog(), hog_spu)
    kernel.run(until=msecs(2000))
    return kernel, proc


class TestIpiRevocation:
    def test_ipi_cuts_wakeup_latency(self):
        tick_kernel, tick_proc = interactive_and_hog(
            IsolationParams(revocation_mode="tick")
        )
        ipi_kernel, ipi_proc = interactive_and_hog(
            IsolationParams(revocation_mode="ipi")
        )
        assert ipi_proc.response_us < tick_proc.response_us
        # Tick mode waits up to a 10 ms tick per wake-up; IPI mode
        # should be within a few hundred us of the ideal 21 ms/burst.
        ideal = 20 * msecs(21)
        assert ipi_proc.response_us - ideal < 20 * usecs(500)
        assert tick_proc.response_us - ideal > 20 * usecs(2000)

    def test_ipi_still_revokes_loans(self):
        kernel, _proc = interactive_and_hog(IsolationParams(revocation_mode="ipi"))
        assert kernel.cpusched.loans_revoked > 0

    def test_ipi_mode_noop_on_smp(self):
        # SMP has no partitions, so the IPI path must be inert.
        params = IsolationParams(revocation_mode="ipi")
        kernel = Kernel(machine(params, scheme_factory=smp_scheme))
        spu = kernel.create_spu("u")
        kernel.boot()

        def job():
            yield Compute(msecs(50))

        for _ in range(4):
            kernel.spawn(job(), spu)
        kernel.run()
        assert kernel.cpusched.loans_revoked == 0


class TestMigrationCost:
    def test_zero_cost_changes_nothing(self):
        def response(cost):
            kernel = Kernel(machine(IsolationParams(migration_cost=cost),
                                    scheme_factory=smp_scheme))
            spu = kernel.create_spu("u")
            kernel.boot()

            def job():
                yield Compute(msecs(300))

            procs = [kernel.spawn(job(), spu) for _ in range(5)]
            kernel.run()
            return sum(p.response_us for p in procs)

        assert response(2000) > response(0)

    def test_uncontended_process_never_pays(self):
        # Alone on its CPU the process never migrates.
        kernel = Kernel(machine(IsolationParams(migration_cost=5000)))
        a = kernel.create_spu("a")
        kernel.create_spu("b")
        kernel.boot()

        def job():
            yield Compute(msecs(100))

        proc = kernel.spawn(job(), a)
        kernel.run()
        assert proc.response_us == msecs(100)

    def test_warmup_makes_no_compute_progress(self):
        # Two processes ping-pong on one CPU of a 1-CPU machine with a
        # huge migration cost; response must exceed pure compute by at
        # least the number of migrations times the cost... trivially,
        # responses grow with cost.
        def total(cost):
            kernel = Kernel(
                MachineConfig(ncpus=1, memory_mb=16,
                              disks=[DiskSpec(geometry=fast_disk())],
                              scheme=smp_scheme(IsolationParams(migration_cost=cost)))
            )
            spu = kernel.create_spu("u")
            kernel.boot()

            def job():
                yield Compute(msecs(90))

            procs = [kernel.spawn(job(), spu) for _ in range(2)]
            kernel.run()
            return max(p.response_us for p in procs)

        # Single CPU: last_cpu_id never changes -> no cost at all.
        assert total(5000) == total(0)


class TestLoanHolddown:
    def test_holddown_reduces_loan_churn(self):
        k0, _ = interactive_and_hog(IsolationParams(loan_holddown=0))
        k1, _ = interactive_and_hog(IsolationParams(loan_holddown=msecs(50)))
        assert k1.cpusched.loans_granted < k0.cpusched.loans_granted

    def test_holddown_timestamp_set_on_revocation(self):
        params = IsolationParams(loan_holddown=msecs(50))
        kernel, _ = interactive_and_hog(params)
        assert any(c.no_loan_until > 0 for c in kernel.cpusched.processors)


class TestAblationShapes:
    def test_revocation_ablation(self):
        from repro.experiments import run_revocation_ablation

        result = run_revocation_ablation()
        assert result.ipi_latency_ms < 1.0
        assert result.tick_latency_ms > 2.0

    def test_migration_sweep_shape(self):
        from repro.experiments import run_migration_sweep

        points = run_migration_sweep(costs_us=(0, 2000))
        smp = {p.migration_cost_us: p.mean_response_s
               for p in points if p.scheme == "SMP"}
        piso = {p.migration_cost_us: p.mean_response_s
                for p in points if p.scheme == "PIso"}
        smp_penalty = smp[2000] / smp[0]
        piso_penalty = piso[2000] / piso[0]
        assert smp_penalty > 1.02          # global queue pays
        assert piso_penalty < smp_penalty  # partitioning is affinity

    def test_holddown_ablation(self):
        from repro.experiments import run_holddown_ablation

        result = run_holddown_ablation()
        assert result.loans_with < result.loans_without
