"""Unit tests for the HP 97560 mechanical model."""

import pytest
from hypothesis import given, strategies as st

from repro.disk import DiskGeometry, hp97560, service_time
from repro.disk.model import fast_disk


@pytest.fixture
def geom():
    return hp97560()


class TestGeometry:
    def test_hp97560_parameters(self, geom):
        assert geom.cylinders == 1962
        assert geom.tracks_per_cylinder == 19
        assert geom.sectors_per_track == 72
        assert geom.rpm == 4002

    def test_total_sectors(self, geom):
        assert geom.total_sectors == 1962 * 19 * 72

    def test_rotation_time(self, geom):
        assert geom.rotation_us == pytest.approx(60_000_000 / 4002)

    def test_sector_time(self, geom):
        assert geom.sector_time_us == pytest.approx(geom.rotation_us / 72)

    def test_media_scale_multiplies_track_capacity(self):
        scaled = hp97560(media_scale=4)
        assert scaled.sectors_per_track == 288
        assert scaled.sector_time_us == pytest.approx(hp97560().sector_time_us / 4)

    def test_bad_media_scale(self):
        with pytest.raises(ValueError):
            hp97560(media_scale=0)

    def test_fast_disk_is_faster(self):
        assert fast_disk().seek_us(0, 500) < hp97560().seek_us(0, 500)


class TestAddressMapping:
    def test_sector_zero(self, geom):
        assert geom.cylinder_of(0) == 0
        assert geom.track_of(0) == 0
        assert geom.offset_of(0) == 0

    def test_track_boundary(self, geom):
        assert geom.track_of(71) == 0
        assert geom.track_of(72) == 1
        assert geom.offset_of(72) == 0

    def test_cylinder_boundary(self, geom):
        spc = geom.sectors_per_cylinder
        assert geom.cylinder_of(spc - 1) == 0
        assert geom.cylinder_of(spc) == 1

    def test_out_of_range_rejected(self, geom):
        with pytest.raises(ValueError):
            geom.cylinder_of(-1)
        with pytest.raises(ValueError):
            geom.cylinder_of(geom.total_sectors)

    @given(sector=st.integers(0, 1962 * 19 * 72 - 1))
    def test_property_mapping_roundtrip(self, sector):
        geom = hp97560()
        reconstructed = (
            geom.cylinder_of(sector) * geom.sectors_per_cylinder
            + geom.track_of(sector) * geom.sectors_per_track
            + geom.offset_of(sector)
        )
        assert reconstructed == sector


class TestSeek:
    def test_zero_distance_is_free(self, geom):
        assert geom.seek_us(100, 100) == 0

    def test_short_seek_uses_sqrt_regime(self, geom):
        assert geom.seek_us(0, 100) == round((3.24 + 0.4 * 100 ** 0.5) * 1000)

    def test_long_seek_uses_linear_regime(self, geom):
        assert geom.seek_us(0, 1000) == round((8.0 + 0.008 * 1000) * 1000)

    def test_seek_is_symmetric(self, geom):
        assert geom.seek_us(10, 500) == geom.seek_us(500, 10)

    def test_seek_scale_halves(self):
        full = hp97560()
        half = hp97560(seek_scale=0.5)
        assert half.seek_us(0, 1000) == round(full.seek_us(0, 1000) / 2)

    def test_scaled_copy(self, geom):
        assert geom.scaled(0.5).seek_scale == 0.5
        assert geom.seek_scale == 1.0

    @given(
        a=st.integers(0, 1961), b=st.integers(0, 1961), c=st.integers(0, 1961)
    )
    def test_property_seek_monotone_in_distance(self, a, b, c):
        geom = hp97560()
        d1, d2 = abs(a - b), abs(a - c)
        if d1 <= d2:
            assert geom.seek_us(a, b) <= geom.seek_us(a, c)


class TestRotation:
    def test_aligned_target_is_free(self, geom):
        # At t=0 the head is over offset 0.
        assert geom.rotation_delay_us(0, 0) == 0

    def test_one_sector_ahead(self, geom):
        delay = geom.rotation_delay_us(0, 1)
        assert delay == pytest.approx(geom.sector_time_us, abs=1)

    def test_just_missed_costs_nearly_full_rotation(self, geom):
        # Head 2 sectors past the target: wait for it to come around.
        at = round(2 * geom.sector_time_us)
        delay = geom.rotation_delay_us(at, 0)
        assert delay == pytest.approx(geom.rotation_us - 2 * geom.sector_time_us, abs=2)

    def test_hairline_miss_is_forgiven(self, geom):
        # Integer-rounded event times leave the head a fraction of a
        # sector past the target; that must not cost a revolution.
        at = round(5 * geom.sector_time_us)  # lands at angle 5.0007...
        assert geom.rotation_delay_us(at, 5) < geom.sector_time_us

    def test_sequential_chain_stays_aligned(self, geom):
        # Back-to-back transfers: end of one lines up with the next.
        t = 0
        breakdown = service_time(geom, 0, t, 0, 64)
        t += breakdown.total_us
        nxt = service_time(geom, geom.cylinder_of(63), t, 64, 8)
        assert nxt.rotation_us < geom.sector_time_us


class TestTransfer:
    def test_single_sector(self, geom):
        assert geom.transfer_us(0, 1) == round(geom.sector_time_us)

    def test_scales_linearly_with_skew(self, geom):
        assert geom.transfer_us(0, 144) == round(144 * geom.sector_time_us)

    def test_no_skew_charges_track_switches(self):
        geom = DiskGeometry(ideal_track_skew=False)
        crossing = geom.transfer_us(0, 144)  # crosses one track boundary
        flat = round(144 * geom.sector_time_us)
        assert crossing == flat + round(geom.head_switch_ms * 1000)

    def test_out_of_range_rejected(self, geom):
        with pytest.raises(ValueError):
            geom.transfer_us(geom.total_sectors - 1, 2)


class TestServiceTime:
    def test_components_sum(self, geom):
        breakdown = service_time(geom, 0, 0, 500_000, 16)
        assert breakdown.total_us == (
            breakdown.seek_us + breakdown.rotation_us + breakdown.transfer_us
        )

    def test_far_request_pays_seek(self, geom):
        near = service_time(geom, 0, 0, 64, 8)
        far = service_time(geom, 0, 0, geom.total_sectors // 2, 8)
        assert far.seek_us > near.seek_us
