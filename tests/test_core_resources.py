"""Unit and property tests for the entitled/allowed/used model."""

import pytest
from hypothesis import given, strategies as st

from repro.core import Resource, ResourceLevelError, ResourceLevels


class TestInvariants:
    def test_defaults_are_zero(self):
        levels = ResourceLevels()
        assert (levels.entitled, levels.allowed, levels.used) == (0, 0, 0)

    def test_negative_entitled_rejected(self):
        with pytest.raises(ResourceLevelError):
            ResourceLevels(entitled=-1)

    def test_allowed_below_entitled_rejected(self):
        with pytest.raises(ResourceLevelError):
            ResourceLevels(entitled=10, allowed=5)

    def test_used_above_allowed_rejected(self):
        with pytest.raises(ResourceLevelError):
            ResourceLevels(entitled=5, allowed=5, used=6)

    def test_negative_used_rejected(self):
        with pytest.raises(ResourceLevelError):
            ResourceLevels(entitled=5, allowed=5, used=-1)


class TestMutations:
    def test_acquire_and_release(self):
        levels = ResourceLevels(entitled=10, allowed=10)
        levels.acquire(4)
        assert levels.used == 4
        levels.release(3)
        assert levels.used == 1

    def test_acquire_beyond_allowed_raises(self):
        levels = ResourceLevels(entitled=2, allowed=2)
        levels.acquire(2)
        with pytest.raises(ResourceLevelError):
            levels.acquire(1)

    def test_acquire_negative_raises(self):
        with pytest.raises(ResourceLevelError):
            ResourceLevels(entitled=2, allowed=2).acquire(-1)

    def test_release_more_than_used_raises(self):
        levels = ResourceLevels(entitled=2, allowed=2, used=1)
        with pytest.raises(ResourceLevelError):
            levels.release(2)

    def test_release_negative_raises(self):
        with pytest.raises(ResourceLevelError):
            ResourceLevels(entitled=2, allowed=2, used=1).release(-1)

    def test_can_use_respects_cap(self):
        levels = ResourceLevels(entitled=3, allowed=3, used=2)
        assert levels.can_use(1)
        assert not levels.can_use(2)

    def test_set_allowed_lends(self):
        levels = ResourceLevels(entitled=5, allowed=5)
        levels.set_allowed(8)
        assert levels.borrowed == 3

    def test_set_allowed_cannot_drop_below_entitled(self):
        levels = ResourceLevels(entitled=5, allowed=8)
        with pytest.raises(ResourceLevelError):
            levels.set_allowed(4)

    def test_set_allowed_cannot_strand_usage(self):
        levels = ResourceLevels(entitled=5, allowed=10, used=8)
        with pytest.raises(ResourceLevelError):
            levels.set_allowed(6)

    def test_set_entitled_raises_allowed_if_needed(self):
        levels = ResourceLevels(entitled=2, allowed=2)
        levels.set_entitled(6)
        assert levels.allowed == 6

    def test_set_entitled_can_shrink_below_used(self):
        # An SPU may be using more than a freshly shrunk entitlement —
        # that is exactly the "borrowing" state.
        levels = ResourceLevels(entitled=10, allowed=10, used=8)
        levels.set_entitled(4)
        assert levels.over_entitlement
        assert levels.allowed == 10

    def test_set_entitled_negative_raises(self):
        with pytest.raises(ResourceLevelError):
            ResourceLevels().set_entitled(-1)


class TestDerived:
    def test_headroom(self):
        assert ResourceLevels(entitled=5, allowed=8, used=3).headroom == 5

    def test_idle_is_unused_entitlement(self):
        assert ResourceLevels(entitled=5, allowed=5, used=2).idle == 3

    def test_idle_never_negative(self):
        assert ResourceLevels(entitled=2, allowed=8, used=6).idle == 0

    def test_borrowed(self):
        assert ResourceLevels(entitled=5, allowed=9, used=6).borrowed == 4

    def test_over_entitlement(self):
        assert ResourceLevels(entitled=2, allowed=8, used=3).over_entitlement
        assert not ResourceLevels(entitled=4, allowed=8, used=3).over_entitlement


class TestResourceEnum:
    def test_three_resources(self):
        assert {r.value for r in Resource} == {"cpu", "memory", "disk_bw"}


@given(
    entitled=st.integers(0, 1000),
    lend=st.integers(0, 1000),
    ops=st.lists(st.integers(-50, 50), max_size=60),
)
def test_property_invariants_hold_under_any_op_sequence(entitled, lend, ops):
    """Whatever sequence of acquires/releases is applied, rejected ops
    leave state untouched and the invariants always hold."""
    levels = ResourceLevels(entitled=entitled, allowed=entitled + lend)
    for op in ops:
        try:
            if op >= 0:
                levels.acquire(op)
            else:
                levels.release(-op)
        except ResourceLevelError:
            pass
        assert 0 <= levels.used <= levels.allowed
        assert levels.entitled <= levels.allowed


@given(entitled=st.integers(0, 100), used=st.integers(0, 100))
def test_property_idle_plus_used_covers_entitled(entitled, used):
    used = min(used, entitled)
    levels = ResourceLevels(entitled=entitled, allowed=entitled, used=used)
    assert levels.idle + levels.used == max(levels.entitled, levels.used)
