"""Unit tests for sequential read-ahead detection."""

import pytest

from repro.fs import ReadAheadTracker


@pytest.fixture
def tracker():
    return ReadAheadTracker(window_blocks=8)


FILE_BLOCKS = 1000
KEY = (1, 1)


class TestDetection:
    def test_first_access_never_prefetches(self, tracker):
        assert tracker.observe(KEY, 0, 2, FILE_BLOCKS) == []

    def test_second_sequential_access_prefetches(self, tracker):
        tracker.observe(KEY, 0, 2, FILE_BLOCKS)
        prefetch = tracker.observe(KEY, 2, 2, FILE_BLOCKS)
        assert prefetch == list(range(4, 12))

    def test_random_access_resets(self, tracker):
        tracker.observe(KEY, 0, 2, FILE_BLOCKS)
        assert tracker.observe(KEY, 50, 2, FILE_BLOCKS) == []
        # ...and the stream restarts detection from the new point.
        assert tracker.observe(KEY, 52, 2, FILE_BLOCKS) != []

    def test_overlapping_rereads_count_as_sequential(self, tracker):
        tracker.observe(KEY, 0, 2, FILE_BLOCKS)
        # Reading the last block again (offset straddling) still looks
        # sequential.
        assert tracker.observe(KEY, 1, 2, FILE_BLOCKS) != []

    def test_streams_are_independent(self, tracker):
        tracker.observe((1, 1), 0, 2, FILE_BLOCKS)
        assert tracker.observe((2, 1), 0, 2, FILE_BLOCKS) == []

    def test_forget_resets_stream(self, tracker):
        tracker.observe(KEY, 0, 2, FILE_BLOCKS)
        tracker.forget(KEY)
        assert tracker.observe(KEY, 2, 2, FILE_BLOCKS) == []

    def test_zero_block_access_rejected(self, tracker):
        with pytest.raises(ValueError):
            tracker.observe(KEY, 0, 0, FILE_BLOCKS)


class TestWindow:
    def test_refills_in_half_window_batches(self, tracker):
        tracker.observe(KEY, 0, 2, FILE_BLOCKS)
        first = tracker.observe(KEY, 2, 2, FILE_BLOCKS)
        assert len(first) == 8
        # Still plenty prefetched ahead: no new prefetch yet.
        assert tracker.observe(KEY, 4, 2, FILE_BLOCKS) == []
        # Once half the window is consumed, top it up.
        assert tracker.observe(KEY, 6, 2, FILE_BLOCKS) != []

    def test_prefetch_clipped_at_eof(self):
        tracker = ReadAheadTracker(window_blocks=8)
        tracker.observe(KEY, 0, 2, 6)
        assert tracker.observe(KEY, 2, 2, 6) == [4, 5]

    def test_no_prefetch_at_eof(self):
        tracker = ReadAheadTracker(window_blocks=8)
        tracker.observe(KEY, 0, 3, 6)
        assert tracker.observe(KEY, 3, 3, 6) == []

    def test_zero_window_disables(self):
        tracker = ReadAheadTracker(window_blocks=0)
        tracker.observe(KEY, 0, 2, FILE_BLOCKS)
        assert tracker.observe(KEY, 2, 2, FILE_BLOCKS) == []

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            ReadAheadTracker(window_blocks=-1)

    def test_min_sequential_runs_gate(self):
        tracker = ReadAheadTracker(window_blocks=8, min_sequential_runs=2)
        tracker.observe(KEY, 0, 2, FILE_BLOCKS)
        assert tracker.observe(KEY, 2, 2, FILE_BLOCKS) == []
        assert tracker.observe(KEY, 4, 2, FILE_BLOCKS) != []
