"""Call-graph corner cases, golden in both directions.

Every dynamic-dispatch shape the graph claims to handle has a
*resolved* fixture (the edge lands, the dependency closure stays
complete) and a *widened* one (the graph admits defeat, so the sweep
cache falls back to the whole-tree digest instead of risking a stale
hit).  The shapes: decorated functions, ``functools.partial``,
lambdas stored in dataclass fields, and :mod:`repro.api`'s lazy
``_LAZY_EXPORTS`` re-export table.
"""

from repro.lint.effects import EffectAnalysis


def analyze(files):
    return EffectAnalysis.from_sources(
        (path, source, None) for path, source in sorted(files.items())
    )


def edges(analysis, ref):
    return [(e.callee, e.kind) for e in analysis.summaries[ref].edges]


class TestDecoratedFunctions:
    DECO = {
        "repro/sim/deco.py": (
            "import functools\n"
            "\n"
            "_HOOKS = {}\n"
            "\n"
            "\n"
            "def audit(fn):\n"
            "    return fn\n"
            "\n"
            "\n"
            "@functools.lru_cache\n"
            "def cached():\n"
            "    return 1\n"
            "\n"
            "\n"
            "@audit\n"
            "def logged():\n"
            "    return 2\n"
            "\n"
            "\n"
            "@_HOOKS['trace']\n"
            "def opaque():\n"
            "    return 3\n"
            "\n"
            "\n"
            "def caller():\n"
            "    return cached() + logged() + opaque()\n"
        ),
    }

    def test_transparent_and_repro_decorators_resolve(self):
        a = analyze(self.DECO)
        for ref in ("repro.sim.deco:cached", "repro.sim.deco:logged"):
            assert a.summaries[ref].widened == ()
        # Calls to decorated functions still land on the definitions.
        called = edges(a, "repro.sim.deco:caller")
        assert ("repro.sim.deco:cached", "direct") in called
        assert ("repro.sim.deco:logged", "direct") in called
        # Decoration by a repro function is module-level code: the
        # module body calls the decorator and captures the function.
        module = edges(a, "repro.sim.deco:<module>")
        assert ("repro.sim.deco:audit", "direct") in module
        assert ("repro.sim.deco:logged", "ref") in module

    def test_computed_decorator_widens_the_function(self):
        a = analyze(self.DECO)
        widened = a.summaries["repro.sim.deco:opaque"].widened
        assert len(widened) == 1 and "opaque decorator" in widened[0]
        # ... and poisons every closure that contains the function.
        _modules, reasons = a.closure("repro.sim.deco:caller")
        assert any("opaque decorator" in r for r in reasons)


class TestFunctoolsPartial:
    PART = {
        "repro/sim/part.py": (
            "import functools\n"
            "\n"
            "\n"
            "def worker(n):\n"
            "    return n\n"
            "\n"
            "\n"
            "def dispatch(queue):\n"
            "    queue.append(functools.partial(worker, 3))\n"
            "\n"
            "\n"
            "def invoke():\n"
            "    bound = functools.partial(worker, 3)\n"
            "    return bound()\n"
        ),
    }

    def test_partial_binding_keeps_the_target_in_the_closure(self):
        a = analyze(self.PART)
        # The target is referenced, not called here: a ref edge, so
        # the closure covers worker without claiming a call happens.
        assert ("repro.sim.part:worker", "ref") in edges(
            a, "repro.sim.part:dispatch"
        )
        assert a.summaries["repro.sim.part:dispatch"].widened == ()
        modules, reasons = a.closure("repro.sim.part:dispatch")
        assert reasons == [] and "repro.sim.part" in modules

    def test_calling_the_partial_object_widens(self):
        a = analyze(self.PART)
        widened = a.summaries["repro.sim.part:invoke"].widened
        assert len(widened) == 1 and "'bound'" in widened[0]


class TestDataclassFieldLambdas:
    FIELDS = {
        "repro/sim/fields.py": (
            "import dataclasses\n"
            "from typing import Callable\n"
            "\n"
            "\n"
            "@dataclasses.dataclass\n"
            "class Policy:\n"
            "    tick: Callable[[], int] = lambda: 0\n"
            "    hook: Callable[[], int] = None\n"
            "\n"
            "    def run(self):\n"
            "        return self.tick()\n"
            "\n"
            "    def fire(self):\n"
            "        return self.hook()\n"
        ),
    }

    def test_lambda_default_resolves_to_the_lambda(self):
        a = analyze(self.FIELDS)
        # The lambda is indexed as Policy.tick; the call lands there.
        assert ("repro.sim.fields:Policy.tick", "direct") in edges(
            a, "repro.sim.fields:Policy.run"
        )
        assert a.summaries["repro.sim.fields:Policy.run"].widened == ()

    def test_unbound_callable_field_widens(self):
        a = analyze(self.FIELDS)
        widened = a.summaries["repro.sim.fields:Policy.fire"].widened
        assert len(widened) == 1 and "callable field 'hook'" in widened[0]


class TestLazyExports:
    API = {
        "repro/api/__init__.py": (
            "_LAZY_EXPORTS = {\n"
            "    'run_experiment': ('repro.api.registry', 'run'),\n"
            "}\n"
        ),
        "repro/api/registry.py": (
            "def run(spec):\n"
            "    return spec\n"
        ),
        "repro/experiments/use.py": (
            "from repro.api import run_experiment\n"
            "import repro.api\n"
            "\n"
            "\n"
            "def go(spec):\n"
            "    return run_experiment(spec)\n"
            "\n"
            "\n"
            "def go_dotted(spec):\n"
            "    return repro.api.run_experiment(spec)\n"
            "\n"
            "\n"
            "def go_missing(spec):\n"
            "    return repro.api.not_exported(spec)\n"
        ),
    }

    def test_lazy_reexport_resolves_to_the_real_function(self):
        a = analyze(self.API)
        for caller in ("go", "go_dotted"):
            assert ("repro.api.registry:run", "direct") in edges(
                a, f"repro.experiments.use:{caller}"
            )
        modules, reasons = a.closure("repro.experiments.use:go")
        assert reasons == []
        assert "repro.api.registry" in modules
        # The facade package itself runs at import time, so it is in
        # the closure too.
        assert "repro.api" in modules

    def test_name_missing_from_the_table_widens(self):
        a = analyze(self.API)
        widened = a.summaries["repro.experiments.use:go_missing"].widened
        assert len(widened) == 1
        assert "'not_exported'" in widened[0]
        assert "repro.api" in widened[0]
        _modules, reasons = a.closure("repro.experiments.use:go_missing")
        assert reasons  # incomplete: the cache must not trust it
