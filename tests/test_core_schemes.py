"""Unit tests for scheme configurations."""

import pytest

from repro.core import (
    AlwaysShare,
    DiskSchedPolicy,
    IsolationParams,
    NeverShare,
    ShareIdle,
    piso_scheme,
    quota_scheme,
    scheme_by_name,
    smp_scheme,
)


class TestSchemeBundles:
    def test_smp_is_unconstrained(self):
        scheme = smp_scheme()
        assert not scheme.cpu_partitioned
        assert not scheme.mem_limits
        assert scheme.disk_policy is DiskSchedPolicy.POS
        assert isinstance(scheme.sharing_policy, AlwaysShare)

    def test_quota_isolates_without_sharing(self):
        scheme = quota_scheme()
        assert scheme.cpu_partitioned
        assert not scheme.cpu_lending
        assert scheme.mem_limits
        assert not scheme.mem_sharing
        assert isinstance(scheme.sharing_policy, NeverShare)

    def test_piso_isolates_and_shares(self):
        scheme = piso_scheme()
        assert scheme.cpu_partitioned
        assert scheme.cpu_lending
        assert scheme.mem_limits
        assert scheme.mem_sharing
        assert scheme.disk_policy is DiskSchedPolicy.PISO
        assert isinstance(scheme.sharing_policy, ShareIdle)

    def test_with_disk_policy_copies(self):
        scheme = piso_scheme()
        modified = scheme.with_disk_policy(DiskSchedPolicy.POS)
        assert modified.disk_policy is DiskSchedPolicy.POS
        assert scheme.disk_policy is DiskSchedPolicy.PISO
        assert modified.name == scheme.name

    def test_with_params_copies(self):
        params = IsolationParams(bw_difference_threshold=7.0)
        modified = piso_scheme().with_params(params)
        assert modified.params.bw_difference_threshold == 7.0


class TestParams:
    def test_paper_defaults(self):
        params = IsolationParams()
        assert params.time_slice == 30_000
        assert params.clock_tick == 10_000
        assert params.reserve_threshold == 0.08
        assert params.disk_decay_period == 500_000


class TestLookup:
    def test_by_name_case_insensitive(self):
        assert scheme_by_name("SMP").name == "SMP"
        assert scheme_by_name("piso").name == "PIso"
        assert scheme_by_name("Quo").name == "Quo"

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            scheme_by_name("bogus")

    def test_params_are_threaded_through(self):
        params = IsolationParams(time_slice=1234)
        assert scheme_by_name("piso", params).params.time_slice == 1234
