"""Cross-cutting property-based tests on core invariants.

These complement the per-module tests with system-level properties:
event ordering under arbitrary schedules, disk work conservation, CPU
accounting conservation, and memory-page conservation under random
workload mixes.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import SPURegistry, piso_scheme, quota_scheme, smp_scheme
from repro.disk import DiskDrive, DiskOp, DiskRequest, hp97560, make_scheduler
from repro.disk.drive import SpuBandwidthLedger
from repro.disk.model import fast_disk
from repro.kernel import Compute, DiskSpec, Kernel, MachineConfig, SetWorkingSet
from repro.sim import Engine
from repro.sim.units import msecs


@given(
    delays=st.lists(st.integers(0, 1000), min_size=1, max_size=50),
)
def test_engine_fires_in_nondecreasing_time_order(delays):
    engine = Engine()
    fired = []
    for delay in delays:
        engine.after(delay, lambda: fired.append(engine.now))
    engine.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    requests=st.lists(
        st.tuples(
            st.sampled_from([2, 3]),            # SPU id
            st.integers(0, 100_000),            # sector
            st.integers(1, 64),                 # size
        ),
        min_size=1,
        max_size=40,
    ),
    policy=st.sampled_from(["pos", "iso", "piso", "fifo", "sstf"]),
)
@settings(max_examples=40, deadline=None)
def test_disk_serves_every_request_exactly_once(requests, policy):
    """Work conservation: whatever the policy, everything completes,
    and the disk is busy end-to-end (no idling with a non-empty queue)."""
    engine = Engine(seed=1)
    registry = SPURegistry()
    for name in ("a", "b"):
        registry.create(name).disk_bw().set_entitled(1)
    drive = DiskDrive(
        engine, hp97560(), make_scheduler(policy),
        SpuBandwidthLedger(0, registry),
    )
    for spu_id, sector, size in requests:
        drive.submit(DiskRequest(spu_id, DiskOp.READ, sector, size))
    engine.run()
    assert drive.stats.count() == len(requests)
    assert drive.queue_depth() == 0
    # Busy end-to-end: completions tile the timeline without gaps.
    spans = sorted(
        (r.start_time, r.finish_time) for r in drive.stats.completed
    )
    for (s1, f1), (s2, _f2) in zip(spans, spans[1:]):
        assert s2 == f1  # next service starts the instant one ends


@given(
    njobs=st.integers(1, 6),
    duration_ms=st.integers(10, 200),
    scheme_name=st.sampled_from(["smp", "quo", "piso"]),
)
@settings(max_examples=25, deadline=None)
def test_cpu_time_is_conserved(njobs, duration_ms, scheme_name):
    """Every job receives exactly the CPU time it asked for, and the
    SPU accounts sum to the total handed out."""
    from repro.core import scheme_by_name

    kernel = Kernel(
        MachineConfig(ncpus=2, memory_mb=16,
                      disks=[DiskSpec(geometry=fast_disk())],
                      scheme=scheme_by_name(scheme_name), seed=njobs)
    )
    spus = [kernel.create_spu(f"u{i}") for i in range(2)]
    kernel.boot()
    procs = [
        kernel.spawn(
            iter([Compute(msecs(duration_ms))]), spus[i % 2]
        )
        for i in range(njobs)
    ]
    kernel.run()
    for proc in procs:
        assert proc.cpu_time_us == msecs(duration_ms)
    total_accounted = sum(
        kernel.cpu_account.total(spu.spu_id) for spu in spus
    )
    assert total_accounted == njobs * msecs(duration_ms)


@given(
    ws_sizes=st.lists(st.integers(8, 600), min_size=1, max_size=5),
    scheme_name=st.sampled_from(["smp", "quo", "piso"]),
)
@settings(max_examples=20, deadline=None)
def test_memory_pages_conserved_after_exit(ws_sizes, scheme_name):
    """All anonymous pages return to the pool when processes exit;
    kernel pages stay charged to the kernel SPU."""
    from repro.core import scheme_by_name

    kernel = Kernel(
        MachineConfig(ncpus=2, memory_mb=8,
                      disks=[DiskSpec(geometry=fast_disk())],
                      scheme=scheme_by_name(scheme_name), seed=len(ws_sizes))
    )
    spus = [kernel.create_spu(f"u{i}") for i in range(2)]
    kernel.boot()
    free_at_boot = kernel.memory.free_pages
    for i, ws in enumerate(ws_sizes):
        behavior = iter([
            SetWorkingSet(ws, touches_per_ms=2.0, fault_cluster_pages=32),
            Compute(msecs(50)),
        ])
        kernel.spawn(behavior, spus[i % 2])
    kernel.run()
    for spu in spus:
        # Only buffer-cache pages (none here: no file I/O) may remain.
        assert spu.memory().used == 0
    assert kernel.memory.free_pages == free_at_boot
    kernel_used = kernel.registry.kernel_spu.memory().used
    assert kernel_used == kernel.config.boot_kernel_pages


@given(seed=st.integers(0, 2**31))
@settings(max_examples=10, deadline=None)
def test_any_seed_completes_the_memory_workload(seed):
    """Robustness: no seed wedges the kernel (fault/steal interplay)."""
    kernel = Kernel(
        MachineConfig(ncpus=2, memory_mb=8,
                      disks=[DiskSpec(geometry=fast_disk())],
                      scheme=piso_scheme(), seed=seed)
    )
    a = kernel.create_spu("a")
    b = kernel.create_spu("b")
    kernel.boot()
    for spu in (a, b):
        kernel.spawn(
            iter([SetWorkingSet(800, touches_per_ms=1.0), Compute(msecs(200))]),
            spu,
        )
    kernel.run(max_events=500_000)
    assert kernel.jobs_done()
