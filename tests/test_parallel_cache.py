"""The content-addressed sweep cache: keys, invalidation, byte identity."""

import dataclasses
import os

import pytest

import repro.parallel.cache as cache_mod
from repro.api import ExperimentSpec, run_experiment
from repro.parallel import Executor, SweepCache, SweepPlan, values
from repro.parallel.cache import canonical_payload


def _square(x):
    return x * x


def _count_calls(x):
    # Touches the filesystem so a cached hit (which must NOT run the
    # cell) is observable: the marker file is only created by a run.
    marker, value = x
    with open(marker, "a") as fh:
        fh.write("ran\n")
    return value * value


def _runs(marker):
    if not os.path.exists(marker):
        return 0
    with open(marker) as fh:
        return len(fh.readlines())


# --- key derivation ----------------------------------------------------------


def test_canonical_payload_tags_tuples_and_lists_apart():
    assert canonical_payload((1, 2)) != canonical_payload([1, 2])


def test_canonical_payload_tags_dataclass_types_apart():
    @dataclasses.dataclass
    class A:
        x: int = 1

    @dataclasses.dataclass
    class B:
        x: int = 1

    assert canonical_payload(A()) != canonical_payload(B())


def test_uncacheable_payloads_yield_no_key(tmp_path):
    cache = SweepCache(str(tmp_path))
    assert cache.key_for(_square, {1: "non-str key"}) is None
    assert cache.key_for(_square, {"fn": _square}) is None
    assert cache.key_for(_square, {"s": {1, 2}}) is None


def test_key_changes_with_spec_seed_and_fn(tmp_path):
    cache = SweepCache(str(tmp_path))
    base = cache.key_for(_square, ("fig5", 0))
    assert base is not None
    assert cache.key_for(_square, ("fig7", 0)) != base   # spec change
    assert cache.key_for(_square, ("fig5", 1)) != base   # seed change
    assert cache.key_for(_count_calls, ("fig5", 0)) != base  # fn change


def test_key_changes_when_a_source_file_changes(tmp_path):
    # The tree digest is over file contents: the same tree with one
    # byte changed must hash differently (a "touched source" means a
    # whole-store miss).
    (tmp_path / "mod.py").write_text("X = 1\n")
    before = cache_mod._digest_tree(str(tmp_path)).hexdigest()
    (tmp_path / "mod.py").write_text("X = 2\n")
    after = cache_mod._digest_tree(str(tmp_path)).hexdigest()
    assert before != after


def test_key_changes_when_a_repro_env_knob_flips(tmp_path, monkeypatch):
    cache = SweepCache(str(tmp_path))
    monkeypatch.delenv("REPRO_SIMSAN", raising=False)
    plain = cache.key_for(_square, 3)
    monkeypatch.setenv("REPRO_SIMSAN", "1")
    simsan = cache.key_for(_square, 3)
    assert plain != simsan
    # The cache's own placement knob must NOT participate in the key.
    monkeypatch.delenv("REPRO_SIMSAN", raising=False)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
    assert cache.key_for(_square, 3) == plain


def test_forced_miss_when_code_digest_changes(tmp_path, monkeypatch):
    plan = SweepPlan(max_workers=1, cache=True, cache_dir=str(tmp_path))
    marker = str(tmp_path / "runs")
    payload = (marker, 7)
    assert values(Executor(plan).run(_count_calls, [payload])) == [49]
    assert _runs(marker) == 1
    # Same code: a hit, no re-run.
    assert values(Executor(plan).run(_count_calls, [payload])) == [49]
    assert _runs(marker) == 1
    # "Touch a source file": the tree digest memo changes, so the old
    # entry's address no longer matches and the cell re-runs.
    monkeypatch.setattr(cache_mod, "_CODE_DIGEST", "edited-tree-digest")
    assert values(Executor(plan).run(_count_calls, [payload])) == [49]
    assert _runs(marker) == 2


# --- hit/miss behaviour ------------------------------------------------------


def test_hit_skips_the_run_and_returns_identical_value(tmp_path):
    plan = SweepPlan(max_workers=1, cache=True, cache_dir=str(tmp_path))
    marker = str(tmp_path / "runs")

    cold_exec = Executor(plan)
    cold = cold_exec.run(_count_calls, [(marker, i) for i in range(3)])
    assert _runs(marker) == 3
    assert cold_exec.stats.cache_hits == 0
    assert cold_exec.stats.cache_misses == 3
    assert all(not o.cached for o in cold)

    warm_exec = Executor(plan)
    warm = warm_exec.run(_count_calls, [(marker, i) for i in range(3)])
    assert _runs(marker) == 3  # nothing re-ran
    assert warm_exec.stats.cache_hits == 3
    assert warm_exec.stats.cache_misses == 0
    assert all(o.cached and o.worker == -1 for o in warm)
    assert [o.value for o in warm] == [o.value for o in cold]


def test_spec_or_seed_change_misses(tmp_path):
    plan = SweepPlan(max_workers=1, cache=True, cache_dir=str(tmp_path))
    marker = str(tmp_path / "runs")
    values(Executor(plan).run(_count_calls, [(marker, 1)]))
    assert _runs(marker) == 1
    values(Executor(plan).run(_count_calls, [(marker, 2)]))  # "seed" change
    assert _runs(marker) == 2
    other_marker = str(tmp_path / "other-runs")                # "spec" change
    values(Executor(plan).run(_count_calls, [(other_marker, 1)]))
    assert _runs(other_marker) == 1


def test_errors_are_not_cached(tmp_path):
    plan = SweepPlan(max_workers=1, cache=True, cache_dir=str(tmp_path))
    outcomes = Executor(plan).run(_fail, [1])
    assert outcomes[0].status == "error"
    # The failure must re-run next time, not be replayed from the store.
    outcomes = Executor(plan).run(_fail, [1])
    assert outcomes[0].status == "error"
    assert not outcomes[0].cached


def _fail(x):
    raise ValueError("no")


def test_corrupt_entry_is_a_miss_with_warning(tmp_path):
    warnings = []
    cache = SweepCache(str(tmp_path), warn=warnings.append)
    key = cache.key_for(_square, 5)
    cache.put(key, 25)
    hit, value = cache.get(key)
    assert (hit, value) == (True, 25)

    # Torn entry: garbage bytes under the final name.
    path = cache._entry_path(key)
    with open(path, "wb") as fh:
        fh.write(b"RSC1" + b"\x00" * 10)
    hit, value = cache.get(key)
    assert not hit
    assert len(warnings) == 1
    assert "corrupt" in warnings[0]
    assert not os.path.exists(path)  # healed: next put rewrites it

    # Bad magic is equally a miss.
    cache.put(key, 25)
    with open(path, "wb") as fh:
        fh.write(b"NOPE" + b"\x00" * 40)
    hit, _value = cache.get(key)
    assert not hit
    assert cache.errors == 2


def test_put_is_append_only(tmp_path):
    cache = SweepCache(str(tmp_path))
    key = cache.key_for(_square, 5)
    cache.put(key, 25)
    cache.put(key, 999)  # no-op: entries are immutable
    assert cache.get(key) == (True, 25)
    assert cache.puts == 1


# --- cached-vs-cold byte identity (the determinism gate) --------------------

SECTIONS = ("fig5", "table4", "fig7")
SEEDS = (0, 1)


def test_cached_experiments_are_byte_identical_to_cold(tmp_path):
    payloads = [
        ExperimentSpec(name=name, seed=seed)
        for name in SECTIONS for seed in SEEDS
    ]
    cold = [run_experiment(p).canonical_json() for p in payloads]

    plan = SweepPlan(max_workers=1, cache=True, cache_dir=str(tmp_path))
    miss_exec = Executor(plan)
    first = values(miss_exec.run(run_experiment, payloads))
    assert miss_exec.stats.cache_misses == len(payloads)
    assert [r.canonical_json() for r in first] == cold

    hit_exec = Executor(plan)
    second = values(hit_exec.run(run_experiment, payloads))
    assert hit_exec.stats.cache_hits == len(payloads)
    assert [r.canonical_json() for r in second] == cold


def test_cached_soak_journals_are_byte_identical_to_cold(tmp_path):
    from repro.chaos.soak import run_soak

    seeds = [0, 1]
    cold = run_soak(seeds, horizon_us=200_000)
    cached_cold = run_soak(
        seeds, horizon_us=200_000, cache=True, cache_dir=str(tmp_path)
    )
    warm = run_soak(
        seeds, horizon_us=200_000, cache=True, cache_dir=str(tmp_path)
    )
    assert [r.journal for r in cached_cold] == [r.journal for r in cold]
    assert [r.journal for r in warm] == [r.journal for r in cold]


# --- function-precise closure digests ---------------------------------------


def _closure_modules(ref):
    analysis = cache_mod._ensure_analysis()
    assert analysis is not None
    modules, reasons = analysis.closure(ref)
    assert reasons == [], f"{ref} closure unexpectedly incomplete: {reasons}"
    return modules


def test_interpreter_tag_participates_in_every_key(tmp_path, monkeypatch):
    # Entries are pickles: a different implementation/feature-version
    # pair must land at a different address (satellite: portability).
    cache = SweepCache(str(tmp_path))
    fallback_key = cache.key_for(_square, 3)
    precise = cache_mod.closure_digest(run_experiment)
    monkeypatch.setattr(cache_mod, "_INTERP_TAG", "otherpython-9.9")
    assert cache.key_for(_square, 3) != fallback_key
    assert cache_mod.closure_digest(run_experiment) != precise


def test_non_repro_functions_fall_back_to_the_whole_tree(tmp_path):
    before = cache_mod.closure_stats()["fallback"]
    assert cache_mod.closure_digest(_square) == cache_mod.code_digest()
    assert cache_mod.closure_stats()["fallback"] == before + 1


def test_repro_entry_points_get_precise_closures():
    before = cache_mod.closure_stats()["precise"]
    first = cache_mod.closure_digest(run_experiment)
    assert first == cache_mod.closure_digest(run_experiment)
    assert first != cache_mod.code_digest()
    assert cache_mod.closure_stats()["precise"] == before + 2
    # The proven closure stays clear of host-side tooling: editing the
    # linter, the bench harness, or the executor machinery must never
    # invalidate simulation results.
    modules = _closure_modules("repro.api.registry:run")
    assert "repro.core.spu" in modules
    assert not any(
        m.startswith(("repro.lint", "repro.bench", "repro.parallel"))
        for m in modules
    )


def test_edit_outside_the_closure_preserves_hits(tmp_path, monkeypatch):
    payloads = [ExperimentSpec(name="fig5", seed=0)]
    plan = SweepPlan(max_workers=1, cache=True, cache_dir=str(tmp_path))
    cold_exec = Executor(plan)
    cold = values(cold_exec.run(run_experiment, payloads))
    assert cold_exec.stats.cache_misses == 1

    # An edit outside the closure moves the whole-tree digest but not
    # the per-function one, so the store stays warm...
    digest_before = cache_mod.closure_digest(run_experiment)
    monkeypatch.setattr(cache_mod, "_CODE_DIGEST", "outside-closure-edit")
    assert cache_mod.closure_digest(run_experiment) == digest_before
    warm_exec = Executor(plan)
    warm = values(warm_exec.run(run_experiment, payloads))
    assert warm_exec.stats.cache_hits == 1
    # ... and the replayed bytes are the cold run's, exactly.
    assert [r.canonical_json() for r in warm] == [
        r.canonical_json() for r in cold
    ]


def test_edit_inside_the_closure_forces_a_miss(tmp_path, monkeypatch):
    import repro

    cache = SweepCache(str(tmp_path))
    key_before = cache.key_for(run_experiment, ("fig5", 0))
    modules = _closure_modules("repro.api.registry:run")
    assert "repro.core.spu" in modules  # the file we "edit" is inside
    tree_root = os.path.dirname(
        os.path.dirname(os.path.abspath(repro.__file__))
    )
    spu_path = os.path.join(tree_root, "repro", "core", "spu.py")
    monkeypatch.setattr(cache_mod, "_CLOSURE_PARTS", {})
    monkeypatch.setitem(
        cache_mod._FILE_DIGESTS, spu_path, b"\x00" * 32
    )
    assert cache.key_for(run_experiment, ("fig5", 0)) != key_before


def test_env_knobs_fold_into_precise_digests(monkeypatch):
    monkeypatch.delenv("REPRO_SIMSAN", raising=False)
    plain = cache_mod.closure_digest(run_experiment)
    monkeypatch.setenv("REPRO_SIMSAN", "1")
    assert cache_mod.closure_digest(run_experiment) != plain
    monkeypatch.delenv("REPRO_SIMSAN", raising=False)
    monkeypatch.setenv("REPRO_CACHE_DIR", "/elsewhere")
    assert cache_mod.closure_digest(run_experiment) == plain


def test_simsan_entries_never_alias_plain_entries(tmp_path, monkeypatch):
    # REPRO_SIMSAN participates in the code digest, so a SIMSAN run and
    # a plain run of the same spec live at different addresses.
    plan = SweepPlan(max_workers=1, cache=True, cache_dir=str(tmp_path))
    marker = str(tmp_path / "runs")
    monkeypatch.delenv("REPRO_SIMSAN", raising=False)
    values(Executor(plan).run(_count_calls, [(marker, 3)]))
    assert _runs(marker) == 1
    monkeypatch.setenv("REPRO_SIMSAN", "1")
    values(Executor(plan).run(_count_calls, [(marker, 3)]))
    assert _runs(marker) == 2  # miss: different knob, different address
    values(Executor(plan).run(_count_calls, [(marker, 3)]))
    assert _runs(marker) == 2  # hit within the SIMSAN namespace
