"""Unit tests for kernel locks and barriers."""

import pytest

from repro.kernel import Barrier, KernelLock, LockError
from repro.kernel.process import Process


def proc(pid, base=20):
    return Process(pid, spu_id=2, behavior=iter(()), base_priority=base)


class TestMutex:
    def test_first_acquire_granted(self):
        lock = KernelLock("l")
        assert lock.acquire(proc(1), shared=False, granted=lambda: None)
        assert lock.held

    def test_second_acquire_queues(self):
        lock = KernelLock("l")
        lock.acquire(proc(1), False, lambda: None)
        assert not lock.acquire(proc(2), False, lambda: None)
        assert lock.waiting() == 1
        assert lock.contentions == 1

    def test_release_grants_next_fifo(self):
        lock = KernelLock("l")
        holder = proc(1)
        lock.acquire(holder, False, lambda: None)
        order = []
        lock.acquire(proc(2), False, lambda: order.append(2))
        lock.acquire(proc(3), False, lambda: order.append(3))
        for grant in lock.release(holder):
            grant()
        assert order == [2]

    def test_release_not_held_raises(self):
        lock = KernelLock("l")
        with pytest.raises(LockError):
            lock.release(proc(1))

    def test_shared_request_is_exclusive_without_rw(self):
        # The unfixed inode lock: even lookups serialize.
        lock = KernelLock("inode", reader_writer=False)
        lock.acquire(proc(1), shared=True, granted=lambda: None)
        assert not lock.acquire(proc(2), shared=True, granted=lambda: None)


class TestReadersWriter:
    def test_readers_share(self):
        lock = KernelLock("l", reader_writer=True)
        assert lock.acquire(proc(1), True, lambda: None)
        assert lock.acquire(proc(2), True, lambda: None)
        assert len(lock.holders()) == 2

    def test_writer_excludes_readers(self):
        lock = KernelLock("l", reader_writer=True)
        lock.acquire(proc(1), False, lambda: None)
        assert not lock.acquire(proc(2), True, lambda: None)

    def test_reader_excludes_writer(self):
        lock = KernelLock("l", reader_writer=True)
        lock.acquire(proc(1), True, lambda: None)
        assert not lock.acquire(proc(2), False, lambda: None)

    def test_queued_writer_blocks_new_readers(self):
        lock = KernelLock("l", reader_writer=True)
        lock.acquire(proc(1), True, lambda: None)
        lock.acquire(proc(2), False, lambda: None)  # writer queued
        assert not lock.acquire(proc(3), True, lambda: None)

    def test_release_grants_reader_batch(self):
        lock = KernelLock("l", reader_writer=True)
        writer = proc(1)
        lock.acquire(writer, False, lambda: None)
        order = []
        lock.acquire(proc(2), True, lambda: order.append(2))
        lock.acquire(proc(3), True, lambda: order.append(3))
        lock.acquire(proc(4), False, lambda: order.append(4))
        for grant in lock.release(writer):
            grant()
        assert order == [2, 3]  # both readers in, writer still waiting

    def test_last_reader_release_grants_writer(self):
        lock = KernelLock("l", reader_writer=True)
        r1, r2 = proc(1), proc(2)
        lock.acquire(r1, True, lambda: None)
        lock.acquire(r2, True, lambda: None)
        order = []
        lock.acquire(proc(3), False, lambda: order.append(3))
        assert lock.release(r1) == []
        for grant in lock.release(r2):
            grant()
        assert order == [3]


class TestPriorityInheritance:
    def test_holder_boosted_by_urgent_waiter(self):
        lock = KernelLock("l", inheritance=True)
        holder = proc(1, base=20)
        lock.acquire(holder, False, lambda: None)
        lock.acquire(proc(2, base=5), False, lambda: None)
        assert holder.priority.base == 5

    def test_boost_cleared_on_release(self):
        lock = KernelLock("l", inheritance=True)
        holder = proc(1, base=20)
        lock.acquire(holder, False, lambda: None)
        lock.acquire(proc(2, base=5), False, lambda: None)
        lock.release(holder)
        assert holder.priority.base == 20

    def test_no_boost_without_inheritance(self):
        lock = KernelLock("l", inheritance=False)
        holder = proc(1, base=20)
        lock.acquire(holder, False, lambda: None)
        lock.acquire(proc(2, base=5), False, lambda: None)
        assert holder.priority.base == 20


class TestBarrier:
    def test_holds_until_full(self):
        barrier = Barrier(3)
        assert barrier.arrive(lambda: None) == []
        assert barrier.arrive(lambda: None) == []

    def test_last_arrival_releases_all(self):
        barrier = Barrier(3)
        woken = []
        barrier.arrive(lambda: woken.append(1))
        barrier.arrive(lambda: woken.append(2))
        released = barrier.arrive(lambda: woken.append(3))
        for resume in released:
            resume()
        assert sorted(woken) == [1, 2, 3]

    def test_reusable_across_generations(self):
        barrier = Barrier(2)
        barrier.arrive(lambda: None)
        barrier.arrive(lambda: None)
        assert barrier.generation == 1
        assert barrier.arrive(lambda: None) == []
        assert len(barrier.arrive(lambda: None)) == 2
        assert barrier.generation == 2

    def test_single_party_barrier_trips_immediately(self):
        barrier = Barrier(1)
        assert len(barrier.arrive(lambda: None)) == 1

    def test_bad_party_count(self):
        with pytest.raises(ValueError):
            Barrier(0)
