"""End-to-end tests of time-partitioned (fractional-share) CPUs.

The paper's hybrid scheme space-partitions whole CPUs and
time-partitions the remainder.  These tests run real kernels whose
contract forces fractional shares, exercising the rotation, the
dispatch-retry liveness path, and fairness through the full stack.
"""

import pytest

from repro.core import MILLI_CPU, WeightedContract, piso_scheme, quota_scheme
from repro.disk.model import fast_disk
from repro.kernel import Compute, DiskSpec, Kernel, MachineConfig
from repro.sim.units import msecs, secs


def build(nspus, ncpus, scheme=None, contract=None):
    kernel = Kernel(
        MachineConfig(
            ncpus=ncpus, memory_mb=16,
            disks=[DiskSpec(geometry=fast_disk())],
            scheme=scheme if scheme is not None else quota_scheme(),
            contract=contract if contract is not None else __import__(
                "repro.core", fromlist=["EqualShareContract"]
            ).EqualShareContract(),
        )
    )
    spus = [kernel.create_spu(f"u{i}") for i in range(nspus)]
    kernel.boot()
    return kernel, spus


def spinner(ms):
    yield Compute(msecs(ms))


class TestSingleCpuSplit:
    def test_two_spus_share_one_cpu_under_quota(self):
        kernel, (a, b) = build(nspus=2, ncpus=1)
        pa = kernel.spawn(spinner(200), a)
        pb = kernel.spawn(spinner(200), b)
        kernel.run()
        # Each gets half the CPU: both finish around 400 ms, and CPU
        # accounts are equal.
        assert pa.response_us > msecs(350)
        assert pb.response_us > msecs(350)
        assert kernel.cpu_account.total(a.spu_id) == msecs(200)
        assert kernel.cpu_account.total(b.spu_id) == msecs(200)

    def test_lone_process_on_rotating_cpu_completes(self):
        # The liveness case the fuzzer found: only daemon ticks rotate
        # the home SPU; the dispatch retry must keep the run alive.
        kernel, (a, _b) = build(nspus=2, ncpus=1)
        proc = kernel.spawn(spinner(50), a)
        kernel.run()
        assert proc.finished >= 0
        # Quota: the SPU owns half the CPU, so 50 ms of work takes
        # about 100 ms of wall time (rotation granularity applies).
        assert msecs(80) <= proc.response_us <= msecs(160)

    def test_piso_lends_rotation_slack(self):
        kernel, (a, _b) = build(nspus=2, ncpus=1, scheme=piso_scheme())
        proc = kernel.spawn(spinner(50), a)
        kernel.run()
        # With lending, the other SPU's idle half is borrowed: the job
        # runs at nearly full speed.
        assert proc.response_us <= msecs(75)


class TestUnevenFractions:
    def test_weighted_split_of_one_cpu(self):
        kernel, (a, b) = build(
            nspus=2, ncpus=1,
            contract=WeightedContract({"u0": 3, "u1": 1}),
        )
        assert a.cpu().entitled == 750
        assert b.cpu().entitled == 250
        kernel.spawn(spinner(3000), a)
        kernel.spawn(spinner(3000), b)
        kernel.run(until=secs(1))
        used_a = kernel.cpu_account.total(a.spu_id)
        used_b = kernel.cpu_account.total(b.spu_id)
        assert used_a == pytest.approx(3 * used_b, rel=0.1)

    def test_three_spus_on_two_cpus(self):
        kernel, spus = build(nspus=3, ncpus=2)
        for spu in spus:
            assert spu.cpu().entitled in (666, 667)
        # Two processes per SPU: an SPU whose fraction is split across
        # both CPUs can only harvest overlapping slots with enough
        # intra-SPU parallelism (one process can't be in two places).
        for spu in spus:
            for _ in range(2):
                kernel.spawn(spinner(3000), spu)
        kernel.run(until=secs(1))
        usages = [kernel.cpu_account.total(s.spu_id) for s in spus]
        mean = sum(usages) / 3
        for used in usages:
            assert used == pytest.approx(mean, rel=0.1)

    def test_split_share_needs_parallelism(self):
        # The single-process case documents the fragmentation: the SPU
        # whose 2/3 share is split 1/3+1/3 across both CPUs harvests
        # only the non-overlapping part with one process.
        kernel, spus = build(nspus=3, ncpus=2)
        for spu in spus:
            kernel.spawn(spinner(3000), spu)
        kernel.run(until=secs(1))
        split_spu = spus[1]  # packing splits the middle SPU's share
        used = kernel.cpu_account.total(split_spu.spu_id)
        assert used >= 0.3 * 1e6  # still gets a substantial share...
        assert used <= 0.6 * 1e6  # ...but not the full 0.667 CPUs

    def test_mixed_dedicated_and_shared(self):
        # 3 SPUs on 4 CPUs: one dedicated CPU each + 1/3 of the fourth.
        kernel, spus = build(nspus=3, ncpus=4)
        partition = kernel.cpusched.partition
        for spu in spus:
            assert len(partition.cpus_of(spu.spu_id)) >= 1
        assert any(partition.is_time_shared(c) for c in range(4))
        for spu in spus:
            for _ in range(2):
                kernel.spawn(spinner(2000), spu)
        kernel.run(until=secs(1))
        usages = [kernel.cpu_account.total(s.spu_id) for s in spus]
        expected = (4 * MILLI_CPU // 3) / MILLI_CPU * 1e6  # µs per 1s
        for used in usages:
            assert used == pytest.approx(expected, rel=0.1)
