"""Tests for the hardware fault-injection subsystem (repro.faults)."""

import pytest

from repro.core import SPURegistry, piso_scheme, quota_scheme, smp_scheme
from repro.disk import (
    DiskDrive,
    DiskOp,
    DiskRequest,
    hp97560,
    make_scheduler,
)
from repro.disk.drive import DiskFailedError, RetryPolicy
from repro.faults import (
    CpuAdd,
    CpuRemove,
    DiskFailure,
    DiskTransient,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    InvariantViolation,
    InvariantWatchdog,
    MemoryLoss,
)
from repro.kernel import Compute, DiskSpec, Kernel, KernelError, MachineConfig, ReadFile, SetWorkingSet
from repro.metrics.summary import format_report, machine_report
from repro.sim import Engine
from repro.sim.units import KB, MSEC, SEC, msecs


def machine(scheme=None, ncpus=4, memory_mb=16, ndisks=2, seed=0):
    return MachineConfig(
        ncpus=ncpus,
        memory_mb=memory_mb,
        disks=[DiskSpec(geometry=hp97560()) for _ in range(ndisks)],
        scheme=scheme if scheme is not None else piso_scheme(),
        seed=seed,
    )


def booted(scheme=None, nspus=2, **kwargs):
    kernel = Kernel(machine(scheme, **kwargs))
    spus = [kernel.create_spu(f"u{i}") for i in range(nspus)]
    kernel.boot()
    return kernel, spus


def bare_drive(retry=None, seed=1):
    engine = Engine(seed=seed)
    drive = DiskDrive(engine, hp97560(), make_scheduler("pos"), retry=retry)
    return engine, drive


# --- drive-level transient errors -----------------------------------------


class TestTransientErrors:
    def test_errors_inside_window_retry_then_succeed(self):
        engine, drive = bare_drive()
        drive.inject_transient(50 * MSEC, error_rate=1.0)
        done = []
        drive.submit(DiskRequest(1, DiskOp.READ, 1000, 8, on_complete=done.append))
        engine.run()
        (request,) = done
        assert not request.failed
        assert request.attempts > 1
        assert drive.stats.transient_errors > 0
        assert drive.stats.retries == drive.stats.transient_errors
        # The ordeal spans the error window; response covers it all.
        assert request.response_us >= 50 * MSEC - drive.retry.max_backoff_us

    def test_retry_budget_exhaustion_fails_request(self):
        policy = RetryPolicy(max_attempts=3, base_backoff_us=100, deadline_us=60 * SEC)
        engine, drive = bare_drive(retry=policy)
        drive.inject_transient(60 * SEC, error_rate=1.0)
        done = []
        drive.submit(DiskRequest(1, DiskOp.READ, 1000, 8, on_complete=done.append))
        engine.run()
        (request,) = done
        assert request.failed
        assert request.attempts == 3
        assert drive.stats.failed_requests == 1

    def test_deadline_stops_retries(self):
        policy = RetryPolicy(max_attempts=1000, base_backoff_us=5 * MSEC,
                             backoff_factor=1.0, deadline_us=40 * MSEC)
        engine, drive = bare_drive(retry=policy)
        drive.inject_transient(10 * SEC, error_rate=1.0)
        done = []
        drive.submit(DiskRequest(1, DiskOp.READ, 1000, 8, on_complete=done.append))
        engine.run()
        (request,) = done
        assert request.failed
        # Retries stop once the next attempt could not start before the
        # deadline; with a 5 ms backoff and ~10 ms service per attempt
        # that means a handful of attempts, far off the 1000 budget.
        assert request.attempts < 10
        assert request.finish_time < 2 * policy.deadline_us

    def test_per_request_deadline_overrides_policy(self):
        engine, drive = bare_drive()
        drive.inject_transient(10 * SEC, error_rate=1.0)
        done = []
        drive.submit(
            DiskRequest(1, DiskOp.READ, 1000, 8, on_complete=done.append,
                        deadline_us=30 * MSEC)
        )
        engine.run()
        (request,) = done
        assert request.failed
        assert request.finish_time < 30 * MSEC + drive.retry.max_backoff_us

    def test_zero_rate_never_errors(self):
        engine, drive = bare_drive()
        drive.inject_transient(10 * SEC, error_rate=0.0)
        done = []
        drive.submit(DiskRequest(1, DiskOp.READ, 1000, 8, on_complete=done.append))
        engine.run()
        assert not done[0].failed
        assert drive.stats.transient_errors == 0

    def test_after_window_service_is_clean(self):
        engine, drive = bare_drive()
        drive.inject_transient(10 * MSEC, error_rate=1.0)
        engine.after(20 * MSEC, lambda: drive.submit(
            DiskRequest(1, DiskOp.READ, 1000, 8)
        ))
        engine.run()
        assert drive.stats.transient_errors == 0

    def test_injection_validation(self):
        _engine, drive = bare_drive()
        with pytest.raises(ValueError):
            drive.inject_transient(-1)
        with pytest.raises(ValueError):
            drive.inject_transient(1000, error_rate=1.5)

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(deadline_us=0)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_backoff_us=1000, backoff_factor=2.0,
                             max_backoff_us=3000)
        assert policy.backoff_us(1) == 1000
        assert policy.backoff_us(2) == 2000
        assert policy.backoff_us(5) == 3000


# --- drive-level permanent failure ----------------------------------------


class TestPermanentFailure:
    def test_fail_returns_queued_and_inflight(self):
        engine, drive = bare_drive()
        drive.submit(DiskRequest(1, DiskOp.READ, 1000, 8))
        drive.submit(DiskRequest(1, DiskOp.READ, 9000, 8))
        orphans = drive.fail_permanently()
        assert len(orphans) == 2
        assert not drive.alive
        assert not drive.busy and not drive.queue
        engine.run()
        assert drive.stats.count() == 0

    def test_fail_is_idempotent(self):
        _engine, drive = bare_drive()
        drive.submit(DiskRequest(1, DiskOp.READ, 1000, 8))
        assert len(drive.fail_permanently()) == 1
        assert drive.fail_permanently() == []

    def test_submit_to_dead_drive_raises_without_hook(self):
        _engine, drive = bare_drive()
        drive.fail_permanently()
        with pytest.raises(DiskFailedError):
            drive.submit(DiskRequest(1, DiskOp.READ, 1000, 8))

    def test_submit_to_dead_drive_uses_failover_hook(self):
        _engine, drive = bare_drive()
        drive.fail_permanently()
        rerouted = []
        drive.on_failed = rerouted.append
        request = DiskRequest(1, DiskOp.READ, 1000, 8)
        drive.submit(request)
        assert rerouted == [request]

    def test_orphan_keeps_enqueue_time(self):
        engine, drive = bare_drive()
        drive.submit(DiskRequest(1, DiskOp.READ, 1000, 8))
        engine.after(5 * MSEC, drive.fail_permanently)
        engine.run()
        # Can't assert inside run easily; resubmit path is covered by
        # the kernel failover tests — here just confirm the drive died.
        assert not drive.alive


# --- kernel-level CPU hot-remove / hot-add ---------------------------------


class TestCpuHotplug:
    def test_remove_shrinks_online_set_and_entitlements(self):
        kernel, spus = booted(ncpus=4, nspus=2)
        kernel.remove_cpu()
        sched = kernel.cpusched
        assert len(sched.online_processors()) == 3
        assert kernel.cpus_removed == 1
        total_entitled = sum(s.cpu().entitled for s in spus)
        assert total_entitled == 3000  # 3 CPUs in milli-CPUs

    def test_cannot_remove_last_cpu(self):
        kernel, _ = booted(ncpus=2, nspus=1)
        kernel.remove_cpu()
        with pytest.raises(KernelError):
            kernel.remove_cpu()

    def test_remove_specific_and_invalid(self):
        kernel, _ = booted(ncpus=4)
        assert kernel.remove_cpu(2) == 2
        with pytest.raises(KernelError):
            kernel.remove_cpu(2)  # already offline
        with pytest.raises(KernelError):
            kernel.remove_cpu(99)

    def test_add_restores_capacity(self):
        kernel, spus = booted(ncpus=4, nspus=2)
        removed = kernel.remove_cpu()
        assert kernel.add_cpu() == removed
        assert len(kernel.cpusched.online_processors()) == 4
        assert sum(s.cpu().entitled for s in spus) == 4000

    def test_add_without_offline_cpu_raises(self):
        kernel, _ = booted()
        with pytest.raises(KernelError):
            kernel.add_cpu()

    def test_running_process_is_preempted_not_lost(self):
        kernel, (a, _b) = booted(ncpus=2, nspus=2)
        proc = kernel.spawn(iter([Compute(msecs(50))]), a)
        kernel.run(until=msecs(5))
        kernel.remove_cpu(0)
        kernel.run()
        assert proc.finished is not None
        assert proc.cpu_time_us >= msecs(50)

    def test_capacity_integral_tracks_removal(self):
        kernel, _ = booted(ncpus=4, nspus=1)
        kernel.run(until=msecs(10))
        kernel.remove_cpu()
        kernel.run(until=msecs(20))
        expected = msecs(10) * 4 + msecs(10) * 3
        assert kernel.cpu_capacity_us() == expected

    def test_utilization_uses_offered_capacity(self):
        kernel, (a,) = booted(ncpus=2, nspus=1)
        kernel.spawn(iter([Compute(msecs(40))]), a)
        kernel.run(until=msecs(10))
        kernel.remove_cpu()
        kernel.run()
        assert 0.0 < kernel.cpu_utilization() <= 1.0


# --- kernel-level memory loss ------------------------------------------------


class TestMemoryLoss:
    def test_free_pages_go_first(self):
        kernel, _ = booted(memory_mb=16)
        before = kernel.memory.total_pages
        removed = kernel.remove_memory(100)
        assert removed == 100
        assert kernel.memory.total_pages == before - 100
        assert kernel.memory.decommissioned == 100

    def test_page_conservation_after_loss(self):
        kernel, _ = booted(memory_mb=16)
        kernel.remove_memory(50)
        charged = sum(s.memory().used for s in kernel.registry.all_spus())
        assert charged + kernel.memory.free_pages == kernel.memory.total_pages

    def test_in_use_pages_are_evicted(self):
        kernel, (a, _b) = booted(memory_mb=8, nspus=2)
        proc = kernel.spawn(
            iter([SetWorkingSet(pages=200), Compute(msecs(20))]), a
        )
        kernel.run(until=msecs(10))
        free_before = kernel.memory.free_pages
        removed = kernel.remove_memory(free_before + 50)
        assert removed > free_before  # had to evict
        kernel.run()
        assert proc.finished is not None

    def test_entitlements_shrink_with_pool(self):
        kernel, spus = booted(memory_mb=16, nspus=2)
        entitled_before = sum(s.memory().entitled for s in spus)
        kernel.remove_memory(200)
        entitled_after = sum(s.memory().entitled for s in spus)
        assert entitled_after < entitled_before

    def test_negative_pages_rejected(self):
        kernel, _ = booted()
        with pytest.raises(ValueError):
            kernel.remove_memory(-1)


# --- kernel-level disk failover ---------------------------------------------


class TestDiskFailover:
    def test_failover_retargets_files(self):
        kernel, (a, _b) = booted(ndisks=2)
        file = kernel.fs.create(1, "data", 256 * KB)
        target = kernel.fail_disk(1)
        assert target == 0
        assert kernel.fs.drive_of(file) is kernel.drives[0]
        done = []
        kernel.fs.read(1, a.spu_id, file, 0, 64 * KB, lambda: done.append(True))
        kernel.run()
        assert done == [True]
        assert kernel.drives[0].stats.count() > 0

    def test_orphans_complete_on_survivor(self):
        kernel, (a, _b) = booted(ndisks=2)
        done = []
        kernel.drives[1].submit(
            DiskRequest(a.spu_id, DiskOp.READ, 1000, 8, on_complete=done.append)
        )
        kernel.fail_disk(1)
        kernel.run()
        (request,) = done
        assert not request.failed
        assert kernel.drives[0].stats.count() == 1

    def test_swap_follows_failover(self):
        kernel, (a, _b) = booted(ndisks=2, memory_mb=8)
        kernel.set_swap_mount(a, 1)
        kernel.fail_disk(1)
        proc = kernel.spawn(
            iter([SetWorkingSet(pages=100), Compute(msecs(20))]), a
        )
        kernel.run()
        assert proc.finished is not None

    def test_no_survivor_raises(self):
        kernel, _ = booted(ndisks=1)
        with pytest.raises(KernelError):
            kernel.fail_disk(0)

    def test_fail_dead_disk_is_noop(self):
        kernel, _ = booted(ndisks=2)
        assert kernel.fail_disk(1) == 0
        assert kernel.fail_disk(1) == 0
        assert kernel.disks_failed == [1]

    def test_bad_disk_id_raises(self):
        kernel, _ = booted(ndisks=2)
        with pytest.raises(KernelError):
            kernel.fail_disk(5)


# --- the plan and injector ----------------------------------------------------


class TestFaultPlan:
    def test_events_sorted_by_time(self):
        plan = FaultPlan([CpuRemove(at_us=SEC), DiskFailure(at_us=MSEC, disk=0)])
        assert [e.at_us for e in plan] == [MSEC, SEC]
        plan.add(MemoryLoss(at_us=10, pages=5))
        assert plan.events[0].at_us == 10
        assert len(plan) == 3

    def test_validation(self):
        with pytest.raises(FaultPlanError):
            FaultPlan([CpuRemove(at_us=-1)])
        with pytest.raises(FaultPlanError):
            FaultPlan([DiskTransient(at_us=0, disk=0, duration_us=-5)])
        with pytest.raises(FaultPlanError):
            FaultPlan([DiskTransient(at_us=0, disk=0, duration_us=0)])
        with pytest.raises(FaultPlanError):
            FaultPlan([DiskTransient(at_us=0, disk=0, duration_us=5, error_rate=2.0)])
        with pytest.raises(FaultPlanError):
            FaultPlan([MemoryLoss(at_us=0, pages=0)])
        with pytest.raises(FaultPlanError):
            FaultPlan(["not-a-fault"])

    def test_nan_and_infinity_are_named_and_rejected(self):
        # NaN passes every <=/< comparison, so these need dedicated
        # finiteness checks or a hand-edited plan would poison the
        # engine's schedule long after loading.
        nan, inf = float("nan"), float("inf")
        with pytest.raises(FaultPlanError, match="finite"):
            FaultPlan([CpuRemove(at_us=nan)])
        with pytest.raises(FaultPlanError, match="finite"):
            FaultPlan([DiskTransient(at_us=0, disk=0, duration_us=nan)])
        with pytest.raises(FaultPlanError, match="finite"):
            FaultPlan([DiskTransient(at_us=0, disk=0, duration_us=inf)])
        with pytest.raises(FaultPlanError, match="finite"):
            FaultPlan([DiskTransient(at_us=0, disk=0, duration_us=5,
                                     error_rate=nan)])
        with pytest.raises(FaultPlanError, match="finite"):
            FaultPlan([MemoryLoss(at_us=0, pages=nan)])

    def test_negative_disk_index_is_rejected(self):
        with pytest.raises(FaultPlanError, match="disk index"):
            FaultPlan([DiskFailure(at_us=0, disk=-1)])
        with pytest.raises(FaultPlanError, match="disk index"):
            FaultPlan([DiskTransient(at_us=0, disk=-2, duration_us=5)])

    def test_a_disk_dies_at_most_once(self):
        with pytest.raises(FaultPlanError, match="dies twice"):
            FaultPlan([
                DiskFailure(at_us=10, disk=1),
                DiskFailure(at_us=99, disk=1),
            ])
        # The same overlap via add() is caught before mutating the plan.
        plan = FaultPlan([DiskFailure(at_us=10, disk=1)])
        with pytest.raises(FaultPlanError, match="dies twice"):
            plan.add(DiskFailure(at_us=20, disk=1))
        assert len(plan) == 1
        # Different disks may still each die once.
        plan.add(DiskFailure(at_us=20, disk=2))
        assert len(plan) == 2


class TestFaultPlanJson:
    def sample(self):
        return FaultPlan([
            DiskTransient(at_us=msecs(5), disk=1, duration_us=msecs(50),
                          error_rate=0.4),
            MemoryLoss(at_us=msecs(10), pages=64),
            CpuRemove(at_us=msecs(20), cpu=1),
            CpuAdd(at_us=msecs(40), cpu=1),
            DiskFailure(at_us=msecs(60), disk=1),
        ])

    def test_round_trips_through_json(self):
        plan = self.sample()
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.to_dicts() == plan.to_dicts()
        assert len(clone) == len(plan)
        # The validated clone is a real plan, not just equal dicts.
        assert all(type(a) is type(b) for a, b in zip(clone, plan))

    def test_round_trips_through_dicts(self):
        plan = self.sample()
        assert FaultPlan.from_dicts(plan.to_dicts()).to_dicts() == plan.to_dicts()

    def test_from_json_revalidates(self):
        # Parsing reuses the same validation as direct construction.
        with pytest.raises(FaultPlanError, match="error rate"):
            FaultPlan.from_json(
                '[{"kind": "disk_transient", "at_us": 0, "disk": 0,'
                ' "duration_us": 5, "error_rate": 7.0}]'
            )

    def test_from_json_rejects_malformed_input(self):
        with pytest.raises(FaultPlanError, match="not valid JSON"):
            FaultPlan.from_json("[{oops")
        with pytest.raises(FaultPlanError, match="must be an array"):
            FaultPlan.from_json('{"kind": "cpu_remove", "at_us": 0}')
        with pytest.raises(FaultPlanError, match="needs a 'kind'"):
            FaultPlan.from_json('[{"at_us": 0}]')
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultPlan.from_json('[{"kind": "meteor_strike", "at_us": 0}]')
        with pytest.raises(FaultPlanError, match="bad fields for"):
            FaultPlan.from_json('[{"kind": "memory_loss", "at_us": 0}]')


class TestFaultInjector:
    def test_arm_validates_against_machine(self):
        kernel, _ = booted(ncpus=2, ndisks=2)
        with pytest.raises(FaultPlanError):
            FaultInjector(kernel, FaultPlan([DiskFailure(at_us=0, disk=7)])).arm()
        with pytest.raises(FaultPlanError):
            FaultInjector(kernel, FaultPlan([CpuRemove(at_us=0, cpu=9)])).arm()

    def test_double_arm_rejected(self):
        kernel, _ = booted()
        injector = FaultInjector(kernel, FaultPlan([]))
        injector.arm()
        with pytest.raises(FaultPlanError):
            injector.arm()

    def test_plan_applies_in_order(self):
        kernel, (a, _b) = booted(ncpus=4, ndisks=2)
        plan = FaultPlan([
            DiskTransient(at_us=msecs(5), disk=0, duration_us=msecs(10)),
            CpuRemove(at_us=msecs(10)),
            DiskFailure(at_us=msecs(20), disk=1),
            MemoryLoss(at_us=msecs(30), pages=10),
            CpuAdd(at_us=msecs(40)),
        ])
        injector = FaultInjector(kernel, plan)
        injector.arm()
        kernel.spawn(iter([Compute(msecs(60))]), a)
        kernel.run()
        assert len(injector.applied) == 5
        assert [t for t, _ in injector.applied] == sorted(t for t, _ in injector.applied)
        assert kernel.cpus_removed == 1 and kernel.cpus_added == 1
        assert kernel.disks_failed == [1]
        assert kernel.memory.decommissioned == 10

    def test_faults_do_not_keep_run_alive(self):
        kernel, (a, _b) = booted(ncpus=4)
        FaultInjector(
            kernel, FaultPlan([CpuRemove(at_us=10 * SEC)])
        ).arm()
        kernel.spawn(iter([Compute(msecs(1))]), a)
        kernel.run()
        # The daemon fault at t=10s never fired; the run ended at job exit.
        assert kernel.engine.now < SEC
        assert kernel.cpus_removed == 0


# --- the invariant watchdog ---------------------------------------------------


class TestInvariantWatchdog:
    def test_zero_violations_through_a_faulty_run(self):
        kernel, (a, b) = booted(ncpus=4, ndisks=2, memory_mb=8)
        watchdog = InvariantWatchdog(kernel)
        watchdog.start()
        FaultInjector(kernel, FaultPlan([
            DiskTransient(at_us=msecs(5), disk=0, duration_us=msecs(20)),
            CpuRemove(at_us=msecs(10)),
            MemoryLoss(at_us=msecs(15), pages=50),
            DiskFailure(at_us=msecs(25), disk=1),
        ])).arm()
        file = kernel.fs.create(0, "f", 128 * KB)
        for spu in (a, b):
            kernel.spawn(
                iter([SetWorkingSet(pages=50), Compute(msecs(30)),
                      ReadFile(file, 0, 64 * KB), Compute(msecs(10))]),
                spu,
            )
        kernel.run()
        assert watchdog.checks_run > 0
        assert watchdog.violations == []

    def test_strict_mode_raises_on_corruption(self):
        kernel, _ = booted()
        watchdog = InvariantWatchdog(kernel, strict=True)
        kernel.memory.free_pages += 1  # simulate a leak
        with pytest.raises(InvariantViolation):
            watchdog.check()

    def test_non_strict_records(self):
        kernel, _ = booted()
        watchdog = InvariantWatchdog(kernel)
        kernel.memory.free_pages -= 1
        watchdog.check()
        assert any(v.name == "page-conservation" for v in watchdog.violations)

    def test_dead_drive_with_work_is_flagged(self):
        kernel, _ = booted(ndisks=2)
        kernel.fail_disk(1)
        kernel.drives[1].queue.append(DiskRequest(2, DiskOp.READ, 0, 8))
        watchdog = InvariantWatchdog(kernel)
        watchdog.check()
        assert any(v.name == "dead-drive-quiet" for v in watchdog.violations)

    def test_validation(self):
        kernel, _ = booted()
        with pytest.raises(ValueError):
            InvariantWatchdog(kernel, starvation_bound_us=0)


# --- determinism (same seed + same plan => byte-identical report) -------------


class TestFaultDeterminism:
    @staticmethod
    def _run(seed=7):
        kernel = Kernel(machine(piso_scheme(), ncpus=4, ndisks=2,
                                memory_mb=8, seed=seed))
        a = kernel.create_spu("a")
        b = kernel.create_spu("b")
        kernel.boot()
        watchdog = InvariantWatchdog(kernel)
        watchdog.start()
        FaultInjector(kernel, FaultPlan([
            DiskTransient(at_us=msecs(5), disk=0, duration_us=msecs(120),
                          error_rate=0.7),
            CpuRemove(at_us=msecs(12)),
            MemoryLoss(at_us=msecs(18), pages=64),
            DiskFailure(at_us=msecs(24), disk=1),
        ])).arm()
        file = kernel.fs.create(0, "f", 256 * KB)
        other = kernel.fs.create(1, "g", 256 * KB)
        # Working sets big enough to cause stealing and swap I/O: the
        # swap-sector and victim choices come from seeded RNG streams,
        # so different seeds are guaranteed to diverge.
        for spu, f in ((a, file), (b, other)):
            kernel.spawn(
                iter([SetWorkingSet(pages=1100), Compute(msecs(25)),
                      ReadFile(f, 0, 128 * KB), Compute(msecs(15))]),
                spu,
            )
        kernel.run()
        signature = (
            kernel.engine.now,
            tuple(
                (r.spu_id, r.sector, r.enqueue_time, r.finish_time, r.failed)
                for d in kernel.drives
                for r in d.stats.completed
            ),
            tuple(sorted(
                (p.pid, p.finished, p.cpu_time_us, p.fault_count)
                for p in kernel.processes.values()
            )),
        )
        return format_report(machine_report(kernel)), signature, watchdog.violations

    def test_identical_reports_across_runs(self):
        report1, sig1, violations1 = self._run()
        report2, sig2, violations2 = self._run()
        assert report1 == report2
        assert sig1 == sig2
        assert violations1 == violations2 == []

    def test_different_seed_differs(self):
        _report1, sig1, _ = self._run(seed=7)
        _report2, sig2, _ = self._run(seed=8)
        assert sig1 != sig2
