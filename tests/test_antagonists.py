"""The antagonist library: launch validation, shape, and containment."""

import random

import pytest

from repro.antagonists import ANTAGONIST_KINDS, launch
from repro.antagonists.library import AntagonistError
from repro.kernel.kernel import Kernel
from repro.kernel.locks import KernelLock
from repro.kernel.machine import MachineConfig
from repro.kernel.overload import OverloadPolicy
from repro.sim.units import MSEC, SEC


def make_kernel(**overrides):
    config = MachineConfig(
        ncpus=2, memory_mb=8, overload=OverloadPolicy(**overrides)
    )
    kernel = Kernel(config)
    spu = kernel.create_spu("attacker")
    kernel.boot()
    return kernel, spu


def rng():
    return random.Random("test/antagonists")


class TestLaunchValidation:
    def test_unknown_kind(self):
        kernel, spu = make_kernel()
        with pytest.raises(AntagonistError, match="unknown antagonist"):
            launch(kernel, spu, "tape_shredder", rng())

    def test_bad_scale(self):
        kernel, spu = make_kernel()
        with pytest.raises(AntagonistError, match="scale"):
            launch(kernel, spu, "fork_bomb", rng(), scale=0)

    def test_lock_hogger_needs_the_lock(self):
        kernel, spu = make_kernel()
        with pytest.raises(AntagonistError, match="shared_lock"):
            launch(kernel, spu, "lock_hogger", rng())


class TestLaunchShape:
    def test_every_kind_launches_into_the_spu(self):
        for kind in ANTAGONIST_KINDS:
            kernel, spu = make_kernel()
            lock = KernelLock("l", reader_writer=True, inheritance=True)
            procs = launch(kernel, spu, kind, rng(), shared_lock=lock)
            assert procs, kind
            for proc in procs:
                assert proc.spu_id == spu.spu_id
                assert proc.name.startswith(kind)

    def test_scale_multiplies_the_flood(self):
        kernel, spu = make_kernel()
        small = launch(kernel, spu, "disk_flooder", rng(), scale=0.5)
        big = launch(kernel, spu, "disk_flooder", rng(), scale=2.0)
        assert len(big) > len(small)


class TestContainment:
    def test_fork_bomb_is_capped_by_the_process_limit(self):
        kernel, spu = make_kernel(max_procs_per_spu=16, spawn_backoff_us=MSEC)
        launch(kernel, spu, "fork_bomb", rng())
        peak = [0]
        kernel.engine.every(10 * MSEC, lambda: peak.__setitem__(
            0, max(peak[0], len(spu.pids))))
        kernel.run(until=3 * SEC)
        # The two roots arrive via the administrative spawn path (which
        # the limit deliberately ignores); everything the bomb forks
        # itself is capped.
        assert peak[0] <= 16 + 2
        assert kernel.spawn_denials[spu.spu_id] > 0

    def test_disk_flooder_hits_admission_control(self):
        kernel, spu = make_kernel(
            max_inflight_io_per_spu=2, io_retry_us=MSEC
        )
        launch(kernel, spu, "disk_flooder", rng())
        kernel.run(until=2 * SEC)
        assert kernel.io_throttled[spu.spu_id] > 0
