"""Unit and property tests for the working-set fault model."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.mem import WorkingSetModel


def model(ws=100, touches=4.0, cluster=8, seed=0):
    return WorkingSetModel(
        ws, random.Random(seed), touches_per_ms=touches,
        fault_cluster_pages=cluster,
    )


class TestMissFraction:
    def test_fully_resident_never_misses(self):
        assert model().miss_fraction(100) == 0.0
        assert model().miss_fraction(150) == 0.0

    def test_nothing_resident_always_misses(self):
        assert model().miss_fraction(0) == 1.0

    def test_linear_in_deficit(self):
        assert model().miss_fraction(75) == pytest.approx(0.25)

    def test_zero_working_set_never_misses(self):
        assert model(ws=0).miss_fraction(0) == 0.0


class TestFaultTiming:
    def test_resident_process_never_faults(self):
        assert model().time_to_next_fault(100) is None

    def test_cold_process_faults_quickly(self):
        times = [model(seed=s).time_to_next_fault(0) for s in range(20)]
        # Rate = 4/ms at zero residency: mean inter-arrival 250us.
        assert all(t is not None and t >= 1 for t in times)
        assert sum(times) / len(times) < 2_000

    def test_nearly_resident_faults_rarely(self):
        nearly = model(seed=1).time_to_next_fault(99)
        cold = model(seed=1).time_to_next_fault(0)
        assert nearly > cold

    def test_deterministic_per_stream(self):
        assert model(seed=3).time_to_next_fault(50) == model(seed=3).time_to_next_fault(50)

    @given(resident=st.integers(0, 99), seed=st.integers(0, 50))
    def test_property_fault_times_positive(self, resident, seed):
        t = model(seed=seed).time_to_next_fault(resident)
        assert t is not None and t >= 1


class TestPagesPerFault:
    def test_clipped_to_deficit(self):
        assert model(cluster=8).pages_per_fault(95) == 5

    def test_full_cluster_when_far_below(self):
        assert model(cluster=8).pages_per_fault(0) == 8

    def test_zero_when_resident(self):
        assert model().pages_per_fault(100) == 0


class TestValidation:
    def test_negative_ws_rejected(self):
        with pytest.raises(ValueError):
            model(ws=-1)

    def test_zero_touch_rate_rejected(self):
        with pytest.raises(ValueError):
            model(touches=0)

    def test_zero_cluster_rejected(self):
        with pytest.raises(ValueError):
            model(cluster=0)
