"""Tests for the zoned (ZBR) disk geometry."""

import pytest
from hypothesis import given, strategies as st

from repro.core import SPURegistry, piso_scheme
from repro.disk import (
    DiskDrive,
    DiskOp,
    DiskRequest,
    ZonedGeometry,
    hp97560_zoned,
    make_scheduler,
    service_time,
)
from repro.disk.drive import SpuBandwidthLedger
from repro.sim import Engine


@pytest.fixture
def geom():
    return ZonedGeometry(zones=[(10, 100), (10, 80), (10, 60)],
                         tracks_per_cylinder=2)


class TestConstruction:
    def test_totals(self, geom):
        assert geom.cylinders == 30
        assert geom.total_sectors == 10 * 2 * 100 + 10 * 2 * 80 + 10 * 2 * 60

    def test_needs_zones(self):
        with pytest.raises(ValueError):
            ZonedGeometry(zones=[])

    def test_rejects_bad_zone(self):
        with pytest.raises(ValueError):
            ZonedGeometry(zones=[(0, 100)])
        with pytest.raises(ValueError):
            ZonedGeometry(zones=[(10, 0)])


class TestMapping:
    def test_zone_boundaries(self, geom):
        assert geom.zone_of_sector(0) == 0
        assert geom.zone_of_sector(1999) == 0
        assert geom.zone_of_sector(2000) == 1
        assert geom.zone_of_sector(3599) == 1
        assert geom.zone_of_sector(3600) == 2

    def test_cylinder_progression(self, geom):
        assert geom.cylinder_of(0) == 0
        assert geom.cylinder_of(199) == 0  # 2 tracks x 100 sectors
        assert geom.cylinder_of(200) == 1
        assert geom.cylinder_of(2000) == 10  # first cylinder of zone 1

    def test_offset_wraps_per_zone(self, geom):
        assert geom.offset_of(0) == 0
        assert geom.offset_of(100) == 0  # next track, zone 0
        assert geom.offset_of(2000) == 0  # first sector of zone 1
        assert geom.offset_of(2081) == 1  # second track of zone 1, +1

    def test_out_of_range(self, geom):
        with pytest.raises(ValueError):
            geom.zone_of_sector(geom.total_sectors)

    @given(sector=st.integers(0, 10 * 2 * 100 + 10 * 2 * 80 + 10 * 2 * 60 - 1))
    def test_property_offset_below_zone_spt(self, sector):
        geom = ZonedGeometry(zones=[(10, 100), (10, 80), (10, 60)],
                             tracks_per_cylinder=2)
        assert 0 <= geom.offset_of(sector) < geom.sectors_per_track_at(sector)

    @given(sector=st.integers(0, 10 * 2 * 100 + 10 * 2 * 80 + 10 * 2 * 60 - 1))
    def test_property_cylinder_monotone(self, sector):
        geom = ZonedGeometry(zones=[(10, 100), (10, 80), (10, 60)],
                             tracks_per_cylinder=2)
        if sector + 1 < geom.total_sectors:
            assert geom.cylinder_of(sector + 1) >= geom.cylinder_of(sector)


class TestTiming:
    def test_outer_zone_transfers_faster(self, geom):
        inner_start = geom.total_sectors - 60
        outer = geom.transfer_us(0, 50)
        inner = geom.transfer_us(inner_start, 50)
        assert outer < inner
        # Density ratio 100:60 -> inner takes ~1.67x longer.
        assert inner / outer == pytest.approx(100 / 60, rel=0.02)

    def test_cross_zone_transfer_pays_blended_rate(self, geom):
        # 20 sectors straddling the zone 0/1 boundary.
        at_boundary = geom.transfer_us(1990, 20)
        pure_outer = geom.transfer_us(0, 20)
        pure_mid = geom.transfer_us(2000, 20)
        assert pure_outer < at_boundary < pure_mid

    def test_sequential_chain_stays_aligned(self, geom):
        t = 0
        first = service_time(geom, 0, t, 0, 50)
        t += first.total_us
        nxt = service_time(geom, geom.cylinder_of(49), t, 50, 10)
        assert nxt.rotation_us < geom.sector_time_us_at(50)

    def test_seek_matches_flat_formula(self, geom):
        assert geom.seek_us(0, 0) == 0
        assert geom.seek_us(0, 100) == round((3.24 + 0.4 * 10) * 1000)

    def test_rotation_delay_us_is_disabled(self, geom):
        with pytest.raises(NotImplementedError):
            geom.rotation_delay_us(0, 5)


class TestDriveIntegration:
    def test_drive_runs_on_zoned_disk(self):
        engine = Engine(seed=1)
        registry = SPURegistry()
        registry.create("a").disk_bw().set_entitled(1)
        geom = hp97560_zoned(seek_scale=0.5)
        drive = DiskDrive(engine, geom, make_scheduler("piso"),
                          SpuBandwidthLedger(0, registry))
        for i in range(10):
            drive.submit(DiskRequest(2, DiskOp.READ, i * 5000, 64))
        engine.run()
        assert drive.stats.count() == 10

    def test_hot_data_placement_matters(self):
        """The classic ZBR result: outer-zone files stream faster."""
        def stream_time(at_fraction):
            engine = Engine(seed=1)
            registry = SPURegistry()
            registry.create("a").disk_bw().set_entitled(1)
            geom = hp97560_zoned()
            drive = DiskDrive(engine, geom, make_scheduler("pos"),
                              SpuBandwidthLedger(0, registry))
            base = int(geom.total_sectors * at_fraction)
            done = {}

            def chain(i):
                if i >= 40:
                    done["t"] = engine.now
                    return
                drive.submit(DiskRequest(2, DiskOp.READ, base + i * 128, 128,
                                         on_complete=lambda r: chain(i + 1)))

            chain(0)
            engine.run()
            return done["t"]

        assert stream_time(0.0) < stream_time(0.9)
