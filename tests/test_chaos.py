"""The chaos harness: plans, soaks, repro files, and shrinking."""

import pytest

from repro.chaos import (
    AntagonistBurst,
    ChaosPlan,
    ChaosPlanError,
    generate_plan,
    load_repro,
    replay,
    run_chaos,
    run_soak,
    shrink_plan,
    write_repro,
)
from repro.chaos.plan import CHAOS_NCPUS, MIN_CPUS_ONLINE
from repro.chaos.shrink import repro_record
from repro.faults.plan import CpuAdd, CpuRemove, DiskFailure, FaultPlan
from repro.sim.units import MSEC, SEC


def sabotage_page_leak(kernel):
    """A deliberate kernel bug: pages appear out of thin air, breaking
    page conservation on every watchdog check."""
    kernel.memory.total_pages += 50


class TestChaosPlan:
    def test_validates_bursts(self):
        with pytest.raises(ChaosPlanError, match="unknown antagonist"):
            ChaosPlan(seed=0, horizon_us=SEC,
                      bursts=[AntagonistBurst(0, "nuke")])
        with pytest.raises(ChaosPlanError, match="scale"):
            ChaosPlan(seed=0, horizon_us=SEC,
                      bursts=[AntagonistBurst(0, "fork_bomb", scale=-1)])
        with pytest.raises(ChaosPlanError, match="before boot"):
            ChaosPlan(seed=0, horizon_us=SEC,
                      bursts=[AntagonistBurst(-5, "fork_bomb")])
        with pytest.raises(ChaosPlanError, match="horizon"):
            ChaosPlan(seed=0, horizon_us=0)

    def test_rejects_non_finite_numbers(self):
        # NaN slips past ordinary range checks (every comparison is
        # False), so bursts and the horizon check finiteness explicitly.
        nan = float("nan")
        with pytest.raises(ChaosPlanError, match="finite"):
            ChaosPlan(seed=0, horizon_us=SEC,
                      bursts=[AntagonistBurst(nan, "fork_bomb")])
        with pytest.raises(ChaosPlanError, match="finite"):
            ChaosPlan(seed=0, horizon_us=SEC,
                      bursts=[AntagonistBurst(0, "fork_bomb", scale=nan)])
        with pytest.raises(ChaosPlanError, match="finite"):
            ChaosPlan(seed=0, horizon_us=float("inf"))

    def test_json_round_trip(self):
        plan = generate_plan(seed=7)
        clone = ChaosPlan.from_json(plan.to_json())
        assert clone.to_dict() == plan.to_dict()
        assert len(clone) == len(plan)

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ChaosPlanError, match="not valid JSON"):
            ChaosPlan.from_json("{nope")
        with pytest.raises(ChaosPlanError, match="missing fields"):
            ChaosPlan.from_json('{"seed": 0}')
        with pytest.raises(ChaosPlanError, match="bad burst fields"):
            ChaosPlan.from_json(
                '{"seed": 0, "horizon_us": 1000, "faults": [],'
                ' "bursts": [{"when": 3}]}'
            )
        with pytest.raises(ChaosPlanError, match="bad fault plan"):
            ChaosPlan.from_json(
                '{"seed": 0, "horizon_us": 1000, "bursts": [],'
                ' "faults": [{"kind": "meteor_strike", "at_us": 1}]}'
            )

    def test_generation_is_deterministic_and_legal(self):
        for seed in range(30):
            plan = generate_plan(seed)
            again = generate_plan(seed)
            assert plan.to_dict() == again.to_dict()
            assert plan.bursts, "every plan carries at least one antagonist"
            online = CHAOS_NCPUS
            for event in plan.faults:
                if isinstance(event, DiskFailure):
                    assert event.disk != 0, "disk 0 is the failover target"
                elif isinstance(event, CpuRemove):
                    online -= 1
                elif isinstance(event, CpuAdd):
                    assert online < CHAOS_NCPUS, "CpuAdd with nothing offline"
                    online += 1
                assert online >= MIN_CPUS_ONLINE


class TestSoak:
    def test_clean_run_has_progress_and_no_violations(self):
        plan = generate_plan(seed=1, horizon_us=1500 * MSEC)
        result = run_chaos(plan)
        assert result.ok
        assert result.checkpoints > 0
        assert result.journal[0].startswith("plan |")
        assert result.journal[-1].startswith("end |")
        assert any("launch |" in line for line in result.journal)

    def test_short_soak_over_seeds_is_clean(self):
        for result in run_soak([0, 1, 2], horizon_us=1500 * MSEC):
            assert result.ok, result.violations


class TestReproAndShrink:
    def make_failing(self):
        plan = generate_plan(seed=2, horizon_us=1200 * MSEC)
        result = run_chaos(plan, sabotage=sabotage_page_leak)
        assert not result.ok
        assert result.violations[0].name == "page-conservation"
        return plan, result

    def test_repro_record_requires_a_violation(self):
        plan = generate_plan(seed=1, horizon_us=1200 * MSEC)
        with pytest.raises(ValueError, match="no violation"):
            repro_record(run_chaos(plan))

    def test_repro_file_replays_to_the_same_violation(self, tmp_path):
        plan, result = self.make_failing()
        path = str(tmp_path / "repro.json")
        write_repro(path, result)
        loaded_plan, recorded = load_repro(path)
        assert loaded_plan.to_dict() == plan.to_dict()
        replayed = replay(path, sabotage=sabotage_page_leak)
        assert not replayed.ok
        assert replayed.violations[0] == recorded
        assert replayed.journal == result.journal

    def test_load_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ChaosPlanError, match="not a chaos repro"):
            load_repro(str(path))

    def test_shrink_reaches_a_minimal_plan(self):
        plan, result = self.make_failing()
        assert len(plan) > 0
        shrunk = shrink_plan(
            plan, result.violations[0].name, sabotage=sabotage_page_leak
        )
        # The sabotage fires regardless of the schedule, so the minimal
        # reproduction is (well under) three events.
        assert len(shrunk.plan) <= 3
        assert shrunk.runs >= 1
        final = run_chaos(shrunk.plan, sabotage=sabotage_page_leak)
        assert any(v.name == "page-conservation" for v in final.violations)

    def test_shrink_refuses_a_passing_plan(self):
        plan = generate_plan(seed=1, horizon_us=1200 * MSEC)
        with pytest.raises(ValueError, match="cannot shrink"):
            shrink_plan(plan, "page-conservation")

    def test_already_minimal_plan_survives_shrinking(self):
        # A plan whose only event is essential: ddmin probes the empty
        # set, sees the violation vanish, and keeps the single event.
        def leak_on_fork(kernel):
            original = kernel.spawn

            def spawn(*args, **kwargs):
                if str(kwargs.get("name", "")).startswith("fork_bomb"):
                    kernel.memory.total_pages += 1
                return original(*args, **kwargs)

            kernel.spawn = spawn

        base = generate_plan(seed=2, horizon_us=1200 * MSEC)
        plan = base.replace_events(
            [AntagonistBurst(at_us=100 * MSEC, kind="fork_bomb")], []
        )
        result = run_chaos(plan, sabotage=leak_on_fork)
        assert not result.ok
        shrunk = shrink_plan(
            plan, result.violations[0].name, sabotage=leak_on_fork
        )
        assert len(shrunk.plan) == 1
        assert shrunk.plan.bursts[0].kind == "fork_bomb"

    def test_failure_that_stops_reproducing_keeps_the_full_plan(self):
        # A heisenbug: the sabotage fires on the first run (the
        # shrinker's own initial check) and never again.  Every ddmin
        # probe then passes, so the shrink terminates with the full
        # plan rather than looping or returning a passing subset.
        state = {"armed": True}

        def fickle(kernel):
            if state["armed"]:
                state["armed"] = False
                kernel.memory.total_pages += 50

        plan, _ = self.make_failing()
        shrunk = shrink_plan(
            plan, "page-conservation", sabotage=fickle, max_runs=16
        )
        assert not state["armed"], "sabotage never fired"
        assert len(shrunk.plan) == len(plan)
        assert shrunk.runs <= 16


class TestCli:
    def test_clean_seeds_exit_zero(self, capsys):
        from repro.chaos.__main__ import main
        assert main(["--seeds", "1", "--horizon-ms", "1200"]) == 0
        out = capsys.readouterr().out
        assert "seed 1: ok" in out
