"""Serial and parallel sweeps must produce byte-identical results.

This is the determinism contract the executor advertises: every
experiment is a pure function of (name, seed), so fanning the sweep
across worker processes may change nothing but wall-clock time.
"""

import pytest

from repro.api import ExperimentSpec, run_experiment
from repro.parallel import Executor, SweepPlan, values

#: Three cheap experiments x two seeds — enough to cross process
#: boundaries on every experiment kind without a long test.
SECTIONS = ("fig5", "table4", "network")
SEEDS = (0, 1)


@pytest.fixture(scope="module")
def payloads():
    return [
        ExperimentSpec(name=name, seed=seed)
        for name in SECTIONS for seed in SEEDS
    ]


@pytest.fixture(scope="module")
def serial_canonical(payloads):
    return [run_experiment(p).canonical_json() for p in payloads]


def test_parallel_sweep_matches_serial_byte_for_byte(payloads, serial_canonical):
    results = values(Executor(SweepPlan(max_workers=2)).run(run_experiment, payloads))
    assert [r.canonical_json() for r in results] == serial_canonical


def test_in_process_sweep_matches_serial_byte_for_byte(payloads, serial_canonical):
    results = values(Executor(SweepPlan(max_workers=1)).run(run_experiment, payloads))
    assert [r.canonical_json() for r in results] == serial_canonical


def test_parallel_results_carry_correct_specs(payloads):
    results = values(Executor(SweepPlan(max_workers=2)).run(run_experiment, payloads))
    assert [(r.name, r.seed) for r in results] == \
           [(p.name, p.seed) for p in payloads]
