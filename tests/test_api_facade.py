"""The SimulationSpec/build facade against hand-wired kernels."""

import pytest

from repro.api import SimulationSpec, SpuSpec, build
from repro.core.schemes import piso_scheme, smp_scheme
from repro.kernel.kernel import Kernel
from repro.kernel.machine import DiskSpec, MachineConfig
from repro.disk.model import fast_disk
from repro.kernel.syscalls import Compute
from repro.metrics.stats import job_results
from repro.sim.units import msecs


def _burst():
    yield Compute(msecs(50))


def test_build_boots_and_names_spus():
    sim = build(SimulationSpec(
        ncpus=2, memory_mb=32, scheme=smp_scheme(), spus=["a", "b"],
    ))
    assert [s.name for s in sim.spus] == ["a", "b"]
    assert sim.spu("a") is sim.spus[0]
    assert sim.kernel.engine is sim.engine
    assert sim.fs is sim.kernel.fs


def test_disks_as_int_makes_that_many_drives():
    sim = build(SimulationSpec(
        ncpus=1, memory_mb=16, scheme=smp_scheme(), spus=["u"], disks=3,
    ))
    assert len(sim.drives) == 3


def test_spawn_accepts_spu_name_and_index():
    sim = build(SimulationSpec(
        ncpus=2, memory_mb=32, scheme=smp_scheme(), spus=["a", "b"],
    ))
    by_obj = sim.spawn(_burst(), sim.spus[0], name="j0")
    by_name = sim.spawn(_burst(), "b", name="j1")
    by_index = sim.spawn(_burst(), 0, name="j2")
    assert by_obj.spu_id == by_index.spu_id == sim.spus[0].spu_id
    assert by_name.spu_id == sim.spus[1].spu_id
    sim.run()
    assert all(r.response_us > 0 for r in sim.results())


def test_unknown_spu_name_raises():
    sim = build(SimulationSpec(
        ncpus=1, memory_mb=16, scheme=smp_scheme(), spus=["only"],
    ))
    with pytest.raises(KeyError):
        sim.spu("missing")


def test_facade_matches_hand_wired_kernel():
    """build(spec) must reproduce the manual wiring byte-for-byte."""
    spec = SimulationSpec(
        ncpus=2, memory_mb=24, scheme=piso_scheme(),
        spus=[SpuSpec("u1", swap_mount=0), SpuSpec("u2", swap_mount=1)],
        disks=2, seed=7,
    )
    sim = build(spec)
    sim.spawn(_burst(), "u1", name="job-u1")
    sim.spawn(_burst(), "u2", name="job-u2")
    sim.run()
    facade_results = sim.results()

    kernel = Kernel(MachineConfig(
        ncpus=2, memory_mb=24,
        disks=[DiskSpec(geometry=fast_disk()), DiskSpec(geometry=fast_disk())],
        scheme=piso_scheme(), seed=7,
    ))
    u1 = kernel.create_spu("u1")
    u2 = kernel.create_spu("u2")
    kernel.boot()
    kernel.set_swap_mount(u1, 0)
    kernel.set_swap_mount(u2, 1)
    kernel.spawn(_burst(), u1, name="job-u1")
    kernel.spawn(_burst(), u2, name="job-u2")
    kernel.run()
    manual_results = job_results(kernel)

    assert [(r.name, r.response_us, r.cpu_time_us) for r in facade_results] == \
           [(r.name, r.response_us, r.cpu_time_us) for r in manual_results]
