"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Engine, SimulationError


class TestScheduling:
    def test_starts_at_time_zero(self):
        assert Engine().now == 0

    def test_at_runs_at_absolute_time(self):
        eng = Engine()
        seen = []
        eng.at(50, lambda: seen.append(eng.now))
        eng.run()
        assert seen == [50]

    def test_after_runs_relative_to_now(self):
        eng = Engine()
        seen = []
        eng.after(10, lambda: eng.after(5, lambda: seen.append(eng.now)))
        eng.run()
        assert seen == [15]

    def test_args_are_passed(self):
        eng = Engine()
        seen = []
        eng.after(1, seen.append, "payload")
        eng.run()
        assert seen == ["payload"]

    def test_events_fire_in_time_order(self):
        eng = Engine()
        seen = []
        eng.at(30, seen.append, "c")
        eng.at(10, seen.append, "a")
        eng.at(20, seen.append, "b")
        eng.run()
        assert seen == ["a", "b", "c"]

    def test_same_time_events_fire_in_schedule_order(self):
        eng = Engine()
        seen = []
        for label in "abcde":
            eng.at(7, seen.append, label)
        eng.run()
        assert seen == list("abcde")

    def test_scheduling_in_the_past_raises(self):
        eng = Engine()
        eng.after(10, lambda: None)
        eng.run()
        with pytest.raises(SimulationError):
            eng.at(5, lambda: None)

    def test_negative_delay_raises(self):
        with pytest.raises(SimulationError):
            Engine().after(-1, lambda: None)

    def test_zero_delay_runs_at_current_time(self):
        eng = Engine()
        seen = []
        eng.after(10, lambda: eng.after(0, lambda: seen.append(eng.now)))
        eng.run()
        assert seen == [10]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        eng = Engine()
        seen = []
        handle = eng.after(10, seen.append, "x")
        handle.cancel()
        eng.run()
        assert seen == []

    def test_cancel_is_idempotent(self):
        eng = Engine()
        handle = eng.after(10, lambda: None)
        handle.cancel()
        handle.cancel()
        assert eng.run() == 0

    def test_cancel_releases_live_count(self):
        eng = Engine()
        handle = eng.after(10, lambda: None)
        assert eng.live_events() == 1
        handle.cancel()
        assert eng.live_events() == 0

    def test_cancelling_one_of_two_leaves_other(self):
        eng = Engine()
        seen = []
        eng.after(10, seen.append, "keep")
        handle = eng.after(5, seen.append, "drop")
        handle.cancel()
        eng.run()
        assert seen == ["keep"]

    def test_cancel_after_fire_is_a_noop(self):
        # Regression: cancelling a fired handle used to decrement the
        # live-event count a second time, so a later non-daemon event
        # made run() return while work was still queued.
        eng = Engine()
        handle = eng.after(1, lambda: None)
        eng.run()
        handle.cancel()
        assert eng.live_events() == 0
        seen = []
        eng.after(5, seen.append, "late")
        assert eng.live_events() == 1
        eng.run()
        assert seen == ["late"]

    def test_cancel_after_fire_from_within_callback(self):
        # A slice-handle-style pattern: the callback body cancels its
        # own handle (already marked fired by the engine).
        eng = Engine()
        handles = []
        handles.append(eng.after(1, lambda: handles[0].cancel()))
        eng.run()
        assert eng.live_events() == 0
        eng.after(1, lambda: None)
        assert eng.live_events() == 1


class TestRun:
    def test_run_returns_event_count(self):
        eng = Engine()
        for i in range(5):
            eng.after(i + 1, lambda: None)
        assert eng.run() == 5

    def test_run_until_stops_the_clock_at_deadline(self):
        eng = Engine()
        eng.after(100, lambda: None)
        eng.run(until=40)
        assert eng.now == 40

    def test_run_until_executes_events_at_deadline(self):
        eng = Engine()
        seen = []
        eng.at(40, seen.append, "edge")
        eng.run(until=40)
        assert seen == ["edge"]

    def test_run_until_leaves_later_events_pending(self):
        eng = Engine()
        seen = []
        eng.at(41, seen.append, "later")
        eng.run(until=40)
        assert seen == []
        eng.run()
        assert seen == ["later"]

    def test_max_events_bound(self):
        eng = Engine()
        for i in range(10):
            eng.after(i + 1, lambda: None)
        assert eng.run(max_events=3) == 3

    def test_engine_is_not_reentrant(self):
        eng = Engine()
        failures = []

        def recurse():
            try:
                eng.run()
            except SimulationError:
                failures.append(True)

        eng.after(1, recurse)
        eng.run()
        assert failures == [True]

    def test_step_runs_one_event(self):
        eng = Engine()
        seen = []
        eng.after(1, seen.append, "a")
        eng.after(2, seen.append, "b")
        assert eng.step() is True
        assert seen == ["a"]

    def test_step_on_empty_queue_returns_false(self):
        assert Engine().step() is False

    def test_pending_counts_uncancelled(self):
        eng = Engine()
        eng.after(1, lambda: None)
        handle = eng.after(2, lambda: None)
        handle.cancel()
        assert eng.pending() == 1


class TestDaemonEvents:
    def test_daemon_event_does_not_keep_run_alive(self):
        eng = Engine()
        eng.after(10, lambda: None, daemon=True)
        assert eng.run() == 0

    def test_daemon_events_run_before_live_work_drains(self):
        eng = Engine()
        seen = []
        eng.after(5, seen.append, "daemon", daemon=True)
        eng.after(10, seen.append, "real")
        eng.run()
        assert seen == ["daemon", "real"]

    def test_periodic_timer_is_daemon_by_default(self):
        eng = Engine()
        ticks = []
        eng.every(10, lambda: ticks.append(eng.now))
        eng.after(35, lambda: None)
        eng.run()
        assert ticks == [10, 20, 30]

    def test_run_until_advances_daemons(self):
        eng = Engine()
        ticks = []
        eng.every(10, lambda: ticks.append(eng.now))
        eng.run(until=55)
        assert ticks == [10, 20, 30, 40, 50]
        assert eng.now == 55

    def test_periodic_timer_stop(self):
        eng = Engine()
        ticks = []
        timer = eng.every(10, lambda: ticks.append(eng.now))
        eng.at(25, timer.stop)
        eng.run(until=100)
        assert ticks == [10, 20]

    def test_periodic_timer_stop_is_idempotent(self):
        eng = Engine()
        timer = eng.every(10, lambda: None)
        timer.stop()
        timer.stop()

    def test_periodic_timer_custom_start(self):
        eng = Engine()
        ticks = []
        eng.every(10, lambda: ticks.append(eng.now), start=3)
        eng.run(until=25)
        assert ticks == [3, 13, 23]

    def test_non_positive_period_raises(self):
        with pytest.raises(SimulationError):
            Engine().every(0, lambda: None)

    def test_timer_stopping_itself_mid_fire(self):
        eng = Engine()
        ticks = []
        holder = {}

        def fire():
            ticks.append(eng.now)
            if len(ticks) == 2:
                holder["t"].stop()

        holder["t"] = eng.every(10, fire)
        eng.run(until=100)
        assert ticks == [10, 20]


class TestDeterminism:
    def test_rng_depends_on_seed(self):
        a = Engine(seed=1).rng.random()
        b = Engine(seed=2).rng.random()
        assert a != b

    def test_same_seed_same_stream(self):
        assert Engine(seed=7).rng.random() == Engine(seed=7).rng.random()

    def test_forked_streams_are_independent_of_order(self):
        eng1 = Engine(seed=3)
        first_a = eng1.fork_rng("a").random()
        eng2 = Engine(seed=3)
        eng2.fork_rng("b").random()  # extra consumer must not perturb "a"
        assert eng2.fork_rng("a").random() == first_a

    def test_seed_property(self):
        assert Engine(seed=42).seed == 42
