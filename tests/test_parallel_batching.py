"""Batched dispatch and shared-memory transport contracts.

The executor redesign (SweepPlan/Executor) must keep every behaviour
run_sweep promised — deterministic merge order, crash containment,
retry accounting — while adding batch dispatch and the shm result
path.  These tests pin the new surface.
"""

import os

import pytest

from repro.parallel import Executor, RunOutcome, SweepPlan, SweepStats, values
from repro.parallel.executor import _auto_batch, _shm_available


def _square(x):
    return x * x


def _big_result(x):
    # Far larger than the shm segment (8 MiB): must spill inline.
    return bytes(9 << 20)


def _crash_on_five(x):
    if x == 5:
        os._exit(17)
    return x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("three is right out")
    return x


# --- SweepPlan validation ---------------------------------------------------


def test_plan_defaults():
    plan = SweepPlan()
    assert plan.retries == 1
    assert plan.batch_size is None
    assert plan.transport == "shm"


@pytest.mark.parametrize("kwargs", [
    {"retries": -1},
    {"batch_size": 0},
    {"transport": "carrier-pigeon"},
    {"tasks_per_worker": 0},
])
def test_plan_rejects_bad_config(kwargs):
    with pytest.raises(ValueError):
        SweepPlan(**kwargs)


def test_auto_batch_scales_with_sweep_size():
    assert _auto_batch(6, 4) == 1       # registry-sized sweep: no batching
    assert _auto_batch(200, 4) == 6     # fuzz-campaign sized: amortise
    assert _auto_batch(10_000, 4) == 16  # capped


# --- batched dispatch -------------------------------------------------------


@pytest.mark.parametrize("transport", ["shm", "pipe"])
@pytest.mark.parametrize("batch_size", [1, 3, 16])
def test_batched_results_in_submission_order(transport, batch_size):
    plan = SweepPlan(max_workers=2, batch_size=batch_size,
                     transport=transport)
    executor = Executor(plan)
    outcomes = executor.run(_square, list(range(23)))
    assert [o.index for o in outcomes] == list(range(23))
    assert values(outcomes) == [i * i for i in range(23)]
    assert executor.stats.cells == 23
    assert executor.stats.batch_size == batch_size


def test_shm_and_pipe_transports_agree():
    results = {}
    for transport in ("shm", "pipe"):
        executor = Executor(SweepPlan(max_workers=2, transport=transport))
        results[transport] = values(executor.run(_square, list(range(10))))
    assert results["shm"] == results["pipe"]


@pytest.mark.skipif(not _shm_available(), reason="needs fork + shm")
def test_oversized_result_spills_inline():
    executor = Executor(SweepPlan(max_workers=2, batch_size=2))
    outcomes = executor.run(_big_result, list(range(3)))
    assert all(o.ok and len(o.value) == 9 << 20 for o in outcomes)
    assert executor.stats.shm_spills == 3
    assert executor.stats.transport == "shm"


def test_shm_segments_released():
    if not os.path.isdir("/dev/shm"):
        pytest.skip("no /dev/shm on this platform")
    before = set(os.listdir("/dev/shm"))
    executor = Executor(SweepPlan(max_workers=2))
    executor.run(_square, list(range(8)))
    leaked = set(os.listdir("/dev/shm")) - before
    assert not leaked, f"leaked shared-memory segments: {leaked}"


# --- crash containment within a batch ---------------------------------------


def test_crash_charges_only_the_inflight_cell():
    """A worker death mid-batch charges the running cell; cells queued
    behind it in the same batch keep their full retry budget."""
    plan = SweepPlan(max_workers=2, batch_size=4, retries=0)
    outcomes = Executor(plan).run(_crash_on_five, list(range(12)))
    by = {o.index: o for o in outcomes}
    assert by[5].status == "crashed"
    assert "died" in by[5].error
    innocents = [o for o in outcomes if o.index != 5]
    assert all(o.ok for o in innocents)
    assert all(o.retries == 0 for o in innocents)


def test_crash_retry_within_batches():
    plan = SweepPlan(max_workers=2, batch_size=4, retries=1)
    outcomes = Executor(plan).run(_crash_on_five, list(range(12)))
    by = {o.index: o for o in outcomes}
    # Cell 5 crashes deterministically: it consumed its one retry and
    # still failed; everything else is untouched.
    assert by[5].status == "crashed"
    assert by[5].retries == 1
    assert all(o.ok and o.retries == 0 for o in outcomes if o.index != 5)


def test_deterministic_error_not_retried_in_batch():
    plan = SweepPlan(max_workers=2, batch_size=3, retries=2)
    outcomes = Executor(plan).run(_fail_on_three, list(range(9)))
    by = {o.index: o for o in outcomes}
    assert by[3].status == "error"
    assert by[3].retries == 0
    assert "three is right out" in by[3].error


# --- stats ------------------------------------------------------------------


def test_stats_stage_breakdown_populated():
    executor = Executor(SweepPlan(max_workers=2, batch_size=2))
    executor.run(_square, list(range(12)))
    stats = executor.stats
    assert isinstance(stats, SweepStats)
    assert stats.workers == 2
    assert stats.wall_s > 0
    assert stats.compute_s > 0
    assert stats.dispatch_s >= 0 and stats.merge_s >= 0
    payload = stats.to_dict()
    for key in ("dispatch_s", "compute_s", "merge_s", "transport",
                "batch_size", "shm_spills", "retried_cells"):
        assert key in payload


def test_serial_path_stats():
    executor = Executor(SweepPlan(max_workers=1))
    outcomes = executor.run(_square, list(range(4)))
    assert values(outcomes) == [0, 1, 4, 9]
    assert all(o.worker == -1 for o in outcomes)
    assert executor.stats.workers == 1
    assert executor.stats.transport == "serial"


# --- recycling composes with batching ---------------------------------------


def test_batches_never_straddle_recycling_budget():
    plan = SweepPlan(max_workers=2, batch_size=8, tasks_per_worker=2)
    executor = Executor(plan)
    outcomes = executor.run(_square, list(range(10)))
    assert values(outcomes) == [i * i for i in range(10)]
    # Budget caps the effective batch: a worker retiring after 2 cells
    # can never be handed 8.
    assert executor.stats.batch_size == 2
    # 10 cells / 2 per worker = 5 worker lifetimes; ordinals prove
    # replacement actually happened.
    assert len({o.worker for o in outcomes}) >= 5


def test_run_sweep_shim_matches_executor():
    from repro.parallel import run_sweep

    via_shim = run_sweep(_square, list(range(6)), max_workers=2)
    via_plan = Executor(SweepPlan(max_workers=2)).run(_square, list(range(6)))
    assert values(via_shim) == values(via_plan)
    assert all(isinstance(o, RunOutcome) for o in via_shim)
