"""Tests for machine run summaries."""

import pytest

from repro.core import piso_scheme
from repro.disk.model import fast_disk
from repro.kernel import Compute, DiskSpec, Kernel, MachineConfig, ReadFile
from repro.metrics import format_report, machine_report, to_json
from repro.sim.units import KB, msecs


@pytest.fixture
def finished_kernel():
    kernel = Kernel(
        MachineConfig(ncpus=2, memory_mb=16,
                      disks=[DiskSpec(geometry=fast_disk())],
                      scheme=piso_scheme())
    )
    a = kernel.create_spu("alpha")
    b = kernel.create_spu("beta")
    kernel.boot()
    data = kernel.fs.create(0, "data", 64 * KB)

    def worker():
        yield ReadFile(data, 0, 64 * KB)
        yield Compute(msecs(100))

    kernel.spawn(worker(), a)
    kernel.spawn(iter([Compute(msecs(50))]), b)
    kernel.run()
    return kernel, a, b


class TestMachineReport:
    def test_headline_numbers(self, finished_kernel):
        kernel, _a, _b = finished_kernel
        report = machine_report(kernel)
        assert report.simulated_seconds > 0.1
        assert 0.0 < report.cpu_utilization <= 1.0
        assert report.context_switches > 0
        assert report.free_pages == kernel.memory.free_pages

    def test_per_spu_rows(self, finished_kernel):
        kernel, a, b = finished_kernel
        report = machine_report(kernel)
        by_name = {s.name: s for s in report.spus}
        assert by_name["alpha"].cpu_seconds == pytest.approx(0.1, rel=0.01)
        assert by_name["beta"].cpu_seconds == pytest.approx(0.05, rel=0.01)
        assert by_name["alpha"].disk_requests > 0
        assert by_name["beta"].disk_requests == 0
        assert by_name["alpha"].processes == 1

    def test_per_disk_rows(self, finished_kernel):
        kernel, _a, _b = finished_kernel
        report = machine_report(kernel)
        (disk,) = report.disks
        assert disk.requests > 0
        assert disk.sectors >= 128
        assert 0.0 <= disk.utilization <= 1.0

    def test_report_before_boot(self):
        kernel = Kernel(
            MachineConfig(ncpus=2, memory_mb=16,
                          disks=[DiskSpec(geometry=fast_disk())],
                          scheme=piso_scheme())
        )
        report = machine_report(kernel)
        assert report.simulated_seconds == 0.0
        assert report.loans_granted == 0

    def test_format_report_renders(self, finished_kernel):
        kernel, _a, _b = finished_kernel
        text = format_report(machine_report(kernel))
        assert "alpha" in text
        assert "cpu" in text
        assert "wait ms" in text

    def test_report_exports_to_json(self, finished_kernel):
        kernel, _a, _b = finished_kernel
        text = to_json(machine_report(kernel))
        assert '"cpu_utilization"' in text
