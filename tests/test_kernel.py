"""End-to-end tests of the kernel: processes, syscalls, paging."""

import pytest

from repro.core import piso_scheme, quota_scheme, smp_scheme
from repro.kernel import (
    Acquire,
    Barrier,
    BarrierWait,
    Compute,
    DiskSpec,
    Kernel,
    KernelError,
    KernelLock,
    MachineConfig,
    ProcessState,
    ReadFile,
    Release,
    SetWorkingSet,
    Sleep,
    Spawn,
    WaitChildren,
    WriteFile,
    WriteMetadata,
)
from repro.disk.model import fast_disk
from repro.sim.units import KB, MB, msecs


def machine(scheme=None, ncpus=2, memory_mb=16, seed=0):
    return MachineConfig(
        ncpus=ncpus,
        memory_mb=memory_mb,
        disks=[DiskSpec(geometry=fast_disk())],
        scheme=scheme if scheme is not None else piso_scheme(),
        seed=seed,
    )


def booted(scheme=None, nspus=1, **kwargs):
    kernel = Kernel(machine(scheme, **kwargs))
    spus = [kernel.create_spu(f"u{i}") for i in range(nspus)]
    kernel.boot()
    return kernel, spus


class TestLifecycle:
    def test_spawn_before_boot_rejected(self):
        kernel = Kernel(machine())
        spu = kernel.create_spu("u")
        with pytest.raises(KernelError):
            kernel.spawn(iter(()), spu)

    def test_boot_requires_spus(self):
        kernel = Kernel(machine())
        with pytest.raises(KernelError):
            kernel.boot()

    def test_double_boot_rejected(self):
        kernel, _ = booted()
        with pytest.raises(KernelError):
            kernel.boot()

    def test_create_spu_after_boot_rejected(self):
        kernel, _ = booted()
        with pytest.raises(KernelError):
            kernel.create_spu("late")

    def test_empty_behavior_exits_immediately(self):
        kernel, (spu,) = booted()
        proc = kernel.spawn(iter(()), spu)
        kernel.run()
        assert proc.state is ProcessState.EXITED
        assert proc.response_us == 0

    def test_unknown_op_raises(self):
        kernel, (spu,) = booted()

        def bad():
            yield "not-an-op"

        with pytest.raises(KernelError):
            kernel.spawn(bad(), spu)


class TestCompute:
    def test_compute_takes_exactly_its_duration_uncontended(self):
        kernel, (spu,) = booted()

        def job():
            yield Compute(msecs(100))

        proc = kernel.spawn(job(), spu)
        kernel.run()
        assert proc.response_us == msecs(100)
        assert proc.cpu_time_us == msecs(100)

    def test_two_jobs_share_one_cpu(self):
        kernel, (spu,) = booted(ncpus=1)

        def job():
            yield Compute(msecs(100))

        a = kernel.spawn(job(), spu)
        b = kernel.spawn(job(), spu)
        kernel.run()
        # Interleaved in 30 ms slices: both take about twice as long.
        assert a.response_us > msecs(150)
        assert b.response_us > msecs(150)

    def test_cpu_time_charged_to_spu_account(self):
        kernel, (spu,) = booted()

        def job():
            yield Compute(msecs(50))

        kernel.spawn(job(), spu)
        kernel.run()
        assert kernel.cpu_account.total(spu.spu_id) == msecs(50)

    def test_jobs_done(self):
        kernel, (spu,) = booted()

        def job():
            yield Compute(msecs(10))

        kernel.spawn(job(), spu)
        assert not kernel.jobs_done()
        kernel.run()
        assert kernel.jobs_done()


class TestSleepAndSpawn:
    def test_sleep_advances_wall_clock_only(self):
        kernel, (spu,) = booted()

        def job():
            yield Sleep(msecs(250))

        proc = kernel.spawn(job(), spu)
        kernel.run()
        assert proc.response_us == msecs(250)
        assert proc.cpu_time_us == 0

    def test_spawn_returns_child_pid(self):
        kernel, (spu,) = booted()
        seen = {}

        def child():
            yield Compute(msecs(1))

        def parent():
            pid = yield Spawn(child(), name="kid")
            seen["pid"] = pid
            yield WaitChildren()

        kernel.spawn(parent(), spu)
        kernel.run()
        assert seen["pid"] in kernel.processes
        assert kernel.processes[seen["pid"]].name == "kid"

    def test_wait_children_blocks_until_all_exit(self):
        kernel, (spu,) = booted(ncpus=4)

        def child(ms):
            yield Compute(msecs(ms))

        def parent():
            yield Spawn(child(50))
            yield Spawn(child(150))
            yield WaitChildren()

        proc = kernel.spawn(parent(), spu)
        kernel.run()
        assert proc.response_us >= msecs(150)

    def test_wait_with_no_children_is_instant(self):
        kernel, (spu,) = booted()

        def parent():
            yield WaitChildren()

        proc = kernel.spawn(parent(), spu)
        kernel.run()
        assert proc.response_us == 0

    def test_children_inherit_parent_spu(self):
        kernel, (spu,) = booted()

        def child():
            yield Compute(msecs(1))

        def parent():
            yield Spawn(child())
            yield WaitChildren()

        parent_proc = kernel.spawn(parent(), spu)
        kernel.run()
        (child_pid,) = parent_proc.children
        assert kernel.processes[child_pid].spu_id == spu.spu_id


class TestBarriers:
    def test_gang_waits_for_slowest(self):
        kernel, (spu,) = booted(ncpus=4)
        barrier = Barrier(2)

        def worker(ms):
            yield Compute(msecs(ms))
            yield BarrierWait(barrier)
            yield Compute(msecs(10))

        fast = kernel.spawn(worker(10), spu)
        slow = kernel.spawn(worker(100), spu)
        kernel.run()
        assert fast.response_us >= msecs(110)
        assert slow.response_us >= msecs(110)


class TestLocksIntegration:
    def test_mutex_serializes_critical_sections(self):
        kernel, (spu,) = booted(ncpus=4)
        lock = KernelLock("l")

        def job():
            yield Acquire(lock)
            yield Compute(msecs(50))
            yield Release(lock)

        procs = [kernel.spawn(job(), spu) for _ in range(3)]
        kernel.run()
        assert max(p.response_us for p in procs) >= msecs(150)
        assert lock.acquisitions == 3


class TestFileIO:
    def test_read_write_roundtrip(self):
        kernel, (spu,) = booted()
        file = kernel.fs.create(0, "data", 64 * KB)

        def job():
            yield ReadFile(file, 0, 64 * KB)
            yield WriteFile(file, 0, 64 * KB)
            yield WriteMetadata(file)

        proc = kernel.spawn(job(), spu)
        kernel.run()
        assert proc.state is ProcessState.EXITED
        assert kernel.drives[0].stats.count() > 0

    def test_buffer_cache_pages_charged_to_spu(self):
        kernel, (spu,) = booted()
        file = kernel.fs.create(0, "data", 64 * KB)

        def job():
            yield ReadFile(file, 0, 64 * KB)

        kernel.spawn(job(), spu)
        kernel.run()
        assert spu.memory().used >= 16  # 64 KB = 16 pages cached


class TestDemandPaging:
    def test_working_set_ramp_is_zero_fill(self):
        kernel, (spu,) = booted()

        def job():
            yield SetWorkingSet(64, fault_cluster_pages=16)
            yield Compute(msecs(100))

        proc = kernel.spawn(job(), spu)
        kernel.run()
        assert proc.resident == 0  # pages freed at exit
        assert proc.fault_count >= 4
        # Zero-fill faults never touch the disk.
        assert kernel.drives[0].stats.count() == 0

    def test_exit_frees_pages(self):
        kernel, (spu,) = booted()

        def job():
            yield SetWorkingSet(64)
            yield Compute(msecs(50))

        kernel.spawn(job(), spu)
        kernel.run()
        assert spu.memory().used == 0

    def test_shrinking_working_set_frees_now(self):
        kernel, (spu,) = booted()
        snapshots = {}

        def job():
            yield SetWorkingSet(64, fault_cluster_pages=64)
            yield Compute(msecs(50))
            snapshots["before"] = spu.memory().used
            yield SetWorkingSet(8)
            snapshots["after"] = spu.memory().used
            yield Compute(msecs(1))

        kernel.spawn(job(), spu)
        kernel.run()
        assert snapshots["after"] < snapshots["before"]

    def test_memory_pressure_causes_swap_io(self):
        # Two hungry jobs in one SPU under quotas: stealing + swap-ins.
        kernel, (a, b) = booted(quota_scheme(), nspus=2, memory_mb=8)

        def hungry():
            yield SetWorkingSet(700, touches_per_ms=1.0)
            yield Compute(msecs(500))

        p1 = kernel.spawn(hungry(), a)
        p2 = kernel.spawn(hungry(), a)
        kernel.run()
        assert kernel.drives[0].stats.count() > 0  # paging hit the disk
        assert p1.fault_count + p2.fault_count > 700 * 2 / 8

    def test_isolated_spu_unaffected_by_neighbor_thrash(self):
        kernel, (a, b) = booted(piso_scheme(), nspus=2, memory_mb=8)

        def hungry():
            yield SetWorkingSet(900, touches_per_ms=1.0)
            yield Compute(msecs(300))

        def modest():
            yield SetWorkingSet(100)
            yield Compute(msecs(300))

        kernel.spawn(hungry(), a)
        kernel.spawn(hungry(), a)
        quiet = kernel.spawn(modest(), b)
        kernel.run()
        # b never lost pages: ramp faults only (100/8 = 13ish).
        assert quiet.paged_out == 0


class TestSchemeWiring:
    def test_smp_has_no_partition(self):
        kernel, _ = booted(smp_scheme())
        assert kernel.cpusched.partition is None

    def test_piso_partitions_cpus(self):
        kernel, spus = booted(piso_scheme(), nspus=2)
        assert kernel.cpusched.partition is not None

    def test_memory_daemon_only_with_limits(self):
        kernel, _ = booted(smp_scheme())
        assert kernel.memdaemon is None
        kernel2, _ = booted(piso_scheme())
        assert kernel2.memdaemon is not None

    def test_swap_mount_validation(self):
        kernel, (spu,) = booted()
        with pytest.raises(KernelError):
            kernel.set_swap_mount(spu, 5)
