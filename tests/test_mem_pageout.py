"""Tests for the pageout daemon and related memory accounting."""

import random

import pytest

from repro.core import EqualShareContract, SPURegistry, piso_scheme, smp_scheme
from repro.mem import MemoryManager, PageoutDaemon
from repro.sim import Engine


def build(scheme, total=100, kernel_pages=0):
    engine = Engine(seed=1)
    registry = SPURegistry()
    a = registry.create("a")
    b = registry.create("b")
    manager = MemoryManager(registry, total, scheme, kernel_pages=kernel_pages,
                            rng=random.Random(0))
    for spu in (a, b):
        spu.memory().set_entitled(total // 2)
    return engine, registry, manager, a, b


class TestVictimSelection:
    def test_borrower_reclaimed_under_isolation(self):
        engine, _reg, manager, a, b = build(piso_scheme())
        b.memory().set_allowed(95)
        for _ in range(95):
            manager.try_allocate(b.spu_id)
        # free = 5 < reserve = 8: the daemon must reclaim, and only
        # from the borrower.
        stolen = []

        def steal(spu):
            stolen.append(spu)
            manager.free(spu)
            return True

        PageoutDaemon(engine, manager, steal_from=steal).scan()
        assert stolen
        assert set(stolen) == {b.spu_id}

    def test_no_victim_when_nobody_over_entitled(self):
        engine, _reg, manager, a, _b = build(piso_scheme())
        for _ in range(50):
            manager.try_allocate(a.spu_id)
        daemon = PageoutDaemon(engine, manager, steal_from=lambda s: True)
        # free = 50 >= reserve (8) -> nothing to do; and even if free
        # were low, a within-entitlement SPU is not a victim.
        assert daemon.scan() == 0

    def test_smp_reclaims_from_biggest_holder(self):
        engine, _reg, manager, a, b = build(smp_scheme())
        a.memory().set_allowed(100)
        b.memory().set_allowed(100)
        for _ in range(70):
            manager.try_allocate(a.spu_id)
        for _ in range(25):
            manager.try_allocate(b.spu_id)
        # free = 5 < reserve = 8.
        stolen = []

        def steal(spu):
            stolen.append(spu)
            manager.free(spu)
            return True

        PageoutDaemon(engine, manager, steal_from=steal).scan()
        assert stolen and all(s == a.spu_id for s in stolen)

    def test_scan_stops_at_reserve(self):
        engine, _reg, manager, a, _b = build(smp_scheme())
        a.memory().set_allowed(100)
        for _ in range(96):
            manager.try_allocate(a.spu_id)

        def steal(spu):
            manager.free(spu)
            return True

        daemon = PageoutDaemon(engine, manager, steal_from=steal)
        daemon.scan()
        assert manager.free_pages == manager.reserve_pages
        assert daemon.reclaimed == 4

    def test_batch_cap(self):
        engine, _reg, manager, a, _b = build(smp_scheme())
        a.memory().set_allowed(100)
        for _ in range(100):
            manager.try_allocate(a.spu_id)

        def steal(spu):
            manager.free(spu)
            return True

        daemon = PageoutDaemon(engine, manager, steal_from=steal, max_batch=3)
        assert daemon.scan() == 3

    def test_lifecycle(self):
        engine, _reg, manager, _a, _b = build(smp_scheme())
        daemon = PageoutDaemon(engine, manager, steal_from=lambda s: False)
        daemon.start()
        with pytest.raises(RuntimeError):
            daemon.start()
        daemon.stop()

    def test_bad_batch(self):
        engine, _reg, manager, _a, _b = build(smp_scheme())
        with pytest.raises(ValueError):
            PageoutDaemon(engine, manager, steal_from=lambda s: True, max_batch=0)


class TestUserPoolAccounting:
    def test_suspended_spu_pages_excluded_from_pool(self):
        registry = SPURegistry()
        a = registry.create("a")
        b = registry.create("b")
        manager = MemoryManager(registry, 100, piso_scheme(),
                                rng=random.Random(0))
        for spu in (a, b):
            spu.memory().set_entitled(50)
        for _ in range(20):
            manager.try_allocate(b.spu_id)
        registry.suspend(b)
        # b's 20 resident pages (e.g. leftover cache) are unavailable.
        assert manager.user_pool() == 80


class TestKernelIntegration:
    def test_daemon_started_by_param(self):
        from repro.core import IsolationParams
        from repro.disk.model import fast_disk
        from repro.kernel import DiskSpec, Kernel, MachineConfig

        params = IsolationParams(proactive_pageout=True)
        kernel = Kernel(
            MachineConfig(ncpus=2, memory_mb=8,
                          disks=[DiskSpec(geometry=fast_disk())],
                          scheme=piso_scheme(params))
        )
        kernel.create_spu("u")
        kernel.boot()
        assert kernel.pageout is not None

    def test_daemon_absent_by_default(self):
        from repro.disk.model import fast_disk
        from repro.kernel import DiskSpec, Kernel, MachineConfig

        kernel = Kernel(
            MachineConfig(ncpus=2, memory_mb=8,
                          disks=[DiskSpec(geometry=fast_disk())],
                          scheme=piso_scheme())
        )
        kernel.create_spu("u")
        kernel.boot()
        assert kernel.pageout is None


class TestCpuUtilizationStats:
    def test_utilization_and_switches(self):
        from repro.disk.model import fast_disk
        from repro.kernel import Compute, DiskSpec, Kernel, MachineConfig
        from repro.sim.units import msecs

        kernel = Kernel(
            MachineConfig(ncpus=2, memory_mb=8,
                          disks=[DiskSpec(geometry=fast_disk())],
                          scheme=piso_scheme())
        )
        spu = kernel.create_spu("u")
        kernel.boot()

        def job():
            yield Compute(msecs(100))

        kernel.spawn(job(), spu)
        kernel.run()
        # One process on two CPUs for the whole run: 50% utilization.
        assert kernel.cpu_utilization() == pytest.approx(0.5, abs=0.01)
        assert kernel.context_switches >= 4  # ceil(100/30) slices

    def test_zero_before_run(self):
        from repro.disk.model import fast_disk
        from repro.kernel import DiskSpec, Kernel, MachineConfig

        kernel = Kernel(
            MachineConfig(ncpus=2, memory_mb=8,
                          disks=[DiskSpec(geometry=fast_disk())],
                          scheme=piso_scheme())
        )
        assert kernel.cpu_utilization() == 0.0
