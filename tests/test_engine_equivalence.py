"""Differential determinism: calendar queue and fast-forward vs legacy.

The calendar-queue scheduler and the idle fast-forward are pure
performance features — every experiment must produce *byte-identical*
results with them on or off.  These tests run real experiments under
all engine configurations and compare canonical JSON, plus engine-level
same-tick FIFO regressions for the packed event structs.
"""

import pytest

import repro.sim.engine as engine_mod
from repro.api import ExperimentSpec, run_experiment
from repro.sim.engine import Engine

#: Experiments exercising CPU, memory, disk, and network subsystems.
SECTIONS = ("fig5", "table4", "network")
SEEDS = (0, 1)

#: (calendar, fast_forward) engine configurations under test; the
#: fourth combination (heap + fast-forward) is also valid but adds
#: little — fast-forward elision is queue-structure independent.
CONFIGS = [
    pytest.param(True, True, id="calendar+ff"),
    pytest.param(True, False, id="calendar"),
    pytest.param(False, False, id="heap"),
]


def _canonical(section: str, seed: int, monkeypatch, calendar: bool,
               fast_forward: bool) -> str:
    monkeypatch.setattr(engine_mod, "DEFAULT_CALENDAR", calendar)
    monkeypatch.setattr(engine_mod, "DEFAULT_FAST_FORWARD", fast_forward)
    return run_experiment(
        ExperimentSpec(name=section, seed=seed)
    ).canonical_json()


@pytest.fixture(scope="module")
def reference():
    """Canonical JSON per (section, seed) with both features enabled."""
    assert engine_mod.DEFAULT_CALENDAR and engine_mod.DEFAULT_FAST_FORWARD
    return {
        (section, seed): run_experiment(
            ExperimentSpec(name=section, seed=seed)
        ).canonical_json()
        for section in SECTIONS
        for seed in SEEDS
    }


@pytest.mark.parametrize("calendar,fast_forward", CONFIGS[1:])
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("section", SECTIONS)
def test_experiments_byte_identical_across_engines(
    section, seed, calendar, fast_forward, reference, monkeypatch
):
    got = _canonical(section, seed, monkeypatch, calendar, fast_forward)
    assert got == reference[(section, seed)], (
        f"{section} seed {seed} diverged under"
        f" calendar={calendar} fast_forward={fast_forward}"
    )


# --- engine-level same-tick FIFO regressions -------------------------------


def _trace_engine(calendar: bool, fast_forward: bool = False):
    eng = Engine(seed=0, calendar=calendar, fast_forward=fast_forward)
    trace = []
    return eng, trace


@pytest.mark.parametrize("calendar", [True, False], ids=["calendar", "heap"])
def test_same_tick_fifo_across_event_kinds(calendar):
    """Packed calls, handles, and timer fires at one time run in
    schedule order, whatever mix of kinds is involved."""
    eng, trace = _trace_engine(calendar)
    eng.call_at(100, trace.append, "call-first")
    eng.at(100, trace.append, "handle-second")
    timer = eng.every(100, trace.append, "timer-third", start=100)
    eng.call_at(100, trace.append, "call-fourth")
    eng.run(until=100)
    timer.stop()
    assert trace == ["call-first", "handle-second", "timer-third",
                     "call-fourth"]


@pytest.mark.parametrize("calendar", [True, False], ids=["calendar", "heap"])
def test_same_tick_fifo_for_events_scheduled_during_dispatch(calendar):
    """Events scheduled *while dispatching* the current time run after
    everything already queued at that time, in schedule order."""
    eng, trace = _trace_engine(calendar)

    def first():
        trace.append("first")
        eng.call_after(0, trace.append, "nested-a")
        eng.call_after(0, trace.append, "nested-b")

    eng.call_at(50, first)
    eng.call_at(50, trace.append, "second")
    eng.run()
    assert trace == ["first", "second", "nested-a", "nested-b"]


def test_fifo_across_calendar_bucket_boundary():
    """Order survives the near/far window advance: events straddling a
    bucket boundary (t = k << 16) run in (time, schedule-order)."""
    eng, trace = _trace_engine(True)[0], []
    boundary = 1 << 16
    for t in (boundary - 1, boundary, boundary + 1):
        eng.call_at(t, trace.append, f"{t}-a")
        eng.call_at(t, trace.append, f"{t}-b")
    eng.run()
    assert trace == [
        f"{boundary - 1}-a", f"{boundary - 1}-b",
        f"{boundary}-a", f"{boundary}-b",
        f"{boundary + 1}-a", f"{boundary + 1}-b",
    ]


def test_fifo_far_future_events_many_buckets_out():
    """Events many buckets out come back in schedule order, including
    interleaved near-term work."""
    eng = Engine(seed=0, calendar=True)
    trace = []
    times = [5, (3 << 16) + 7, (1 << 16), 12, (7 << 16) + 1, (3 << 16) + 7]
    for i, t in enumerate(times):
        eng.call_at(t, trace.append, (t, i))
    eng.run()
    assert trace == sorted(trace, key=lambda e: (e[0], e[1]))
    assert len(trace) == len(times)


@pytest.mark.parametrize("calendar", [True, False], ids=["calendar", "heap"])
def test_timer_fire_and_same_tick_call_order(calendar):
    """A periodic timer's next occurrence is scheduled when it fires, so
    a call_at() for the next tick made *before* boot still runs first."""
    eng, trace = _trace_engine(calendar)
    eng.every(10, trace.append, "timer", start=10)
    eng.call_at(20, trace.append, "call-at-20")
    eng.run(until=20)
    assert trace == ["timer", "call-at-20", "timer"]


def test_fast_forward_lands_on_exact_occurrence_grid():
    """Elided occurrences land the timer exactly on its period grid and
    count as executed events."""
    eng = Engine(seed=0, calendar=True, fast_forward=True)
    fires = []
    skips = []
    eng.set_idle_probe(lambda: True)
    eng.every(10, lambda: fires.append(eng.now), start=10,
              skip_fn=skips.append)
    eng.call_at(1005, lambda: None)
    executed = eng.run(until=1005)
    # Ticks 10..1000 were elided in bulk; the landing occurrence fires
    # on the grid at or before the next real event.
    assert sum(skips) > 0
    assert all(t % 10 == 0 for t in fires)
    assert executed == sum(skips) + len(fires) + 1


def test_fast_forward_never_elides_same_tick_work():
    """An event at the timer's own fire time always runs; fast-forward
    only jumps across *strictly* idle gaps."""
    eng = Engine(seed=0, calendar=True, fast_forward=True)
    trace = []
    eng.set_idle_probe(lambda: True)
    eng.every(10, lambda: trace.append(("tick", eng.now)), start=10,
              skip_fn=lambda k: trace.append(("skip", k)))
    eng.call_at(10, lambda: trace.append(("call", 10)))
    eng.run(until=10)
    assert ("tick", 10) in trace
    assert ("call", 10) in trace
    assert not any(kind == "skip" for kind, _ in trace)
