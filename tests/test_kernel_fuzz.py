"""Kernel fuzzing: random behaviour programs must never wedge the kernel
or corrupt resource accounting.

Hypothesis generates random mixes of every syscall across random SPUs
and machine shapes; after the run we assert global invariants —
everything exits, anonymous pages return to the pool, CPU accounts are
consistent — rather than specific outcomes.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import scheme_by_name
from repro.disk.model import fast_disk
from repro.kernel import (
    Compute,
    DiskSpec,
    Kernel,
    MachineConfig,
    ProcessState,
    ReadFile,
    SetWorkingSet,
    Sleep,
    Spawn,
    WaitChildren,
    WriteFile,
    WriteMetadata,
)
from repro.sim.units import KB, msecs


def leaf_op(draw, file):
    kind = draw(st.sampled_from(
        ["compute", "ws", "read", "write", "meta", "sleep"]
    ))
    if kind == "compute":
        return Compute(draw(st.integers(100, 50_000)))
    if kind == "ws":
        return SetWorkingSet(
            draw(st.integers(0, 300)),
            touches_per_ms=draw(st.sampled_from([0.5, 2.0, 8.0])),
            fault_cluster_pages=draw(st.sampled_from([4, 16])),
        )
    if kind == "read":
        offset = draw(st.integers(0, 31)) * KB
        return ReadFile(file, offset, draw(st.integers(1, 32 * KB - offset)))
    if kind == "write":
        offset = draw(st.integers(0, 31)) * KB
        return WriteFile(file, offset, draw(st.integers(1, 32 * KB - offset)))
    if kind == "meta":
        return WriteMetadata(file)
    return Sleep(draw(st.integers(0, 20_000)))


@st.composite
def behavior_program(draw, file, depth=0):
    """A random op list; may spawn (bounded-depth) children."""
    ops = [leaf_op(draw, file) for _ in range(draw(st.integers(1, 6)))]
    if depth < 1 and draw(st.booleans()):
        child_ops = draw(behavior_program(file, depth=depth + 1))
        ops.append(Spawn(iter(child_ops), name="child"))
        ops.append(WaitChildren())
    return ops


@given(
    data=st.data(),
    scheme_name=st.sampled_from(["smp", "quo", "piso", "stride"]),
    ncpus=st.integers(1, 4),
    nprocs=st.integers(1, 6),
    seed=st.integers(0, 10_000),
)
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_random_programs_never_wedge_the_kernel(
    data, scheme_name, ncpus, nprocs, seed
):
    kernel = Kernel(
        MachineConfig(
            ncpus=ncpus, memory_mb=8,
            disks=[DiskSpec(geometry=fast_disk())],
            scheme=scheme_by_name(scheme_name), seed=seed,
        )
    )
    spus = [kernel.create_spu(f"u{i}") for i in range(2)]
    kernel.boot()
    shared_file = kernel.fs.create(0, "fuzz-file", 32 * KB)
    free_at_boot = kernel.memory.free_pages

    for i in range(nprocs):
        ops = data.draw(behavior_program(shared_file))
        kernel.spawn(iter(ops), spus[i % 2], name=f"fuzz{i}")

    kernel.run(max_events=2_000_000)

    # Liveness: every process ran to completion.
    assert kernel.jobs_done(), [
        (p.name, p.state) for p in kernel.processes.values()
        if p.state is not ProcessState.EXITED
    ]
    # Anonymous memory conserved (cached file pages may remain).
    cached = len(kernel.fs.cache.blocks)
    assert kernel.memory.free_pages == free_at_boot - cached
    # Accounting consistency.
    total_cpu = sum(p.cpu_time_us for p in kernel.processes.values())
    accounted = sum(
        kernel.cpu_account.total(s.spu_id)
        for s in kernel.registry.all_spus()
    )
    assert total_cpu == accounted
    for proc in kernel.processes.values():
        assert proc.response_us >= 0
        assert proc.resident == 0
