"""Error-path coverage: the failure branches the happy-path suites skip."""

import pytest

from repro.core import SPURegistry, piso_scheme, smp_scheme
from repro.disk import DiskDrive, DiskOp, DiskRequest, hp97560, make_scheduler
from repro.mem.manager import MemoryManager, OutOfMemoryError
from repro.sim import Engine
from repro.sim.engine import SimulationError


@pytest.fixture
def registry():
    reg = SPURegistry()
    reg.create("a")
    return reg


class TestMemoryManagerErrors:
    def test_zero_pages_rejected(self, registry):
        with pytest.raises(ValueError):
            MemoryManager(registry, 0, piso_scheme())

    def test_negative_kernel_pages_rejected(self, registry):
        with pytest.raises(ValueError):
            MemoryManager(registry, 100, piso_scheme(), kernel_pages=-1)

    def test_kernel_pages_eating_machine_rejected(self, registry):
        with pytest.raises(ValueError):
            MemoryManager(registry, 100, piso_scheme(), kernel_pages=100)

    def test_overfreeing_raises(self, registry):
        manager = MemoryManager(registry, 100, piso_scheme())
        spu = registry.get(2)
        # Freeing a page the SPU never acquired breaks the levels
        # invariant before the pool invariant.
        with pytest.raises(Exception):
            for _ in range(101):
                manager.free(spu.spu_id)

    def test_decommission_negative_rejected(self, registry):
        manager = MemoryManager(registry, 100, piso_scheme())
        with pytest.raises(ValueError):
            manager.decommission(-1)
        with pytest.raises(ValueError):
            manager.recommission(-1)

    def test_decommission_never_zeroes_machine(self, registry):
        manager = MemoryManager(registry, 10, piso_scheme())
        removed = manager.decommission(50)
        assert removed == 9
        assert manager.total_pages == 1

    def test_decommission_stops_without_evictor(self, registry):
        manager = MemoryManager(registry, 10, smp_scheme())
        spu = registry.get(2)
        spu.memory().set_allowed(10)
        spu_id = spu.spu_id
        for _ in range(10):
            assert manager.try_allocate(spu_id)
        assert manager.decommission(5) == 0  # nothing free, no evictor


class TestEngineErrors:
    def test_scheduling_in_the_past_raises(self):
        engine = Engine(seed=0)
        engine.after(100, lambda: None)
        engine.run()
        assert engine.now == 100
        with pytest.raises(SimulationError):
            engine.at(50, lambda: None)

    def test_negative_delay_raises(self):
        engine = Engine(seed=0)
        with pytest.raises(SimulationError):
            engine.after(-1, lambda: None)


class TestDiskRequestValidation:
    def test_zero_sectors_rejected(self):
        with pytest.raises(ValueError):
            DiskRequest(spu_id=1, op=DiskOp.READ, sector=0, nsectors=0)

    def test_negative_sector_rejected(self):
        with pytest.raises(ValueError):
            DiskRequest(spu_id=1, op=DiskOp.READ, sector=-1, nsectors=8)

    def test_request_past_end_of_disk_rejected(self):
        engine = Engine(seed=0)
        drive = DiskDrive(engine, hp97560(), make_scheduler("pos"))
        total = drive.geometry.total_sectors
        with pytest.raises(ValueError):
            drive.submit(DiskRequest(1, DiskOp.READ, total - 4, 8))

    def test_unserviced_request_timing_raises(self):
        request = DiskRequest(spu_id=1, op=DiskOp.READ, sector=0, nsectors=8)
        with pytest.raises(ValueError):
            request.wait_us
        with pytest.raises(ValueError):
            request.response_us
