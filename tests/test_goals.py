"""Tests for the goal-driven workload manager (OS390-WLM-style layer)."""

import pytest

from repro.core import (
    AdaptiveContract,
    GoalManager,
    VelocityGoal,
    piso_scheme,
)
from repro.disk.model import fast_disk
from repro.kernel import Compute, DiskSpec, Kernel, MachineConfig
from repro.sim.units import msecs, secs


def booted(contract=None, ncpus=4):
    kernel = Kernel(
        MachineConfig(ncpus=ncpus, memory_mb=16,
                      disks=[DiskSpec(geometry=fast_disk())],
                      scheme=piso_scheme(),
                      contract=contract if contract is not None else AdaptiveContract())
    )
    a = kernel.create_spu("a")
    b = kernel.create_spu("b")
    kernel.boot()
    return kernel, a, b


def saturate(kernel, spu, nprocs=4, ms=8000):
    for _ in range(nprocs):
        kernel.spawn(iter([Compute(msecs(ms))]), spu)


class TestGoalValidation:
    def test_target_range(self):
        with pytest.raises(ValueError):
            VelocityGoal(0.0)
        with pytest.raises(ValueError):
            VelocityGoal(1.5)
        VelocityGoal(1.0)

    def test_importance_range(self):
        with pytest.raises(ValueError):
            VelocityGoal(0.5, importance=0)

    def test_requires_adaptive_contract(self):
        from repro.core import EqualShareContract

        kernel, _a, _b = booted(contract=EqualShareContract())
        with pytest.raises(TypeError):
            GoalManager(kernel)


class TestAdaptiveContract:
    def test_default_weight_is_one(self):
        contract = AdaptiveContract()
        assert contract.weight_of("anything") == 1.0

    def test_set_weight(self):
        contract = AdaptiveContract({"a": 2.0})
        contract.set_weight("b", 3.0)
        assert contract.weight_of("a") == 2.0
        assert contract.weight_of("b") == 3.0

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveContract().set_weight("a", 0.0)


class TestControlLoop:
    def test_unsatisfied_goal_gains_entitlement(self):
        kernel, a, b = booted()
        manager = GoalManager(kernel)
        manager.set_goal(a, VelocityGoal(target=0.7))
        manager.start()
        saturate(kernel, a)
        saturate(kernel, b)
        kernel.run(until=secs(3))
        assert a.cpu().entitled > b.cpu().entitled
        # Late-period velocity at or around the target.
        late = [r for r in manager.history if r.spu_id == a.spu_id][-5:]
        assert sum(r.velocity for r in late) / len(late) >= 0.6

    def test_satisfied_goal_leaves_weights_alone(self):
        kernel, a, b = booted()
        manager = GoalManager(kernel)
        manager.set_goal(a, VelocityGoal(target=0.4))  # met at equal split
        manager.start()
        saturate(kernel, a)
        saturate(kernel, b)
        kernel.run(until=secs(1))
        assert manager.contract.weight_of("a") == 1.0

    def test_idle_spu_not_adjusted(self):
        kernel, a, b = booted()
        manager = GoalManager(kernel)
        manager.set_goal(a, VelocityGoal(target=0.9))
        manager.start()
        saturate(kernel, b)  # a has no work at all
        kernel.run(until=secs(1))
        assert manager.contract.weight_of("a") == 1.0

    def test_importance_breaks_ties(self):
        kernel, a, b = booted(ncpus=2)
        manager = GoalManager(kernel)
        manager.set_goal(a, VelocityGoal(target=0.9, importance=2))
        manager.set_goal(b, VelocityGoal(target=0.9, importance=1))
        manager.start()
        saturate(kernel, a, nprocs=2)
        saturate(kernel, b, nprocs=2)
        kernel.run(until=secs(2))
        # Both goals are infeasible together; the more important SPU
        # (b) must come out ahead.
        assert manager.contract.weight_of("b") > manager.contract.weight_of("a")

    def test_reports_accumulate(self):
        kernel, a, b = booted()
        manager = GoalManager(kernel)
        manager.set_goal(a, VelocityGoal(target=0.5))
        manager.start()
        saturate(kernel, a)
        kernel.run(until=secs(1))
        reports = [r for r in manager.history if r.spu_id == a.spu_id]
        assert len(reports) >= 3
        assert all(0.0 <= r.velocity <= 1.5 for r in reports)

    def test_lifecycle(self):
        kernel, _a, _b = booted()
        manager = GoalManager(kernel)
        manager.start()
        with pytest.raises(RuntimeError):
            manager.start()
        manager.stop()
