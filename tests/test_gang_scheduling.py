"""Tests for spin barriers and gang (co-)scheduling.

The paper notes gang-scheduled parallel applications "would require
some modifications" to its scheme (Section 3.1 footnote); these test
that modification: all-or-nothing dispatch plus a tick-granularity
anti-starvation boost, and the spin barriers that make co-scheduling
matter in the first place.
"""

import pytest

from repro.core import piso_scheme, smp_scheme
from repro.disk.model import fast_disk
from repro.kernel import (
    BarrierWait,
    Compute,
    DiskSpec,
    Kernel,
    MachineConfig,
    ProcessState,
    ReadFile,
)
from repro.kernel.gang import Gang
from repro.kernel.locks import Barrier
from repro.sim.units import KB, msecs


def machine(ncpus=2, scheme=None, seed=3):
    return MachineConfig(
        ncpus=ncpus, memory_mb=32, disks=[DiskSpec(geometry=fast_disk())],
        scheme=scheme if scheme is not None else piso_scheme(), seed=seed,
    )


def spin_worker(barrier, phases, phase_ms):
    for _ in range(phases):
        yield Compute(msecs(phase_ms))
        yield BarrierWait(barrier, spin=True)


class TestSpinBarriers:
    def test_spin_barrier_completes(self):
        kernel = Kernel(machine(ncpus=2))
        spu = kernel.create_spu("u")
        kernel.boot()
        barrier = Barrier(2)
        procs = [
            kernel.spawn(spin_worker(barrier, 5, 10), spu) for _ in range(2)
        ]
        kernel.run()
        assert all(p.state is ProcessState.EXITED for p in procs)
        assert barrier.generation == 5

    def test_spinner_burns_cpu_while_waiting(self):
        kernel = Kernel(machine(ncpus=2))
        spu = kernel.create_spu("u")
        kernel.boot()
        barrier = Barrier(2)

        def fast():
            yield Compute(msecs(10))
            yield BarrierWait(barrier, spin=True)

        def slow():
            yield Compute(msecs(100))
            yield BarrierWait(barrier, spin=True)

        fast_proc = kernel.spawn(fast(), spu)
        kernel.spawn(slow(), spu)
        kernel.run()
        # The fast process spun for ~90 ms on its own CPU.
        assert fast_proc.cpu_time_us >= msecs(90)

    def test_blocking_barrier_yields_cpu(self):
        kernel = Kernel(machine(ncpus=2))
        spu = kernel.create_spu("u")
        kernel.boot()
        barrier = Barrier(2)

        def fast():
            yield Compute(msecs(10))
            yield BarrierWait(barrier)  # blocking

        def slow():
            yield Compute(msecs(100))
            yield BarrierWait(barrier)

        fast_proc = kernel.spawn(fast(), spu)
        kernel.spawn(slow(), spu)
        kernel.run()
        assert fast_proc.cpu_time_us < msecs(20)

    def test_spinners_do_not_fault(self):
        from repro.kernel import SetWorkingSet

        kernel = Kernel(machine(ncpus=2))
        spu = kernel.create_spu("u")
        kernel.boot()
        barrier = Barrier(2)

        def worker(ms):
            yield SetWorkingSet(32)
            yield Compute(msecs(ms))
            yield BarrierWait(barrier, spin=True)

        fast_proc = kernel.spawn(worker(5), spu)
        kernel.spawn(worker(200), spu)
        kernel.run()
        ramp_faults = fast_proc.fault_count
        # Spinning for ~195 ms must not generate fault after fault.
        assert ramp_faults <= 32 // 8 + 2


class TestGangUnit:
    def test_gang_tracks_members(self):
        kernel = Kernel(machine())
        spu = kernel.create_spu("u")
        kernel.boot()

        def trivial():
            yield Compute(msecs(1))

        procs = kernel.spawn_gang([trivial(), trivial()], spu, name="pair")
        assert len(procs) == 2
        assert procs[0].gang is procs[1].gang
        assert procs[0].name == "pair.0"

    def test_gang_with_blocked_member_is_unschedulable(self):
        gang = Gang()

        class Stub:
            state = ProcessState.RUNNABLE

        a, b = Stub(), Stub()
        gang.members = [a, b]
        assert gang.schedulable()
        b.state = ProcessState.BLOCKED
        assert not gang.schedulable()

    def test_exited_members_dont_block_gang(self):
        gang = Gang()

        class Stub:
            state = ProcessState.EXITED

        gang.members = [Stub()]
        assert gang.schedulable()


class TestGangKernel:
    def run_pair(self, gang: bool, seed=3):
        kernel = Kernel(machine(ncpus=2, seed=seed))
        spu = kernel.create_spu("u")
        kernel.boot()
        barrier = Barrier(2)
        behaviors = [spin_worker(barrier, 30, 40.0) for _ in range(2)]
        if gang:
            procs = kernel.spawn_gang(behaviors, spu, name="g")
        else:
            procs = [kernel.spawn(b, spu) for b in behaviors]

        def bg():
            yield Compute(msecs(3000))

        background = kernel.spawn(bg(), spu)
        kernel.run()
        burned = sum(p.cpu_time_us for p in procs)
        return procs, background, burned

    def test_gang_eliminates_spin_waste(self):
        useful = 2 * 30 * msecs(40)
        _p, _b, burned_without = self.run_pair(gang=False)
        _p, _b, burned_with = self.run_pair(gang=True)
        assert burned_without > useful + msecs(100)  # spinning wasted CPU
        assert burned_with <= useful + msecs(30)     # co-scheduled: no waste

    def test_gang_and_background_all_finish(self):
        procs, background, _ = self.run_pair(gang=True)
        assert all(p.state is ProcessState.EXITED for p in procs)
        assert background.state is ProcessState.EXITED

    def test_gang_larger_than_machine_does_not_deadlock(self):
        kernel = Kernel(machine(ncpus=2))
        spu = kernel.create_spu("u")
        kernel.boot()
        barrier = Barrier(4)
        behaviors = [spin_worker(barrier, 3, 10.0) for _ in range(4)]
        procs = kernel.spawn_gang(behaviors, spu)
        kernel.run(until=msecs(5000))
        assert all(p.state is ProcessState.EXITED for p in procs)

    def test_gang_with_io_member_lets_others_work(self):
        kernel = Kernel(machine(ncpus=2))
        spu = kernel.create_spu("u")
        kernel.boot()
        file = kernel.fs.create(0, "data", 64 * KB)

        def io_member():
            yield ReadFile(file, 0, 64 * KB)
            yield Compute(msecs(10))

        def cpu_member():
            yield Compute(msecs(10))

        def bystander():
            yield Compute(msecs(50))

        gang_procs = kernel.spawn_gang([io_member(), cpu_member()], spu)
        solo = kernel.spawn(bystander(), spu)
        kernel.run()
        # While the gang waited on its member's I/O, the bystander ran.
        assert solo.state is ProcessState.EXITED
        assert all(p.state is ProcessState.EXITED for p in gang_procs)

    def test_non_gang_processes_unaffected_by_filter(self):
        kernel = Kernel(machine(ncpus=2))
        spu = kernel.create_spu("u")
        kernel.boot()

        def trivial():
            yield Compute(msecs(10))

        kernel.spawn_gang([trivial(), trivial()], spu)
        solo = kernel.spawn(trivial(), spu)
        kernel.run()
        assert solo.state is ProcessState.EXITED
