"""The persistent worker pool: reuse, fn switching, leak regressions."""

import os
import signal
import tempfile

import pytest

from repro.parallel import (
    Executor,
    PayloadSpool,
    SweepPlan,
    WorkerPool,
    shm_available,
    values,
)

# Worker functions must be module-level (pickled by reference).


def _square(x):
    return x * x


def _double(x):
    return x + x


def _pid(_x):
    return os.getpid()


def _sigkill_on_die(x):
    if x == "die":
        os.kill(os.getpid(), signal.SIGKILL)
    return x


def test_shared_pool_serves_many_runs_with_one_fork_cost():
    with WorkerPool(max_workers=2) as pool:
        executor = Executor(SweepPlan(max_workers=2), pool=pool)
        first = values(executor.run(_square, range(6)))
        second = values(executor.run(_square, range(6)))
        assert first == second == [x * x for x in range(6)]
        # Two runs, two workers, two forks total: the pool's whole point.
        assert pool.forks == 2
        assert pool.runs_served == 2
        assert executor.stats.pool_reuse == 1


def test_shared_pool_switches_functions_between_runs():
    # The batch protocol carries the callable, so one pool serves
    # heterogeneous stages back to back.
    with WorkerPool(max_workers=2) as pool:
        squares = values(
            Executor(SweepPlan(max_workers=2), pool=pool).run(_square, range(4))
        )
        doubles = values(
            Executor(SweepPlan(max_workers=2), pool=pool).run(_double, range(4))
        )
        assert squares == [0, 1, 4, 9]
        assert doubles == [0, 2, 4, 6]
        assert pool.forks == 2


def test_shared_pool_runs_reuse_the_same_processes():
    with WorkerPool(max_workers=2) as pool:
        executor = Executor(SweepPlan(max_workers=2), pool=pool)
        pids_a = set(values(executor.run(_pid, range(4))))
        pids_b = set(values(executor.run(_pid, range(4))))
        assert pids_a == pids_b
        assert len(pids_a) == 2


def test_lease_subset_of_a_larger_pool():
    with WorkerPool(max_workers=4) as pool:
        executor = Executor(SweepPlan(max_workers=2), pool=pool)
        assert values(executor.run(_square, range(8))) == \
            [x * x for x in range(8)]
        # Only the leased workers were spawned (lazy ensure).
        assert pool.forks == 2
        executor4 = Executor(SweepPlan(max_workers=4), pool=pool)
        assert values(executor4.run(_square, range(8))) == \
            [x * x for x in range(8)]
        assert pool.forks == 4


def test_pool_recycling_budget_counts_across_runs():
    # tasks_per_worker is a pool property: the budget spans sweeps, so
    # a long-lived pool still recycles its processes.
    with WorkerPool(max_workers=2, tasks_per_worker=2) as pool:
        executor = Executor(SweepPlan(max_workers=2), pool=pool)
        for _ in range(3):
            assert values(executor.run(_square, range(4))) == [0, 1, 4, 9]
        # 12 cells / budget 2 => recycling forced extra forks.
        assert pool.forks > 2


def test_ephemeral_pool_is_torn_down_per_run():
    executor = Executor(SweepPlan(max_workers=2))
    assert values(executor.run(_square, range(4))) == [0, 1, 4, 9]
    assert executor.stats.pool_reuse == 0


def test_shutdown_then_run_raises():
    pool = WorkerPool(max_workers=2)
    pool.shutdown()
    assert pool.closed
    with pytest.raises(ValueError, match="shut down"):
        pool.ensure(1)


# --- abnormal-exit lifecycle (the leak regression) ---------------------------


def _shm_names():
    try:
        return {n for n in os.listdir("/dev/shm")}
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


def _spool_files(directory):
    return {
        name for name in os.listdir(directory)
        if name.startswith("repro-spool-")
    }


@pytest.mark.skipif(not shm_available(), reason="needs fork + shm")
@pytest.mark.skipif(os.name != "posix", reason="needs POSIX signals")
def test_sigkill_mid_batch_leaks_no_segments_or_spool_files(
    tmp_path, monkeypatch
):
    # SIGKILL a worker mid-batch (the harshest abnormal exit: no atexit,
    # no signal handler, nothing runs in the worker) and check that
    # after the sweep and pool shutdown no shared-memory segment and no
    # spool file survives.
    monkeypatch.setattr(tempfile, "tempdir", str(tmp_path))
    shm_before = _shm_names()
    plan = SweepPlan(
        max_workers=2, retries=0, batch_size=3, spool_threshold=1
    )
    with WorkerPool(max_workers=2) as pool:
        outcomes = Executor(plan, pool=pool).run(
            _sigkill_on_die, ["a", "die", "b", "c", "d", "e"]
        )
        statuses = {o.index: o.status for o in outcomes}
        assert statuses[1] == "crashed"
        assert all(
            statuses[i] == "ok" for i in statuses if i != 1
        )
    assert _spool_files(str(tmp_path)) == set()
    assert _shm_names() - shm_before == set()


@pytest.mark.skipif(not shm_available(), reason="needs fork + shm")
def test_pool_kill_releases_segments(monkeypatch, tmp_path):
    shm_before = _shm_names()
    pool = WorkerPool(max_workers=2)
    pool.ensure(2)
    assert _shm_names() - shm_before != set()
    pool.kill()
    assert _shm_names() - shm_before == set()


def test_spool_close_is_idempotent_and_unlinks(tmp_path):
    spool = PayloadSpool(dir=str(tmp_path))
    spool.append(b"x" * 64)
    path = spool.path
    assert os.path.exists(path)
    spool.close()
    assert not os.path.exists(path)
    spool.close()  # idempotent
