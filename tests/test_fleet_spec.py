"""FleetSpec: load-time validation and the JSON round-trip."""

import pytest

from repro.faults.fleet import FleetFaultPlan, MachineCrash
from repro.fleet import (
    FleetMachineSpec,
    FleetSpec,
    FleetSpecError,
    FleetSpuSpec,
)


def fleet(**overrides):
    fields = dict(
        machines=[FleetMachineSpec(ncpus=4), FleetMachineSpec(ncpus=2)],
        spus=[
            FleetSpuSpec(name="svc", demand_cpus=1.5, slo_min_fraction=0.5),
            FleetSpuSpec(name="batch", demand_cpus=1.0),
        ],
        placement={"svc": 0, "batch": 1},
        scheme="piso",
        seed=3,
        horizon_us=200_000,
        faults=FleetFaultPlan([MachineCrash(at_us=50_000, machine=1)]),
    )
    fields.update(overrides)
    return FleetSpec(**fields)


class TestMachineSpec:
    def test_capacity_in_milli_cpus(self):
        assert FleetMachineSpec(ncpus=4).capacity_mcpu == 4000

    def test_rejects_non_positive_shape(self):
        with pytest.raises(FleetSpecError, match="ncpus"):
            FleetMachineSpec(ncpus=0)
        with pytest.raises(FleetSpecError, match="memory_mb"):
            FleetMachineSpec(memory_mb=-1)


class TestSpuSpec:
    def test_demand_mcpu_is_integer(self):
        assert FleetSpuSpec(name="a", demand_cpus=1.5).demand_mcpu == 1500
        assert FleetSpuSpec(name="a", demand_cpus=0.0004).demand_mcpu == 1

    def test_total_rounds(self):
        spu = FleetSpuSpec(name="a", jobs=3, rounds=7)
        assert spu.total_rounds == 21

    def test_rejects_bad_demand(self):
        with pytest.raises(FleetSpecError, match="demand_cpus"):
            FleetSpuSpec(name="a", demand_cpus=0)
        with pytest.raises(FleetSpecError, match="demand_cpus"):
            FleetSpuSpec(name="a", demand_cpus=float("inf"))

    def test_rejects_bad_slo_floor(self):
        with pytest.raises(FleetSpecError, match="slo_min_fraction"):
            FleetSpuSpec(name="a", slo_min_fraction=0.0)
        with pytest.raises(FleetSpecError, match="slo_min_fraction"):
            FleetSpuSpec(name="a", slo_min_fraction=1.5)

    def test_rejects_empty_name(self):
        with pytest.raises(FleetSpecError, match="name"):
            FleetSpuSpec(name="")


class TestFleetValidation:
    def test_well_formed_spec_builds(self):
        spec = fleet()
        assert spec.spu("svc").demand_cpus == 1.5
        assert [s.name for s in spec.hosted_on(0)] == ["svc"]

    def test_needs_machines_and_spus(self):
        with pytest.raises(FleetSpecError, match="at least one machine"):
            fleet(machines=[])
        with pytest.raises(FleetSpecError, match="at least one SPU"):
            fleet(spus=[], placement={})

    def test_duplicate_spu_names_rejected(self):
        with pytest.raises(FleetSpecError, match="duplicate"):
            fleet(
                spus=[FleetSpuSpec(name="a"), FleetSpuSpec(name="a")],
                placement={"a": 0},
            )

    def test_unknown_scheme_rejected(self):
        with pytest.raises(FleetSpecError, match="unknown scheme"):
            fleet(scheme="lottery")

    def test_placement_must_cover_every_spu(self):
        with pytest.raises(FleetSpecError, match="placement missing"):
            fleet(placement={"svc": 0})
        with pytest.raises(FleetSpecError, match="unknown SPUs"):
            fleet(placement={"svc": 0, "batch": 1, "ghost": 0})

    def test_placement_index_out_of_range_names_field(self):
        with pytest.raises(FleetSpecError, match="field 'placement'") as exc:
            fleet(placement={"svc": 0, "batch": 9})
        assert "'batch'" in str(exc.value)
        assert "fleet has 2" in str(exc.value)

    def test_fault_event_out_of_range_rejected_at_spec_level(self):
        with pytest.raises(FleetSpecError, match="field 'machine'"):
            fleet(faults=FleetFaultPlan([
                MachineCrash(at_us=10, machine=5)
            ]))

    def test_boot_overcommit_rejected(self):
        # Machine 1 has 2 CPUs; 2.5 CPUs of demand cannot boot there.
        with pytest.raises(FleetSpecError, match="overcommitted at boot"):
            fleet(
                spus=[
                    FleetSpuSpec(name="svc", demand_cpus=1.5),
                    FleetSpuSpec(name="batch", demand_cpus=2.5),
                ],
            )

    def test_unknown_spu_lookup_raises(self):
        with pytest.raises(FleetSpecError, match="ghost"):
            fleet().spu("ghost")


class TestRoundTrip:
    def test_json_round_trip_preserves_everything(self):
        spec = fleet()
        back = FleetSpec.from_json(spec.to_json())
        assert back.machines == spec.machines
        assert back.spus == spec.spus
        assert back.placement == spec.placement
        assert back.scheme == spec.scheme
        assert back.seed == spec.seed
        assert back.horizon_us == spec.horizon_us
        assert back.faults == spec.faults

    def test_round_trip_is_canonical(self):
        spec = fleet()
        assert FleetSpec.from_json(spec.to_json()).to_json() == spec.to_json()

    def test_format_tag_is_checked(self):
        record = fleet().to_dict()
        record["format"] = "repro.scenario/1"
        with pytest.raises(FleetSpecError, match="not a fleet spec"):
            FleetSpec.from_dict(record)

    def test_missing_fields_rejected(self):
        record = fleet().to_dict()
        del record["placement"]
        with pytest.raises(FleetSpecError, match="missing fields"):
            FleetSpec.from_dict(record)

    def test_from_dict_revalidates(self):
        record = fleet().to_dict()
        record["placement"]["batch"] = 17
        with pytest.raises(FleetSpecError, match="field 'placement'"):
            FleetSpec.from_dict(record)

    def test_bad_json_rejected(self):
        with pytest.raises(FleetSpecError, match="not valid JSON"):
            FleetSpec.from_json("{nope")
