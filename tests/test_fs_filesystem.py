"""Integration tests for the filesystem over a simulated drive."""

import pytest

from repro.core import SHARED_SPU_ID, SPURegistry
from repro.disk import DiskDrive, DiskOp, SpuBandwidthLedger, hp97560, make_scheduler
from repro.fs import BufferCache, FileSystem, UnlimitedPageProvider, Volume
from repro.sim import Engine
from repro.sim.units import KB, PAGE_SIZE


@pytest.fixture
def fs_setup():
    engine = Engine(seed=5)
    registry = SPURegistry()
    spu = registry.create("u")
    spu.disk_bw().set_entitled(1)
    geometry = hp97560()
    drive = DiskDrive(
        engine, geometry, make_scheduler("pos"), SpuBandwidthLedger(0, registry)
    )
    volume = Volume(geometry.total_sectors, engine.fork_rng("vol"))
    cache = BufferCache(UnlimitedPageProvider(64))
    fs = FileSystem(engine, cache)
    fs.mount(drive, volume)
    return engine, fs, drive, cache, spu


def read_all(engine, fs, file, spu_id, pid=1, chunk=8 * KB):
    done = []
    state = {"off": 0}

    def step():
        if state["off"] >= file.size_bytes:
            done.append(engine.now)
            return
        n = min(chunk, file.size_bytes - state["off"])
        fs.read(pid, spu_id, file, state["off"], n, advance)

    def advance():
        state["off"] += chunk
        step()

    step()
    engine.run()
    assert done, "read did not complete"
    return done[0]


class TestRead:
    def test_cold_read_hits_disk(self, fs_setup):
        engine, fs, drive, _cache, spu = fs_setup
        file = fs.create(0, "f", 32 * KB)
        read_all(engine, fs, file, spu.spu_id)
        assert drive.stats.count() > 0
        assert drive.stats.total_sectors() >= file.nsectors

    def test_warm_read_is_free(self, fs_setup):
        engine, fs, drive, _cache, spu = fs_setup
        file = fs.create(0, "f", 32 * KB)
        read_all(engine, fs, file, spu.spu_id)
        before = drive.stats.count()
        read_all(engine, fs, file, spu.spu_id, pid=2)
        assert drive.stats.count() == before

    def test_blocks_cached_under_requesting_spu(self, fs_setup):
        engine, fs, _drive, cache, spu = fs_setup
        file = fs.create(0, "f", 8 * KB)
        read_all(engine, fs, file, spu.spu_id)
        assert cache.blocks[(file.file_id, 0)].spu_charged == spu.spu_id

    def test_sequential_read_triggers_prefetch(self, fs_setup):
        engine, fs, drive, cache, spu = fs_setup
        file = fs.create(0, "f", 256 * KB)
        read_all(engine, fs, file, spu.spu_id)
        # Far fewer requests than blocks: prefetch batched them.
        assert drive.stats.count() < file.nblocks

    def test_out_of_range_read_rejected(self, fs_setup):
        _engine, fs, _drive, _cache, spu = fs_setup
        file = fs.create(0, "f", 8 * KB)
        with pytest.raises(Exception):
            fs.read(1, spu.spu_id, file, 0, 9 * KB, lambda: None)

    def test_fragmented_file_needs_more_requests(self, fs_setup):
        engine, fs, drive, _cache, spu = fs_setup
        contiguous = fs.create(0, "c", 64 * KB)
        read_all(engine, fs, contiguous, spu.spu_id)
        contiguous_requests = drive.stats.count()
        fragmented = fs.create(0, "g", 64 * KB, fragmented=True, extent_sectors=16)
        read_all(engine, fs, fragmented, spu.spu_id, pid=3)
        assert drive.stats.count() - contiguous_requests > contiguous_requests


class TestWrite:
    def test_write_is_delayed(self, fs_setup):
        engine, fs, drive, cache, spu = fs_setup
        file = fs.create(0, "f", 32 * KB)
        done = []
        fs.write(1, spu.spu_id, file, 0, 32 * KB, lambda: done.append(engine.now))
        engine.run()
        assert done
        assert cache.dirty_count() == 8
        assert drive.stats.count() == 0  # nothing flushed yet

    def test_writeback_daemon_flushes(self, fs_setup):
        engine, fs, drive, cache, spu = fs_setup
        fs.start_daemons()
        file = fs.create(0, "f", 32 * KB)
        fs.write(1, spu.spu_id, file, 0, 32 * KB, lambda: None)
        engine.run(until=2_000_000)
        assert cache.dirty_count() == 0
        writes = [r for r in drive.stats.completed if r.op is DiskOp.WRITE]
        assert writes
        assert all(r.spu_id == SHARED_SPU_ID for r in writes)

    def test_flush_charges_owner_spu(self, fs_setup):
        engine, fs, drive, _cache, spu = fs_setup
        fs.start_daemons()
        file = fs.create(0, "f", 32 * KB)
        fs.write(1, spu.spu_id, file, 0, 32 * KB, lambda: None)
        engine.run(until=2_000_000)
        assert drive.ledger.usage_ratio(spu.spu_id, engine.now) > 0
        assert drive.ledger.usage_ratio(SHARED_SPU_ID, engine.now) == 0

    def test_write_blocks_under_memory_pressure(self, fs_setup):
        engine, fs, drive, cache, spu = fs_setup
        # Cache holds 64 pages; write 128 blocks -> must flush mid-way.
        file = fs.create(0, "f", 512 * KB)
        done = []
        fs.write(1, spu.spu_id, file, 0, 512 * KB, lambda: done.append(True))
        engine.run()
        assert done
        writes = [r for r in drive.stats.completed if r.op is DiskOp.WRITE]
        assert writes  # pressure forced flushing before completion

    def test_write_then_read_hits_cache(self, fs_setup):
        engine, fs, drive, _cache, spu = fs_setup
        file = fs.create(0, "f", 16 * KB)
        fs.write(1, spu.spu_id, file, 0, 16 * KB, lambda: None)
        engine.run()
        read_all(engine, fs, file, spu.spu_id)
        assert all(r.op is not DiskOp.READ for r in drive.stats.completed)


class TestMetadata:
    def test_metadata_write_is_synchronous_one_sector(self, fs_setup):
        engine, fs, drive, _cache, spu = fs_setup
        file = fs.create(0, "f", 8 * KB)
        done = []
        fs.write_metadata(1, spu.spu_id, file, lambda: done.append(engine.now))
        engine.run()
        assert done
        (request,) = drive.stats.completed
        assert request.nsectors == 1
        assert request.sector == file.metadata_sector


class TestMounts:
    def test_bad_mount_rejected(self, fs_setup):
        _engine, fs, _drive, _cache, _spu = fs_setup
        with pytest.raises(Exception):
            fs.create(7, "f", KB)

    def test_files_route_to_their_drive(self):
        engine = Engine(seed=1)
        registry = SPURegistry()
        spu = registry.create("u")
        spu.disk_bw().set_entitled(1)
        geometry = hp97560()
        drives = [
            DiskDrive(engine, geometry, make_scheduler("pos"),
                      SpuBandwidthLedger(i, registry), disk_id=i)
            for i in range(2)
        ]
        cache = BufferCache(UnlimitedPageProvider(64))
        fs = FileSystem(engine, cache)
        for drive in drives:
            fs.mount(drive, Volume(geometry.total_sectors, engine.fork_rng(f"v{drive.disk_id}")))
        file = fs.create(1, "f", 8 * KB)
        read_all(engine, fs, file, spu.spu_id)
        assert drives[1].stats.count() > 0
        assert drives[0].stats.count() == 0
