"""The fuzzer's fleet dimension: generation legality, records, campaigns."""

import json

from repro.fuzz import (
    CampaignConfig,
    fleet_fingerprint,
    generate_fleet_scenario,
    load_corpus,
    run_campaign,
    run_fleet_fuzz_record,
)
from repro.faults.fleet import MachineCrash, MachineRecover, NetworkPartition
from repro.fleet import FleetSpec
from repro.sim.units import MSEC

SEEDS = range(12)


class TestGeneration:
    def test_every_seed_draws_a_legal_fleet(self):
        # FleetSpec validates at construction; surviving __post_init__
        # and a JSON round-trip *is* the legality check.
        for seed in SEEDS:
            spec = generate_fleet_scenario(seed)
            back = FleetSpec.from_json(spec.to_json())
            assert back.to_json() == spec.to_json()

    def test_generation_is_deterministic(self):
        for seed in range(6):
            assert generate_fleet_scenario(seed).to_json() == \
                generate_fleet_scenario(seed).to_json()

    def test_seeds_draw_different_fleets(self):
        prints = {fleet_fingerprint(generate_fleet_scenario(s)) for s in SEEDS}
        assert len(prints) > 1

    def test_pinning_horizon_and_scheme(self):
        spec = generate_fleet_scenario(3, horizon_us=123 * MSEC, scheme="smp")
        assert spec.horizon_us == 123 * MSEC
        assert spec.scheme == "smp"

    def test_never_crashes_the_whole_fleet_at_once(self):
        # At least one machine must stay up between any crash and its
        # recovery, or every evacuation would be a forced total shed.
        for seed in range(30):
            spec = generate_fleet_scenario(seed)
            down = set()
            for event in spec.faults:
                if isinstance(event, MachineCrash):
                    down.add(event.machine)
                    assert len(down) < len(spec.machines)
                elif isinstance(event, MachineRecover):
                    down.discard(event.machine)

    def test_partitions_stay_inside_the_horizon(self):
        for seed in range(30):
            spec = generate_fleet_scenario(seed)
            for event in spec.faults:
                if isinstance(event, NetworkPartition):
                    assert event.at_us + event.duration_us <= spec.horizon_us


class TestRecords:
    def test_record_schema_matches_the_campaign_corpus(self):
        record = run_fleet_fuzz_record(0)
        assert set(record) == {
            "seed", "fingerprint", "verdict", "violations", "checkpoints",
            "events", "digest", "fleet",
        }
        assert record["fleet"] is True
        assert record["verdict"] in ("ok", "violation")
        json.dumps(record)  # must be JSON-serialisable as-is

    def test_record_is_a_pure_function_of_the_seed(self):
        assert run_fleet_fuzz_record(5) == run_fleet_fuzz_record(5)

    def test_simsan_override_restores_environment(self, monkeypatch):
        import os
        monkeypatch.delenv("REPRO_SIMSAN", raising=False)
        run_fleet_fuzz_record(0, simsan=True)
        assert "REPRO_SIMSAN" not in os.environ
        monkeypatch.setenv("REPRO_SIMSAN", "1")
        run_fleet_fuzz_record(0, simsan=False)
        assert os.environ["REPRO_SIMSAN"] == "1"


class TestFleetCampaign:
    def test_fleet_campaign_runs_and_resumes(self, tmp_path):
        cfg = CampaignConfig(
            seeds=list(range(8)),
            corpus_path=str(tmp_path / "fleet.jsonl"),
            horizon_us=200 * MSEC,
            simsan=True,
            shard_size=4,
            fleet=True,
        )
        report = run_campaign(cfg)
        assert report.ran == 8
        records = load_corpus(cfg.corpus_path)
        assert all(r.get("fleet") is True for r in records)
        again = run_campaign(cfg)
        assert again.ran == 0 and again.resumed == 8

    def test_fleet_campaign_parallel_matches_serial_bytes(self, tmp_path):
        seeds = list(range(6))
        serial = CampaignConfig(
            seeds=seeds, corpus_path=str(tmp_path / "s.jsonl"),
            horizon_us=200 * MSEC, fleet=True,
        )
        run_campaign(serial)
        parallel = CampaignConfig(
            seeds=seeds, corpus_path=str(tmp_path / "p.jsonl"),
            horizon_us=200 * MSEC, fleet=True,
            workers=2, differential=True,
        )
        report = run_campaign(parallel)
        assert report.ok
        with open(serial.corpus_path, "rb") as a, \
                open(parallel.corpus_path, "rb") as b:
            assert a.read() == b.read()

    def test_seed_sweep_finds_no_violations(self):
        # The acceptance slice of the CI 50-seed soak: every verdict ok
        # under SIMSAN, deterministically.
        for seed in SEEDS:
            record = run_fleet_fuzz_record(
                seed, horizon_us=200 * MSEC, simsan=True
            )
            assert record["verdict"] == "ok", (seed, record["violations"])
