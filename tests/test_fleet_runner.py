"""The fleet runner: epochs, failover, conservation, byte-identity."""

from fractions import Fraction

from repro.faults.fleet import (
    FleetFaultPlan,
    MachineCrash,
    MachineRecover,
    NetworkPartition,
)
from repro.fleet import (
    FleetMachineSpec,
    FleetSpec,
    FleetSpuSpec,
    expected_capacity_integral,
    run_fleet,
    run_fleet_record,
)
from repro.parallel import Executor, SweepPlan, values
from repro.sim.units import MSEC

HORIZON = 400 * MSEC
CRASH_AT = 150 * MSEC


def spu(name, demand=1.0, floor=0.5, jobs=1, rounds=200, compute_us=5000):
    return FleetSpuSpec(
        name=name, demand_cpus=demand, slo_min_fraction=floor,
        jobs=jobs, rounds=rounds, compute_us=compute_us,
    )


def two_machine_fleet(events=(), scheme="piso", seed=0):
    """Machine 0 with 1 CPU of slack, machine 1 fully committed."""
    return FleetSpec(
        machines=[FleetMachineSpec(ncpus=4), FleetMachineSpec(ncpus=4)],
        spus=[
            spu("home-0", demand=3.0),
            spu("svc-1", demand=1.5),
            spu("scratch-1", demand=2.0, floor=0.9),
        ],
        placement={"home-0": 0, "svc-1": 1, "scratch-1": 1},
        scheme=scheme,
        seed=seed,
        horizon_us=HORIZON,
        faults=FleetFaultPlan(list(events)),
    )


class TestQuietFleet:
    def test_no_faults_no_violations_and_full_progress_is_possible(self):
        spec = two_machine_fleet()
        result = run_fleet(spec)
        assert result.ok
        assert result.decisions == [] and result.shed == {}
        # Every SPU stayed home at full contract.
        for s in spec.spus:
            index, fraction = result.placements[s.name]
            assert index == spec.placement[s.name]
            assert fraction == 1
        # Progress is monotone across snapshots and bounded by totals.
        for name, rounds in result.progress.items():
            assert 0 <= rounds <= spec.spu(name).total_rounds

    def test_capacity_integral_matches_derivation(self):
        spec = two_machine_fleet()
        assert expected_capacity_integral(spec, HORIZON) == \
            2 * 4000 * HORIZON


class TestCrashFailover:
    EVENTS = (MachineCrash(at_us=CRASH_AT, machine=1),)

    def test_crash_evacuates_admits_degrades_and_sheds(self):
        result = run_fleet(two_machine_fleet(self.EVENTS))
        assert result.ok
        actions = {d.spu: d.action for d in result.decisions}
        # Machine 0 has 1 CPU of slack.  scratch-1 places first (2.0
        # demand): offered 1/2 < its 0.9 floor -> shed.  svc-1 (1.5)
        # then gets 2/3 of its contract -> degrade.
        assert actions == {"scratch-1": "shed", "svc-1": "degrade"}
        assert "scratch-1" in result.shed
        index, fraction = result.placements["svc-1"]
        assert index == 0
        assert fraction == Fraction(2, 3)

    def test_no_spu_is_lost_and_progress_survives_the_crash(self):
        spec = two_machine_fleet(self.EVENTS)
        result = run_fleet(spec)
        assert set(result.progress) == {s.name for s in spec.spus}
        at_crash = dict(next(
            rounds for when, rounds in result.snapshots if when == CRASH_AT
        ))
        for name in ("svc-1", "scratch-1"):
            # Durable rounds at the crash are never lost: the final
            # count is at least what had been checkpointed.
            assert result.progress[name] >= at_crash[name] > 0

    def test_snapshots_are_monotone_per_spu(self):
        result = run_fleet(two_machine_fleet(self.EVENTS))
        last = {}
        for _, rounds in result.snapshots:
            for name, done in rounds.items():
                assert done >= last.get(name, 0)
                last[name] = done

    def test_crashed_machine_capacity_leaves_the_integral(self):
        spec = two_machine_fleet(self.EVENTS)
        expected = 2 * 4000 * CRASH_AT + 4000 * (HORIZON - CRASH_AT)
        assert expected_capacity_integral(spec, HORIZON) == expected
        # And the runner's incremental accounting agrees (the watchdog
        # would have flagged any disagreement as a violation).
        assert run_fleet(spec).ok

    def test_shed_spu_progress_is_parked_not_zeroed(self):
        result = run_fleet(two_machine_fleet(self.EVENTS))
        assert result.progress["scratch-1"] > 0
        assert result.progress["scratch-1"] < \
            two_machine_fleet().spu("scratch-1").total_rounds


class TestRecoverAndPartition:
    def test_recovered_machine_rejoins_as_spare(self):
        # Crash 1, recover it, then crash 0: the recovered machine 1
        # must be the evacuation target.
        events = (
            MachineCrash(at_us=100 * MSEC, machine=1),
            MachineRecover(at_us=200 * MSEC, machine=1),
            MachineCrash(at_us=300 * MSEC, machine=0),
        )
        result = run_fleet(two_machine_fleet(events))
        assert result.ok
        landings = [
            d for d in result.decisions
            if d.time_us == 300 * MSEC and d.action != "shed"
        ]
        assert landings and all(d.machine == 1 for d in landings)

    def test_partition_blocks_migration_and_forces_shedding(self):
        # Machine 0 is partitioned across the crash: nothing can land.
        events = (
            NetworkPartition(
                at_us=100 * MSEC, machines=(0,), duration_us=200 * MSEC
            ),
            MachineCrash(at_us=CRASH_AT, machine=1),
        )
        result = run_fleet(two_machine_fleet(events))
        assert result.ok
        assert set(result.shed) == {"svc-1", "scratch-1"}
        assert all(
            "no reachable machine" in d.reason
            for d in result.decisions
        )

    def test_partition_expiry_restores_reachability(self):
        # The partition ends before the crash: failover proceeds.
        events = (
            NetworkPartition(
                at_us=50 * MSEC, machines=(0,), duration_us=50 * MSEC
            ),
            MachineCrash(at_us=CRASH_AT, machine=1),
        )
        result = run_fleet(two_machine_fleet(events))
        assert result.placements["svc-1"][0] == 0


class TestRepeatedMigration:
    def test_double_crash_composes_degradation_fractions(self):
        # svc bounces 1 -> 0 -> 2, degraded at each hop; its final
        # fraction must be the *product* of the hops' fractions.
        spec = FleetSpec(
            machines=[
                FleetMachineSpec(ncpus=2),
                FleetMachineSpec(ncpus=2),
                FleetMachineSpec(ncpus=2),
            ],
            spus=[
                spu("anchor-0", demand=1.0, rounds=400),
                spu("svc", demand=2.0, floor=0.25, rounds=400),
                spu("anchor-2", demand=1.5, rounds=400),
            ],
            placement={"anchor-0": 0, "svc": 1, "anchor-2": 2},
            scheme="piso",
            seed=0,
            horizon_us=HORIZON,
            faults=FleetFaultPlan([
                MachineCrash(at_us=100 * MSEC, machine=1),
                MachineCrash(at_us=250 * MSEC, machine=0),
            ]),
        )
        result = run_fleet(spec)
        assert result.ok
        hops = [d for d in result.decisions if d.spu == "svc"]
        assert [d.action for d in hops] == ["degrade", "degrade"]
        # Hop 1: machine 0 has 1000 of 2000 free -> 1/2 of the 2000
        # demanded.  Hop 2: machine 2 has 500 free -> 1/4 incoming
        # offer capped at the incoming 1/2.
        assert hops[0].fraction == Fraction(1, 2)
        assert hops[1].fraction == Fraction(1, 4)
        assert result.placements["svc"] == (2, Fraction(1, 4))
        # Progress accumulated across all three hostings.
        at_first = next(
            rounds for when, rounds in result.snapshots
            if when == 100 * MSEC
        )
        at_second = next(
            rounds for when, rounds in result.snapshots
            if when == 250 * MSEC
        )
        assert result.progress["svc"] >= at_second["svc"] >= at_first["svc"] > 0


class TestDeterminism:
    def test_same_spec_same_digest(self):
        spec = two_machine_fleet((MachineCrash(at_us=CRASH_AT, machine=1),))
        a = run_fleet_record(spec.to_dict())
        b = run_fleet_record(spec.to_dict())
        assert a == b

    def test_serial_vs_parallel_records_are_byte_identical(self):
        payloads = [
            two_machine_fleet(
                (MachineCrash(at_us=CRASH_AT, machine=1),),
                scheme=scheme, seed=seed,
            ).to_dict()
            for scheme in ("smp", "piso")
            for seed in (0, 7)
        ]
        serial = [run_fleet_record(p) for p in payloads]
        parallel = values(Executor(SweepPlan(max_workers=2)).run(run_fleet_record, payloads))
        assert serial == parallel

    def test_seed_changes_the_journal(self):
        spec_a = two_machine_fleet(seed=0)
        spec_b = two_machine_fleet(seed=1)
        assert run_fleet_record(spec_a)["digest"] != \
            run_fleet_record(spec_b)["digest"]

    def test_journal_head_names_the_fleet(self):
        result = run_fleet(two_machine_fleet())
        head = result.journal[0]
        assert "scheme=piso" in head and "machines=2" in head
        assert result.journal[-1].startswith("end |")
