"""Unit tests for the buffer cache."""

import pytest

from repro.core import SHARED_SPU_ID
from repro.fs import BufferCache, UnlimitedPageProvider


@pytest.fixture
def cache():
    return BufferCache(UnlimitedPageProvider(capacity_pages=4))


class TestProvider:
    def test_allocates_until_capacity(self):
        provider = UnlimitedPageProvider(2)
        assert provider.try_allocate(1)
        assert provider.try_allocate(2)
        assert not provider.try_allocate(1)

    def test_free_returns_capacity(self):
        provider = UnlimitedPageProvider(1)
        provider.try_allocate(1)
        provider.free(1)
        assert provider.try_allocate(2)

    def test_free_without_pages_raises(self):
        with pytest.raises(ValueError):
            UnlimitedPageProvider(1).free(1)

    def test_transfer_moves_charge(self):
        provider = UnlimitedPageProvider(2)
        provider.try_allocate(1)
        assert provider.transfer(1, 2)
        assert provider.by_spu[1] == 0
        assert provider.by_spu[2] == 1

    def test_transfer_without_source_fails(self):
        assert not UnlimitedPageProvider(2).transfer(1, 2)

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            UnlimitedPageProvider(0)


class TestInsertLookup:
    def test_miss_then_hit(self, cache):
        assert cache.lookup((1, 0), spu_id=5) is None
        cache.insert((1, 0), spu_id=5, dirty=False, now=0)
        block = cache.lookup((1, 0), spu_id=5)
        assert block is not None
        assert block.spu_charged == 5

    def test_hit_ratio(self, cache):
        cache.lookup((1, 0), 5)
        cache.insert((1, 0), 5, dirty=False, now=0)
        cache.lookup((1, 0), 5)
        assert cache.hit_ratio == 0.5

    def test_double_insert_rejected(self, cache):
        cache.insert((1, 0), 5, dirty=False, now=0)
        with pytest.raises(ValueError):
            cache.insert((1, 0), 5, dirty=False, now=0)

    def test_second_spu_access_marks_shared(self, cache):
        cache.insert((1, 0), 5, dirty=False, now=0)
        block = cache.lookup((1, 0), spu_id=6)
        assert block.spu_charged == SHARED_SPU_ID
        assert cache.provider.by_spu[SHARED_SPU_ID] == 1
        assert cache.provider.by_spu[5] == 0

    def test_shared_block_stays_shared(self, cache):
        cache.insert((1, 0), 5, dirty=False, now=0)
        cache.lookup((1, 0), 6)
        cache.lookup((1, 0), 5)
        assert cache.blocks[(1, 0)].spu_charged == SHARED_SPU_ID


class TestEviction:
    def test_lru_clean_evicted_when_full(self, cache):
        for block_no in range(4):
            cache.insert((1, block_no), 5, dirty=False, now=0)
        cache.lookup((1, 0), 5)  # freshen block 0; block 1 is now LRU
        assert cache.insert((1, 9), 5, dirty=False, now=1) is not None
        assert not cache.contains((1, 1))
        assert cache.contains((1, 0))

    def test_dirty_blocks_not_evicted(self, cache):
        for block_no in range(4):
            cache.insert((1, block_no), 5, dirty=True, now=0)
        assert cache.insert((1, 9), 5, dirty=False, now=1) is None

    def test_same_spu_evicted_first(self, cache):
        cache.insert((1, 0), 5, dirty=False, now=0)  # SPU 5's old block
        for block_no in range(1, 4):
            cache.insert((1, block_no), 6, dirty=False, now=0)
        cache.insert((1, 9), 5, dirty=False, now=1)
        assert not cache.contains((1, 0))  # 5's block went, not 6's

    def test_pinned_blocks_survive(self, cache):
        for block_no in range(4):
            block = cache.insert((1, block_no), 5, dirty=False, now=0)
            block.pinned = True
        assert cache.insert((1, 9), 5, dirty=False, now=1) is None

    def test_public_evict_clean(self, cache):
        cache.insert((1, 0), 5, dirty=False, now=0)
        assert cache.evict_clean(5)
        assert cache.size() == 0

    def test_evict_clean_wrong_spu_fails(self, cache):
        cache.insert((1, 0), 5, dirty=False, now=0)
        assert not cache.evict_clean(6)

    def test_remove_frees_page(self, cache):
        cache.insert((1, 0), 5, dirty=False, now=0)
        cache.remove((1, 0))
        assert cache.provider.used == 0


class TestDirtyTracking:
    def test_mark_dirty_and_clean(self, cache):
        cache.insert((1, 0), 5, dirty=False, now=0)
        cache.mark_dirty((1, 0), now=10)
        assert cache.dirty_count() == 1
        assert cache.blocks[(1, 0)].dirty_since == 10
        cache.mark_clean((1, 0))
        assert cache.dirty_count() == 0

    def test_mark_dirty_bumps_epoch(self, cache):
        cache.insert((1, 0), 5, dirty=False, now=0)
        epoch0 = cache.blocks[(1, 0)].epoch
        cache.mark_dirty((1, 0), 1)
        cache.mark_dirty((1, 0), 2)
        assert cache.blocks[(1, 0)].epoch == epoch0 + 2

    def test_redirty_keeps_original_dirty_since(self, cache):
        cache.insert((1, 0), 5, dirty=True, now=3)
        cache.mark_dirty((1, 0), now=10)
        assert cache.blocks[(1, 0)].dirty_since == 3

    def test_dirty_blocks_oldest_first(self, cache):
        cache.insert((1, 1), 5, dirty=True, now=5)
        cache.insert((1, 0), 5, dirty=True, now=2)
        assert [b.block for b in cache.dirty_blocks()] == [0, 1]

    def test_dirty_blocks_filter_by_spu(self, cache):
        cache.insert((1, 0), 5, dirty=True, now=0)
        cache.insert((1, 1), 6, dirty=True, now=0)
        assert [b.spu_charged for b in cache.dirty_blocks(6)] == [6]

    def test_pinned_dirty_excluded(self, cache):
        block = cache.insert((1, 0), 5, dirty=True, now=0)
        block.pinned = True
        assert cache.dirty_blocks() == []
