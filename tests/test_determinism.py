"""Reproducibility: identical seeds must give identical runs."""

from repro.core import DiskSchedPolicy, piso_scheme
from repro.experiments import run_big_small_copy, run_memory_isolation, run_pmake8
from repro.kernel import Compute, DiskSpec, Kernel, MachineConfig, SetWorkingSet
from repro.disk.model import fast_disk
from repro.sim.units import msecs


def test_kernel_runs_replay_exactly():
    def build_and_run(seed):
        kernel = Kernel(
            MachineConfig(ncpus=2, memory_mb=8,
                          disks=[DiskSpec(geometry=fast_disk())],
                          scheme=piso_scheme(), seed=seed)
        )
        a = kernel.create_spu("a")
        b = kernel.create_spu("b")
        kernel.boot()

        def job():
            yield SetWorkingSet(600, touches_per_ms=1.0)
            yield Compute(msecs(200))

        procs = [kernel.spawn(job(), spu) for spu in (a, b, a)]
        kernel.run()
        return [(p.response_us, p.fault_count, p.cpu_time_us) for p in procs]

    assert build_and_run(11) == build_and_run(11)


def test_different_seeds_differ():
    # The memory experiment draws fault inter-arrivals and victim
    # choices from the seeded streams, so seeds move the numbers.
    a = run_memory_isolation(piso_scheme(), balanced=False, seed=0)
    b = run_memory_isolation(piso_scheme(), balanced=False, seed=99)
    assert a.spu2_response_us != b.spu2_response_us


def test_experiment_drivers_replay_exactly():
    a = run_pmake8(piso_scheme(), balanced=False, seed=3)
    b = run_pmake8(piso_scheme(), balanced=False, seed=3)
    assert a == b


def test_memory_experiment_replays_exactly():
    a = run_memory_isolation(piso_scheme(), balanced=False, seed=5)
    b = run_memory_isolation(piso_scheme(), balanced=False, seed=5)
    assert a == b


def test_chaos_journal_replays_byte_identical():
    # The chaos journal is the replay contract: the same seed must
    # produce the same plan, the same run, and the same journal text.
    from repro.chaos import generate_plan, run_chaos
    from repro.sim.units import MSEC

    def journal(seed):
        plan = generate_plan(seed, horizon_us=1500 * MSEC)
        return "\n".join(run_chaos(plan).journal)

    assert journal(5) == journal(5)
    assert journal(5) != journal(6)
