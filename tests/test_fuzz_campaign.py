"""Fuzz campaigns: the corpus, resume, crash resilience, repro output."""

import json
import os

import pytest

from repro.fuzz.campaign import (
    CampaignConfig,
    CampaignError,
    load_corpus,
    repair_corpus,
    run_campaign,
)
from repro.fuzz.runner import ENV_PLANT
from repro.sim.units import MSEC

HORIZON = 500 * MSEC


def config(tmp_path, seeds, **overrides):
    fields = dict(
        seeds=seeds,
        corpus_path=str(tmp_path / "corpus.jsonl"),
        horizon_us=HORIZON,
        shard_size=4,
    )
    fields.update(overrides)
    return CampaignConfig(**fields)


class TestCorpus:
    def test_missing_corpus_reads_empty(self, tmp_path):
        assert load_corpus(str(tmp_path / "nope.jsonl")) == []

    def test_torn_tail_is_tolerated_and_repaired(self, tmp_path):
        path = str(tmp_path / "corpus.jsonl")
        with open(path, "w") as fh:
            fh.write('{"seed": 1, "verdict": "ok"}\n')
            fh.write('{"seed": 2, "verd')  # killed mid-append
        assert [r["seed"] for r in load_corpus(path)] == [1]
        repair_corpus(path)
        with open(path) as fh:
            assert fh.read() == '{"seed": 1, "verdict": "ok"}\n'

    def test_interior_corruption_is_skipped_with_warning(self, tmp_path):
        path = str(tmp_path / "corpus.jsonl")
        with open(path, "w") as fh:
            fh.write("not json\n")
            fh.write('{"seed": 1, "verdict": "ok"}\n')
        warnings = []
        records = load_corpus(path, warn=warnings.append)
        assert [r["seed"] for r in records] == [1]
        assert len(warnings) == 1
        assert "line 1" in warnings[0]
        assert "re-run on resume" in warnings[0]

    def test_records_missing_seed_or_verdict_are_skipped(self, tmp_path):
        path = str(tmp_path / "corpus.jsonl")
        with open(path, "w") as fh:
            fh.write('{"other": 1}\n')
            fh.write('{"seed": 2, "verdict": "ok"}\n')
        warnings = []
        records = load_corpus(path, warn=warnings.append)
        assert [r["seed"] for r in records] == [2]
        assert len(warnings) == 1
        assert "seed/verdict" in warnings[0]

    def test_corrupt_interior_line_reruns_its_seed_on_resume(self, tmp_path):
        # A campaign whose corpus rots in the middle must resume —
        # skipping the rotten line, re-running the seed it used to
        # hold — rather than abort.
        seeds = list(range(6))
        cfg = config(tmp_path, seeds)
        run_campaign(cfg)
        with open(cfg.corpus_path) as fh:
            lines = fh.readlines()
        pristine = list(lines)
        lines[2] = "@@@ bit rot @@@\n"  # hand-corrupt an interior record
        with open(cfg.corpus_path, "w") as fh:
            fh.writelines(lines)

        report = run_campaign(cfg)
        assert report.ok
        assert report.ran == 1  # exactly the seed the rotten line held
        assert report.resumed == 5
        records = load_corpus(cfg.corpus_path)
        assert sorted(r["seed"] for r in records) == seeds
        # The re-run record is byte-identical to the pre-rot one; only
        # its position moved (appended after the survivors).
        with open(cfg.corpus_path) as fh:
            healed = fh.readlines()
        assert healed[-1] == pristine[2]


class TestCampaign:
    def test_clean_campaign_records_every_seed(self, tmp_path):
        report = run_campaign(config(tmp_path, list(range(6))))
        assert report.ok
        assert report.ran == 6
        assert report.verdicts == {"ok": 6}
        records = load_corpus(str(tmp_path / "corpus.jsonl"))
        assert [r["seed"] for r in records] == list(range(6))

    def test_duplicate_seeds_are_rejected(self, tmp_path):
        with pytest.raises(CampaignError, match="unique"):
            run_campaign(config(tmp_path, [1, 1]))

    def test_resume_skips_recorded_seeds(self, tmp_path):
        cfg = config(tmp_path, list(range(6)))
        run_campaign(cfg)
        again = run_campaign(cfg)
        assert again.ran == 0
        assert again.resumed == 6
        assert again.verdicts == {"ok": 6}

    def test_interrupted_campaign_resumes_byte_identically(self, tmp_path):
        seeds = list(range(10))
        whole = config(tmp_path, seeds, corpus_path=str(tmp_path / "a.jsonl"))
        run_campaign(whole)

        # Same campaign, killed after one shard with a torn tail, then
        # resumed: the final corpus must be byte-identical.
        part = config(tmp_path, seeds, corpus_path=str(tmp_path / "b.jsonl"))
        first = run_campaign(
            config(tmp_path, seeds, corpus_path=part.corpus_path, max_shards=1)
        )
        assert first.stopped_early and first.ran == 4
        with open(part.corpus_path, "ab") as fh:
            fh.write(b'{"seed": 4, "torn')
        run_campaign(part)
        with open(whole.corpus_path, "rb") as a, open(part.corpus_path, "rb") as b:
            assert a.read() == b.read()

    def test_budget_stops_cleanly_between_shards(self, tmp_path):
        report = run_campaign(config(tmp_path, list(range(8)), budget_s=0.0))
        assert report.stopped_early
        assert report.ran == 0
        assert report.ok  # a budget stop is not a failure

    def test_planted_bug_is_found_and_shrunk(self, tmp_path, monkeypatch):
        # The acceptance path: a deliberately broken conservation
        # invariant must be caught within a bounded campaign and leave
        # a minimal, still-failing repro file behind.
        monkeypatch.setenv(ENV_PLANT, "page-leak")
        report = run_campaign(
            config(tmp_path, [0, 1], shrink_budget=16)
        )
        assert not report.ok
        assert report.verdicts == {"violation": 2}
        assert len(report.repro_files) == 2
        for path in report.repro_files:
            with open(path) as fh:
                record = json.load(fh)
            scenario = record["scenario"]
            # Shrunk to the planted essence: no events needed at all.
            assert scenario["workloads"] == []
            assert scenario["bursts"] == []
            assert scenario["faults"] == []
            assert record["violation"]["name"] == "page-conservation"

    def test_resume_heals_missing_repro_files(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_PLANT, "page-leak")
        cfg = config(tmp_path, [0], shrink_budget=16)
        report = run_campaign(cfg)
        os.remove(report.repro_files[0])
        again = run_campaign(cfg)
        assert again.ran == 0
        assert again.repro_files == report.repro_files
        assert os.path.exists(again.repro_files[0])

    def test_parallel_campaign_matches_serial_bytes(self, tmp_path):
        seeds = list(range(8))
        serial = config(tmp_path, seeds, corpus_path=str(tmp_path / "s.jsonl"))
        run_campaign(serial)
        parallel = config(
            tmp_path, seeds, corpus_path=str(tmp_path / "p.jsonl"),
            workers=2, differential=True,
        )
        report = run_campaign(parallel)
        assert report.ok
        with open(serial.corpus_path, "rb") as a, \
                open(parallel.corpus_path, "rb") as b:
            assert a.read() == b.read()
