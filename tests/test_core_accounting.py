"""Unit and property tests for decayed counters and accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.core import CpuTimeAccount, DecayedCounter
from repro.core.accounting import AccountingError, UsageTimeline


class TestDecayedCounter:
    def test_starts_at_zero(self):
        assert DecayedCounter(period=100).value(0) == 0.0

    def test_add_accumulates(self):
        counter = DecayedCounter(period=100)
        counter.add(10, now=0)
        counter.add(5, now=50)
        assert counter.value(50) == 15.0

    def test_halves_after_one_period(self):
        counter = DecayedCounter(period=100)
        counter.add(16, now=0)
        assert counter.value(100) == 8.0

    def test_halves_per_elapsed_period(self):
        counter = DecayedCounter(period=100)
        counter.add(16, now=0)
        assert counter.value(400) == 1.0

    def test_partial_period_does_not_decay(self):
        counter = DecayedCounter(period=100)
        counter.add(16, now=0)
        assert counter.value(99) == 16.0

    def test_decay_is_anchored_to_period_boundaries(self):
        counter = DecayedCounter(period=100)
        counter.add(16, now=0)
        counter.value(150)  # mid-period observation must not reset phase
        assert counter.value(200) == 4.0

    def test_huge_elapsed_time_zeroes(self):
        counter = DecayedCounter(period=1)
        counter.add(1e30, now=0)
        assert counter.value(10_000) == 0.0

    def test_negative_add_raises(self):
        with pytest.raises(AccountingError):
            DecayedCounter(period=100).add(-1, now=0)

    def test_time_going_backwards_raises(self):
        counter = DecayedCounter(period=100)
        counter.add(1, now=500)
        with pytest.raises(AccountingError):
            counter.value(400)

    def test_non_positive_period_raises(self):
        with pytest.raises(AccountingError):
            DecayedCounter(period=0)

    def test_reset(self):
        counter = DecayedCounter(period=100)
        counter.add(16, now=0)
        counter.reset(now=250)
        assert counter.value(250) == 0.0

    @given(
        adds=st.lists(
            st.tuples(st.integers(0, 1000), st.integers(0, 100)), max_size=30
        )
    )
    def test_property_value_never_negative_and_bounded(self, adds):
        counter = DecayedCounter(period=100)
        now = 0
        total = 0.0
        for dt, amount in adds:
            now += dt
            counter.add(amount, now)
            total += amount
            assert 0.0 <= counter.value(now) <= total

    @given(amount=st.floats(0, 1e6), periods=st.integers(0, 40))
    def test_property_decay_is_exact_halving(self, amount, periods):
        counter = DecayedCounter(period=10)
        counter.add(amount, now=0)
        expected = amount / (2 ** periods)
        assert counter.value(periods * 10) == pytest.approx(expected)


class TestCpuTimeAccount:
    def test_charges_accumulate(self):
        account = CpuTimeAccount()
        account.charge(1, 100)
        account.charge(1, 50)
        assert account.total(1) == 150

    def test_unknown_spu_is_zero(self):
        assert CpuTimeAccount().total(9) == 0

    def test_negative_charge_raises(self):
        with pytest.raises(AccountingError):
            CpuTimeAccount().charge(1, -5)

    def test_as_dict_is_a_copy(self):
        account = CpuTimeAccount()
        account.charge(1, 10)
        snapshot = account.as_dict()
        snapshot[1] = 999
        assert account.total(1) == 10


class TestUsageTimeline:
    def test_peak_and_mean(self):
        timeline = UsageTimeline()
        timeline.record(0, 10, 10, 4)
        timeline.record(1, 10, 10, 8)
        assert timeline.peak_used() == 8
        assert timeline.mean_used() == 6.0

    def test_empty_timeline(self):
        timeline = UsageTimeline()
        assert timeline.peak_used() == 0
        assert timeline.mean_used() == 0.0
