"""The SLO admission controller: admit / degrade / shed, deterministically."""

from fractions import Fraction

import pytest

from repro.fleet import (
    ADMIT,
    DEGRADE,
    SHED,
    AdmissionController,
    FleetSpuSpec,
    JobCheckpoint,
    MachineCapacity,
    SpuCheckpoint,
)
from repro.fleet.checkpoint import fresh_jobs


def ckpt(name, demand=1.0, floor=0.5, fraction=Fraction(1)):
    spec = FleetSpuSpec(
        name=name, demand_cpus=demand, slo_min_fraction=floor,
        jobs=1, rounds=10,
    )
    return SpuCheckpoint(
        spec=spec, fraction=fraction, cpu_time_us=0, jobs=fresh_jobs(spec),
    )


def machine(index, capacity_mcpu, committed=0):
    return MachineCapacity(
        index=index,
        capacity_mcpu=capacity_mcpu,
        committed_mcpu=Fraction(committed),
    )


def place(evacuees, machines, now=100):
    return AdmissionController().place(now, evacuees, machines)


class TestDecisions:
    def test_full_fit_is_admitted(self):
        [(_, decision)] = place([ckpt("svc", demand=1.0)],
                                [machine(0, 4000, committed=2000)])
        assert decision.action == ADMIT
        assert decision.machine == 0
        assert decision.fraction == 1

    def test_partial_fit_above_floor_is_degraded(self):
        # 1000 mCPU free against 1500 demanded: offered 2/3 >= 0.5.
        [(_, decision)] = place([ckpt("svc", demand=1.5, floor=0.5)],
                                [machine(0, 4000, committed=3000)])
        assert decision.action == DEGRADE
        assert decision.fraction == Fraction(2, 3)

    def test_below_floor_is_shed(self):
        [(_, decision)] = place([ckpt("scratch", demand=1.5, floor=0.9)],
                                [machine(0, 4000, committed=3000)])
        assert decision.action == SHED
        assert decision.machine is None
        assert decision.fraction == 0
        assert "below" in decision.reason and "SLO floor" in decision.reason

    def test_no_capacity_anywhere_is_shed(self):
        [(_, decision)] = place([ckpt("svc")],
                                [machine(0, 2000, committed=2000)])
        assert decision.action == SHED
        assert "uncommitted capacity" in decision.reason

    def test_no_reachable_machine_is_shed(self):
        target = machine(0, 4000)
        target.reachable = False
        [(_, decision)] = place([ckpt("svc")], [target])
        assert decision.action == SHED
        assert "no reachable machine" in decision.reason

    def test_incoming_degradation_caps_the_offer(self):
        # An SPU already at 1/2 can be admitted "in full" at 1/2: the
        # offer is min(incoming, free/demand).
        [(_, decision)] = place(
            [ckpt("svc", demand=1.0, fraction=Fraction(1, 2))],
            [machine(0, 4000, committed=1000)],
        )
        assert decision.action == ADMIT
        assert decision.fraction == Fraction(1, 2)


class TestOrdering:
    def test_largest_demand_places_first(self):
        # One slot of 2000 free: the 2-CPU SPU takes it in full, the
        # 1-CPU one gets what's left.
        results = place(
            [ckpt("small", demand=1.0, floor=0.25),
             ckpt("big", demand=2.0, floor=0.25)],
            [machine(0, 4000, committed=1500)],
        )
        by_name = {c.name: d for c, d in results}
        assert by_name["big"].action == ADMIT
        assert by_name["small"].action == DEGRADE
        assert by_name["small"].fraction == Fraction(1, 2)
        # ...and the output order is the placement order: big first.
        assert [c.name for c, _ in results] == ["big", "small"]

    def test_demand_ties_break_by_name(self):
        results = place(
            [ckpt("zeta"), ckpt("alpha")],
            [machine(0, 4000)],
        )
        assert [c.name for c, _ in results] == ["alpha", "zeta"]

    def test_best_fraction_wins_then_lowest_index(self):
        # Machine 1 offers the full contract, machine 0 only half.
        [(_, decision)] = place(
            [ckpt("svc", demand=2.0)],
            [machine(0, 4000, committed=3000), machine(1, 4000, committed=0)],
        )
        assert decision.machine == 1
        # Equal offers: lowest index.
        [(_, tie)] = place(
            [ckpt("svc", demand=2.0)],
            [machine(0, 4000), machine(1, 4000)],
        )
        assert tie.machine == 0

    def test_commitment_mutates_between_decisions(self):
        # Two 3-CPU SPUs into one 4-CPU machine: the first admission
        # consumes the capacity the second wanted.
        results = place(
            [ckpt("a", demand=3.0, floor=0.9), ckpt("b", demand=3.0, floor=0.9)],
            [machine(0, 4000)],
        )
        actions = {c.name: d.action for c, d in results}
        assert actions == {"a": ADMIT, "b": SHED}

    def test_same_inputs_same_decisions(self):
        def run():
            return [
                (c.name, d.action, d.machine, d.fraction)
                for c, d in place(
                    [ckpt("a", demand=1.5), ckpt("b", demand=1.5),
                     ckpt("c", demand=0.5, floor=0.25)],
                    [machine(0, 2000), machine(1, 2000, committed=1000)],
                )
            ]
        assert run() == run()


class TestCheckpointValues:
    def test_fraction_must_be_in_unit_interval(self):
        with pytest.raises(ValueError, match="outside"):
            ckpt("svc", fraction=Fraction(3, 2))

    def test_job_rounds_bounded(self):
        with pytest.raises(ValueError, match="rounds done"):
            JobCheckpoint(name="j", rounds_total=5, rounds_done=6)

    def test_decision_render_names_everything(self):
        [(_, decision)] = place([ckpt("svc", demand=1.5, floor=0.5)],
                                [machine(0, 4000, committed=3000)])
        text = decision.render()
        assert "svc" in text and "degrade" in text and "machine 0" in text
