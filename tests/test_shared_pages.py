"""Integration tests for shared-page accounting (paper Section 2.2/3.2).

Pages touched by multiple SPUs — shared libraries, common input files —
are recharged to the ``shared`` SPU, whose cost is effectively borne by
all user SPUs because entitlements are computed from the remaining
pool.
"""

import pytest

from repro.core import SHARED_SPU_ID, piso_scheme
from repro.disk.model import fast_disk
from repro.kernel import Compute, DiskSpec, Kernel, MachineConfig, ReadFile
from repro.metrics import format_bars
from repro.sim.units import KB, msecs


@pytest.fixture
def kernel():
    k = Kernel(
        MachineConfig(ncpus=2, memory_mb=16,
                      disks=[DiskSpec(geometry=fast_disk())],
                      scheme=piso_scheme())
    )
    k.create_spu("a")
    k.create_spu("b")
    k.boot()
    return k


def reader(file):
    yield ReadFile(file, 0, file.size_bytes)
    yield Compute(msecs(5))


class TestSharedLibraryPages:
    def test_second_spu_touch_moves_pages_to_shared(self, kernel):
        spu_a, spu_b = kernel.registry.active_user_spus()
        libc = kernel.fs.create(0, "libc.so", 64 * KB)
        kernel.spawn(reader(libc), spu_a)
        kernel.run()
        assert spu_a.memory().used >= 16  # charged to the first toucher
        shared_before = kernel.registry.shared_spu.memory().used

        kernel.spawn(reader(libc), spu_b)
        kernel.run()
        shared_after = kernel.registry.shared_spu.memory().used
        assert shared_after - shared_before >= 16
        assert spu_a.memory().used == 0  # recharged away from A
        assert spu_b.memory().used == 0  # never charged to B at all

    def test_private_files_stay_private(self, kernel):
        spu_a, spu_b = kernel.registry.active_user_spus()
        mine = kernel.fs.create(0, "a-data", 32 * KB)
        yours = kernel.fs.create(0, "b-data", 32 * KB)
        kernel.spawn(reader(mine), spu_a)
        kernel.spawn(reader(yours), spu_b)
        kernel.run()
        assert kernel.registry.shared_spu.memory().used == 0
        assert spu_a.memory().used >= 8
        assert spu_b.memory().used >= 8

    def test_shared_growth_shrinks_everyones_entitlement(self, kernel):
        spu_a, spu_b = kernel.registry.active_user_spus()
        entitled_before = spu_a.memory().entitled
        libc = kernel.fs.create(0, "libc.so", 512 * KB)
        kernel.spawn(reader(libc), spu_a)
        kernel.run()
        kernel.spawn(reader(libc), spu_b)
        kernel.run()
        kernel.memdaemon.rebalance()
        # 128 shared pages came off the divisible pool: both SPUs'
        # entitlements dropped by ~64 pages.
        assert spu_a.memory().entitled <= entitled_before - 50
        assert spu_a.memory().entitled == pytest.approx(
            spu_b.memory().entitled, abs=1
        )

    def test_second_read_of_shared_file_hits_cache(self, kernel):
        spu_a, spu_b = kernel.registry.active_user_spus()
        libc = kernel.fs.create(0, "libc.so", 64 * KB)
        kernel.spawn(reader(libc), spu_a)
        kernel.run()
        requests_before = kernel.drives[0].stats.count()
        kernel.spawn(reader(libc), spu_b)
        kernel.run()
        assert kernel.drives[0].stats.count() == requests_before


class TestFormatBars:
    def test_renders_scaled_bars(self):
        out = format_bars(["SMP", "PIso"], [156.0, 100.0], width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == round(10 * 100 / 156)

    def test_title_and_unit(self):
        out = format_bars(["x"], [5.0], title="T", unit="%")
        assert out.splitlines()[0] == "T"
        assert "5%" in out

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            format_bars(["a"], [1.0, 2.0])

    def test_nonpositive_peak_rejected(self):
        with pytest.raises(ValueError):
            format_bars(["a"], [0.0])
