"""Unit tests for time/size unit helpers."""

import pytest

from repro.sim import units


class TestTime:
    def test_msec_is_thousand_usec(self):
        assert units.MSEC == 1000 * units.USEC

    def test_sec_is_million_usec(self):
        assert units.SEC == 1_000_000 * units.USEC

    def test_msecs_converts(self):
        assert units.msecs(30) == 30_000

    def test_msecs_rounds_fractions(self):
        assert units.msecs(0.5) == 500
        assert units.msecs(0.0004) == 0

    def test_secs_converts(self):
        assert units.secs(2) == 2_000_000

    def test_usecs_identity(self):
        assert units.usecs(123) == 123

    def test_to_seconds_roundtrip(self):
        assert units.to_seconds(units.secs(1.5)) == pytest.approx(1.5)

    def test_to_millis_roundtrip(self):
        assert units.to_millis(units.msecs(2.5)) == pytest.approx(2.5)


class TestSizes:
    def test_page_is_4k(self):
        assert units.PAGE_SIZE == 4096

    def test_sector_is_512(self):
        assert units.SECTOR_SIZE == 512

    def test_sectors_per_page(self):
        assert units.SECTORS_PER_PAGE == 8

    def test_pages_rounds_up(self):
        assert units.pages(1) == 1
        assert units.pages(4096) == 1
        assert units.pages(4097) == 2

    def test_pages_of_zero(self):
        assert units.pages(0) == 0

    def test_sectors_rounds_up(self):
        assert units.sectors(1) == 1
        assert units.sectors(512) == 1
        assert units.sectors(513) == 2

    def test_mb(self):
        assert units.MB == 1024 * 1024
