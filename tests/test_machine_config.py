"""MachineConfig validation: nonsensical machines fail at construction."""

import pytest

from repro.kernel import DiskSpec, Kernel, MachineConfig
from repro.kernel.machine import NicSpec


class TestMachineConfigValidation:
    def test_defaults_are_valid(self):
        config = MachineConfig()
        assert config.ncpus == 8
        assert config.boot_kernel_pages == config.total_pages // 16

    @pytest.mark.parametrize("ncpus", [0, -1, -100])
    def test_bad_cpu_count(self, ncpus):
        with pytest.raises(ValueError):
            MachineConfig(ncpus=ncpus)

    @pytest.mark.parametrize("memory_mb", [0, -8])
    def test_bad_memory(self, memory_mb):
        with pytest.raises(ValueError):
            MachineConfig(memory_mb=memory_mb)

    def test_no_disks(self):
        with pytest.raises(ValueError):
            MachineConfig(disks=[])

    def test_negative_seed(self):
        with pytest.raises(ValueError):
            MachineConfig(seed=-1)

    def test_negative_kernel_pages(self):
        with pytest.raises(ValueError):
            MachineConfig(kernel_pages=-5)

    def test_kernel_pages_swallow_machine(self):
        config_pages = MachineConfig(memory_mb=16).total_pages
        with pytest.raises(ValueError):
            MachineConfig(memory_mb=16, kernel_pages=config_pages)
        with pytest.raises(ValueError):
            MachineConfig(memory_mb=16, kernel_pages=config_pages + 1)

    def test_kernel_pages_at_limit_boots(self):
        config = MachineConfig(memory_mb=16, kernel_pages=10)
        kernel = Kernel(config)
        kernel.create_spu("u")
        kernel.boot()
        assert kernel.registry.kernel_spu.memory().used == 10

    def test_disk_spec_validation(self):
        with pytest.raises(ValueError):
            DiskSpec(swap_sectors=-1)
        geometry = DiskSpec().geometry
        with pytest.raises(ValueError):
            DiskSpec(swap_sectors=geometry.total_sectors)

    def test_nic_spec_validation(self):
        with pytest.raises(ValueError):
            NicSpec(bandwidth_mbps=0)
        with pytest.raises(ValueError):
            NicSpec(bandwidth_mbps=-10.0)
