"""Unit and property tests for contracts and apportionment."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    ContractError,
    EqualShareContract,
    Resource,
    SPURegistry,
    ScaledContract,
    WeightedContract,
    apportion,
)


class TestApportion:
    def test_even_split(self):
        assert apportion(12, [1, 1, 1]) == [4, 4, 4]

    def test_largest_remainder_gets_leftover(self):
        assert apportion(10, [1, 1, 1]) == [4, 3, 3]

    def test_weighted(self):
        assert apportion(9, [1, 2]) == [3, 6]

    def test_zero_total(self):
        assert apportion(0, [1, 2, 3]) == [0, 0, 0]

    def test_zero_weight_gets_nothing(self):
        assert apportion(10, [0, 1]) == [0, 10]

    def test_empty_weights(self):
        assert apportion(10, []) == []

    def test_negative_total_raises(self):
        with pytest.raises(ContractError):
            apportion(-1, [1])

    def test_negative_weight_raises(self):
        with pytest.raises(ContractError):
            apportion(10, [1, -1])

    def test_all_zero_weights_raise(self):
        with pytest.raises(ContractError):
            apportion(10, [0, 0])

    @given(
        total=st.integers(0, 10_000),
        weights=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=20).filter(
            lambda ws: sum(ws) > 0
        ),
    )
    def test_property_sums_exactly(self, total, weights):
        parts = apportion(total, weights)
        assert sum(parts) == total
        assert all(p >= 0 for p in parts)

    @given(
        total=st.integers(1, 10_000),
        n=st.integers(1, 20),
    )
    def test_property_equal_weights_differ_by_at_most_one(self, total, n):
        parts = apportion(total, [1.0] * n)
        assert max(parts) - min(parts) <= 1

    @given(total=st.integers(0, 1000))
    def test_property_single_weight_takes_all(self, total):
        assert apportion(total, [3.7]) == [total]


class TestContracts:
    @pytest.fixture
    def registry(self):
        return SPURegistry()

    def test_equal_share(self, registry):
        spus = [registry.create(n) for n in "abc"]
        shares = EqualShareContract().entitlements(9, spus)
        assert sorted(shares.values()) == [3, 3, 3]

    def test_weighted_by_name(self, registry):
        a = registry.create("a")
        b = registry.create("b")
        contract = WeightedContract({"a": 1, "b": 2})
        shares = contract.entitlements(9, [a, b])
        assert shares[a.spu_id] == 3
        assert shares[b.spu_id] == 6

    def test_weighted_default_weight(self, registry):
        a = registry.create("a")
        b = registry.create("unlisted")
        contract = WeightedContract({"a": 3}, default_weight=1)
        shares = contract.entitlements(8, [a, b])
        assert shares[a.spu_id] == 6
        assert shares[b.spu_id] == 2

    def test_negative_weight_rejected(self):
        with pytest.raises(ContractError):
            WeightedContract({"a": -1})

    def test_negative_default_rejected(self):
        with pytest.raises(ContractError):
            WeightedContract({}, default_weight=-1)


class TestScaledContract:
    @pytest.fixture
    def registry(self):
        return SPURegistry()

    def test_base_must_be_a_contract(self):
        with pytest.raises(ContractError, match="SharingContract"):
            ScaledContract("not a contract")

    def test_fraction_must_be_numeric_and_bounded(self):
        base = EqualShareContract()
        with pytest.raises(ContractError, match="numeric"):
            ScaledContract(base, {"a": "half"})
        with pytest.raises(ContractError, match=r"\[0, 1\]"):
            ScaledContract(base, {"a": 2})
        with pytest.raises(ContractError, match=r"\[0, 1\]"):
            ScaledContract(base).scale("a", -1)

    def test_unlisted_spus_keep_full_weight(self, registry):
        spus = [registry.create(n) for n in "ab"]
        contract = ScaledContract(EqualShareContract(), {"b": Fraction(1, 2)})
        assert contract.fraction_of("a") == 1
        shares = contract.entitlements(9, spus)
        assert shares[spus[0].spu_id] == 6
        assert shares[spus[1].spu_id] == 3

    def test_scale_composes_multiplicatively(self):
        contract = ScaledContract(EqualShareContract())
        once = contract.scale("a", Fraction(1, 2))
        twice = once.scale("a", Fraction(3, 4))
        # The satellite claim: two renegotiations end at the *product*
        # of the surviving-capacity fractions, not whichever came last.
        assert twice.fraction_of("a") == Fraction(3, 8)
        # ...and each step returned a new contract, leaving the
        # intermediate states intact.
        assert contract.fraction_of("a") == 1
        assert once.fraction_of("a") == Fraction(1, 2)

    def test_restore_returns_to_base_weight(self):
        contract = ScaledContract(EqualShareContract(), {"a": Fraction(1, 3)})
        assert contract.restore("a").fraction_of("a") == 1
        assert contract.fraction_of("a") == Fraction(1, 3)

    def test_weights_multiply_the_base(self, registry):
        spus = [registry.create(n) for n in "ab"]
        contract = ScaledContract(
            WeightedContract({"a": 2.0, "b": 4.0}), {"b": Fraction(1, 2)}
        )
        assert contract.weights(spus) == [2.0, 2.0]


class TestRepeatedRenegotiation:
    """A contract renegotiated twice on a live kernel (satellite 4).

    Mirrors the fleet failover path: an SPU admitted at a degraded
    fraction, then degraded again by a second capacity loss, must end
    at the product of the fractions — and the invariant watchdog must
    accept every intermediate state, because the fleet runs its
    per-machine watchdogs across exactly these renegotiations.
    """

    def _booted(self):
        from repro.core import piso_scheme
        from repro.disk.model import fast_disk
        from repro.kernel import DiskSpec, Kernel, MachineConfig

        kernel = Kernel(MachineConfig(
            ncpus=2,
            memory_mb=16,
            disks=[DiskSpec(geometry=fast_disk())],
            scheme=piso_scheme(),
            contract=ScaledContract(WeightedContract({"a": 1.0, "b": 1.0})),
            seed=0,
        ))
        spus = [kernel.create_spu(n) for n in "ab"]
        kernel.boot()
        return kernel, spus

    def _entitled(self, kernel, spu):
        return spu.levels[Resource.CPU].entitled

    def test_two_renegotiations_compose_and_stay_invariant_clean(self):
        from repro.faults import InvariantWatchdog
        from repro.kernel import Compute
        from repro.sim.units import msecs

        kernel, (a, b) = self._booted()
        watchdog = InvariantWatchdog(kernel)
        total = self._entitled(kernel, a) + self._entitled(kernel, b)
        for spu in (a, b):
            kernel.spawn(iter([Compute(msecs(40))]), spu)

        watchdog.check()
        kernel.run(until=msecs(5))

        # First capacity loss: b degraded to 1/2 of its contract.
        contract = kernel.config.contract.scale("b", Fraction(1, 2))
        kernel.set_contract(contract)
        watchdog.check()
        expected = contract.entitlements(
            total, kernel.registry.active_user_spus()
        )
        assert self._entitled(kernel, b) == expected[b.spu_id]
        assert self._entitled(kernel, a) + self._entitled(kernel, b) == total
        kernel.run(until=msecs(10))

        # Second loss: a further 3/4 — the fraction must be 3/8, the
        # product, and the entitlement must match a contract built
        # directly at 3/8.
        contract = kernel.config.contract.scale("b", Fraction(3, 4))
        kernel.set_contract(contract)
        watchdog.check()
        assert contract.fraction_of("b") == Fraction(3, 8)
        direct = ScaledContract(
            WeightedContract({"a": 1.0, "b": 1.0}), {"b": Fraction(3, 8)}
        ).entitlements(total, kernel.registry.active_user_spus())
        assert self._entitled(kernel, b) == direct[b.spu_id]
        assert self._entitled(kernel, a) + self._entitled(kernel, b) == total
        kernel.run(until=msecs(20))
        watchdog.check()

        assert kernel.renegotiations >= 2
        assert watchdog.violations == []

    def test_restore_after_degradation_renegotiates_back(self):
        from repro.faults import InvariantWatchdog

        kernel, (a, b) = self._booted()
        watchdog = InvariantWatchdog(kernel)
        before = self._entitled(kernel, b)
        kernel.set_contract(kernel.config.contract.scale("b", Fraction(1, 2)))
        assert self._entitled(kernel, b) < before
        kernel.set_contract(kernel.config.contract.restore("b"))
        watchdog.check()
        assert self._entitled(kernel, b) == before
        assert watchdog.violations == []
