"""Unit and property tests for contracts and apportionment."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    ContractError,
    EqualShareContract,
    SPURegistry,
    WeightedContract,
    apportion,
)


class TestApportion:
    def test_even_split(self):
        assert apportion(12, [1, 1, 1]) == [4, 4, 4]

    def test_largest_remainder_gets_leftover(self):
        assert apportion(10, [1, 1, 1]) == [4, 3, 3]

    def test_weighted(self):
        assert apportion(9, [1, 2]) == [3, 6]

    def test_zero_total(self):
        assert apportion(0, [1, 2, 3]) == [0, 0, 0]

    def test_zero_weight_gets_nothing(self):
        assert apportion(10, [0, 1]) == [0, 10]

    def test_empty_weights(self):
        assert apportion(10, []) == []

    def test_negative_total_raises(self):
        with pytest.raises(ContractError):
            apportion(-1, [1])

    def test_negative_weight_raises(self):
        with pytest.raises(ContractError):
            apportion(10, [1, -1])

    def test_all_zero_weights_raise(self):
        with pytest.raises(ContractError):
            apportion(10, [0, 0])

    @given(
        total=st.integers(0, 10_000),
        weights=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=20).filter(
            lambda ws: sum(ws) > 0
        ),
    )
    def test_property_sums_exactly(self, total, weights):
        parts = apportion(total, weights)
        assert sum(parts) == total
        assert all(p >= 0 for p in parts)

    @given(
        total=st.integers(1, 10_000),
        n=st.integers(1, 20),
    )
    def test_property_equal_weights_differ_by_at_most_one(self, total, n):
        parts = apportion(total, [1.0] * n)
        assert max(parts) - min(parts) <= 1

    @given(total=st.integers(0, 1000))
    def test_property_single_weight_takes_all(self, total):
        assert apportion(total, [3.7]) == [total]


class TestContracts:
    @pytest.fixture
    def registry(self):
        return SPURegistry()

    def test_equal_share(self, registry):
        spus = [registry.create(n) for n in "abc"]
        shares = EqualShareContract().entitlements(9, spus)
        assert sorted(shares.values()) == [3, 3, 3]

    def test_weighted_by_name(self, registry):
        a = registry.create("a")
        b = registry.create("b")
        contract = WeightedContract({"a": 1, "b": 2})
        shares = contract.entitlements(9, [a, b])
        assert shares[a.spu_id] == 3
        assert shares[b.spu_id] == 6

    def test_weighted_default_weight(self, registry):
        a = registry.create("a")
        b = registry.create("unlisted")
        contract = WeightedContract({"a": 3}, default_weight=1)
        shares = contract.entitlements(8, [a, b])
        assert shares[a.spu_id] == 6
        assert shares[b.spu_id] == 2

    def test_negative_weight_rejected(self):
        with pytest.raises(ContractError):
            WeightedContract({"a": -1})

    def test_negative_default_rejected(self):
        with pytest.raises(ContractError):
            WeightedContract({}, default_weight=-1)
