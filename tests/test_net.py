"""Unit tests for the network substrate."""

import pytest

from repro.core import SPURegistry
from repro.net import (
    FairShareLinkScheduler,
    FifoLinkScheduler,
    MTU_BYTES,
    NetByteLedger,
    NetOp,
    NetworkLink,
    Packet,
    ThresholdFairLinkScheduler,
    make_link_scheduler,
)
from repro.sim import Engine


def packet(spu_id, nbytes=1000):
    p = Packet(spu_id, NetOp.SEND, nbytes)
    p.enqueue_time = 0
    return p


class FakeLedger:
    def __init__(self, ratios):
        self.ratios = ratios

    def usage_ratio(self, spu_id, now):
        return self.ratios.get(spu_id, 0.0)


@pytest.fixture
def link_setup():
    engine = Engine(seed=4)
    registry = SPURegistry()
    a = registry.create("a")
    b = registry.create("b")
    for spu in (a, b):
        spu.disk_bw().set_entitled(1)
    ledger = NetByteLedger(registry)
    link = NetworkLink(engine, FairShareLinkScheduler(), ledger,
                       bandwidth_mbps=100.0, per_packet_overhead_us=0)
    return engine, link, a, b


class TestPacket:
    def test_zero_bytes_rejected(self):
        with pytest.raises(ValueError):
            Packet(1, NetOp.SEND, 0)

    def test_wait_before_transmit_raises(self):
        with pytest.raises(ValueError):
            _ = Packet(1, NetOp.SEND, 10).wait_us


class TestSchedulers:
    def test_fifo_is_arrival_order(self):
        first = packet(2)
        second = packet(1)
        sched = FifoLinkScheduler()
        assert sched.select([second, first], 0, FakeLedger({})) is first

    def test_fair_picks_neediest(self):
        sched = FairShareLinkScheduler()
        queue = [packet(1), packet(2)]
        assert sched.select(queue, 0, FakeLedger({1: 100.0, 2: 1.0})).spu_id == 2

    def test_fair_fifo_within_spu(self):
        sched = FairShareLinkScheduler()
        first = packet(1)
        second = packet(1)
        assert sched.select([second, first], 0, FakeLedger({1: 0.0})) is first

    def test_threshold_defers_hog(self):
        sched = ThresholdFairLinkScheduler(threshold=10.0)
        hog_first = packet(1)
        light = packet(2)
        ledger = FakeLedger({1: 100.0, 2: 0.0})
        assert sched.select([hog_first, light], 0, ledger).spu_id == 2

    def test_threshold_fifo_when_balanced(self):
        sched = ThresholdFairLinkScheduler(threshold=1000.0)
        first = packet(1)
        second = packet(2)
        ledger = FakeLedger({1: 5.0, 2: 5.0})
        assert sched.select([first, second], 0, ledger) is first

    def test_threshold_single_spu_passes(self):
        sched = ThresholdFairLinkScheduler(threshold=0.0)
        p = packet(1)
        assert sched.select([p], 0, FakeLedger({1: 1e9})) is p

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            ThresholdFairLinkScheduler(-1.0)

    def test_factory(self):
        assert isinstance(make_link_scheduler("fifo"), FifoLinkScheduler)
        assert isinstance(make_link_scheduler("fair"), FairShareLinkScheduler)
        assert make_link_scheduler("threshold", 5.0).threshold == 5.0
        with pytest.raises(ValueError):
            make_link_scheduler("wrr")


class TestLink:
    def test_serialization_delay(self, link_setup):
        _engine, link, _a, _b = link_setup
        # 1500 bytes at 100 Mb/s = 120 us.
        assert link.transmit_us(1500) == 120

    def test_send_fragments_to_mtu(self, link_setup):
        engine, link, a, _b = link_setup
        n = link.send(a.spu_id, 4000)
        assert n == 3  # 1500 + 1500 + 1000
        engine.run()
        assert link.stats.count() == 3
        assert link.stats.total_bytes() == 4000

    def test_completion_fires_after_last_fragment(self, link_setup):
        engine, link, a, _b = link_setup
        done = []
        link.send(a.spu_id, 3000, on_complete=lambda: done.append(engine.now))
        engine.run()
        assert done == [link.stats.completed[-1].finish_time]

    def test_bytes_charged_to_ledger(self, link_setup):
        engine, link, a, _b = link_setup
        link.send(a.spu_id, 3000)
        engine.run()
        assert link.ledger.usage_ratio(a.spu_id, engine.now) == 3000.0

    def test_fair_link_interleaves_senders(self, link_setup):
        engine, link, a, b = link_setup
        link.send(a.spu_id, MTU_BYTES * 20)
        link.send(b.spu_id, MTU_BYTES * 20)
        engine.run()
        order = [p.spu_id for p in sorted(link.stats.completed,
                                          key=lambda p: p.start_time)]
        # After the first packet, the two SPUs alternate.
        switches = sum(1 for x, y in zip(order, order[1:]) if x != y)
        assert switches > 10

    def test_zero_byte_send_rejected(self, link_setup):
        _engine, link, a, _b = link_setup
        with pytest.raises(ValueError):
            link.send(a.spu_id, 0)

    def test_bad_rate_rejected(self, link_setup):
        engine, link, _a, _b = link_setup
        with pytest.raises(ValueError):
            NetworkLink(engine, FifoLinkScheduler(), link.ledger, bandwidth_mbps=0)


class TestKernelIntegration:
    def test_send_network_syscall(self):
        from repro.core import piso_scheme
        from repro.disk.model import fast_disk
        from repro.kernel import (
            DiskSpec, Kernel, MachineConfig, NicSpec, SendNetwork,
        )

        kernel = Kernel(
            MachineConfig(
                ncpus=1, memory_mb=8, disks=[DiskSpec(geometry=fast_disk())],
                nics=[NicSpec(bandwidth_mbps=100.0, policy="fair")],
                scheme=piso_scheme(),
            )
        )
        spu = kernel.create_spu("u")
        kernel.boot()

        def job():
            yield SendNetwork(15_000)

        proc = kernel.spawn(job(), spu)
        kernel.run()
        # 15 kB at 100 Mb/s = 1.2 ms + per-packet overhead.
        assert proc.response_us >= 1200
        assert kernel.links[0].stats.total_bytes() == 15_000

    def test_unknown_nic_raises(self):
        from repro.core import piso_scheme
        from repro.disk.model import fast_disk
        from repro.kernel import (
            DiskSpec, Kernel, KernelError, MachineConfig, SendNetwork,
        )

        kernel = Kernel(
            MachineConfig(ncpus=1, memory_mb=8,
                          disks=[DiskSpec(geometry=fast_disk())],
                          scheme=piso_scheme())
        )
        spu = kernel.create_spu("u")
        kernel.boot()

        def job():
            yield SendNetwork(100, nic=3)

        with pytest.raises(KernelError):
            kernel.spawn(job(), spu)


class TestExperiment:
    def test_fair_link_rescues_rpc(self):
        from repro.experiments import run_network_isolation

        fifo = run_network_isolation("fifo")
        fair = run_network_isolation("fair")
        assert fair.rpc_response_s < 0.5 * fifo.rpc_response_s
        assert fair.rpc_wait_ms < 0.25 * fifo.rpc_wait_ms
        # The bulk transfer barely notices.
        assert fair.bulk_response_s < 1.1 * fifo.bulk_response_s

    def test_goodput_unaffected_by_fairness(self):
        from repro.experiments import run_network_isolation

        fifo = run_network_isolation("fifo")
        fair = run_network_isolation("fair")
        assert abs(fair.goodput_mbps - fifo.goodput_mbps) < 5.0
