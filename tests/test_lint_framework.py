"""Framework-level tests for simlint: suppressions, fingerprints,
baseline round-trips, output schemas, and the CLI contract."""

import json
from pathlib import Path

from repro.lint import all_rules, load_baseline, run_lint
from repro.lint import baseline as baseline_mod
from repro.lint.baseline import Baseline, BaselineEntry, from_findings
from repro.lint.cli import main as lint_main
from repro.lint.output import render_json, render_sarif, render_text

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"

BAD_SOURCE = 'import os\n\nMODE = os.getenv("REPRO_MODE")\n'


def write_module(root, relpath, source):
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return path


def lint_tree(root):
    return run_lint([str(root)], root=str(root))


class TestSuppression:
    def test_same_line_disable_comment_suppresses(self, tmp_path):
        write_module(
            tmp_path,
            "repro/sim/clocks.py",
            'import os\n\nMODE = os.getenv("REPRO_MODE")  # simlint: disable=SL104\n',
        )
        assert lint_tree(tmp_path) == []

    def test_disable_comment_only_covers_named_rule(self, tmp_path):
        write_module(
            tmp_path,
            "repro/sim/clocks.py",
            'import os\n\nMODE = os.getenv("REPRO_MODE")  # simlint: disable=SL101\n',
        )
        assert [f.rule for f in lint_tree(tmp_path)] == ["SL104"]

    def test_skip_file_pragma_silences_whole_module(self, tmp_path):
        write_module(
            tmp_path,
            "repro/sim/clocks.py",
            "# simlint: skip-file\n" + BAD_SOURCE,
        )
        assert lint_tree(tmp_path) == []

    def test_without_pragma_the_finding_fires(self, tmp_path):
        write_module(tmp_path, "repro/sim/clocks.py", BAD_SOURCE)
        assert [f.rule for f in lint_tree(tmp_path)] == ["SL104"]


class TestParseErrors:
    def test_syntax_error_reported_as_sl000(self, tmp_path):
        write_module(tmp_path, "repro/sim/broken.py", "def f(:\n")
        findings = lint_tree(tmp_path)
        assert [f.rule for f in findings] == ["SL000"]


class TestFingerprints:
    def test_fingerprint_survives_line_shifts(self, tmp_path):
        path = write_module(tmp_path, "repro/sim/clocks.py", BAD_SOURCE)
        (before,) = lint_tree(tmp_path)
        path.write_text("\n\n\n" + BAD_SOURCE)
        (after,) = lint_tree(tmp_path)
        assert after.line == before.line + 3
        assert after.fingerprint == before.fingerprint

    def test_fingerprint_changes_when_the_line_changes(self, tmp_path):
        path = write_module(tmp_path, "repro/sim/clocks.py", BAD_SOURCE)
        (before,) = lint_tree(tmp_path)
        path.write_text('import os\n\nMODE = os.getenv("OTHER_VAR")\n')
        (after,) = lint_tree(tmp_path)
        assert after.fingerprint != before.fingerprint


class TestBaseline:
    def findings(self, tmp_path):
        write_module(tmp_path, "repro/sim/clocks.py", BAD_SOURCE)
        return lint_tree(tmp_path)

    def test_round_trip_preserves_entries(self, tmp_path):
        findings = self.findings(tmp_path)
        baseline = from_findings(findings)
        blpath = tmp_path / "baseline.json"
        baseline_mod.save(str(blpath), baseline)
        loaded = load_baseline(str(blpath))
        assert loaded.entries == baseline.entries

    def test_diff_splits_new_baselined_stale(self, tmp_path):
        findings = self.findings(tmp_path)
        stale_entry = BaselineEntry(
            rule="SL101", path="repro/sim/gone.py", fingerprint="deadbeef",
            line=1, snippet="time.time()",
        )
        baseline = Baseline(entries=list(from_findings(findings).entries) + [stale_entry])
        new, baselined, stale = baseline.diff(findings)
        assert new == []
        assert baselined == findings
        assert stale == [stale_entry]

    def test_duplicate_findings_consume_entry_budget(self, tmp_path):
        # Two identical lines produce two findings with one fingerprint;
        # a single baseline entry must cover only one of them.
        write_module(
            tmp_path,
            "repro/sim/clocks.py",
            'import os\nos.getenv("X")\nos.getenv("X")\n',
        )
        findings = lint_tree(tmp_path)
        assert len(findings) == 2
        assert findings[0].fingerprint == findings[1].fingerprint
        baseline = from_findings(findings[:1])
        new, baselined, _ = baseline.diff(findings)
        assert len(baselined) == 1 and len(new) == 1

    def test_rewrite_preserves_justifications(self, tmp_path):
        findings = self.findings(tmp_path)
        previous = from_findings(findings)
        entry = previous.entries[0]
        justified = Baseline(
            entries=[
                BaselineEntry(
                    rule=entry.rule, path=entry.path,
                    fingerprint=entry.fingerprint, line=entry.line,
                    snippet=entry.snippet, justification="env read is host-side",
                )
            ]
        )
        refreshed = from_findings(findings, justified)
        assert refreshed.entries[0].justification == "env read is host-side"


class TestOutputSchemas:
    def findings(self, tmp_path):
        write_module(tmp_path, "repro/sim/clocks.py", BAD_SOURCE)
        return lint_tree(tmp_path)

    def test_text_summary_counts(self, tmp_path):
        findings = self.findings(tmp_path)
        report = render_text([], findings)
        assert report.endswith("0 finding(s), 1 baselined")
        report = render_text(findings)
        assert "SL104" in report and report.endswith("1 finding(s)")

    def test_json_schema(self, tmp_path):
        findings = self.findings(tmp_path)
        payload = json.loads(render_json(findings, findings))
        assert payload["tool"] == "simlint"
        assert payload["summary"] == {"new": 1, "baselined": 1}
        for record in payload["findings"]:
            assert set(record) == {
                "rule", "path", "line", "col", "severity", "message",
                "snippet", "fingerprint", "baselined",
            }
        assert [r["baselined"] for r in payload["findings"]] == [False, True]

    def test_sarif_schema(self, tmp_path):
        findings = self.findings(tmp_path)
        sarif = json.loads(render_sarif(findings, all_rules()))
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "simlint"
        declared = {rule["id"] for rule in driver["rules"]}
        assert {r.code for r in all_rules()} <= declared
        (result,) = run["results"]
        assert result["ruleId"] == "SL104"
        assert result["level"] in ("warning", "error")
        assert result["partialFingerprints"]["simlint/v1"] == findings[0].fingerprint
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == findings[0].path
        assert location["region"]["startLine"] == findings[0].line


class TestCli:
    def test_exit_codes_and_baseline_lifecycle(self, tmp_path, capsys):
        target = str(write_module(tmp_path, "repro/sim/clocks.py", BAD_SOURCE))
        blpath = str(tmp_path / "baseline.json")

        # New finding, no baseline: exit 1.
        assert lint_main([target, "--no-baseline"]) == 1
        assert "SL104" in capsys.readouterr().out

        # Write the baseline: exit 0, file created.
        assert lint_main([target, "--baseline", blpath, "--write-baseline"]) == 0
        capsys.readouterr()
        assert Path(blpath).exists()

        # Baselined run: exit 0, finding suppressed.
        assert lint_main([target, "--baseline", blpath]) == 0
        assert "1 baselined" in capsys.readouterr().out

        # A second violation is new on top of the baseline: exit 1.
        Path(target).write_text(BAD_SOURCE + 'OTHER = os.getenv("OTHER")\n')
        assert lint_main([target, "--baseline", blpath]) == 1
        assert "1 finding(s), 1 baselined" in capsys.readouterr().out

        # Fix everything: the surviving entry goes stale, still exit 0.
        Path(target).write_text("import os  # simlint: disable=SL000\n")
        assert lint_main([target, "--baseline", blpath]) == 0
        assert "stale" in capsys.readouterr().out

    def test_json_report_written_to_file(self, tmp_path, capsys):
        target = str(write_module(tmp_path, "repro/sim/clocks.py", BAD_SOURCE))
        out = tmp_path / "report.json"
        assert lint_main(
            [target, "--no-baseline", "--format", "json", "-o", str(out)]
        ) == 1
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert payload["summary"]["new"] == 1

    def test_sarif_report_written_to_file(self, tmp_path, capsys):
        target = str(write_module(tmp_path, "repro/sim/clocks.py", BAD_SOURCE))
        out = tmp_path / "report.sarif"
        assert lint_main(
            [target, "--no-baseline", "--format", "sarif", "-o", str(out)]
        ) == 1
        capsys.readouterr()
        sarif = json.loads(out.read_text())
        assert sarif["runs"][0]["results"][0]["ruleId"] == "SL104"

    def test_rule_filter(self, tmp_path, capsys):
        target = str(
            write_module(
                tmp_path,
                "repro/sim/clocks.py",
                "import time\n\nNOW = time.time()\n" + 'import os\nM = os.getenv("X")\n',
            )
        )
        assert lint_main([target, "--no-baseline", "--rules", "SL101"]) == 1
        out = capsys.readouterr().out
        assert "SL101" in out and "SL104" not in out

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("SL101", "SL106", "SL201", "SL301", "SL401"):
            assert code in out
