"""Unit tests for tracing."""

from repro.sim import NullTracer, Tracer


class TestTracer:
    def test_records_events(self):
        tracer = Tracer()
        tracer.emit(10, "disk", "request", sector=5)
        assert len(tracer) == 1
        record = tracer.records[0]
        assert record.time == 10
        assert record.fields == {"sector": 5}

    def test_category_filter(self):
        tracer = Tracer(categories=["cpu"])
        tracer.emit(1, "disk", "dropped")
        tracer.emit(2, "cpu", "kept")
        assert [r.category for r in tracer.records] == ["cpu"]

    def test_by_category(self):
        tracer = Tracer()
        tracer.emit(1, "a", "x")
        tracer.emit(2, "b", "y")
        tracer.emit(3, "a", "z")
        assert [r.time for r in tracer.by_category("a")] == [1, 3]

    def test_clear(self):
        tracer = Tracer()
        tracer.emit(1, "a", "x")
        tracer.clear()
        assert len(tracer) == 0

    def test_str_contains_fields(self):
        tracer = Tracer()
        tracer.emit(1, "a", "msg", k=3)
        assert "k=3" in str(tracer.records[0])

    def test_enabled_flag(self):
        assert Tracer.enabled is True
        assert NullTracer.enabled is False


class TestNullTracer:
    def test_drops_everything(self):
        tracer = NullTracer()
        tracer.emit(1, "a", "x")
        assert len(tracer) == 0
