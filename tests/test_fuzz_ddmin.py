"""The universal ddmin core: minimisation, budgets, pathological oracles."""

import pytest

from repro.fuzz.ddmin import ddmin


def test_single_culprit_is_isolated():
    items = list(range(16))
    minimal, runs = ddmin(items, lambda s: 11 in s)
    assert minimal == [11]
    assert runs >= 1


def test_interleaved_pair_survives_together():
    # The failure needs two items far apart in the list; ddmin must
    # keep both while discarding everything between and around them.
    items = list(range(10))
    minimal, _ = ddmin(items, lambda s: 2 in s and 7 in s)
    assert minimal == [2, 7]


def test_item_order_is_preserved():
    items = ["a", "b", "c", "d", "e", "f"]
    minimal, _ = ddmin(items, lambda s: "e" in s and "b" in s)
    assert minimal == ["b", "e"]


def test_already_minimal_input_is_returned_unchanged():
    minimal, _ = ddmin([42], lambda s: 42 in s)
    assert minimal == [42]


def test_failure_needing_no_items_shrinks_to_empty():
    # A bug that fires regardless of the schedule (sabotaged kernel,
    # planted leak): the explicit empty-set probe must find it.
    minimal, _ = ddmin(list(range(6)), lambda s: True)
    assert minimal == []


def test_budget_bounds_probe_count():
    calls = []

    def fails(subset):
        calls.append(len(subset))
        return 3 in subset

    minimal, runs = ddmin(list(range(64)), fails, max_runs=5)
    assert runs == len(calls) == 5
    # Whatever the budget, the result still fails.
    assert 3 in minimal


def test_budget_is_never_exceeded_on_complement_probes():
    # Regression: the complement probe runs right after a subset probe,
    # so an unguarded one could overshoot the budget by a single run
    # whenever the subset probe consumed the last slot.
    for budget in range(1, 12):
        calls = []

        def fails(subset):
            calls.append(len(subset))
            return False

        _, runs = ddmin(list(range(9)), fails, max_runs=budget)
        assert runs == len(calls) <= budget


def test_budget_below_one_is_rejected():
    with pytest.raises(ValueError, match="max_runs"):
        ddmin([1, 2], lambda s: True, max_runs=0)


def test_failure_that_stops_reproducing_terminates_with_full_set():
    # A flaky oracle that never fails again after the caller's initial
    # check: every probe misses, so ddmin terminates without reducing.
    minimal, runs = ddmin(list(range(8)), lambda s: False)
    assert minimal == list(range(8))
    assert runs >= 1


def test_conjunction_of_three_scattered_items():
    items = list(range(20))
    need = {1, 9, 17}
    minimal, _ = ddmin(items, lambda s: need <= set(s))
    assert minimal == sorted(need)
