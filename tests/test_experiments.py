"""Integration tests: the paper's headline result *shapes* must hold.

These run the real experiment drivers (each a full machine simulation)
and assert the qualitative relationships the paper reports — who wins,
roughly by how much, where the crossovers are.  Absolute numbers are
not asserted; the substrate is a simulator, not the authors' testbed.
"""

import pytest

from repro.core import DiskSchedPolicy, piso_scheme, quota_scheme, smp_scheme
from repro.experiments import (
    run_big_small_copy,
    run_bw_threshold_sweep,
    run_cpu_isolation,
    run_figure_5,
    run_figure_7,
    run_figures_2_and_3,
    run_fractional_partition,
    run_lock_ablation,
    run_pmake_copy,
    run_table_4,
    TABLE1,
    TABLE2,
)


@pytest.fixture(scope="module")
def fig23():
    return run_figures_2_and_3()


@pytest.fixture(scope="module")
def fig5():
    return run_figure_5()


@pytest.fixture(scope="module")
def fig7():
    return run_figure_7()


@pytest.fixture(scope="module")
def table4():
    return run_table_4()


class TestFigure2Isolation:
    def test_smp_breaks_isolation(self, fig23):
        # Paper: light SPUs degrade 56% under SMP when load doubles.
        assert fig23["SMP"].fig2_unbalanced > 125

    def test_quota_isolates(self, fig23):
        r = fig23["Quo"]
        assert abs(r.fig2_unbalanced - r.fig2_balanced) < 10

    def test_piso_isolates(self, fig23):
        r = fig23["PIso"]
        assert r.fig2_unbalanced <= r.fig2_balanced + 10

    def test_balanced_configs_agree_across_schemes(self, fig23):
        # In the balanced placement all three schemes are equivalent.
        for r in fig23.values():
            assert 90 < r.fig2_balanced < 110


class TestFigure3Sharing:
    def test_quota_cannot_share(self, fig23):
        # Paper: Quo 187 vs SMP 156 — heavy SPUs pay for static quotas.
        assert fig23["Quo"].fig3_unbalanced > fig23["SMP"].fig3_unbalanced + 20

    def test_piso_matches_smp_throughput(self, fig23):
        # Paper: PIso 146 ~ SMP 156.
        assert fig23["PIso"].fig3_unbalanced <= fig23["SMP"].fig3_unbalanced + 10

    def test_piso_lends_cpus(self):
        run = __import__("repro.experiments.pmake8", fromlist=["run_pmake8"]).run_pmake8(
            piso_scheme(), balanced=False
        )
        assert run.loans_granted > 0


class TestFigure5:
    def test_isolation_helps_ocean(self, fig5):
        assert fig5["PIso"].ocean < 95
        assert fig5["Quo"].ocean < 95

    def test_quota_hurts_heavy_spu(self, fig5):
        assert fig5["Quo"].flashlite > 115
        assert fig5["Quo"].vcs > 115

    def test_piso_keeps_heavy_spu_near_smp(self, fig5):
        assert fig5["PIso"].flashlite < 112
        assert fig5["PIso"].vcs < 112


class TestFigure7:
    def test_smp_breaks_memory_isolation(self, fig7):
        # Paper: SPU1 degrades 45% under SMP.
        assert fig7["SMP"].isolation_unbalanced > 125

    def test_piso_isolates_memory(self, fig7):
        # Paper: only 13% under PIso.
        assert fig7["PIso"].isolation_unbalanced < 120

    def test_quota_sharing_collapse(self, fig7):
        # Paper: SPU2 +145% under Quo (100% CPU + 45% memory).
        assert fig7["Quo"].sharing_unbalanced > 220

    def test_piso_shares_memory(self, fig7):
        # Paper: PIso close to SMP (160 vs 150).
        assert fig7["PIso"].sharing_unbalanced < fig7["Quo"].sharing_unbalanced - 50

    def test_quota_pays_more_than_cpu_double(self, fig7):
        # The +45% beyond the CPU doubling is the memory penalty.
        assert fig7["Quo"].sharing_unbalanced > 200


class TestTable3:
    def test_piso_rescues_pmake_and_taxes_copy(self):
        pos = run_pmake_copy(DiskSchedPolicy.POS)
        piso = run_pmake_copy(DiskSchedPolicy.PISO)
        # Paper: pmake -39%, wait -76%, copy +23%.
        assert piso.response_a_s < 0.75 * pos.response_a_s
        assert piso.wait_a_ms < 0.8 * pos.wait_a_ms
        assert piso.response_b_s > pos.response_b_s
        # Head-position awareness keeps latency about flat.
        assert piso.latency_ms < 1.25 * pos.latency_ms


class TestTable4:
    def test_pos_locks_out_small_copy(self, table4):
        pos = table4["pos"]
        # The small copy finishes only after the big one.
        assert pos.response_a_s >= pos.response_b_s
        assert pos.wait_a_ms > 4 * pos.wait_b_ms

    def test_iso_frees_small_but_pays_seeks(self, table4):
        pos, iso = table4["pos"], table4["iso"]
        assert iso.response_a_s < 0.75 * pos.response_a_s
        assert iso.response_b_s > pos.response_b_s
        assert iso.latency_ms > 1.1 * pos.latency_ms  # paper: +28%

    def test_piso_beats_iso_on_both_jobs(self, table4):
        iso, piso = table4["iso"], table4["piso"]
        assert piso.response_a_s <= iso.response_a_s
        assert piso.response_b_s <= iso.response_b_s

    def test_piso_latency_near_pos(self, table4):
        pos, piso = table4["pos"], table4["piso"]
        assert piso.latency_ms < 1.15 * pos.latency_ms


class TestAblations:
    def test_lock_fix_improves_20_to_30_percent(self):
        result = run_lock_ablation()
        assert 10 <= result.improvement_percent <= 40
        assert result.rwlock_contentions < result.mutex_contentions

    def test_threshold_extremes_match_neighbors(self):
        points = run_bw_threshold_sweep(thresholds=(0.0, 10**9))
        zero, infinite = points
        pos = run_big_small_copy(DiskSchedPolicy.POS)
        # Infinite threshold degenerates to position-only scheduling.
        assert infinite.small_response_s == pytest.approx(pos.response_a_s, rel=0.05)
        # Zero threshold protects the small copy far better.
        assert zero.small_response_s < 0.6 * infinite.small_response_s

    def test_fractional_partition_is_fair(self):
        result = run_fractional_partition()
        assert result.max_imbalance_percent < 5.0


class TestConfigTables:
    def test_table1_rows(self):
        assert set(TABLE1) == {
            "pmake8", "cpu_isolation", "memory_isolation", "disk_bandwidth",
        }
        assert TABLE1["pmake8"].ncpus == 8
        assert TABLE1["memory_isolation"].memory_mb == 16

    def test_table2_schemes(self):
        names = [spec.factory().name for spec in TABLE2]
        assert names == ["Quo", "PIso", "SMP"]
