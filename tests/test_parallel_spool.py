"""mmap payload spooling: descriptors, dedup, remap, sweep identity."""

import os
import pickle

from repro.parallel import (
    Executor,
    PayloadSpool,
    SpoolReader,
    SweepPlan,
    values,
)


def _echo(payload):
    return payload


def test_append_returns_offsets_and_flushes(tmp_path):
    with PayloadSpool(dir=str(tmp_path)) as spool:
        a = spool.append(b"aaaa")
        b = spool.append(b"bbbbbb")
        assert a == (0, 4)
        assert b == (4, 6)
        # Flushed before return: the bytes are readable immediately.
        with open(spool.path, "rb") as fh:
            assert fh.read() == b"aaaa" + b"bbbbbb"


def test_identical_blobs_deduplicate(tmp_path):
    with PayloadSpool(dir=str(tmp_path)) as spool:
        first = spool.append(b"payload")
        again = spool.append(b"payload")
        assert first == again
        assert spool.bytes_written == len(b"payload")


def test_reader_slices_blobs_out(tmp_path):
    spool = PayloadSpool(dir=str(tmp_path))
    blob_a = pickle.dumps({"k": 1})
    blob_b = pickle.dumps([1, 2, 3])
    off_a, len_a = spool.append(blob_a)
    off_b, len_b = spool.append(blob_b)
    reader = SpoolReader()
    try:
        assert pickle.loads(reader.read(spool.path, off_a, len_a)) == {"k": 1}
        assert pickle.loads(reader.read(spool.path, off_b, len_b)) == [1, 2, 3]
    finally:
        reader.close()
        spool.close()


def test_reader_remaps_when_the_file_grew(tmp_path):
    # The parent appends after a worker first mapped the file; the
    # worker's next descriptor reaches past its stale view and must
    # trigger a remap, not a short read.
    spool = PayloadSpool(dir=str(tmp_path))
    off_a, len_a = spool.append(b"x" * 32)
    reader = SpoolReader()
    try:
        assert reader.read(spool.path, off_a, len_a) == b"x" * 32
        off_b, len_b = spool.append(b"y" * 64)
        assert reader.read(spool.path, off_b, len_b) == b"y" * 64
    finally:
        reader.close()
        spool.close()


def test_reader_cache_is_bounded(tmp_path):
    reader = SpoolReader(limit=2)
    spools = []
    try:
        for i in range(4):
            spool = PayloadSpool(dir=str(tmp_path))
            spools.append(spool)
            off, length = spool.append(f"blob-{i}".encode())
            assert reader.read(spool.path, off, length) == f"blob-{i}".encode()
        assert len(reader._maps) == 2
    finally:
        reader.close()
        for spool in spools:
            spool.close()


def test_reader_survives_unlink_while_mapped(tmp_path):
    # POSIX keeps the mapping valid after the unlink — exactly how the
    # parent closes the spool while workers may still hold mappings.
    spool = PayloadSpool(dir=str(tmp_path))
    off, length = spool.append(b"still-here")
    reader = SpoolReader()
    try:
        assert reader.read(spool.path, off, length) == b"still-here"
        path = spool.path
        spool.close()
        assert not os.path.exists(path)
        assert reader.read(path, off, length) == b"still-here"
    finally:
        reader.close()


def test_spooled_sweep_matches_inline_byte_for_byte():
    # Force every payload through the spool (threshold=1) and compare
    # against the inline-dispatch run and the serial run.
    payloads = [{"cell": i, "blob": "z" * 200} for i in range(8)]
    serial = values(
        Executor(SweepPlan(max_workers=1)).run(_echo, payloads)
    )
    spooled_exec = Executor(SweepPlan(max_workers=2, spool_threshold=1))
    spooled = values(spooled_exec.run(_echo, payloads))
    inline = values(
        Executor(SweepPlan(max_workers=2, spool_threshold=None)).run(
            _echo, payloads
        )
    )
    assert serial == spooled == inline == payloads
    if spooled_exec.stats.workers > 1:
        assert spooled_exec.stats.spooled_payloads == len(payloads)
        assert spooled_exec.stats.spool_bytes > 0


def test_small_payloads_stay_inline():
    executor = Executor(SweepPlan(max_workers=2))
    assert values(executor.run(_echo, list(range(4)))) == [0, 1, 2, 3]
    assert executor.stats.spooled_payloads == 0
    assert executor.stats.spool_bytes == 0
