"""Golden-fixture tests for the simlint checkers.

Each checker family has a positive fixture (every rule fires, with exact
counts) and a negative fixture (the compliant equivalents stay silent).
The fixtures live under ``tests/lint_fixtures/repro/...`` so that the
framework's module-path logic (scope, accounting exemption, hot-module
detection) sees the same shapes it sees on the real tree.
"""

from collections import Counter
from pathlib import Path

from repro.lint import run_lint

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"


def lint(relpath):
    return run_lint([str(FIXTURES / relpath)], root=str(FIXTURES))


def codes(findings):
    return Counter(f.rule for f in findings)


class TestDeterminismChecker:
    def test_positive_fixture_fires_every_rule(self):
        counts = codes(lint("repro/sim/determinism_bad.py"))
        assert counts == {
            "SL101": 1,  # time.time()
            "SL102": 2,  # random.random(), uuid.uuid4()
            "SL103": 1,  # random.Random()
            "SL104": 2,  # os.getenv, os.environ[...]
            "SL105": 1,  # iteration over a set comprehension
            "SL106": 1,  # id() as a sort key
        }

    def test_negative_fixture_is_clean(self):
        assert lint("repro/sim/determinism_ok.py") == []

    def test_findings_carry_location_and_snippet(self):
        findings = lint("repro/sim/determinism_bad.py")
        for f in findings:
            assert f.path == "repro/sim/determinism_bad.py"
            assert f.line > 0
            assert f.snippet.strip()
            assert f.message


class TestEventSafetyChecker:
    def test_positive_fixture_fires_every_rule(self):
        counts = codes(lint("repro/kernel/eventsafety_bad.py"))
        assert counts == {
            "SL201": 3,  # allowed=, entitled+=, used= on another object
            "SL202": 2,  # bare payload, 2-tuple without seq
            "SL203": 1,  # sort key without tie-break
        }

    def test_negative_fixture_is_clean(self):
        assert lint("repro/kernel/eventsafety_ok.py") == []

    def test_accounting_module_may_write_ledger_fields(self):
        # Same writes as the positive fixture, but the path IS the
        # accounting API (core/resources.py) — SL201 must not fire.
        assert lint("repro/core/resources.py") == []


class TestUnitsChecker:
    def test_positive_fixture_fires_every_rule(self):
        counts = codes(lint("repro/mem/units_bad.py"))
        assert counts == {
            "SL301": 2,  # ms + us, bytes vs pages
            "SL302": 1,  # msecs(delay_us)
            "SL303": 1,  # budget_ms = msecs(...)
        }

    def test_negative_fixture_is_clean(self):
        assert lint("repro/mem/units_ok.py") == []


class TestHotPathChecker:
    def test_hot_module_fixture_fires_every_rule(self):
        counts = codes(lint("repro/kernel/kernel.py"))
        assert counts == {
            "SL401": 1,  # hot class without __slots__
            "SL402": 1,  # dict literal allocated inside a while loop
        }

    def test_same_shapes_outside_hot_modules_are_silent(self):
        assert lint("repro/kernel/helpers.py") == []

    def test_hot_module_with_exempt_shapes_is_silent(self):
        # __slots__, @dataclass, and exception classes are all exempt,
        # and a hoisted list with append-in-loop is the blessed shape.
        assert lint("repro/mem/manager.py") == []


class TestFixtureDirectorySweep:
    def test_directory_lint_matches_per_file_totals(self):
        # Linting the whole fixture tree equals the union of the
        # per-file runs: nothing is double-reported or dropped.
        whole = codes(run_lint([str(FIXTURES)], root=str(FIXTURES)))
        merged = Counter()
        for rel in (
            "repro/sim/determinism_bad.py",
            "repro/sim/determinism_ok.py",
            "repro/kernel/eventsafety_bad.py",
            "repro/kernel/eventsafety_ok.py",
            "repro/kernel/kernel.py",
            "repro/kernel/helpers.py",
            "repro/core/resources.py",
            "repro/mem/units_bad.py",
            "repro/mem/units_ok.py",
            "repro/mem/manager.py",
        ):
            merged.update(codes(lint(rel)))
        assert whole == merged
