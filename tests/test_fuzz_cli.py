"""The fuzz CLI and its seat at the ``python -m repro`` front door."""

import json

from repro.fuzz.__main__ import main as fuzz_main
from repro.fuzz.runner import ENV_PLANT


class TestCampaignCli:
    def test_clean_seeds_exit_zero(self, tmp_path, capsys):
        corpus = str(tmp_path / "corpus.jsonl")
        code = fuzz_main([
            "--seed", "0", "--count", "4", "--corpus", corpus,
            "--horizon-ms", "500",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "4 cell(s) run" in out
        assert "ok=4" in out

    def test_explicit_seed_list_overrides_range(self, tmp_path, capsys):
        corpus = str(tmp_path / "corpus.jsonl")
        assert fuzz_main([
            "--seeds", "3", "7", "--corpus", corpus, "--horizon-ms", "500",
        ]) == 0
        seeds = [
            json.loads(line)["seed"] for line in open(corpus)
        ]
        assert seeds == [3, 7]

    def test_violations_exit_one_and_write_repros(self, tmp_path, capsys,
                                                  monkeypatch):
        monkeypatch.setenv(ENV_PLANT, "page-leak")
        corpus = str(tmp_path / "corpus.jsonl")
        code = fuzz_main([
            "--seeds", "0", "--corpus", corpus, "--horizon-ms", "500",
            "--shrink-budget", "12",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "violation=1" in out
        assert "fuzz-repro-0.json" in out


class TestReplayCli:
    def test_replay_round_trip(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv(ENV_PLANT, "page-leak")
        corpus = str(tmp_path / "corpus.jsonl")
        fuzz_main([
            "--seeds", "0", "--corpus", corpus, "--horizon-ms", "500",
            "--shrink-budget", "12",
        ])
        repro = str(tmp_path / "fuzz-repro-0.json")
        # With the bug still planted, the repro reproduces: exit 1.
        assert fuzz_main(["--repro", repro]) == 1
        assert "page-conservation" in capsys.readouterr().out
        # With the bug "fixed", the same repro runs clean: exit 0.
        monkeypatch.delenv(ENV_PLANT)
        assert fuzz_main(["--repro", repro]) == 0


class TestFrontDoor:
    def test_repro_dispatch_knows_fuzz(self, tmp_path, capsys):
        from repro.__main__ import main as repro_main

        corpus = str(tmp_path / "corpus.jsonl")
        assert repro_main([
            "fuzz", "--seeds", "1", "--corpus", corpus, "--horizon-ms", "500",
        ]) == 0

    def test_help_lists_fuzz(self, capsys):
        from repro.__main__ import main as repro_main

        assert repro_main(["--help"]) == 0
        assert "fuzz" in capsys.readouterr().out
