"""The scenario runner and its oracle stack, including the planted bug."""

import pytest

from repro.chaos.plan import AntagonistBurst
from repro.faults.plan import FaultPlan
from repro.fuzz.runner import (
    ENV_PLANT,
    SCHEME_PROGRESS_DIVISOR,
    run_record,
    run_scenario,
)
from repro.fuzz.scenario import SCHEMES, ScenarioSpec, WorkloadSpec
from repro.sim.units import MSEC


def scenario_with(**overrides):
    fields = dict(
        seed=5, ncpus=2, memory_mb=16, ndisks=1, scheme="piso",
        horizon_us=400 * MSEC,
        workloads=[WorkloadSpec(kind="cpu_hog", spu="load0")],
        bursts=[],
        faults=FaultPlan(),
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


class TestCleanRuns:
    def test_clean_scenario_is_ok_and_makes_progress(self):
        result = run_scenario(scenario_with())
        assert result.ok
        assert result.verdict == "ok"
        assert result.checkpoints > 0
        assert result.events > 0
        assert result.journal[0].startswith("scenario | seed=5")

    def test_journal_is_deterministic(self):
        a = run_scenario(scenario_with())
        b = run_scenario(scenario_with())
        assert a.journal == b.journal
        assert a.digest() == b.digest()

    def test_run_record_is_a_pure_function(self):
        a = run_record(scenario_with())
        b = run_record(scenario_with())
        assert a == b
        assert a["verdict"] == "ok"
        assert a["violations"] == []
        assert a["digest"]

    def test_every_scheme_has_a_progress_policy(self):
        assert set(SCHEME_PROGRESS_DIVISOR) == set(SCHEMES)

    def test_all_schemes_run_clean_without_antagonists(self):
        for scheme in SCHEMES:
            result = run_scenario(scenario_with(scheme=scheme))
            assert result.ok, (scheme, result.violations)


class TestPlantedBug:
    def test_page_leak_is_caught_by_the_watchdog(self, monkeypatch):
        monkeypatch.setenv(ENV_PLANT, "page-leak")
        result = run_scenario(scenario_with())
        assert not result.ok
        assert {v.name for v in result.violations} == {"page-conservation"}

    def test_burst_leak_needs_a_burst_to_fire(self, monkeypatch):
        monkeypatch.setenv(ENV_PLANT, "burst-leak")
        quiet = run_scenario(scenario_with())
        assert quiet.ok  # no bursts, no leak
        noisy = run_scenario(scenario_with(
            bursts=[AntagonistBurst(at_us=50 * MSEC, kind="lock_hogger")]
        ))
        assert not noisy.ok
        assert any(v.name == "page-conservation" for v in noisy.violations)

    def test_simsan_catches_the_leak_at_event_granularity(self, monkeypatch):
        monkeypatch.setenv(ENV_PLANT, "page-leak")
        result = run_scenario(scenario_with(), simsan=True)
        assert not result.ok
        assert any(v.name == "simsan" for v in result.violations)

    def test_simsan_stays_quiet_on_clean_runs(self):
        result = run_scenario(scenario_with(), simsan=True)
        assert result.ok

    def test_unset_plant_means_no_violation(self, monkeypatch):
        monkeypatch.delenv(ENV_PLANT, raising=False)
        assert run_scenario(scenario_with()).ok


class TestWorkloadTranslation:
    @pytest.mark.parametrize("kind", [
        "pmake", "copy", "ocean", "simulator", "interactive", "cpu_hog",
    ])
    def test_each_workload_kind_runs(self, kind):
        result = run_scenario(scenario_with(
            workloads=[WorkloadSpec(kind=kind, spu="load0")],
            horizon_us=300 * MSEC,
        ))
        assert result.ok
        assert any("workload fuzz/load0" in line for line in result.journal)

    def test_duplicate_workloads_get_distinct_tags(self):
        twin = WorkloadSpec(kind="cpu_hog", spu="load0", start_us=0)
        result = run_scenario(scenario_with(workloads=[twin, twin]))
        assert result.ok
        tags = [l for l in result.journal if "start | workload" in l]
        assert len(tags) == 2
        assert len(set(tags)) == 2  # .0 and .1 suffixes
