"""Tests for the interactive/server workload generators."""

import pytest

from repro.core import piso_scheme
from repro.disk.model import fast_disk
from repro.kernel import DiskSpec, Kernel, MachineConfig, NicSpec
from repro.kernel.syscalls import Compute, SendNetwork, Sleep
from repro.sim.units import KB, msecs
from repro.workloads import (
    InteractiveParams,
    bulk_sender,
    cpu_hog,
    interactive_excess_latency_us,
    interactive_user,
    rpc_client,
)


class TestGenerators:
    def test_interactive_alternates_sleep_and_burst(self):
        from repro.kernel.syscalls import Checkpoint

        ops = list(interactive_user(InteractiveParams(bursts=3)))
        kinds = [type(op) for op in ops]
        assert kinds == [Sleep, Checkpoint, Compute, Checkpoint] * 3

    def test_ideal_time(self):
        params = InteractiveParams(bursts=10, think_ms=20, burst_ms=5)
        assert params.ideal_us == 10 * msecs(25)

    def test_cpu_hog_is_one_burst(self):
        (op,) = list(cpu_hog(500))
        assert isinstance(op, Compute)
        assert op.duration_us == msecs(500)

    def test_rpc_client_ops(self):
        ops = list(rpc_client(count=2, nbytes=1024, think_ms=3))
        assert [type(o) for o in ops] == [SendNetwork, Sleep] * 2
        assert ops[0].nbytes == 1024

    def test_bulk_sender_covers_total(self):
        ops = list(bulk_sender(150 * KB, message_bytes=64 * KB))
        assert [o.nbytes for o in ops] == [64 * KB, 64 * KB, 22 * KB]


class TestExcessLatency:
    def test_unfinished_process_rejected(self):
        class Stub:
            pid = 1
            finished = -1

        with pytest.raises(ValueError):
            interactive_excess_latency_us(Stub(), InteractiveParams())

    def test_zero_excess_when_uncontended(self):
        kernel = Kernel(
            MachineConfig(ncpus=2, memory_mb=8,
                          disks=[DiskSpec(geometry=fast_disk())],
                          scheme=piso_scheme())
        )
        spu = kernel.create_spu("u")
        kernel.boot()
        params = InteractiveParams(bursts=10)
        proc = kernel.spawn(interactive_user(params), spu)
        kernel.run()
        assert interactive_excess_latency_us(proc, params) == 0.0

    def test_excess_positive_under_contention(self):
        kernel = Kernel(
            MachineConfig(ncpus=1, memory_mb=8,
                          disks=[DiskSpec(geometry=fast_disk())],
                          scheme=piso_scheme())
        )
        spu = kernel.create_spu("u")
        kernel.boot()
        params = InteractiveParams(bursts=10)
        proc = kernel.spawn(interactive_user(params), spu)
        kernel.spawn(cpu_hog(2000), spu)
        kernel.run()
        assert interactive_excess_latency_us(proc, params) > 0.0
