"""Fleet-level fault events: validation, lifecycle, JSON round-trips."""

import pytest

from repro.faults import (
    FaultPlanError,
    FleetFaultPlan,
    MachineCrash,
    MachineRecover,
    NetworkPartition,
)


class TestEventValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(FaultPlanError, match="before boot"):
            FleetFaultPlan([MachineCrash(at_us=-1, machine=0)])

    def test_non_finite_time_rejected(self):
        with pytest.raises(FaultPlanError, match="finite"):
            FleetFaultPlan([MachineCrash(at_us=float("nan"), machine=0)])

    def test_machine_index_must_be_int(self):
        with pytest.raises(FaultPlanError, match="integer"):
            FleetFaultPlan([MachineCrash(at_us=10, machine="zero")])
        with pytest.raises(FaultPlanError, match="integer"):
            FleetFaultPlan([MachineCrash(at_us=10, machine=True)])

    def test_negative_machine_rejected(self):
        with pytest.raises(FaultPlanError, match=">= 0"):
            FleetFaultPlan([MachineRecover(at_us=10, machine=-1)])

    def test_partition_needs_machines(self):
        with pytest.raises(FaultPlanError, match="at least one"):
            FleetFaultPlan([
                NetworkPartition(at_us=10, machines=(), duration_us=5)
            ])

    def test_partition_duplicate_machine_rejected(self):
        with pytest.raises(FaultPlanError, match="twice"):
            FleetFaultPlan([
                NetworkPartition(at_us=10, machines=(1, 1), duration_us=5)
            ])

    def test_partition_needs_positive_duration(self):
        with pytest.raises(FaultPlanError, match=">= 1us"):
            FleetFaultPlan([
                NetworkPartition(at_us=10, machines=(0,), duration_us=0)
            ])

    def test_non_event_rejected(self):
        with pytest.raises(FaultPlanError, match="not a fleet fault"):
            FleetFaultPlan(["crash machine 0 please"])


class TestLifecycle:
    def test_crash_recover_crash_is_legal(self):
        plan = FleetFaultPlan([
            MachineCrash(at_us=10, machine=0),
            MachineRecover(at_us=20, machine=0),
            MachineCrash(at_us=30, machine=0),
        ])
        assert len(plan) == 3

    def test_double_crash_without_recover_rejected(self):
        with pytest.raises(FaultPlanError, match="crashes twice"):
            FleetFaultPlan([
                MachineCrash(at_us=10, machine=0),
                MachineCrash(at_us=30, machine=0),
            ])

    def test_recover_of_live_machine_rejected(self):
        with pytest.raises(FaultPlanError, match="never crashed"):
            FleetFaultPlan([MachineRecover(at_us=10, machine=2)])

    def test_add_keeps_plan_ordered_and_checked(self):
        plan = FleetFaultPlan([MachineCrash(at_us=30, machine=1)])
        plan.add(MachineCrash(at_us=10, machine=0))
        assert [e.at_us for e in plan] == [10, 30]
        with pytest.raises(FaultPlanError, match="crashes twice"):
            plan.add(MachineCrash(at_us=50, machine=0))

    def test_events_sort_by_time(self):
        plan = FleetFaultPlan([
            NetworkPartition(at_us=30, machines=(0,), duration_us=5),
            MachineCrash(at_us=10, machine=1),
        ])
        assert [type(e).__name__ for e in plan] == [
            "MachineCrash", "NetworkPartition",
        ]


class TestValidateAgainst:
    def test_crash_index_out_of_range_names_field_and_event(self):
        plan = FleetFaultPlan([MachineCrash(at_us=10, machine=7)])
        with pytest.raises(FaultPlanError, match="field 'machine'") as exc:
            plan.validate_against(4)
        assert "machine 7" in str(exc.value)
        assert "fleet has 4" in str(exc.value)
        assert "MachineCrash" in str(exc.value)

    def test_partition_index_out_of_range(self):
        plan = FleetFaultPlan([
            NetworkPartition(at_us=10, machines=(0, 5), duration_us=100)
        ])
        with pytest.raises(FaultPlanError, match="field 'machines'"):
            plan.validate_against(2)

    def test_in_range_plan_passes(self):
        plan = FleetFaultPlan([
            MachineCrash(at_us=10, machine=1),
            MachineRecover(at_us=20, machine=1),
            NetworkPartition(at_us=15, machines=(0, 1), duration_us=10),
        ])
        plan.validate_against(2)  # must not raise


class TestRoundTrip:
    PLAN = FleetFaultPlan([
        MachineCrash(at_us=100, machine=1),
        MachineRecover(at_us=250, machine=1),
        NetworkPartition(at_us=50, machines=(0, 2), duration_us=75),
    ])

    def test_dict_round_trip_is_identity(self):
        assert FleetFaultPlan.from_dicts(self.PLAN.to_dicts()) == self.PLAN

    def test_json_round_trip_is_identity(self):
        assert FleetFaultPlan.from_json(self.PLAN.to_json()) == self.PLAN

    def test_kinds_are_stable_wire_names(self):
        kinds = [r["kind"] for r in self.PLAN.to_dicts()]
        assert kinds == [
            "network_partition", "machine_crash", "machine_recover",
        ]

    def test_partition_machines_survive_as_tuple(self):
        back = FleetFaultPlan.from_dicts(self.PLAN.to_dicts())
        partition = next(
            e for e in back if isinstance(e, NetworkPartition)
        )
        assert partition.machines == (0, 2)
        assert isinstance(partition.machines, tuple)

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fleet fault kind"):
            FleetFaultPlan.from_dicts([{"kind": "meteor_strike", "at_us": 1}])

    def test_missing_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="needs a 'kind'"):
            FleetFaultPlan.from_dicts([{"at_us": 1, "machine": 0}])

    def test_bad_fields_rejected(self):
        with pytest.raises(FaultPlanError, match="bad fields"):
            FleetFaultPlan.from_dicts([
                {"kind": "machine_crash", "at_us": 1, "disk": 0}
            ])

    def test_round_trip_revalidates(self):
        records = [
            {"kind": "machine_crash", "at_us": 10, "machine": 0},
            {"kind": "machine_crash", "at_us": 20, "machine": 0},
        ]
        with pytest.raises(FaultPlanError, match="crashes twice"):
            FleetFaultPlan.from_dicts(records)
