"""Tests for trace-driven workloads."""

import json

import pytest

from repro.core import piso_scheme
from repro.disk.model import fast_disk
from repro.kernel import DiskSpec, Kernel, MachineConfig, NicSpec
from repro.kernel.syscalls import Compute, ReadFile, SetWorkingSet, Sleep
from repro.sim.units import KB, msecs
from repro.workloads import TraceError, load_trace, parse_trace, trace_behavior


class TestParsing:
    def test_parses_pairs(self):
        records = parse_trace('[["compute", {"ms": 5}]]')
        assert records == [("compute", {"ms": 5})]

    def test_rejects_non_json(self):
        with pytest.raises(TraceError):
            parse_trace("not json")

    def test_rejects_non_array(self):
        with pytest.raises(TraceError):
            parse_trace('{"op": "compute"}')

    def test_rejects_malformed_record(self):
        with pytest.raises(TraceError):
            parse_trace('[["compute"]]')
        with pytest.raises(TraceError):
            parse_trace('[[1, {}]]')


class TestBuilding:
    def test_builds_each_op_kind(self):
        class FakeFile:
            size_bytes = 64 * KB

        records = [
            ("set_working_set", {"pages": 10}),
            ("compute", {"ms": 5}),
            ("sleep", {"ms": 1}),
            ("read", {"file": "f", "offset": 0, "nbytes": 100}),
            ("write", {"file": "f", "nbytes": 100}),
            ("write_metadata", {"file": "f"}),
            ("send", {"nbytes": 512}),
        ]
        ops = list(trace_behavior(records, {"f": FakeFile()}))
        assert [type(o).__name__ for o in ops] == [
            "SetWorkingSet", "Compute", "Sleep", "ReadFile", "WriteFile",
            "WriteMetadata", "SendNetwork",
        ]

    def test_unknown_op_rejected_up_front(self):
        with pytest.raises(TraceError):
            trace_behavior([("fork_bomb", {})], {})

    def test_unknown_file_rejected_up_front(self):
        with pytest.raises(TraceError):
            trace_behavior([("read", {"file": "nope", "nbytes": 1})], {})

    def test_bad_args_rejected(self):
        with pytest.raises(TraceError):
            trace_behavior([("compute", {})], {})


class TestEndToEnd:
    def test_trace_runs_in_kernel(self, tmp_path):
        kernel = Kernel(
            MachineConfig(ncpus=2, memory_mb=16,
                          disks=[DiskSpec(geometry=fast_disk())],
                          nics=[NicSpec()],
                          scheme=piso_scheme())
        )
        spu = kernel.create_spu("u")
        kernel.boot()
        data = kernel.fs.create(0, "data", 64 * KB)
        trace = [
            ["set_working_set", {"pages": 50}],
            ["read", {"file": "data", "offset": 0, "nbytes": 65536}],
            ["compute", {"ms": 20}],
            ["write", {"file": "data", "offset": 0, "nbytes": 4096}],
            ["write_metadata", {"file": "data"}],
            ["send", {"nbytes": 3000}],
            ["sleep", {"ms": 2}],
        ]
        path = tmp_path / "job.json"
        path.write_text(json.dumps(trace))
        proc = kernel.spawn(load_trace(str(path), {"data": data}), spu)
        kernel.run()
        assert proc.response_us > msecs(22)
        assert proc.cpu_time_us >= msecs(20)
        assert kernel.links[0].stats.total_bytes() == 3000
        assert kernel.drives[0].stats.count() > 0
