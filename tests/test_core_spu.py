"""Unit tests for SPUs and the registry."""

import pytest

from repro.core import (
    KERNEL_SPU_ID,
    SHARED_SPU_ID,
    SPUError,
    SPUKind,
    SPURegistry,
    SPUState,
)


@pytest.fixture
def registry():
    return SPURegistry()


class TestDefaults:
    def test_kernel_and_shared_exist(self, registry):
        assert registry.kernel_spu.kind is SPUKind.KERNEL
        assert registry.shared_spu.kind is SPUKind.SHARED

    def test_default_ids_are_stable(self, registry):
        assert registry.kernel_spu.spu_id == KERNEL_SPU_ID
        assert registry.shared_spu.spu_id == SHARED_SPU_ID

    def test_defaults_are_not_user_spus(self, registry):
        assert registry.user_spus() == []

    def test_all_spus_includes_defaults(self, registry):
        assert len(registry.all_spus()) == 2


class TestLifecycle:
    def test_create_assigns_increasing_ids(self, registry):
        a = registry.create("a")
        b = registry.create("b")
        assert b.spu_id == a.spu_id + 1

    def test_created_spu_is_active_user(self, registry):
        spu = registry.create("u")
        assert spu.is_user
        assert spu.state is SPUState.ACTIVE
        assert spu in registry.active_user_spus()

    def test_destroy_removes(self, registry):
        spu = registry.create("u")
        registry.destroy(spu)
        assert spu not in registry.user_spus()
        with pytest.raises(SPUError):
            registry.get(spu.spu_id)

    def test_destroy_with_processes_fails(self, registry):
        spu = registry.create("u")
        registry.assign(1, spu)
        with pytest.raises(SPUError):
            registry.destroy(spu)

    def test_cannot_destroy_defaults(self, registry):
        with pytest.raises(SPUError):
            registry.destroy(registry.kernel_spu)

    def test_suspend_resume(self, registry):
        spu = registry.create("u")
        registry.suspend(spu)
        assert spu.state is SPUState.SUSPENDED
        assert spu not in registry.active_user_spus()
        registry.resume(spu)
        assert spu.state is SPUState.ACTIVE

    def test_suspend_with_processes_fails(self, registry):
        spu = registry.create("u")
        registry.assign(1, spu)
        with pytest.raises(SPUError):
            registry.suspend(spu)

    def test_resume_active_fails(self, registry):
        spu = registry.create("u")
        with pytest.raises(SPUError):
            registry.resume(spu)

    def test_cannot_suspend_defaults(self, registry):
        with pytest.raises(SPUError):
            registry.suspend(registry.shared_spu)


class TestMembership:
    def test_assign_and_lookup(self, registry):
        spu = registry.create("u")
        registry.assign(42, spu)
        assert registry.spu_of(42) is spu
        assert 42 in spu.pids

    def test_reassign_moves_process(self, registry):
        a = registry.create("a")
        b = registry.create("b")
        registry.assign(1, a)
        registry.assign(1, b)
        assert registry.spu_of(1) is b
        assert 1 not in a.pids

    def test_remove(self, registry):
        spu = registry.create("u")
        registry.assign(1, spu)
        registry.remove(1)
        assert 1 not in spu.pids
        with pytest.raises(SPUError):
            registry.spu_of(1)

    def test_remove_unknown_is_noop(self, registry):
        registry.remove(999)

    def test_spu_of_unassigned_raises(self, registry):
        with pytest.raises(SPUError):
            registry.spu_of(5)

    def test_spu_of_or_none(self, registry):
        assert registry.spu_of_or_none(5) is None
        spu = registry.create("u")
        registry.assign(5, spu)
        assert registry.spu_of_or_none(5) is spu

    def test_assign_to_destroyed_fails(self, registry):
        spu = registry.create("u")
        registry.destroy(spu)
        with pytest.raises(SPUError):
            registry.assign(1, spu)


class TestSpuAccessors:
    def test_levels_exist_for_all_resources(self, registry):
        spu = registry.create("u")
        assert spu.cpu() is not None
        assert spu.memory() is not None
        assert spu.disk_bw() is not None

    def test_disk_counter_created_on_demand(self, registry):
        spu = registry.create("u")
        counter = spu.disk_counter(0, decay_period=1000, now=0)
        assert spu.disk_counter(0, decay_period=1000, now=0) is counter

    def test_disk_counters_are_per_disk(self, registry):
        spu = registry.create("u")
        c0 = spu.disk_counter(0, decay_period=1000, now=0)
        c1 = spu.disk_counter(1, decay_period=1000, now=0)
        assert c0 is not c1
