"""Same-tick tie-breaking regression tests.

The heap holds ``(time, seq, handle)`` tuples, so events scheduled for
the same instant fire strictly in scheduling order and the handle itself
is never compared.  These tests pin that contract down at the engine
level and then at the kernel level, where a same-tick burst of wakeups
must replay identically across runs.
"""

from repro.kernel import Compute, DiskSpec, Kernel, MachineConfig, Sleep, Spawn
from repro.core import piso_scheme
from repro.disk.model import fast_disk
from repro.sim.engine import Engine
from repro.sim.units import msecs, usecs


class TestEngineSameTick:
    def test_burst_fires_in_scheduling_order(self):
        engine = Engine(seed=0)
        order = []
        for i in range(50):
            engine.at(usecs(10), order.append, i)
        engine.run()
        assert order == list(range(50))

    def test_interleaved_times_keep_per_tick_fifo(self):
        engine = Engine(seed=0)
        order = []
        # Schedule out of time order: tick 20, tick 10, tick 20, tick 10...
        for i in range(20):
            engine.at(usecs(20 if i % 2 == 0 else 10), order.append, i)
        engine.run()
        early = [i for i in range(20) if i % 2 == 1]
        late = [i for i in range(20) if i % 2 == 0]
        assert order == early + late

    def test_events_scheduled_from_within_a_tick_run_after_that_tick(self):
        engine = Engine(seed=0)
        order = []

        def first():
            order.append("first")
            engine.at(engine.now, lambda: order.append("nested"))

        engine.at(usecs(10), first)
        engine.at(usecs(10), lambda: order.append("second"))
        engine.run()
        assert order == ["first", "second", "nested"]

    def test_cancellation_preserves_order_of_survivors(self):
        engine = Engine(seed=0)
        order = []
        handles = [engine.at(usecs(10), order.append, i) for i in range(10)]
        for handle in handles[::2]:
            handle.cancel()
        engine.run()
        assert order == [1, 3, 5, 7, 9]

    def test_noncomparable_payloads_never_break_the_heap(self):
        # Handles wrap plain callables (closures, bound methods, None
        # args); the (time, seq) tuple prefix must keep heapq from ever
        # comparing them.
        engine = Engine(seed=0)
        order = []

        class Opaque:
            pass

        for i in range(10):
            engine.at(usecs(5), lambda o=Opaque(), i=i: order.append(i))
        engine.run()
        assert order == list(range(10))

    def test_burst_replays_identically(self):
        def trace(seed):
            engine = Engine(seed=seed)
            order = []
            for i in range(30):
                engine.at(usecs(7), order.append, i)
                engine.at(usecs(7 + (i % 3)), order.append, 100 + i)
            engine.run()
            return order

        assert trace(1) == trace(1)


class TestKernelSameTick:
    def run_burst(self):
        kernel = Kernel(
            MachineConfig(
                ncpus=2,
                memory_mb=16,
                disks=[DiskSpec(geometry=fast_disk())],
                scheme=piso_scheme(),
                seed=0,
            )
        )
        spu = kernel.create_spu("u")
        kernel.boot()

        finish_order = []

        def sleeper(name):
            # Everyone sleeps to the same absolute instant, producing a
            # same-tick burst of wakeups that then race for the CPUs.
            yield Sleep(msecs(5))
            yield Compute(msecs(1))
            finish_order.append(name)

        def parent():
            for i in range(8):
                yield Spawn(sleeper(f"p{i}"))

        kernel.spawn(parent(), spu)
        kernel.run()
        return finish_order

    def test_same_tick_wakeup_burst_is_deterministic(self):
        first = self.run_burst()
        assert len(first) == 8
        assert first == self.run_burst()

    def test_wakeups_complete_in_spawn_order(self):
        # With identical sleeps and identical compute, the seq tie-break
        # means spawn order IS completion order.
        assert self.run_burst() == [f"p{i}" for i in range(8)]
