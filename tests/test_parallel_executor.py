"""The parallel sweep executor: ordering, fallback, crashes, timeouts."""

import os
import time

import pytest

from repro.parallel import (
    DEFAULT_WORKER_CAP,
    RunOutcome,
    SweepError,
    resolve_workers,
    run_sweep,
    values,
)


# Worker functions must be module-level (imported by name in workers).

def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("three is right out")
    return x


def _crash_on_two(x):
    if x == 2:
        os._exit(17)  # die without reporting, like a segfault would
    return x


def _sleep_on_one(x):
    if x == 1:
        time.sleep(30)
    return x


def test_empty_sweep():
    assert run_sweep(_square, []) == []


def test_resolve_workers():
    assert resolve_workers(1) == 1
    assert resolve_workers(0) == 1
    assert resolve_workers(7) == 7
    assert 1 <= resolve_workers(None) <= DEFAULT_WORKER_CAP


def test_serial_fallback_preserves_order():
    outcomes = run_sweep(_square, range(6), max_workers=1)
    assert [o.index for o in outcomes] == list(range(6))
    assert all(o.ok and o.worker == -1 for o in outcomes)
    assert values(outcomes) == [x * x for x in range(6)]


def test_serial_fallback_reports_errors():
    outcomes = run_sweep(_fail_on_three, range(5), max_workers=1)
    assert [o.status for o in outcomes] == ["ok", "ok", "ok", "error", "ok"]
    assert "three is right out" in outcomes[3].error
    with pytest.raises(SweepError, match="cell 3 error"):
        values(outcomes)


def test_parallel_results_merge_in_submission_order():
    outcomes = run_sweep(_square, range(8), max_workers=2)
    assert [o.index for o in outcomes] == list(range(8))
    assert values(outcomes) == [x * x for x in range(8)]
    assert all(o.worker >= 0 for o in outcomes)


def test_parallel_error_is_contained_to_its_cell():
    outcomes = run_sweep(_fail_on_three, range(5), max_workers=2)
    assert [o.status for o in outcomes] == ["ok", "ok", "ok", "error", "ok"]
    assert "ValueError" in outcomes[3].error


def test_worker_crash_is_contained_to_its_cell():
    outcomes = run_sweep(_crash_on_two, range(5), max_workers=2)
    assert outcomes[2].status == "crashed"
    assert "died" in outcomes[2].error
    others = [o for o in outcomes if o.index != 2]
    assert all(o.ok for o in others)
    assert [o.value for o in others] == [0, 1, 3, 4]


def test_per_run_timeout_kills_only_the_slow_cell():
    outcomes = run_sweep(
        _sleep_on_one, range(4), max_workers=2, timeout_s=1.0
    )
    assert outcomes[1].status == "timeout"
    others = [o for o in outcomes if o.index != 1]
    assert all(o.ok for o in others)
    assert [o.value for o in others] == [0, 2, 3]


def test_worker_recycling_spawns_fresh_processes():
    outcomes = run_sweep(_square, range(4), max_workers=2, tasks_per_worker=1)
    assert values(outcomes) == [0, 1, 4, 9]
    # Each worker retires after one cell, so no ordinal repeats.
    ordinals = [o.worker for o in outcomes]
    assert len(set(ordinals)) == len(ordinals)


def test_values_passthrough_on_success():
    outcomes = [RunOutcome(index=0, status="ok", value="a")]
    assert values(outcomes) == ["a"]
