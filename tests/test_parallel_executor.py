"""The parallel sweep executor: ordering, fallback, crashes, timeouts."""

import os
import time

import pytest

from repro.parallel import (
    DEFAULT_WORKER_CAP,
    RunOutcome,
    SweepError,
    resolve_workers,
    run_sweep,
    values,
)


# Worker functions must be module-level (imported by name in workers).

def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("three is right out")
    return x


def _crash_on_two(x):
    if x == 2:
        os._exit(17)  # die without reporting, like a segfault would
    return x


def _sleep_on_one(x):
    if x == 1:
        time.sleep(30)
    return x


def _crash_until_marker(payload):
    """Dies unless its marker file exists; the first attempt creates it.

    Models the transient failure retry exists for: host pressure killed
    the worker once, and a fresh process succeeds.
    """
    marker, value = payload
    if marker is not None and not os.path.exists(marker):
        open(marker, "w").close()
        os._exit(17)
    return value * 10


def test_empty_sweep():
    assert run_sweep(_square, []) == []


def test_resolve_workers():
    assert resolve_workers(1) == 1
    assert resolve_workers(0) == 1
    assert resolve_workers(7) == 7
    assert 1 <= resolve_workers(None) <= DEFAULT_WORKER_CAP


def test_serial_fallback_preserves_order():
    outcomes = run_sweep(_square, range(6), max_workers=1)
    assert [o.index for o in outcomes] == list(range(6))
    assert all(o.ok and o.worker == -1 for o in outcomes)
    assert values(outcomes) == [x * x for x in range(6)]


def test_serial_fallback_reports_errors():
    outcomes = run_sweep(_fail_on_three, range(5), max_workers=1)
    assert [o.status for o in outcomes] == ["ok", "ok", "ok", "error", "ok"]
    assert "three is right out" in outcomes[3].error
    with pytest.raises(SweepError, match="cell 3 error"):
        values(outcomes)


def test_parallel_results_merge_in_submission_order():
    outcomes = run_sweep(_square, range(8), max_workers=2)
    assert [o.index for o in outcomes] == list(range(8))
    assert values(outcomes) == [x * x for x in range(8)]
    assert all(o.worker >= 0 for o in outcomes)


def test_parallel_error_is_contained_to_its_cell():
    outcomes = run_sweep(_fail_on_three, range(5), max_workers=2)
    assert [o.status for o in outcomes] == ["ok", "ok", "ok", "error", "ok"]
    assert "ValueError" in outcomes[3].error


def test_worker_crash_is_contained_to_its_cell():
    outcomes = run_sweep(_crash_on_two, range(5), max_workers=2)
    assert outcomes[2].status == "crashed"
    assert "died" in outcomes[2].error
    # The default single retry was spent before giving up (the cell
    # crashes deterministically, so the retry crashed too).
    assert outcomes[2].retries == 1
    others = [o for o in outcomes if o.index != 2]
    assert all(o.ok for o in others)
    assert all(o.retries == 0 for o in others)
    assert [o.value for o in others] == [0, 1, 3, 4]


def test_transient_crash_is_healed_by_retry(tmp_path):
    payloads = [
        (None, 0),
        (str(tmp_path / "m1"), 1),
        (None, 2),
        (str(tmp_path / "m3"), 3),
    ]
    outcomes = run_sweep(_crash_until_marker, payloads, max_workers=2)
    assert all(o.ok for o in outcomes)
    assert [o.value for o in outcomes] == [0, 10, 20, 30]
    assert [o.retries for o in outcomes] == [0, 1, 0, 1]


def _slow_until_marker(payload):
    marker, value = payload
    if marker is not None and not os.path.exists(marker):
        open(marker, "w").close()
        time.sleep(30)
    return value


def test_transient_timeout_is_healed_by_retry(tmp_path):
    payloads = [(None, 0), (str(tmp_path / "slow"), 1), (None, 2)]
    outcomes = run_sweep(
        _slow_until_marker, payloads, max_workers=2, timeout_s=1.0
    )
    assert all(o.ok for o in outcomes)
    assert [o.value for o in outcomes] == [0, 1, 2]
    assert outcomes[1].retries == 1


def test_retries_zero_restores_fail_fast():
    outcomes = run_sweep(_crash_on_two, range(5), max_workers=2, retries=0)
    assert outcomes[2].status == "crashed"
    assert outcomes[2].retries == 0


def test_negative_retries_is_rejected():
    with pytest.raises(ValueError, match="retries"):
        run_sweep(_square, range(2), max_workers=2, retries=-1)


def test_deterministic_errors_are_never_retried(tmp_path):
    # A raising callable must not burn retries: the failure would just
    # repeat, and the traceback is the diagnostic the caller wants.
    outcomes = run_sweep(_fail_on_three, range(5), max_workers=2, retries=3)
    assert outcomes[3].status == "error"
    assert outcomes[3].retries == 0


def test_per_run_timeout_kills_only_the_slow_cell():
    outcomes = run_sweep(
        _sleep_on_one, range(4), max_workers=2, timeout_s=1.0, retries=0
    )
    assert outcomes[1].status == "timeout"
    assert outcomes[1].retries == 0
    others = [o for o in outcomes if o.index != 1]
    assert all(o.ok for o in others)
    assert [o.value for o in others] == [0, 2, 3]


def test_worker_recycling_spawns_fresh_processes():
    outcomes = run_sweep(_square, range(4), max_workers=2, tasks_per_worker=1)
    assert values(outcomes) == [0, 1, 4, 9]
    # Each worker retires after one cell, so no ordinal repeats.
    ordinals = [o.worker for o in outcomes]
    assert len(set(ordinals)) == len(ordinals)


def test_values_passthrough_on_success():
    outcomes = [RunOutcome(index=0, status="ok", value="a")]
    assert values(outcomes) == ["a"]


# --- the run_sweep deprecation shim ------------------------------------------


def test_run_sweep_emits_a_single_shot_deprecation_warning(monkeypatch):
    import warnings

    import repro.parallel.executor as executor

    monkeypatch.setattr(executor, "_RUN_SWEEP_WARNED", False)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        run_sweep(_square, [1], max_workers=1)
        run_sweep(_square, [1], max_workers=1)
    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1
    assert "Executor" in str(deprecations[0].message)


def test_run_sweep_stays_byte_identical_to_executor_run():
    # The shim exists so external callers migrate at their own pace; it
    # must stay a pure alias of Executor.run until it is dropped.
    from repro.parallel import Executor, SweepPlan

    for kwargs in (
        {"max_workers": 1},
        {"max_workers": 2},
        {"max_workers": 2, "timeout_s": 30.0, "tasks_per_worker": 2,
         "retries": 0},
    ):
        shim = run_sweep(_square, range(6), **kwargs)
        direct = Executor(SweepPlan(**kwargs)).run(_square, range(6))
        assert [(o.index, o.status, o.value) for o in shim] == \
               [(o.index, o.status, o.value) for o in direct]
        assert values(shim) == values(direct)


# --- interrupt hygiene -------------------------------------------------------


def _interrupt(x):
    raise KeyboardInterrupt


def test_inprocess_interrupt_propagates():
    # workers<=1 runs cells in-process: a Ctrl-C during a cell must
    # reach the caller, not be swallowed into an "error" outcome.
    with pytest.raises(KeyboardInterrupt):
        run_sweep(_interrupt, range(3), max_workers=1)


def test_pool_kill_reaps_workers_and_closes_pipes():
    from repro.parallel import WorkerPool

    pool = WorkerPool(max_workers=2)
    pool.ensure(2)
    processes = [w.process for w in pool.workers]
    assert all(p.is_alive() for p in processes)
    pool.kill()
    assert all(not p.is_alive() for p in processes)
    for worker in pool.workers:
        assert worker.conn.closed
    # Idempotent, and shutdown() after kill() is a no-op (the pipes
    # are gone; a graceful drain would explode).
    pool.kill()
    pool.shutdown()


def test_interrupt_mid_sweep_kills_the_pool(monkeypatch):
    # Inject a KeyboardInterrupt into the parent's poll loop and check
    # the sweep re-raises it with every worker dead and pipes closed.
    import repro.parallel.executor as executor
    from repro.parallel.pool import WorkerPool

    captured = {}

    def _boom():
        raise KeyboardInterrupt

    class _Spy(WorkerPool):
        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            captured["pool"] = self

        def lease(self, n):
            lease = super().lease(n)
            lease.poll = _boom
            return lease

    monkeypatch.setattr(executor, "WorkerPool", _Spy)
    with pytest.raises(KeyboardInterrupt):
        run_sweep(_sleep_on_one, [1, 1, 1, 1], max_workers=2)
    pool = captured["pool"]
    assert all(not w.process.is_alive() for w in pool.workers)
    assert all(w.conn.closed for w in pool.workers)


@pytest.mark.skipif(os.name != "posix", reason="needs POSIX signals")
def test_sigint_mid_sweep_leaves_no_orphans(tmp_path):
    # The real thing: a separate interpreter runs a sweep of slow
    # cells, takes a SIGINT, and must exit promptly via
    # KeyboardInterrupt with no worker processes left behind.
    import signal
    import subprocess
    import sys
    import textwrap

    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    script = tmp_path / "sweeper.py"
    script.write_text(textwrap.dedent("""
        import multiprocessing
        import sys
        import time

        from repro.parallel import run_sweep

        def slow(x):
            time.sleep(60)
            return x

        if __name__ == "__main__":
            print("ready", flush=True)
            try:
                run_sweep(slow, [1, 2, 3, 4], max_workers=2)
            except KeyboardInterrupt:
                leftover = [p for p in multiprocessing.active_children()
                            if p.is_alive()]
                print(f"leftover={len(leftover)}", flush=True)
                sys.exit(42)
            sys.exit(0)
    """))
    env = dict(os.environ, PYTHONPATH=os.path.abspath(src))
    proc = subprocess.Popen(
        [sys.executable, str(script)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        env=env, text=True,
    )
    try:
        assert proc.stdout.readline().strip() == "ready"
        time.sleep(1.0)  # let the pool spawn and cells start
        os.kill(proc.pid, signal.SIGINT)
        stdout, _stderr = proc.communicate(timeout=15)
    finally:
        if proc.poll() is None:  # pragma: no cover - hung sweep
            proc.kill()
            proc.communicate()
    assert proc.returncode == 42
    assert "leftover=0" in stdout
