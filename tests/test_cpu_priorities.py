"""Unit tests for IRIX-style degrading priorities."""

import pytest

from repro.cpu import ProcessPriority
from repro.sim.units import MSEC, SEC


class TestPriority:
    def test_fresh_process_runs_at_base(self):
        assert ProcessPriority(base=20).effective(0) == 20.0

    def test_cpu_usage_worsens_priority(self):
        p = ProcessPriority(base=20)
        p.charge(30 * MSEC, now=30 * MSEC)
        assert p.effective(30 * MSEC) > 20.0

    def test_usage_decays_with_half_life(self):
        p = ProcessPriority(base=0, now=0)
        p.charge(100 * MSEC, now=0)
        assert p.recent_cpu_ms(0) == pytest.approx(100.0)
        assert p.recent_cpu_ms(1 * SEC) == pytest.approx(50.0, rel=1e-6)
        assert p.recent_cpu_ms(2 * SEC) == pytest.approx(25.0, rel=1e-6)

    def test_heavier_user_has_worse_priority(self):
        hog = ProcessPriority(base=20)
        light = ProcessPriority(base=20)
        hog.charge(300 * MSEC, now=0)
        light.charge(10 * MSEC, now=0)
        assert hog.effective(0) > light.effective(0)

    def test_lower_base_wins_despite_some_usage(self):
        urgent = ProcessPriority(base=0)
        urgent.charge(10 * MSEC, now=0)
        normal = ProcessPriority(base=20)
        assert urgent.effective(0) < normal.effective(0)

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            ProcessPriority().charge(-1, now=0)

    def test_charges_accumulate_before_decay(self):
        p = ProcessPriority(base=0, now=0)
        p.charge(10 * MSEC, now=0)
        p.charge(10 * MSEC, now=0)
        assert p.recent_cpu_ms(0) == pytest.approx(20.0)

    def test_stale_timestamp_is_ignored(self):
        p = ProcessPriority(base=0, now=0)
        p.charge(10 * MSEC, now=1 * SEC)
        # Asking about the past does not rewind the decay state.
        assert p.recent_cpu_ms(500 * MSEC) == pytest.approx(10.0)
