"""Unit tests for the disk drive and bandwidth ledger."""

import pytest

from repro.core import SPURegistry
from repro.disk import (
    DiskDrive,
    DiskOp,
    DiskRequest,
    SpuBandwidthLedger,
    hp97560,
    make_scheduler,
)
from repro.sim import Engine


@pytest.fixture
def setup():
    engine = Engine(seed=1)
    registry = SPURegistry()
    a = registry.create("a")
    b = registry.create("b")
    for spu in (a, b):
        spu.disk_bw().set_entitled(1)
    ledger = SpuBandwidthLedger(0, registry, decay_period=500_000)
    drive = DiskDrive(engine, hp97560(), make_scheduler("pos"), ledger)
    return engine, registry, drive, a, b


class TestLifecycle:
    def test_request_completes_with_timing(self, setup):
        engine, _reg, drive, a, _b = setup
        done = []
        drive.submit(
            DiskRequest(a.spu_id, DiskOp.READ, 1000, 8, on_complete=done.append)
        )
        engine.run()
        (request,) = done
        assert request.finish_time > 0
        assert request.service_us == (
            request.seek_us + request.rotation_us + request.transfer_us
        )
        assert request.wait_us == 0  # queue was empty

    def test_head_moves_past_request(self, setup):
        engine, _reg, drive, a, _b = setup
        drive.submit(DiskRequest(a.spu_id, DiskOp.READ, 1000, 8))
        engine.run()
        assert drive.head_sector == 1008

    def test_second_request_waits(self, setup):
        engine, _reg, drive, a, _b = setup
        drive.submit(DiskRequest(a.spu_id, DiskOp.READ, 1000, 8))
        second = DiskRequest(a.spu_id, DiskOp.READ, 2000, 8)
        drive.submit(second)
        engine.run()
        assert second.wait_us > 0

    def test_stats_accumulate(self, setup):
        engine, _reg, drive, a, b = setup
        drive.submit(DiskRequest(a.spu_id, DiskOp.READ, 0, 8))
        drive.submit(DiskRequest(b.spu_id, DiskOp.WRITE, 5000, 16))
        engine.run()
        assert drive.stats.count() == 2
        assert drive.stats.count(a.spu_id) == 1
        assert drive.stats.total_sectors() == 24
        assert drive.stats.total_sectors(b.spu_id) == 16

    def test_request_beyond_disk_rejected(self, setup):
        _engine, _reg, drive, a, _b = setup
        with pytest.raises(ValueError):
            drive.submit(
                DiskRequest(a.spu_id, DiskOp.READ, drive.geometry.total_sectors, 1)
            )

    def test_queue_drains_in_order(self, setup):
        engine, _reg, drive, a, _b = setup
        order = []
        for sector in (9000, 3000, 6000):
            drive.submit(
                DiskRequest(
                    a.spu_id, DiskOp.READ, sector, 8,
                    on_complete=lambda r: order.append(r.sector),
                )
            )
        engine.run()
        # First request (9000) starts immediately; C-SCAN then sweeps
        # from 9008: nothing ahead in {3000,6000}? 3000 and 6000 are
        # behind, so it wraps to the lowest.
        assert order == [9000, 3000, 6000]


class TestCharging:
    def test_sectors_charged_to_spu_counter(self, setup):
        engine, _reg, drive, a, _b = setup
        drive.submit(DiskRequest(a.spu_id, DiskOp.READ, 0, 32))
        engine.run()
        assert drive.ledger.usage_ratio(a.spu_id, engine.now) == 32.0

    def test_charges_map_overrides_owner(self, setup):
        engine, reg, drive, a, b = setup
        drive.submit(
            DiskRequest(
                reg.shared_spu.spu_id,
                DiskOp.WRITE,
                0,
                24,
                charges={a.spu_id: 16, b.spu_id: 8},
            )
        )
        engine.run()
        assert drive.ledger.usage_ratio(a.spu_id, engine.now) == 16.0
        assert drive.ledger.usage_ratio(b.spu_id, engine.now) == 8.0
        assert drive.ledger.usage_ratio(reg.shared_spu.spu_id, engine.now) == 0.0

    def test_ratio_respects_share_weight(self, setup):
        engine, _reg, drive, a, b = setup
        b.disk_bw().set_entitled(4)
        drive.submit(DiskRequest(a.spu_id, DiskOp.READ, 0, 32))
        drive.submit(DiskRequest(b.spu_id, DiskOp.READ, 5000, 32))
        engine.run()
        assert drive.ledger.usage_ratio(b.spu_id, engine.now) == pytest.approx(
            drive.ledger.usage_ratio(a.spu_id, engine.now) / 4
        )

    def test_ledger_background_is_shared_spu(self, setup):
        _engine, reg, drive, a, _b = setup
        assert drive.ledger.is_background(reg.shared_spu.spu_id)
        assert not drive.ledger.is_background(a.spu_id)

    def test_counter_decays(self, setup):
        engine, _reg, drive, a, _b = setup
        drive.submit(DiskRequest(a.spu_id, DiskOp.READ, 0, 32))
        engine.run()
        now = engine.now
        assert drive.ledger.usage_ratio(a.spu_id, now + 500_000) <= 16.0


class TestRequestValidation:
    def test_zero_sectors_rejected(self):
        with pytest.raises(ValueError):
            DiskRequest(1, DiskOp.READ, 0, 0)

    def test_negative_sector_rejected(self):
        with pytest.raises(ValueError):
            DiskRequest(1, DiskOp.READ, -1, 8)

    def test_wait_before_service_raises(self):
        request = DiskRequest(1, DiskOp.READ, 0, 8)
        with pytest.raises(ValueError):
            _ = request.wait_us

    def test_response_before_completion_raises(self):
        request = DiskRequest(1, DiskOp.READ, 0, 8)
        request.enqueue_time = 0
        request.start_time = 10
        with pytest.raises(ValueError):
            _ = request.response_us

    def test_last_sector(self):
        assert DiskRequest(1, DiskOp.READ, 100, 8).last_sector == 107
