"""Kernel overload hardening: limits, backpressure, OOM, escalation."""

import pytest

from repro.faults import InvariantWatchdog, OverloadGuard
from repro.kernel.kernel import Kernel
from repro.kernel.machine import MachineConfig
from repro.kernel.overload import OverloadPolicy
from repro.kernel.syscalls import (
    Compute,
    ReadFile,
    SetWorkingSet,
    Spawn,
    WaitChildren,
)
from repro.sim.units import KB, MSEC


def make_kernel(nspus=2, **overrides):
    config = MachineConfig(
        ncpus=2, memory_mb=8, overload=OverloadPolicy(**overrides)
    )
    kernel = Kernel(config)
    spus = [kernel.create_spu(f"spu{i}") for i in range(nspus)]
    kernel.boot()
    return kernel, spus


def worker(duration_us=50 * MSEC):
    yield Compute(duration_us)


class TestOverloadPolicy:
    def test_rejects_nonsense(self):
        with pytest.raises(ValueError):
            OverloadPolicy(max_procs_per_spu=0)
        with pytest.raises(ValueError):
            OverloadPolicy(max_inflight_io_per_spu=0)
        with pytest.raises(ValueError):
            OverloadPolicy(spawn_backoff_us=-1)
        with pytest.raises(ValueError):
            OverloadPolicy(io_retry_us=0)
        with pytest.raises(ValueError):
            OverloadPolicy(io_deadline_us=0)
        with pytest.raises(ValueError):
            OverloadPolicy(oom_failure_streak=-1)

    def test_clamped_halves_with_floor(self):
        policy = OverloadPolicy()
        assert policy.clamped(64) == 32
        assert policy.clamped(1) == 1
        assert policy.clamped(None) is None


class TestSpawnLimit:
    def test_spawn_past_limit_fails_with_minus_one(self):
        kernel, (spu, _other) = make_kernel(
            max_procs_per_spu=4, spawn_backoff_us=5 * MSEC
        )
        pids = []

        def spawner():
            for _ in range(6):
                pid = yield Spawn(worker(), name="child")
                pids.append(pid)
            yield WaitChildren()

        kernel.spawn(spawner(), spu, name="parent")
        kernel.run()
        # Parent plus three children fill the limit of 4; the rest fail.
        assert [p != -1 for p in pids] == [True, True, True, False, False, False]
        assert kernel.spawn_denials[spu.spu_id] == 3

    def test_denied_spawn_pays_the_backoff(self):
        kernel, (spu, _other) = make_kernel(
            max_procs_per_spu=1, spawn_backoff_us=7 * MSEC
        )
        stamps = []

        def spawner():
            stamps.append(kernel.engine.now)
            pid = yield Spawn(worker(), name="child")
            stamps.append((pid, kernel.engine.now))

        kernel.spawn(spawner(), spu, name="parent")
        kernel.run()
        (issued, (pid, resumed)) = stamps
        assert pid == -1
        assert resumed - issued >= 7 * MSEC

    def test_admin_spawn_is_never_limited(self):
        kernel, (spu, _other) = make_kernel(max_procs_per_spu=1)
        for i in range(5):
            kernel.spawn(worker(1000), spu, name=f"admin-{i}")
        kernel.run()
        assert kernel.spawn_denials.get(spu.spu_id, 0) == 0


class TestIoAdmission:
    def make_readers(self, kernel, spu, n, file):
        results = []

        def reader():
            res = yield ReadFile(file, 0, 8 * KB)
            results.append(res)

        for i in range(n):
            kernel.spawn(reader(), spu, name=f"reader-{i}")
        return results

    def test_excess_io_waits_then_succeeds(self):
        kernel, (spu, _other) = make_kernel(
            max_inflight_io_per_spu=1, io_retry_us=1 * MSEC
        )
        file = kernel.fs.create(0, "data", 64 * KB)
        results = self.make_readers(kernel, spu, 3, file)
        kernel.run()
        # All three eventually complete (None = success), but the
        # overflow was throttled through the backpressure loop.
        assert results == [None, None, None]
        assert kernel.io_throttled[spu.spu_id] >= 1
        assert kernel.io_rejected.get(spu.spu_id, 0) == 0

    def test_io_past_deadline_fails_with_minus_one(self):
        kernel, (spu, _other) = make_kernel(
            max_inflight_io_per_spu=1, io_retry_us=1 * MSEC, io_deadline_us=2 * MSEC
        )
        # A long stream keeps the one admission slot busy while the
        # other readers sit at the deadline.
        big = kernel.fs.create(0, "big", 2048 * KB)

        def streamer():
            yield ReadFile(big, 0, 2048 * KB)

        kernel.spawn(streamer(), spu, name="streamer")
        file = kernel.fs.create(0, "data", 64 * KB)
        results = self.make_readers(kernel, spu, 2, file)
        kernel.run()
        assert -1 in results
        assert kernel.io_rejected[spu.spu_id] >= 1

    def test_throttle_halves_admission_limits(self):
        kernel, (spu, _other) = make_kernel(max_procs_per_spu=4)
        assert not kernel.spu_throttled(spu.spu_id)
        kernel.throttle_spu(spu.spu_id)
        assert kernel.spu_throttled(spu.spu_id)
        pids = []

        def spawner():
            for _ in range(3):
                pid = yield Spawn(worker(), name="child")
                pids.append(pid)
            yield WaitChildren()

        kernel.spawn(spawner(), spu, name="parent")
        kernel.run()
        # Throttled limit is 4 // 2 = 2: parent + one child.
        assert [p != -1 for p in pids] == [True, False, False]
        kernel.unthrottle_spu(spu.spu_id)
        assert not kernel.spu_throttled(spu.spu_id)


class TestKill:
    def test_kill_releases_pages_and_wakes_parent(self):
        kernel, (spu, _other) = make_kernel()
        child_box = []

        def hog():
            yield SetWorkingSet(pages=64)
            yield Compute(10_000 * MSEC)

        def parent():
            pid = yield Spawn(hog(), name="hog")
            child_box.append(pid)
            yield WaitChildren()

        kernel.spawn(parent(), spu, name="parent")
        kernel.run(until=100 * MSEC)
        victim = kernel.processes[child_box[0]]
        assert victim.alive and victim.resident > 0
        kernel.kill(victim, reason="test")
        kernel.run()
        assert not victim.alive
        assert victim.kill_reason == "test"
        # The parent's WaitChildren completed — the kill took the
        # ordinary exit path.
        assert all(not p.alive for p in kernel.processes.values())
        watchdog = InvariantWatchdog(kernel)
        watchdog.check()
        assert watchdog.violations == []


class TestOomKill:
    def test_kills_largest_offender_in_own_spu_only(self):
        kernel, (spu_a, spu_b) = make_kernel()

        def sized(pages):
            yield SetWorkingSet(pages=pages)
            yield Compute(10_000 * MSEC)

        small = kernel.spawn(sized(8), spu_a, name="small")
        big = kernel.spawn(sized(128), spu_a, name="big")
        bystander = kernel.spawn(sized(256), spu_b, name="bystander")
        kernel.run(until=200 * MSEC)
        victim = kernel.oom_kill(spu_a.spu_id)
        assert victim is big
        assert victim.kill_reason == "oom"
        assert small.alive and bystander.alive
        assert kernel.oom_kills[spu_a.spu_id] == 1

    def test_empty_spu_returns_none(self):
        kernel, (spu, _other) = make_kernel()
        assert kernel.oom_kill(spu.spu_id) is None
        assert kernel.oom_kills.get(spu.spu_id, 0) == 0


class TestOverloadGuard:
    def make_guard(self, **kwargs):
        kernel, (spu, _other) = make_kernel()
        guard = OverloadGuard(
            kernel, pressure_threshold=10, throttle_after=2, kill_after=3,
            **kwargs,
        )
        return kernel, spu, guard

    def pressurise(self, kernel, spu, amount=50):
        kernel.spawn_denials[spu.spu_id] = (
            kernel.spawn_denials.get(spu.spu_id, 0) + amount
        )

    def test_rejects_nonsense(self):
        kernel, _spus = make_kernel()
        with pytest.raises(ValueError):
            OverloadGuard(kernel, pressure_threshold=0)
        with pytest.raises(ValueError):
            OverloadGuard(kernel, throttle_after=3, kill_after=3)
        with pytest.raises(ValueError):
            OverloadGuard(kernel, throttle_after=0, kill_after=2)

    def test_escalation_ladder(self):
        kernel, spu, guard = self.make_guard()

        def hog():
            yield SetWorkingSet(pages=32)
            yield Compute(10_000 * MSEC)

        kernel.spawn(hog(), spu, name="hog")
        kernel.run(until=50 * MSEC)

        self.pressurise(kernel, spu)
        guard.check()  # hot x1: nothing yet
        assert guard.escalations == []
        self.pressurise(kernel, spu)
        guard.check()  # hot x2: throttle
        assert [e.stage for e in guard.escalations] == ["throttle"]
        assert kernel.spu_throttled(spu.spu_id)
        self.pressurise(kernel, spu)
        guard.check()  # hot x3: kill, ladder re-arms one rung below
        assert [e.stage for e in guard.escalations] == ["throttle", "kill"]
        assert kernel.oom_kills[spu.spu_id] == 1
        self.pressurise(kernel, spu)
        guard.check()  # still hot: kills again immediately (re-armed)
        assert [e.stage for e in guard.escalations] == [
            "throttle", "kill", "kill",
        ]

    def test_cooling_down_resets_and_unthrottles(self):
        kernel, spu, guard = self.make_guard()
        self.pressurise(kernel, spu)
        guard.check()
        self.pressurise(kernel, spu)
        guard.check()
        assert kernel.spu_throttled(spu.spu_id)
        guard.check()  # no new pressure: cools down
        assert not kernel.spu_throttled(spu.spu_id)
        # The ladder restarted from zero: throttling needs two more
        # hot periods again.
        self.pressurise(kernel, spu)
        guard.check()
        assert len(guard.escalations) == 1
