"""Tests for dynamic SPU creation/suspension/destruction (Section 2.1)."""

import pytest

from repro.core import MILLI_CPU, piso_scheme, quota_scheme
from repro.disk.model import fast_disk
from repro.kernel import Compute, DiskSpec, Kernel, MachineConfig, Sleep
from repro.sim.units import msecs, secs


def booted(nspus=2, ncpus=4, scheme=None):
    kernel = Kernel(
        MachineConfig(ncpus=ncpus, memory_mb=16,
                      disks=[DiskSpec(geometry=fast_disk())],
                      scheme=scheme if scheme is not None else piso_scheme())
    )
    spus = [kernel.create_spu(f"u{i}") for i in range(nspus)]
    kernel.boot()
    return kernel, spus


def spinner(ms):
    yield Compute(msecs(ms))


class TestAddSpu:
    def test_add_redivides_cpus(self):
        kernel, (a, b) = booted(nspus=2, ncpus=4)
        assert a.cpu().entitled == 2 * MILLI_CPU
        c = kernel.add_spu("late")
        for spu in (a, b, c):
            assert spu.cpu().entitled in (1333, 1334)

    def test_add_redivides_memory(self):
        kernel, (a, b) = booted(nspus=2)
        before = a.memory().entitled
        kernel.add_spu("late")
        assert a.memory().entitled < before

    def test_late_spu_can_run_work(self):
        kernel, _ = booted(nspus=2)
        late = kernel.add_spu("late")
        proc = kernel.spawn(spinner(50), late)
        kernel.run()
        assert proc.response_us >= msecs(50)

    def test_add_before_boot_is_create(self):
        kernel = Kernel(
            MachineConfig(ncpus=2, memory_mb=16,
                          disks=[DiskSpec(geometry=fast_disk())],
                          scheme=piso_scheme())
        )
        spu = kernel.add_spu("early")
        kernel.boot()
        assert spu.cpu().entitled == 2 * MILLI_CPU


class TestRunningWorkload:
    def test_new_spu_gets_share_of_busy_machine(self):
        kernel, (a, b) = booted(nspus=2, ncpus=4, scheme=quota_scheme())
        for spu in (a, b):
            for _ in range(4):
                kernel.spawn(spinner(2000), spu)
        # Let the machine saturate, then a third tenant arrives.
        kernel.run(until=msecs(100))
        c = kernel.add_spu("tenant3")
        late_procs = [kernel.spawn(spinner(500), c) for _ in range(2)]
        kernel.run()
        # Under quotas the newcomer got >= 1 CPU immediately: its two
        # 500 ms jobs on >= 1 CPU finish within ~1.2 s of arrival.
        for proc in late_procs:
            assert proc.response_us < msecs(1300)

    def test_repartition_preempts_displaced_processes(self):
        kernel, (a, b) = booted(nspus=2, ncpus=4, scheme=quota_scheme())
        for spu in (a, b):
            for _ in range(2):
                kernel.spawn(spinner(1000), spu)
        kernel.run(until=msecs(50))
        kernel.add_spu("c")
        # One of the four CPUs now belongs to the new SPU; exactly one
        # running process was kicked back to its queue.
        running = sum(1 for c in kernel.cpusched.processors if not c.idle)
        assert running <= 3


class TestSuspendResume:
    def test_suspend_returns_share_to_pool(self):
        kernel, (a, b) = booted(nspus=2, ncpus=4)
        kernel.suspend_spu(b)
        assert a.cpu().entitled == 4 * MILLI_CPU

    def test_resume_restores_share(self):
        kernel, (a, b) = booted(nspus=2, ncpus=4)
        kernel.suspend_spu(b)
        kernel.resume_spu(b)
        assert a.cpu().entitled == 2 * MILLI_CPU
        assert b.cpu().entitled == 2 * MILLI_CPU

    def test_suspended_spu_with_processes_rejected(self):
        kernel, (a, b) = booted()
        kernel.spawn(spinner(100), b)
        with pytest.raises(Exception):
            kernel.suspend_spu(b)


class TestRetire:
    def test_retire_redivides(self):
        kernel, (a, b) = booted(nspus=2, ncpus=4)
        kernel.retire_spu(b)
        assert a.cpu().entitled == 4 * MILLI_CPU

    def test_retire_with_processes_rejected(self):
        kernel, (a, b) = booted()
        kernel.spawn(spinner(100), b)
        with pytest.raises(Exception):
            kernel.retire_spu(b)

    def test_full_lifecycle(self):
        kernel, (a,) = booted(nspus=1, ncpus=2)
        b = kernel.add_spu("b")
        proc = kernel.spawn(spinner(50), b)
        kernel.run()
        assert proc.response_us >= msecs(50)
        kernel.retire_spu(b)
        assert a.cpu().entitled == 2 * MILLI_CPU
