"""Scenario specs and generation: validation, determinism, round-trips."""

import math

import pytest

from repro.chaos.plan import AntagonistBurst
from repro.faults.plan import DiskFailure, DiskTransient, FaultPlan
from repro.fuzz.generate import generate_scenario
from repro.fuzz.scenario import (
    MEMORY_MB_RANGE,
    NCPUS_RANGE,
    NDISKS_RANGE,
    SCHEMES,
    WORKLOAD_KINDS,
    ScenarioError,
    ScenarioSpec,
    WorkloadSpec,
)
from repro.sim.units import MSEC, SEC


def small_scenario(**overrides):
    fields = dict(
        seed=1, ncpus=2, memory_mb=16, ndisks=2, scheme="piso",
        horizon_us=500 * MSEC,
        workloads=[WorkloadSpec(kind="cpu_hog", spu="load0")],
        bursts=[AntagonistBurst(at_us=0, kind="lock_hogger")],
        faults=FaultPlan([DiskFailure(at_us=100 * MSEC, disk=1)]),
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


class TestValidation:
    def test_accepts_a_legal_scenario(self):
        scenario = small_scenario()
        assert len(scenario) == 3

    def test_rejects_unknown_scheme(self):
        with pytest.raises(ScenarioError, match="unknown scheme"):
            small_scenario(scheme="round_robin")

    def test_rejects_unknown_workload_kind(self):
        with pytest.raises(ScenarioError, match="unknown workload"):
            small_scenario(workloads=[WorkloadSpec(kind="quake", spu="load0")])

    def test_rejects_reserved_spu_names(self):
        with pytest.raises(ScenarioError, match="reserved"):
            small_scenario(workloads=[WorkloadSpec(kind="cpu_hog", spu="victim")])

    def test_rejects_mount_beyond_machine(self):
        with pytest.raises(ScenarioError, match="mount 5"):
            small_scenario(
                workloads=[WorkloadSpec(kind="copy", spu="load0", mount=5)]
            )

    def test_rejects_fault_on_missing_disk(self):
        with pytest.raises(ScenarioError, match="disk 3"):
            small_scenario(
                faults=FaultPlan([DiskFailure(at_us=0, disk=3)])
            )

    def test_rejects_death_of_the_failover_disk(self):
        with pytest.raises(ScenarioError, match="disk 0"):
            small_scenario(faults=FaultPlan([DiskFailure(at_us=0, disk=0)]))

    def test_rejects_nan_and_non_integer_dimensions(self):
        with pytest.raises(ScenarioError, match="ncpus"):
            small_scenario(ncpus=float("nan"))
        with pytest.raises(ScenarioError, match="horizon_us"):
            small_scenario(horizon_us=math.inf)
        with pytest.raises(ScenarioError, match="memory_mb"):
            small_scenario(memory_mb=True)

    def test_rejects_out_of_range_dimensions(self):
        with pytest.raises(ScenarioError, match="ncpus"):
            small_scenario(ncpus=NCPUS_RANGE[1] + 1)
        with pytest.raises(ScenarioError, match="memory_mb"):
            small_scenario(memory_mb=MEMORY_MB_RANGE[0] - 1)
        with pytest.raises(ScenarioError, match="ndisks"):
            small_scenario(ndisks=NDISKS_RANGE[1] + 1)

    def test_rejects_excessive_intensity(self):
        with pytest.raises(ScenarioError, match="intensity"):
            small_scenario(
                workloads=[WorkloadSpec(kind="copy", spu="load0", intensity=9)]
            )


class TestRoundTrip:
    def test_json_round_trip_preserves_everything(self):
        scenario = small_scenario()
        rebuilt = ScenarioSpec.from_json(scenario.to_json())
        assert rebuilt.to_dict() == scenario.to_dict()
        assert rebuilt.fingerprint() == scenario.fingerprint()

    def test_from_dict_rejects_foreign_formats(self):
        record = small_scenario().to_dict()
        record["format"] = "something-else"
        with pytest.raises(ScenarioError, match="not a fuzz scenario"):
            ScenarioSpec.from_dict(record)

    def test_from_dict_names_missing_fields(self):
        record = small_scenario().to_dict()
        del record["scheme"], record["workloads"]
        with pytest.raises(ScenarioError, match="scheme"):
            ScenarioSpec.from_dict(record)

    def test_from_dict_revalidates_events(self):
        record = small_scenario().to_dict()
        record["faults"] = [
            {"kind": "disk_transient", "at_us": 0, "disk": 0,
             "duration_us": float("nan")}
        ]
        with pytest.raises(ScenarioError, match="finite"):
            ScenarioSpec.from_dict(record)

    def test_fingerprint_tracks_content(self):
        a = small_scenario()
        b = small_scenario(seed=2)
        assert a.fingerprint() != b.fingerprint()


class TestDerivedForms:
    def test_replace_events_keeps_the_machine(self):
        scenario = small_scenario()
        stripped = scenario.replace_events([], [], [])
        assert len(stripped) == 0
        assert (stripped.ncpus, stripped.memory_mb, stripped.ndisks) == (
            scenario.ncpus, scenario.memory_mb, scenario.ndisks
        )

    def test_replace_machine_revalidates(self):
        scenario = small_scenario()
        with pytest.raises(ScenarioError, match="disk"):
            # Dropping to one disk strands the DiskFailure on disk 1.
            scenario.replace_machine(ndisks=1)

    def test_simulation_spec_lists_reserved_and_workload_spus(self):
        spec = small_scenario().simulation_spec()
        assert spec.ncpus == 2
        names = [s if isinstance(s, str) else s.name for s in spec.spus]
        assert names == ["victim", "attacker", "load0"]


class TestGeneration:
    def test_generation_is_deterministic(self):
        a = generate_scenario(7)
        b = generate_scenario(7)
        assert a.to_dict() == b.to_dict()
        assert a.fingerprint() == b.fingerprint()

    def test_distinct_seeds_diverge(self):
        fingerprints = {generate_scenario(s).fingerprint() for s in range(20)}
        assert len(fingerprints) == 20

    def test_generated_scenarios_are_legal(self):
        # Construction re-validates, so survival == legality; spot-check
        # the interesting structural properties on top.
        for seed in range(60):
            scenario = generate_scenario(seed)
            assert NCPUS_RANGE[0] <= scenario.ncpus <= NCPUS_RANGE[1]
            assert scenario.scheme in SCHEMES
            assert all(w.kind in WORKLOAD_KINDS for w in scenario.workloads)
            assert all(w.mount < scenario.ndisks for w in scenario.workloads)
            for event in scenario.faults:
                disk = getattr(event, "disk", None)
                if disk is not None:
                    assert disk < scenario.ndisks
                if isinstance(event, DiskTransient):
                    assert event.duration_us > 0

    def test_pinning_horizon_and_scheme(self):
        scenario = generate_scenario(3, horizon_us=1 * SEC, scheme="smp")
        assert scenario.horizon_us == 1 * SEC
        assert scenario.scheme == "smp"
        # Pinning must not disturb the rest of the draw.
        free = generate_scenario(3)
        assert scenario.ncpus == free.ncpus
        assert scenario.memory_mb == free.memory_mb
