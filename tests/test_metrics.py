"""Unit tests for metrics collection and reporting."""

import pytest

from repro.core import piso_scheme
from repro.disk.model import fast_disk
from repro.kernel import Compute, DiskSpec, Kernel, MachineConfig, Spawn, WaitChildren
from repro.metrics import (
    MetricsError,
    format_comparison,
    format_table,
    job_results,
    mean_response_by_spu,
    mean_response_us,
    normalize,
)
from repro.sim.units import msecs


@pytest.fixture
def finished_kernel():
    kernel = Kernel(
        MachineConfig(ncpus=4, memory_mb=16, disks=[DiskSpec(geometry=fast_disk())],
                      scheme=piso_scheme())
    )
    a = kernel.create_spu("a")
    b = kernel.create_spu("b")
    kernel.boot()

    def child():
        yield Compute(msecs(10))

    def job(ms):
        yield Spawn(child())
        yield Compute(msecs(ms))
        yield WaitChildren()

    kernel.spawn(job(100), a, name="job-a")
    kernel.spawn(job(200), b, name="job-b")
    kernel.run()
    return kernel, a, b


class TestJobResults:
    def test_top_level_only_by_default(self, finished_kernel):
        kernel, _a, _b = finished_kernel
        results = job_results(kernel)
        assert {r.name for r in results} == {"job-a", "job-b"}

    def test_children_included_on_request(self, finished_kernel):
        kernel, _a, _b = finished_kernel
        results = job_results(kernel, top_level_only=False)
        assert len(results) == 4

    def test_spu_filter(self, finished_kernel):
        kernel, a, _b = finished_kernel
        results = job_results(kernel, spu_ids=[a.spu_id])
        assert [r.name for r in results] == ["job-a"]

    def test_unfinished_process_raises(self):
        kernel = Kernel(
            MachineConfig(ncpus=1, memory_mb=16,
                          disks=[DiskSpec(geometry=fast_disk())],
                          scheme=piso_scheme())
        )
        spu = kernel.create_spu("a")
        kernel.boot()

        def job():
            yield Compute(msecs(10))

        kernel.spawn(job(), spu)
        with pytest.raises(MetricsError):
            job_results(kernel)


class TestAggregation:
    def test_mean_response(self, finished_kernel):
        kernel, _a, _b = finished_kernel
        results = job_results(kernel)
        mean = mean_response_us(results)
        assert mean == sum(r.response_us for r in results) / 2

    def test_mean_of_nothing_raises(self):
        with pytest.raises(MetricsError):
            mean_response_us([])

    def test_mean_by_spu(self, finished_kernel):
        kernel, a, b = finished_kernel
        by_spu = mean_response_by_spu(job_results(kernel))
        assert set(by_spu) == {a.spu_id, b.spu_id}
        assert by_spu[b.spu_id] > by_spu[a.spu_id]

    def test_normalize(self):
        assert normalize(150, 100) == 150.0
        assert normalize(100, 100) == 100.0

    def test_normalize_bad_baseline(self):
        with pytest.raises(MetricsError):
            normalize(1, 0)


class TestFormatting:
    def test_table_alignment(self):
        out = format_table(["name", "v"], [["a", 1], ["long-name", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "long-name" in lines[3]

    def test_table_with_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out

    def test_comparison_line(self):
        line = format_comparison("pmake", 13.5, 8.2, unit="s")
        assert "paper=13.5 s" in line
        assert "measured=8.2 s" in line
