"""Interprocedural effect analysis: the SL5xx/SL6xx project rules.

Seeded regression fixtures, one per rule: each fires with its witness
call chain in the message — through text, JSON, and SARIF output — and
each has a compliant/suppressed twin that stays silent.  Also covers
the derived hot-module list (satellite of the effect engine: SL4xx
scope follows ``Engine.run`` reachability instead of a hard-coded
list) and the ``--why`` explain command.
"""

import json
from collections import Counter
from pathlib import Path

from repro.lint import all_rules, run_lint
from repro.lint.cli import main as lint_main
from repro.lint.effects import analyze_paths
from repro.lint.framework import HOT_MODULES, iter_python_files
from repro.lint.output import render_json, render_sarif, render_text

ROOT = Path(__file__).resolve().parent.parent

HOSTUTIL = """\
import os
import random
import time


def stamp():
    return time.time()


def draw():
    return random.random()


def knob():
    return os.getenv("REPRO_PROFILE")


def host_mode():
    return os.getenv("SIM_PROFILE")


def first_of(items):
    for item in set(items):
        return item
    return None
"""

HANDLERS = """\
from repro.fleet import hostutil


def on_tick():
    return hostutil.stamp()


def on_jitter():
    return hostutil.draw()


def on_config():
    return hostutil.host_mode()


def on_sweep(items):
    return hostutil.first_of(items)


def sanctioned_config():
    return hostutil.knob()


def cascade():
    return on_tick()
"""

ENGINE = """\
class Engine:
    __slots__ = ("pending",)

    def call_after(self, delay, fn, *args):
        self.pending = (delay, fn, args)

    def run(self):
        return self.pending
"""

TANK = """\
from repro.sim.engine import Engine


class Tank:
    __slots__ = ("used",)

    def __init__(self, engine: Engine):
        self.used = 0
        engine.call_after(1, self.fill)
        engine.call_after(2, self.drain)

    def fill(self):
        self.used += 1

    def drain(self):
        self.used -= 1
"""


def write_module(root, relpath, source):
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return path


def build_tree(root):
    write_module(root, "repro/fleet/hostutil.py", HOSTUTIL)
    write_module(root, "repro/sim/handlers.py", HANDLERS)
    write_module(root, "repro/sim/engine.py", ENGINE)
    write_module(root, "repro/sim/tank.py", TANK)


def lint_effects(root):
    return run_lint([str(root)], root=str(root), effects=True)


class TestInterprocDeterminism:
    def test_each_rule_fires_once_with_a_witness_chain(self, tmp_path):
        build_tree(tmp_path)
        findings = lint_effects(tmp_path)
        counts = Counter(f.rule for f in findings)
        assert counts == {
            "SL501": 1,  # on_tick -> stamp -> time.time
            "SL502": 1,  # on_jitter -> draw -> random.random
            "SL503": 1,  # on_config -> host_mode -> os.getenv(SIM_PROFILE)
            "SL504": 1,  # on_sweep -> first_of -> set iteration
            "SL601": 2,  # Tank.used written from two event roots
        }
        by_rule = {f.rule: f for f in findings}
        assert by_rule["SL501"].message.endswith(
            "on_tick -> stamp -> time.time (repro/fleet/hostutil.py:7)"
        )
        assert "on_jitter -> draw -> random.random" in by_rule["SL502"].message
        assert "os.getenv(SIM_PROFILE)" in by_rule["SL503"].message
        assert "iteration over a set" in by_rule["SL504"].message
        # Findings anchor at the call site in the sim-scope caller.
        for rule in ("SL501", "SL502", "SL503", "SL504"):
            assert by_rule[rule].path == "repro/sim/handlers.py"

    def test_only_the_frontier_function_reports(self, tmp_path):
        # cascade -> on_tick -> stamp: on_tick already fires SL501, so
        # cascade must stay silent instead of duplicating the root
        # cause one frame up.
        build_tree(tmp_path)
        sl501 = [f for f in lint_effects(tmp_path) if f.rule == "SL501"]
        assert [f.message.split(" ", 1)[0] for f in sl501] == ["on_tick"]

    def test_sanctioned_repro_env_read_is_silent(self, tmp_path):
        # REPRO_* knobs are folded into the sweep-cache key, so
        # reading one is steering, not hidden nondeterminism.
        build_tree(tmp_path)
        messages = [
            f.message for f in lint_effects(tmp_path) if f.rule == "SL503"
        ]
        assert not any("REPRO_PROFILE" in m for m in messages)

    def test_direct_sites_stay_sl1xx_business(self, tmp_path):
        write_module(
            tmp_path, "repro/sim/direct.py",
            "import time\n\n\ndef now():\n    return time.time()\n",
        )
        counts = Counter(f.rule for f in lint_effects(tmp_path))
        assert counts == {"SL101": 1}

    def test_suppressed_site_fires_only_cross_package(self, tmp_path):
        write_module(
            tmp_path, "repro/core/clockutil.py",
            "import time\n\n\ndef stamp():\n"
            "    return time.time()  # simlint: disable=SL101\n",
        )
        write_module(
            tmp_path, "repro/core/sibling.py",
            "from repro.core import clockutil\n\n\ndef same_package():\n"
            "    return clockutil.stamp()\n",
        )
        write_module(
            tmp_path, "repro/kernel/client.py",
            "from repro.core import clockutil\n\n\ndef cross_package():\n"
            "    return clockutil.stamp()\n",
        )
        findings = lint_effects(tmp_path)
        # Whoever audited the suppression saw the package around it:
        # only the kernel-side caller is a new finding.
        assert [(f.rule, f.path) for f in findings] == [
            ("SL501", "repro/kernel/client.py")
        ]

    def test_project_rules_need_the_effects_flag(self, tmp_path):
        build_tree(tmp_path)
        findings = run_lint([str(tmp_path)], root=str(tmp_path))
        assert not any(f.rule.startswith(("SL5", "SL6")) for f in findings)


class TestSharedStateOrdering:
    def test_multi_root_ledger_write_fires_at_each_site(self, tmp_path):
        build_tree(tmp_path)
        sl601 = [f for f in lint_effects(tmp_path) if f.rule == "SL601"]
        assert [(f.path, f.line) for f in sl601] == [
            ("repro/sim/tank.py", 13),  # fill: self.used += 1
            ("repro/sim/tank.py", 16),  # drain: self.used -= 1
        ]
        for f in sl601:
            assert "Tank.used" in f.message
            assert "2 event roots" in f.message
            assert "Tank.drain" in f.message and "Tank.fill" in f.message

    def test_constructor_writes_are_not_ordering_coupled(self, tmp_path):
        # ``self.used = 0`` in __init__ initialises a fresh object; it
        # must not be counted as a shared-state write site.
        build_tree(tmp_path)
        sl601 = [f for f in lint_effects(tmp_path) if f.rule == "SL601"]
        assert 8 not in [f.line for f in sl601]

    def test_write_site_disable_silences(self, tmp_path):
        audited = TANK.replace(
            "self.used += 1", "self.used += 1  # simlint: disable=SL601"
        ).replace(
            "self.used -= 1", "self.used -= 1  # simlint: disable=SL601"
        )
        write_module(tmp_path, "repro/sim/engine.py", ENGINE)
        write_module(tmp_path, "repro/sim/tank.py", audited)
        assert [f.rule for f in lint_effects(tmp_path)] == []


class TestOutputFormatsCarryTheChain:
    CHAIN = "on_tick -> stamp -> time.time"

    def findings(self, tmp_path):
        build_tree(tmp_path)
        return lint_effects(tmp_path)

    def test_text(self, tmp_path):
        report = render_text(self.findings(tmp_path))
        assert "SL501" in report and self.CHAIN in report

    def test_json(self, tmp_path):
        payload = json.loads(render_json(self.findings(tmp_path)))
        sl501 = [r for r in payload["findings"] if r["rule"] == "SL501"]
        assert len(sl501) == 1 and self.CHAIN in sl501[0]["message"]

    def test_sarif(self, tmp_path):
        sarif = json.loads(render_sarif(self.findings(tmp_path), all_rules()))
        run = sarif["runs"][0]
        declared = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert {"SL501", "SL502", "SL503", "SL504", "SL601"} <= declared
        sl501 = [
            r for r in run["results"] if r["ruleId"] == "SL501"
        ]
        assert len(sl501) == 1
        assert self.CHAIN in sl501[0]["message"]["text"]
        location = sl501[0]["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "repro/sim/handlers.py"


class TestDerivedHotModules:
    def test_fixture_hot_set_follows_engine_reachability(self, tmp_path):
        build_tree(tmp_path)
        analysis = analyze_paths(
            iter_python_files([str(tmp_path)]), root=str(tmp_path)
        )
        # Engine.run itself plus the event-root handlers' module; the
        # taint fixtures in repro/sim/handlers.py are neither.
        assert set(analysis.hot_modules()) == {
            "sim/engine.py", "sim/tank.py"
        }

    def test_sl4xx_follows_the_derived_list(self, tmp_path):
        # Tank is slotted in the shared fixture; strip the slots and
        # the derived hot list (which static HOT_MODULES knows nothing
        # about — tank.py is not in it) must catch the class.
        write_module(tmp_path, "repro/sim/engine.py", ENGINE)
        write_module(
            tmp_path, "repro/sim/tank.py",
            TANK.replace('    __slots__ = ("used",)\n\n', ""),
        )
        assert "sim/tank.py" not in HOT_MODULES
        with_effects = run_lint(
            [str(tmp_path)], root=str(tmp_path), effects=True
        )
        assert [
            (f.rule, f.path) for f in with_effects if f.rule == "SL401"
        ] == [("SL401", "repro/sim/tank.py")]
        without = run_lint([str(tmp_path)], root=str(tmp_path))
        assert not [f for f in without if f.rule == "SL401"]

    def test_real_tree_static_list_is_a_subset_of_derived(self):
        analysis = analyze_paths(
            iter_python_files([str(ROOT / "src" / "repro")])
        )
        derived = set(analysis.hot_modules())
        missing = set(HOT_MODULES) - derived
        assert not missing, (
            "static HOT_MODULES entries no longer reachable from "
            f"Engine.run: {sorted(missing)}"
        )


class TestWhyCommand:
    def test_explains_a_function_with_its_closure(self, tmp_path, capsys):
        build_tree(tmp_path)
        assert lint_main([str(tmp_path / "repro"), "--why", "on_tick"]) == 0
        out = capsys.readouterr().out
        assert "repro.sim.handlers:on_tick" in out
        assert "transitive wall-clock" in out
        assert "dependency closure:" in out and "complete" in out

    def test_unknown_function_is_a_usage_error(self, tmp_path, capsys):
        build_tree(tmp_path)
        assert lint_main(
            [str(tmp_path / "repro"), "--why", "no_such_fn"]
        ) == 2
        assert "no function matches" in capsys.readouterr().err

    def test_ambiguous_suffix_lists_candidates(self, tmp_path, capsys):
        write_module(
            tmp_path, "repro/sim/a.py", "def helper():\n    return 1\n"
        )
        write_module(
            tmp_path, "repro/sim/b.py", "def helper():\n    return 2\n"
        )
        assert lint_main([str(tmp_path / "repro"), "--why", "helper"]) == 2
        err = capsys.readouterr().err
        assert "ambiguous" in err
        assert "repro.sim.a:helper" in err and "repro.sim.b:helper" in err
