"""Unit tests for sharing policies."""

import pytest

from repro.core import (
    AlwaysShare,
    NeverShare,
    Resource,
    ShareIdle,
    ShareIdleWithSubset,
    SPURegistry,
)


@pytest.fixture
def spus():
    registry = SPURegistry()
    a = registry.create("a")
    b = registry.create("b")
    c = registry.create("c")
    for spu in (a, b, c):
        spu.memory().set_entitled(100)
    a.memory().acquire(40)
    return a, b, c


class TestNeverShare:
    def test_lends_nothing(self, spus):
        a, _b, _c = spus
        assert NeverShare().lendable(a, Resource.MEMORY) == 0

    def test_accepts_no_borrowers(self, spus):
        a, b, _c = spus
        assert NeverShare().select_borrowers(a, [b]) == []


class TestAlwaysShare:
    def test_lends_full_entitlement_even_when_busy(self, spus):
        a, _b, _c = spus
        assert AlwaysShare().lendable(a, Resource.MEMORY) == 100

    def test_accepts_everyone(self, spus):
        a, b, c = spus
        assert AlwaysShare().select_borrowers(a, [a, b, c]) == [b, c]


class TestShareIdle:
    def test_lends_only_idle_entitlement(self, spus):
        a, _b, _c = spus
        assert ShareIdle().lendable(a, Resource.MEMORY) == 60

    def test_lends_nothing_when_fully_used(self, spus):
        a, _b, _c = spus
        a.memory().acquire(60)
        assert ShareIdle().lendable(a, Resource.MEMORY) == 0

    def test_borrowed_headroom_is_not_lendable(self, spus):
        a, _b, _c = spus
        a.memory().set_allowed(150)
        assert ShareIdle().lendable(a, Resource.MEMORY) == 60

    def test_accepts_everyone(self, spus):
        a, b, c = spus
        assert ShareIdle().select_borrowers(a, [b, c]) == [b, c]

    def test_never_selects_self(self, spus):
        a, _b, _c = spus
        assert ShareIdle().select_borrowers(a, [a]) == []


class TestShareIdleWithSubset:
    def test_only_listed_spus_borrow(self, spus):
        a, b, c = spus
        policy = ShareIdleWithSubset([b.spu_id])
        assert policy.select_borrowers(a, [b, c]) == [b]

    def test_lends_idle_like_parent(self, spus):
        a, b, _c = spus
        policy = ShareIdleWithSubset([b.spu_id])
        assert policy.lendable(a, Resource.MEMORY) == 60
