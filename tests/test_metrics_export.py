"""Tests for result export (CSV/JSON)."""

import dataclasses
import json

import pytest

from repro.metrics import to_csv, to_json, to_records


@dataclasses.dataclass(frozen=True)
class Row:
    policy: str
    response_s: float
    wait_ms: float


@dataclasses.dataclass(frozen=True)
class Nested:
    name: str
    inner: Row


class TestRecords:
    def test_single_dataclass(self):
        records = to_records(Row("pos", 1.5, 30.0))
        assert records == [{"policy": "pos", "response_s": 1.5, "wait_ms": 30.0}]

    def test_list_of_dataclasses(self):
        records = to_records([Row("a", 1, 2), Row("b", 3, 4)])
        assert len(records) == 2
        assert records[1]["policy"] == "b"

    def test_dict_becomes_labelled_rows(self):
        records = to_records({"pos": Row("pos", 1, 2), "iso": Row("iso", 3, 4)})
        assert records[0]["label"] == "pos"
        assert records[1]["response_s"] == 3

    def test_nested_dataclass_flattens_dotted(self):
        records = to_records(Nested("x", Row("pos", 1, 2)))
        assert records[0]["inner.policy"] == "pos"

    def test_nested_dict_values(self):
        records = to_records({"run": {"a": 1, "b": {"c": 2}}})
        assert records[0]["a"] == 1
        assert records[0]["b.c"] == 2

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            to_records(42)


class TestCsv:
    def test_header_and_rows(self):
        text = to_csv([Row("a", 1, 2), Row("b", 3, 4)])
        lines = text.strip().splitlines()
        assert lines[0] == "policy,response_s,wait_ms"
        assert lines[1] == "a,1,2"

    def test_writes_file(self, tmp_path):
        path = tmp_path / "out.csv"
        to_csv(Row("a", 1, 2), path=str(path))
        assert path.read_text().startswith("policy")

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            to_csv([])

    def test_union_of_fields(self):
        text = to_csv([{"a": 1}, {"b": 2}])
        assert "a,b" in text.splitlines()[0]


class TestJson:
    def test_round_trips(self):
        text = to_json([Row("a", 1, 2)])
        assert json.loads(text) == [
            {"policy": "a", "response_s": 1, "wait_ms": 2}
        ]

    def test_writes_file(self, tmp_path):
        path = tmp_path / "out.json"
        to_json(Row("a", 1, 2), path=str(path))
        assert json.loads(path.read_text())[0]["policy"] == "a"


class TestRealExperimentOutput:
    def test_table4_exports(self):
        # Use the paper constants rather than running the simulation.
        from repro.experiments import PAPER_TABLE4

        text = to_csv(PAPER_TABLE4)
        assert "label" in text.splitlines()[0]
        assert "pos" in text
        records = json.loads(to_json(PAPER_TABLE4))
        assert {r["label"] for r in records} == {"pos", "iso", "piso"}

    def test_antagonist_rows_flatten_nested_overload_stats(self):
        # Regression: AntagonistRow nests an OverloadStats dataclass;
        # export must flatten it to dotted columns rather than choking
        # on (or stringifying) the inner dataclass.  Built by hand so
        # the test doesn't pay for the full experiment.
        from repro.experiments import AntagonistRow, OverloadStats

        rows = [
            AntagonistRow(
                antagonist="fork_bomb", scheme="PIso",
                victim_shared_s=4.1, victim_solo_s=4.0, slowdown=1.02,
                overload=OverloadStats(
                    spawn_denials=12, mem_denials=0, io_throttled=3,
                    io_rejected=1, oom_kills=1, throttles=2, guard_kills=1,
                ),
                watchdog_checks=40, violations=0,
            ),
            AntagonistRow(
                antagonist="fork_bomb", scheme="SMP",
                victim_shared_s=11.0, victim_solo_s=4.0, slowdown=2.75,
                overload=OverloadStats(
                    spawn_denials=0, mem_denials=0, io_throttled=0,
                    io_rejected=0, oom_kills=0, throttles=0, guard_kills=0,
                ),
                watchdog_checks=40, violations=0,
            ),
        ]
        records = to_records(rows)
        assert records[0]["overload.spawn_denials"] == 12
        assert records[0]["overload.guard_kills"] == 1
        assert records[1]["overload.oom_kills"] == 0
        assert all(
            not isinstance(value, (dict, tuple)) and not hasattr(value, "__dataclass_fields__")
            for record in records for value in record.values()
        )
        header = to_csv(rows).splitlines()[0]
        assert "overload.spawn_denials" in header
        assert "overload.throttles" in header
        assert "antagonist" in header
