"""The fleet_isolation experiment: PIso isolates through a crash, SMP not."""

import pytest

from repro.experiments import (
    ATTAINMENT_BOUND,
    fleet_isolation_spec,
    run_fleet_scheme,
    window_attainments,
)


@pytest.fixture(scope="module")
def piso():
    return run_fleet_scheme("piso", seed=0)


@pytest.fixture(scope="module")
def smp():
    return run_fleet_scheme("smp", seed=0)


class TestSpec:
    def test_machine_3_is_committed_to_capacity(self):
        spec = fleet_isolation_spec("piso")
        demand = sum(s.demand_mcpu for s in spec.hosted_on(3))
        assert demand == spec.machines[3].capacity_mcpu

    def test_crash_takes_machine_3(self):
        spec = fleet_isolation_spec("piso")
        [crash] = list(spec.faults)
        assert crash.machine == 3


class TestFailoverDecisions:
    def test_deterministic_admit_degrade_shed(self, piso):
        actions = {d.spu: d.action for d in piso.decisions}
        assert actions == {
            "scratch-3": "shed", "svc-3": "degrade", "batch-3": "admit",
        }
        assert set(piso.shed) == {"scratch-3"}

    def test_no_watchdog_violations(self, piso, smp):
        assert piso.ok
        assert smp.ok


class TestIsolationClaim:
    def test_piso_holds_every_survivor_within_the_bound(self, piso):
        attainments = window_attainments(piso)
        assert attainments  # survivors exist
        assert "scratch-3" not in attainments  # shed SPUs are excluded
        worst = min(attainments.values())
        assert worst >= ATTAINMENT_BOUND, attainments

    def test_smp_breaks_the_bound(self, smp):
        attainments = window_attainments(smp)
        assert min(attainments.values()) < ATTAINMENT_BOUND, attainments

    def test_the_broken_spu_is_a_service_beside_a_batch(self, smp):
        # The mechanism: SMP time-shares per *process*, so a 2-job
        # service beside a 4-job batch SPU gets 1/3 of the machine
        # instead of its contracted half.
        attainments = window_attainments(smp)
        worst = min(attainments, key=attainments.get)
        assert worst.startswith("svc-")


class TestDeterminism:
    def test_same_seed_same_digest(self, piso):
        assert run_fleet_scheme("piso", seed=0).digest() == piso.digest()

    def test_registered_experiment_runs(self):
        from repro.api import ExperimentSpec, get, run_experiment

        result = run_experiment(ExperimentSpec(name="fleet_isolation", seed=0))
        rows = result.data
        assert set(rows) == {"SMP", "Quo", "PIso", "Stride"}
        assert rows["PIso"].isolated and not rows["SMP"].isolated
        # The renderer produces the paper-style table.
        report = get("fleet_isolation").report(result.data)
        assert "Fleet isolation" in report and "PIso" in report
