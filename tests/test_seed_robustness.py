"""Seed robustness: the headline shapes must not be one-seed flukes.

Each test runs the key comparison at several seeds and asserts the
qualitative relationship holds at every one.  These are slower than
unit tests but bound the risk that a calibration only works for the
default seed.
"""

import pytest

from repro.core import DiskSchedPolicy, piso_scheme, quota_scheme, smp_scheme
from repro.experiments import (
    run_big_small_copy,
    run_cpu_isolation,
    run_memory_isolation,
    run_pmake8,
)

SEEDS = (0, 7, 1234)


@pytest.mark.parametrize("seed", SEEDS)
def test_pmake8_isolation_shape_across_seeds(seed):
    smp_balanced = run_pmake8(smp_scheme(), balanced=True, seed=seed)
    smp_unbalanced = run_pmake8(smp_scheme(), balanced=False, seed=seed)
    piso_unbalanced = run_pmake8(piso_scheme(), balanced=False, seed=seed)
    # SMP breaks isolation; PIso holds it.
    assert smp_unbalanced.light_response_us > 1.2 * smp_balanced.light_response_us
    assert piso_unbalanced.light_response_us < 1.12 * smp_balanced.light_response_us


@pytest.mark.parametrize("seed", SEEDS)
def test_pmake8_sharing_shape_across_seeds(seed):
    smp = run_pmake8(smp_scheme(), balanced=False, seed=seed)
    quo = run_pmake8(quota_scheme(), balanced=False, seed=seed)
    piso = run_pmake8(piso_scheme(), balanced=False, seed=seed)
    assert quo.heavy_response_us > 1.15 * smp.heavy_response_us
    assert piso.heavy_response_us < 1.1 * smp.heavy_response_us


@pytest.mark.parametrize("seed", SEEDS)
def test_memory_isolation_shape_across_seeds(seed):
    smp_b = run_memory_isolation(smp_scheme(), balanced=True, seed=seed)
    smp_u = run_memory_isolation(smp_scheme(), balanced=False, seed=seed)
    piso_u = run_memory_isolation(piso_scheme(), balanced=False, seed=seed)
    quo_u = run_memory_isolation(quota_scheme(), balanced=False, seed=seed)
    assert smp_u.spu1_response_us > 1.2 * smp_b.spu1_response_us
    assert piso_u.spu1_response_us < 1.2 * smp_b.spu1_response_us
    assert quo_u.spu2_response_us > 1.4 * piso_u.spu2_response_us


@pytest.mark.parametrize("seed", SEEDS)
def test_table4_shape_across_seeds(seed):
    pos = run_big_small_copy(DiskSchedPolicy.POS, seed=seed)
    iso = run_big_small_copy(DiskSchedPolicy.ISO, seed=seed)
    piso = run_big_small_copy(DiskSchedPolicy.PISO, seed=seed)
    assert pos.wait_a_ms > 3 * pos.wait_b_ms           # lockout
    assert iso.response_a_s < 0.8 * pos.response_a_s   # fairness rescues
    assert piso.response_a_s <= 1.05 * iso.response_a_s
    assert piso.response_b_s <= 1.02 * iso.response_b_s
    assert piso.latency_ms < iso.latency_ms            # head-position savings


@pytest.mark.parametrize("seed", SEEDS)
def test_cpu_isolation_shape_across_seeds(seed):
    smp = run_cpu_isolation(smp_scheme(), seed=seed)
    quo = run_cpu_isolation(quota_scheme(), seed=seed)
    piso = run_cpu_isolation(piso_scheme(), seed=seed)
    assert piso.ocean_us < smp.ocean_us
    assert quo.flashlite_us > 1.15 * smp.flashlite_us
    assert piso.flashlite_us < 1.1 * smp.flashlite_us
