"""Unit tests for the memory-sharing daemon."""

import random

import pytest

from repro.core import EqualShareContract, SPURegistry, piso_scheme, quota_scheme
from repro.mem import MemoryManager, MemorySharingDaemon
from repro.sim import Engine


def build(scheme, total_pages=120, kernel_pages=20):
    engine = Engine(seed=2)
    registry = SPURegistry()
    a = registry.create("a")
    b = registry.create("b")
    manager = MemoryManager(
        registry, total_pages, scheme, kernel_pages=kernel_pages,
        rng=random.Random(0),
    )
    daemon = MemorySharingDaemon(engine, manager, EqualShareContract())
    daemon.rebalance()  # initial entitlement pass
    return engine, manager, daemon, a, b


class TestEntitlements:
    def test_initial_split(self):
        _e, _m, _d, a, b = build(piso_scheme())
        assert a.memory().entitled == 50
        assert b.memory().entitled == 50

    def test_shared_usage_shrinks_entitlements(self):
        engine, manager, daemon, a, b = build(piso_scheme())
        for _ in range(10):
            manager.try_allocate(manager.registry.shared_spu.spu_id)
        daemon.rebalance()
        assert a.memory().entitled == 45
        assert b.memory().entitled == 45


class TestSharing:
    def test_idle_pages_lent_to_pressured_spu(self):
        _e, manager, daemon, a, b = build(piso_scheme())
        for _ in range(50):
            manager.try_allocate(b.spu_id)
        manager.try_allocate(b.spu_id)  # denial -> pressure signal
        daemon.rebalance()
        assert b.memory().allowed > b.memory().entitled
        assert daemon.loans.get(b.spu_id, 0) > 0

    def test_loan_respects_reserve_threshold(self):
        _e, manager, daemon, a, b = build(piso_scheme())
        for _ in range(50):
            manager.try_allocate(b.spu_id)
        manager.try_allocate(b.spu_id)
        daemon.rebalance()
        # free = 50, reserve = 9 (8% of 120 rounded down) -> at most 41
        # more than current usage... allowed <= used + free - reserve.
        assert b.memory().allowed <= b.memory().used + manager.free_pages - manager.reserve_pages

    def test_no_loan_without_pressure(self):
        _e, manager, daemon, _a, b = build(piso_scheme())
        daemon.rebalance()
        assert b.memory().allowed == b.memory().entitled

    def test_loans_shrink_when_pressure_passes(self):
        _e, manager, daemon, _a, b = build(piso_scheme())
        for _ in range(50):
            manager.try_allocate(b.spu_id)
        manager.try_allocate(b.spu_id)
        daemon.rebalance()
        lent = b.memory().allowed
        # Pressure gone; usage drops; next pass reels the cap back in.
        for _ in range(30):
            manager.free(b.spu_id)
        daemon.rebalance()
        assert b.memory().allowed < lent
        assert b.memory().allowed == b.memory().entitled

    def test_quota_scheme_never_lends(self):
        _e, manager, daemon, _a, b = build(quota_scheme())
        for _ in range(50):
            manager.try_allocate(b.spu_id)
        manager.try_allocate(b.spu_id)
        daemon.rebalance()
        assert b.memory().allowed == max(b.memory().entitled, b.memory().used)

    def test_neediest_gets_larger_share(self):
        engine, manager, daemon, a, b = build(piso_scheme(), total_pages=220, kernel_pages=20)
        # Only b under pressure, with many denials.
        for _ in range(100):
            manager.try_allocate(b.spu_id)
        for _ in range(5):
            manager.try_allocate(b.spu_id)
        manager.try_allocate(a.spu_id)  # a: one allocation, no denial
        daemon.rebalance()
        assert daemon.loans.get(b.spu_id, 0) > daemon.loans.get(a.spu_id, 0)


class TestLifecycle:
    def test_start_schedules_periodic(self):
        engine, manager, daemon, _a, b = build(piso_scheme())
        daemon.start()
        for _ in range(50):
            manager.try_allocate(b.spu_id)
        manager.try_allocate(b.spu_id)
        engine.run(until=150_000)  # one rebalance period
        assert b.memory().allowed > b.memory().entitled
        daemon.stop()

    def test_double_start_rejected(self):
        _e, _m, daemon, _a, _b = build(piso_scheme())
        daemon.start()
        with pytest.raises(RuntimeError):
            daemon.start()

    def test_rebalance_with_no_users_is_noop(self):
        engine = Engine()
        registry = SPURegistry()
        manager = MemoryManager(registry, 50, piso_scheme(), rng=random.Random(0))
        daemon = MemorySharingDaemon(engine, manager, EqualShareContract())
        daemon.rebalance()  # must not raise
