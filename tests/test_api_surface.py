"""The ``repro.api`` v1 surface contract.

Examples and the README are the documentation of record; they must
import only from ``repro.api`` (deep module paths are internal and may
move), and every name the facade advertises must actually resolve.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO / "examples").glob("*.py"))

#: Any ``import repro...`` / ``from repro... import`` that is not the
#: facade itself.
_DEEP_IMPORT = re.compile(
    r"^\s*(?:from\s+(repro(?:\.[\w.]+)?)\s+import|import\s+(repro(?:\.[\w.]+)?))",
    re.MULTILINE,
)


def _offending_imports(text: str):
    bad = []
    for match in _DEEP_IMPORT.finditer(text):
        module = match.group(1) or match.group(2)
        if module != "repro.api":
            bad.append(module)
    return bad


def test_examples_exist():
    assert len(EXAMPLES) >= 8


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_examples_import_only_the_facade(path):
    bad = _offending_imports(path.read_text())
    assert not bad, (
        f"{path.name} imports internal modules {bad}; examples must"
        " import from repro.api only"
    )


def test_readme_imports_only_the_facade():
    text = (REPO / "README.md").read_text()
    blocks = re.findall(r"```python\n(.*?)```", text, re.DOTALL)
    assert blocks, "README lost its python examples"
    bad = [m for block in blocks for m in _offending_imports(block)]
    assert not bad, f"README code imports internal modules {bad}"


def test_every_advertised_name_resolves():
    import repro.api as api

    assert api.__all__ == sorted(set(api.__all__), key=api.__all__.index)
    for name in api.__all__:
        getattr(api, name)


def test_v1_core_names_present():
    import repro.api as api

    for name in (
        "SimulationSpec", "FleetSpec", "ScenarioSpec", "SweepPlan",
        "Executor", "experiment", "run_experiment", "run_sweep",
    ):
        assert name in api.__all__
        getattr(api, name)


def test_dir_lists_lazy_names():
    import repro.api as api

    listing = dir(api)
    assert "SweepPlan" in listing and "ScenarioSpec" in listing
