"""Unit tests for workload generators."""

import pytest

from repro.fs import BufferCache, FileSystem, UnlimitedPageProvider, Volume
from repro.disk import DiskDrive, hp97560, make_scheduler, NullLedger
from repro.kernel.syscalls import (
    BarrierWait,
    Compute,
    ReadFile,
    SetWorkingSet,
    Spawn,
    WaitChildren,
    WriteFile,
    WriteMetadata,
)
from repro.sim import Engine
from repro.sim.units import KB, MB
from repro.workloads import (
    CopyParams,
    OceanParams,
    PmakeParams,
    SimulatorParams,
    chunks,
    copy_job,
    create_copy_files,
    create_pmake_files,
    ocean_processes,
    pmake_job,
    simulator_process,
    waves,
)


@pytest.fixture
def fs():
    engine = Engine(seed=9)
    geometry = hp97560()
    drive = DiskDrive(engine, geometry, make_scheduler("pos"), NullLedger())
    volume = Volume(geometry.total_sectors, engine.fork_rng("v"))
    filesystem = FileSystem(engine, BufferCache(UnlimitedPageProvider(1024)))
    filesystem.mount(drive, volume)
    return filesystem


class TestHelpers:
    def test_waves_splits(self):
        assert list(waves([1, 2, 3, 4, 5], 2)) == [[1, 2], [3, 4], [5]]

    def test_waves_bad_width(self):
        with pytest.raises(ValueError):
            list(waves([1], 0))

    def test_chunks_covers_exactly(self):
        out = list(chunks(10_000, 4096))
        assert out == [(0, 4096), (4096, 4096), (8192, 1808)]

    def test_chunks_bad_size(self):
        with pytest.raises(ValueError):
            list(chunks(10, 0))


class TestPmake:
    def test_files_created_per_task(self, fs):
        params = PmakeParams(n_tasks=3)
        files = create_pmake_files(fs, 0, params, job_name="job")
        assert len(files.sources) == 3
        assert len(files.objects) == 3
        assert files.makefile.name == "job/Makefile"

    def test_sources_are_fragmented(self, fs):
        params = PmakeParams(n_tasks=1, src_kb=64, extent_sectors=16)
        files = create_pmake_files(fs, 0, params)
        assert len(files.sources[0].extents) > 1

    def test_job_spawns_in_waves(self, fs):
        params = PmakeParams(n_tasks=4, parallelism=2)
        files = create_pmake_files(fs, 0, params)
        ops = list(pmake_job(files, params))
        spawns = [i for i, op in enumerate(ops) if isinstance(op, Spawn)]
        joins = [i for i, op in enumerate(ops) if isinstance(op, WaitChildren)]
        assert len(spawns) == 4
        assert len(joins) == 2
        # Two spawns precede the first join.
        assert sum(1 for i in spawns if i < joins[0]) == 2

    def test_compile_task_op_sequence(self, fs):
        params = PmakeParams(n_tasks=1, ws_pages=100, metadata_writes=2)
        files = create_pmake_files(fs, 0, params)
        from repro.workloads.pmake import compile_task

        ops = list(compile_task(files.sources[0], files.objects[0],
                                files.makefile, params))
        kinds = [type(op) for op in ops]
        assert kinds[0] is SetWorkingSet
        assert kinds.count(WriteMetadata) == 2
        assert WriteFile in kinds
        assert Compute in kinds
        assert ReadFile in kinds

    def test_no_working_set_op_when_disabled(self, fs):
        params = PmakeParams(n_tasks=1, ws_pages=0)
        files = create_pmake_files(fs, 0, params)
        from repro.workloads.pmake import compile_task

        ops = list(compile_task(files.sources[0], files.objects[0],
                                files.makefile, params))
        assert SetWorkingSet not in [type(op) for op in ops]


class TestCopy:
    def test_files_contiguous_and_sized(self, fs):
        params = CopyParams(size_bytes=1 * MB)
        src, dst = create_copy_files(fs, 0, params)
        assert len(src.extents) == 1
        assert src.size_bytes == 1 * MB
        assert dst.size_bytes == 1 * MB

    def test_placement_honored(self, fs):
        params = CopyParams(size_bytes=64 * KB)
        src, _dst = create_copy_files(fs, 0, params, at_sector=500_000)
        assert src.extents[0].start >= 500_000

    def test_job_alternates_read_write(self, fs):
        params = CopyParams(size_bytes=64 * KB, chunk_kb=16)
        src, dst = create_copy_files(fs, 0, params)
        ops = list(copy_job(src, dst, params))
        kinds = [type(op) for op in ops]
        assert kinds[:-1] == [ReadFile, WriteFile] * 4
        assert kinds[-1] is WriteMetadata

    def test_offsets_cover_file(self, fs):
        params = CopyParams(size_bytes=40 * KB, chunk_kb=16)
        src, dst = create_copy_files(fs, 0, params)
        reads = [op for op in copy_job(src, dst, params) if isinstance(op, ReadFile)]
        assert sum(op.nbytes for op in reads) == 40 * KB


class TestScientific:
    def test_ocean_gang_size(self):
        behaviors = ocean_processes(OceanParams(nprocs=4, phases=2))
        assert len(behaviors) == 4

    def test_ocean_worker_phases(self):
        (worker,) = ocean_processes(OceanParams(nprocs=1, phases=3, ws_pages=10))
        kinds = [type(op) for op in worker]
        assert kinds[0] is SetWorkingSet
        assert kinds.count(Compute) == 3
        assert kinds.count(BarrierWait) == 3

    def test_ocean_workers_share_one_barrier(self):
        behaviors = ocean_processes(OceanParams(nprocs=2, phases=1))
        barriers = set()
        for behavior in behaviors:
            for op in behavior:
                if isinstance(op, BarrierWait):
                    barriers.add(id(op.barrier))
        assert len(barriers) == 1

    def test_simulator_is_startup_plus_compute(self):
        ops = list(simulator_process(SimulatorParams(total_ms=100, ws_pages=5)))
        kinds = [type(op) for op in ops]
        assert kinds == [SetWorkingSet, Compute, Compute]

    def test_simulator_durations(self):
        ops = list(simulator_process(SimulatorParams(total_ms=100, startup_ms=10)))
        assert ops[0].duration_us == 10_000
        assert ops[1].duration_us == 100_000
