"""Bench warm-cache behaviour: speedup, byte identity, schema fields."""

import pytest

from repro.bench import bench_experiments, bench_fleet
from repro.parallel import SweepCache

#: Two cheap experiments keep the cold leg short while still measuring
#: a real workload.
SECTIONS = ["fig5", "table4"]


def test_warm_experiments_stage_is_faster_and_byte_identical(tmp_path):
    cache = SweepCache(str(tmp_path))
    cold = bench_experiments(SECTIONS, seed=0, cache=cache)
    warm = bench_experiments(SECTIONS, seed=0, cache=cache)

    assert cold["cache_hits"] == 0
    assert warm["cache_hits"] == len(SECTIONS)
    assert warm["digests"] == cold["digests"]
    assert warm["canonical"] == cold["canonical"]
    # The acceptance floor is 1.5x for the whole bench; the cached
    # stage itself clears it with a wide margin (it skips all compute).
    assert warm["serial_seconds"] * 1.5 <= cold["serial_seconds"]


def test_uncached_experiments_match_cached_digests(tmp_path):
    plain = bench_experiments(SECTIONS, seed=0, cache=None)
    cache = SweepCache(str(tmp_path))
    cached = bench_experiments(SECTIONS, seed=0, cache=cache)
    warm = bench_experiments(SECTIONS, seed=0, cache=cache)
    assert plain["digests"] == cached["digests"] == warm["digests"]


def test_warm_fleet_stage_hits_the_cache_with_identical_digests(tmp_path):
    cache = SweepCache(str(tmp_path))
    cold = bench_fleet(seed=0, cache=cache)
    warm = bench_fleet(seed=0, cache=cache)
    assert cold["divergence"] == warm["divergence"] == []
    assert warm["digests"] == cold["digests"]
    assert warm["cache_hits"] == 2 * len(warm["schemes"])  # both legs


def test_seed_change_does_not_reuse_entries(tmp_path):
    cache = SweepCache(str(tmp_path))
    bench_experiments(SECTIONS, seed=0, cache=cache)
    other = bench_experiments(SECTIONS, seed=1, cache=cache)
    assert other["cache_hits"] == 0


@pytest.mark.parametrize("simsan", ["0", "1"])
def test_cached_identity_holds_under_simsan(tmp_path, monkeypatch, simsan):
    # REPRO_SIMSAN is part of the cache address, so each setting has
    # its own namespace; within a namespace warm must equal cold.
    monkeypatch.setenv("REPRO_SIMSAN", simsan)
    cache = SweepCache(str(tmp_path))
    cold = bench_experiments(["fig5"], seed=0, cache=cache)
    warm = bench_experiments(["fig5"], seed=0, cache=cache)
    assert warm["cache_hits"] == 1
    assert warm["canonical"] == cold["canonical"]
