"""SIMSAN tests: env gating, corruption detection, and the guarantee
that enabling the sanitizer never changes simulated behaviour."""

import pytest

from repro.chaos import generate_plan, run_chaos
from repro.core import piso_scheme
from repro.disk.drive import SpuBandwidthLedger
from repro.disk.model import fast_disk
from repro.kernel import Compute, DiskSpec, Kernel, MachineConfig, WriteFile
from repro.sanitizer import (
    ENV_ENABLE,
    ENV_EVERY,
    SanitizerError,
    SimSanitizer,
    check_stride,
    enabled,
)
from repro.sim.units import KB, MSEC, msecs


def machine(seed=0):
    return MachineConfig(
        ncpus=2,
        memory_mb=16,
        disks=[DiskSpec(geometry=fast_disk())],
        scheme=piso_scheme(),
        seed=seed,
    )


def booted(nspus=1):
    kernel = Kernel(machine())
    spus = [kernel.create_spu(f"u{i}") for i in range(nspus)]
    kernel.boot()
    return kernel, spus


def crunch(rounds=3):
    for _ in range(rounds):
        yield Compute(msecs(1))


def writer(kernel):
    file = kernel.fs.create(0, "data", 256 * KB)

    def program():
        yield WriteFile(file, 0, 128 * KB)
        yield Compute(msecs(1))
        yield WriteFile(file, 128 * KB, 128 * KB)

    return program()


class TestEnvGating:
    def test_not_installed_by_default(self, monkeypatch):
        monkeypatch.delenv(ENV_ENABLE, raising=False)
        kernel, _ = booted()
        assert kernel.sanitizer is None

    @pytest.mark.parametrize("value", ["1", "true", "YES", "On"])
    def test_truthy_values_install_at_boot(self, monkeypatch, value):
        monkeypatch.setenv(ENV_ENABLE, value)
        assert enabled()
        kernel, _ = booted()
        assert isinstance(kernel.sanitizer, SimSanitizer)
        assert kernel.sanitizer.every == 1

    @pytest.mark.parametrize("value", ["0", "", "no", "off"])
    def test_falsy_values_leave_it_off(self, monkeypatch, value):
        monkeypatch.setenv(ENV_ENABLE, value)
        assert not enabled()

    def test_stride_env(self, monkeypatch):
        monkeypatch.setenv(ENV_ENABLE, "1")
        monkeypatch.setenv(ENV_EVERY, "5")
        assert check_stride() == 5
        kernel, _ = booted()
        assert kernel.sanitizer.every == 5

    def test_bad_stride_rejected(self, monkeypatch):
        monkeypatch.setenv(ENV_EVERY, "soon")
        with pytest.raises(ValueError):
            check_stride()

    def test_zero_stride_rejected(self):
        kernel, _ = booted()
        with pytest.raises(ValueError):
            SimSanitizer(kernel, every=0)


class TestCleanRuns:
    def test_compute_and_io_workload_passes(self, monkeypatch):
        monkeypatch.setenv(ENV_ENABLE, "1")
        kernel, (spu,) = booted()
        kernel.spawn(crunch(), spu)
        kernel.spawn(writer(kernel), spu)
        kernel.run()
        assert kernel.sanitizer.events_seen > 0
        assert kernel.sanitizer.checks_run > 0

    def test_stride_batches_full_checks(self, monkeypatch):
        monkeypatch.setenv(ENV_ENABLE, "1")
        monkeypatch.setenv(ENV_EVERY, "10")
        kernel, (spu,) = booted()
        kernel.spawn(crunch(), spu)
        kernel.run()
        san = kernel.sanitizer
        # The final Kernel.run() sweep adds one check on top of the
        # strided ones, so even short runs end fully verified.
        assert san.checks_run <= san.events_seen // 10 + 1

    def test_uninstall_stops_event_checks(self):
        kernel, (spu,) = booted()
        san = SimSanitizer(kernel)
        san.install()
        san.uninstall()
        spu.memory().used += 5  # would trip page conservation
        kernel.spawn(crunch(), spu)
        kernel.run(max_events=50)
        assert san.events_seen == 0
        spu.memory().used -= 5


class TestCorruptionDetection:
    def corrupted(self, mutate, run=False):
        kernel, (spu,) = booted()
        san = SimSanitizer(kernel)
        if run:
            kernel.spawn(crunch(), spu)
            kernel.spawn(writer(kernel), spu)
            kernel.run()
        mutate(kernel, spu)
        return san

    def test_page_ledger_inflation(self):
        san = self.corrupted(lambda k, s: setattr(
            s.memory(), "used", s.memory().used + 5
        ))
        with pytest.raises(SanitizerError, match="page-conservation"):
            san.check()

    def test_free_list_leak(self):
        # The chaos suite's sabotage_page_leak shape: total grows while
        # the books do not.
        san = self.corrupted(lambda k, s: setattr(
            k.memory, "total_pages", k.memory.total_pages + 50
        ))
        with pytest.raises(SanitizerError, match="page-conservation"):
            san.check()

    def test_ledger_level_inversion(self):
        def mutate(kernel, spu):
            levels = spu.memory()
            levels.used = levels.allowed + 1

        san = self.corrupted(mutate)
        with pytest.raises(SanitizerError, match="ledger-sanity"):
            san.check()

    def test_cpu_books_diverge(self):
        san = self.corrupted(
            lambda k, s: k.cpu_busy_us.__setitem__(0, k.cpu_busy_us[0] + 1000),
            run=True,
        )
        with pytest.raises(SanitizerError, match="cpu-conservation"):
            san.check()

    def test_negative_cpu_counter(self):
        san = self.corrupted(lambda k, s: k.cpu_busy_us.__setitem__(0, -5))
        with pytest.raises(SanitizerError, match="cpu-conservation"):
            san.check()

    def test_disk_ledger_drift(self):
        def mutate(kernel, spu):
            ledger = kernel.drives[0].ledger
            assert isinstance(ledger, SpuBandwidthLedger)
            ledger.total_charged[spu.spu_id] = (
                ledger.total_charged.get(spu.spu_id, 0) + 8
            )

        san = self.corrupted(mutate, run=True)
        with pytest.raises(SanitizerError, match="disk-conservation"):
            san.check()

    def test_mid_run_corruption_raises_from_the_event_loop(self):
        kernel, (spu,) = booted()
        san = SimSanitizer(kernel)
        san.install()
        kernel.spawn(crunch(10), spu)
        kernel.engine.after(
            msecs(2), lambda: setattr(kernel.memory, "total_pages",
                                      kernel.memory.total_pages + 50)
        )
        with pytest.raises(SanitizerError, match="page-conservation"):
            kernel.run()

    def test_backwards_clock_detected(self):
        kernel, (spu,) = booted()
        san = SimSanitizer(kernel)
        san.install()
        san._last_now = 10**12  # simulate a clock that already advanced
        kernel.spawn(crunch(), spu)
        with pytest.raises(SanitizerError, match="monotonic-time"):
            kernel.run()

    def test_final_sweep_catches_post_run_state(self, monkeypatch):
        # Corruption introduced by the very last events is caught by the
        # closing check() in Kernel.run even with a large stride.
        monkeypatch.setenv(ENV_ENABLE, "1")
        monkeypatch.setenv(ENV_EVERY, "1000000")
        kernel, (spu,) = booted()

        def leaky():
            yield Compute(msecs(1))
            kernel.memory.total_pages += 50
            yield Compute(msecs(1))

        kernel.spawn(leaky(), spu)
        with pytest.raises(SanitizerError, match="page-conservation"):
            kernel.run()


class TestBehaviourUnchanged:
    def test_chaos_journal_identical_with_simsan(self, monkeypatch):
        horizon = 200 * MSEC
        monkeypatch.delenv(ENV_ENABLE, raising=False)
        plain = run_chaos(generate_plan(seed=3, horizon_us=horizon))
        monkeypatch.setenv(ENV_ENABLE, "1")
        sanitized = run_chaos(generate_plan(seed=3, horizon_us=horizon))
        assert sanitized.ok, sanitized.violations
        assert sanitized.journal == plain.journal
