"""Unit tests for the memory manager."""

import random

import pytest

from repro.core import SPURegistry, piso_scheme, quota_scheme, smp_scheme
from repro.mem import MemoryManager


def build(scheme, total_pages=100, kernel_pages=10, nspus=2):
    registry = SPURegistry()
    spus = [registry.create(f"u{i}") for i in range(nspus)]
    manager = MemoryManager(
        registry, total_pages, scheme, kernel_pages=kernel_pages,
        rng=random.Random(1),
    )
    pool = manager.user_pool()
    share = pool // nspus
    for spu in spus:
        spu.memory().set_entitled(share)
        if not scheme.mem_limits:
            spu.memory().set_allowed(total_pages)
    return registry, manager, spus


class TestBoot:
    def test_kernel_pages_charged_at_boot(self):
        registry, manager, _ = build(piso_scheme())
        assert registry.kernel_spu.memory().used == 10
        assert manager.free_pages == 90

    def test_user_pool_excludes_kernel_and_shared(self):
        registry, manager, _ = build(piso_scheme())
        assert manager.user_pool() == 90
        manager.try_allocate(registry.shared_spu.spu_id)
        assert manager.user_pool() == 89

    def test_kernel_pages_must_fit(self):
        registry = SPURegistry()
        with pytest.raises(ValueError):
            MemoryManager(registry, 10, piso_scheme(), kernel_pages=10)

    def test_reserve_pages(self):
        _reg, manager, _ = build(piso_scheme())
        assert manager.reserve_pages == 8  # 8% of 100


class TestAllocation:
    def test_allocate_charges_spu(self):
        _reg, manager, (a, _b) = build(piso_scheme())
        assert manager.try_allocate(a.spu_id)
        assert a.memory().used == 1
        assert manager.free_pages == 89

    def test_free_uncharges(self):
        _reg, manager, (a, _b) = build(piso_scheme())
        manager.try_allocate(a.spu_id)
        manager.free(a.spu_id)
        assert a.memory().used == 0
        assert manager.free_pages == 90

    def test_denied_at_spu_cap_with_isolation(self):
        _reg, manager, (a, _b) = build(piso_scheme())
        for _ in range(45):
            assert manager.try_allocate(a.spu_id)
        assert not manager.try_allocate(a.spu_id)
        assert manager.free_pages == 45  # machine still has room

    def test_smp_ignores_spu_cap(self):
        _reg, manager, (a, _b) = build(smp_scheme())
        for _ in range(90):
            assert manager.try_allocate(a.spu_id)
        assert not manager.try_allocate(a.spu_id)  # machine is full

    def test_kernel_spu_never_capped_by_entitlement(self):
        registry, manager, _ = build(piso_scheme())
        for _ in range(50):
            assert manager.try_allocate(registry.kernel_spu.spu_id)

    def test_denials_counted_and_reset(self):
        _reg, manager, (a, _b) = build(piso_scheme())
        for _ in range(45):
            manager.try_allocate(a.spu_id)
        manager.try_allocate(a.spu_id)
        manager.try_allocate(a.spu_id)
        assert manager.take_denials() == {a.spu_id: 2}
        assert manager.take_denials() == {}


class TestTransfer:
    def test_transfer_moves_charge(self):
        registry, manager, (a, _b) = build(piso_scheme())
        manager.try_allocate(a.spu_id)
        assert manager.transfer(a.spu_id, registry.shared_spu.spu_id)
        assert a.memory().used == 0
        assert registry.shared_spu.memory().used == 1

    def test_transfer_without_source_fails(self):
        registry, manager, (a, _b) = build(piso_scheme())
        assert not manager.transfer(a.spu_id, registry.shared_spu.spu_id)

    def test_transfer_never_fails_on_destination_cap(self):
        registry, manager, (a, b) = build(piso_scheme())
        for _ in range(45):
            manager.try_allocate(a.spu_id)
            manager.try_allocate(b.spu_id)
        # b is at its cap, but marking a page shared-with-b must work.
        assert manager.transfer(a.spu_id, b.spu_id)


class TestVictimSelection:
    def test_capped_requester_steals_from_itself(self):
        _reg, manager, (a, _b) = build(piso_scheme())
        for _ in range(45):
            manager.try_allocate(a.spu_id)
        assert manager.victim_spu(a.spu_id) is a

    def test_borrower_is_revoked_first(self):
        _reg, manager, (a, b) = build(piso_scheme())
        # b borrows beyond its entitlement.
        b.memory().set_allowed(80)
        for _ in range(80):
            manager.try_allocate(b.spu_id)
        for _ in range(10):
            manager.try_allocate(a.spu_id)
        # Machine full; a is under cap and entitled -> b must pay.
        assert not manager.try_allocate(a.spu_id)
        assert manager.victim_spu(a.spu_id) is b

    def test_smp_victim_weighted_by_usage(self):
        _reg, manager, (a, b) = build(smp_scheme())
        for _ in range(80):
            manager.try_allocate(a.spu_id)
        for _ in range(10):
            manager.try_allocate(b.spu_id)
        picks = {manager.victim_spu(b.spu_id).spu_id for _ in range(50)}
        assert a.spu_id in picks  # the big holder gets hit

    def test_no_victims_when_nobody_holds(self):
        _reg, manager, (a, _b) = build(smp_scheme())
        assert manager.victim_spu(a.spu_id) is None
