"""Per-SPU sharing policies (paper Section 2.1, third part of the SPU).

A sharing policy decides when and to whom an SPU's resources are lent
while idle.  The paper lists three archetypes, all implemented here:

* :class:`NeverShare` — keep everything; approximates separate machines
  or fixed quotas (the ``Quo`` scheme).
* :class:`AlwaysShare` — share everything with everyone regardless of
  idleness; approximates a stock SMP kernel.
* :class:`ShareIdle` — lend only idle resources, to any SPU that needs
  them; this is the policy the performance-isolation model uses.

Policies are stateless and consulted by the resource managers (CPU
scheduler, memory daemon); they only answer questions, they do not move
resources themselves.
"""

from __future__ import annotations

import abc
from typing import Iterable, List

from repro.core.resources import Resource
from repro.core.spu import SPU


class SharingPolicy(abc.ABC):
    """Decides lending behaviour for one SPU."""

    name: str = "abstract"

    @abc.abstractmethod
    def lendable(self, spu: SPU, resource: Resource) -> int:
        """How much of ``resource`` this SPU is willing to lend right now."""

    @abc.abstractmethod
    def may_borrow_from(self, lender: SPU, borrower: SPU) -> bool:
        """Whether ``borrower`` is an acceptable recipient of a loan."""

    def select_borrowers(
        self, lender: SPU, candidates: Iterable[SPU]
    ) -> List[SPU]:
        """Filter candidate borrowers by this policy, preserving order."""
        return [c for c in candidates if c.spu_id != lender.spu_id
                and self.may_borrow_from(lender, c)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class NeverShare(SharingPolicy):
    """Never give up any resources (fixed-quota behaviour)."""

    name = "never"

    def lendable(self, spu: SPU, resource: Resource) -> int:
        return 0

    def may_borrow_from(self, lender: SPU, borrower: SPU) -> bool:
        return False


class AlwaysShare(SharingPolicy):
    """Share all resources with everyone, idle or not (SMP behaviour).

    Lends the SPU's full entitlement; combined with every CPU/page being
    up for grabs this reproduces the unconstrained sharing of a stock
    SMP kernel.
    """

    name = "always"

    def lendable(self, spu: SPU, resource: Resource) -> int:
        return spu.levels[resource].entitled

    def may_borrow_from(self, lender: SPU, borrower: SPU) -> bool:
        return True


class ShareIdle(SharingPolicy):
    """Share only idle resources, with any SPU that lacks resources.

    This is the performance-isolation policy: the lendable amount is
    the unused part of the entitlement, so a loan can never eat into
    resources the lender is actively using.
    """

    name = "share-idle"

    def lendable(self, spu: SPU, resource: Resource) -> int:
        return spu.levels[resource].idle

    def may_borrow_from(self, lender: SPU, borrower: SPU) -> bool:
        return True


class ShareIdleWithSubset(ShareIdle):
    """Share idle resources, but only with an explicit set of SPUs.

    The paper notes a policy may lend "to all or a subset of the SPUs";
    this variant implements the subset form (e.g. a project lending only
    to its sister project).
    """

    name = "share-idle-subset"

    def __init__(self, borrower_ids: Iterable[int]):
        self._borrower_ids = frozenset(borrower_ids)

    def may_borrow_from(self, lender: SPU, borrower: SPU) -> bool:
        return borrower.spu_id in self._borrower_ids
