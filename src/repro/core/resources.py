"""Resources managed by performance isolation, and the three-level model.

The paper (Section 2.3) gives each SPU three per-resource levels:

* **entitled** — the share the SPU gets from the machine's sharing
  contract; its guaranteed minimum.
* **allowed** — the cap the SPU may currently use.  The sharing policy
  raises it above *entitled* when idle resources are lent to the SPU,
  and lowers it (never below *entitled*) when loans are revoked.
* **used** — what the SPU is consuming right now.

Units are resource-specific: milli-CPUs for CPU time (so fractional
CPUs can be expressed exactly), pages for memory, and share *weights*
for disk bandwidth (bandwidth is a rate, so "used" is tracked by a
decayed sector counter elsewhere).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Resource(enum.Enum):
    """A machine resource subject to performance isolation."""

    CPU = "cpu"
    MEMORY = "memory"
    DISK_BW = "disk_bw"


#: One CPU expressed in milli-CPUs; entitlements are integral multiples
#: of fractions of this, so an eighth of 3 CPUs is exact.
MILLI_CPU = 1000


class ResourceLevelError(ValueError):
    """Raised when a level update would violate the model's invariants."""


@dataclass
class ResourceLevels:
    """The entitled/allowed/used triple for one resource of one SPU.

    Invariants (enforced on every mutation):

    * ``0 <= entitled``
    * ``entitled <= allowed`` — lending never dips below the guarantee,
      which is exactly what makes the guarantee a guarantee.
    * ``0 <= used <= allowed`` — isolation: usage may not exceed the cap.
    """

    entitled: int = 0
    allowed: int = 0
    used: int = 0

    def __post_init__(self) -> None:
        self._check()

    def _check(self) -> None:
        if self.entitled < 0:
            raise ResourceLevelError(f"entitled must be >= 0, got {self.entitled}")
        if self.allowed < self.entitled:
            raise ResourceLevelError(
                f"allowed ({self.allowed}) below entitled ({self.entitled})"
            )
        if not 0 <= self.used <= self.allowed:
            raise ResourceLevelError(
                f"used ({self.used}) outside [0, allowed={self.allowed}]"
            )

    # --- queries -----------------------------------------------------------

    @property
    def headroom(self) -> int:
        """How much more the SPU may use before hitting its cap."""
        return self.allowed - self.used

    @property
    def idle(self) -> int:
        """Entitled resources the SPU is not using (lendable surplus).

        Only the part of *entitled* that is unused counts as idle;
        borrowed headroom is not the SPU's to lend onward.
        """
        return max(0, self.entitled - self.used)

    @property
    def borrowed(self) -> int:
        """How far the cap has been raised above the entitlement."""
        return self.allowed - self.entitled

    @property
    def over_entitlement(self) -> bool:
        """True when current usage relies on borrowed resources."""
        return self.used > self.entitled

    # --- mutations -----------------------------------------------------------

    def set_entitled(self, value: int) -> None:
        """Reset the contractual share (e.g. when SPUs come and go)."""
        if value < 0:
            raise ResourceLevelError(f"entitled must be >= 0, got {value}")
        self.entitled = value
        if self.allowed < value:
            self.allowed = value
        self._check()

    def set_allowed(self, value: int) -> None:
        """Move the cap; used by the sharing policy to lend/revoke."""
        if value < self.entitled:
            raise ResourceLevelError(
                f"allowed ({value}) may not drop below entitled ({self.entitled})"
            )
        if value < self.used:
            raise ResourceLevelError(
                f"allowed ({value}) may not drop below current used ({self.used});"
                " reclaim usage first"
            )
        self.allowed = value

    def can_use(self, amount: int = 1) -> bool:
        """Would acquiring ``amount`` more stay within the cap?"""
        return self.used + amount <= self.allowed

    def acquire(self, amount: int = 1) -> None:
        """Record usage of ``amount``; raises if it would exceed the cap."""
        if amount < 0:
            raise ResourceLevelError(f"cannot acquire a negative amount ({amount})")
        if self.used + amount > self.allowed:
            raise ResourceLevelError(
                f"acquire({amount}) would exceed allowed={self.allowed}"
                f" (used={self.used})"
            )
        self.used += amount

    def release(self, amount: int = 1) -> None:
        """Record release of ``amount`` of the resource."""
        if amount < 0:
            raise ResourceLevelError(f"cannot release a negative amount ({amount})")
        if amount > self.used:
            raise ResourceLevelError(
                f"release({amount}) exceeds current used ({self.used})"
            )
        self.used -= amount
