"""Machine-sharing contracts: how the machine is divided among SPUs.

A contract turns a total amount of a resource into per-SPU entitlements
("project A owns a third of the machine, project B two thirds").  The
implementation divides with the largest-remainder method so the shares
are integers that sum exactly to the total.

Contracts are also *renegotiable*: when hardware fails mid-run (a CPU
is hot-removed, a memory module dies) the machine's effective capacity
shrinks, and :meth:`SharingContract.renegotiate` re-apportions the new
total with the **same weights** — so degradation is proportional to
each SPU's contractual share rather than falling on whichever SPU
faults first.
"""

from __future__ import annotations

import abc
from fractions import Fraction
from typing import Dict, List, Optional, Sequence

from repro.core.resources import Resource
from repro.core.spu import SPU


class ContractError(ValueError):
    """Raised for ill-formed contracts."""


def apportion(total: int, weights: Sequence[float]) -> List[int]:
    """Split ``total`` into integer parts proportional to ``weights``.

    Uses the largest-remainder method: every part gets the floor of its
    exact share, then the leftover units go to the parts with the
    largest fractional remainders (ties broken by position, which keeps
    the result deterministic).
    """
    if total < 0:
        raise ContractError(f"total must be >= 0, got {total}")
    if not weights:
        return []
    if any(w < 0 for w in weights):
        raise ContractError(f"weights must be >= 0, got {list(weights)}")
    weight_sum = sum(weights)
    if weight_sum == 0:
        raise ContractError("at least one weight must be positive")
    exact = [total * w / weight_sum for w in weights]
    parts = [int(e) for e in exact]
    leftover = total - sum(parts)
    remainders = sorted(
        range(len(weights)), key=lambda i: (-(exact[i] - parts[i]), i)
    )
    for i in remainders[:leftover]:
        parts[i] += 1
    return parts


class SharingContract(abc.ABC):
    """Maps (total resource, active SPUs) to per-SPU entitlements."""

    @abc.abstractmethod
    def weights(self, spus: Sequence[SPU]) -> List[float]:
        """The relative share weight for each SPU, in the given order."""

    def entitlements(self, total: int, spus: Sequence[SPU]) -> Dict[int, int]:
        """Integer entitlement per SPU id, summing exactly to ``total``."""
        parts = apportion(total, self.weights(spus))
        return {spu.spu_id: part for spu, part in zip(spus, parts)}

    def renegotiate(
        self, new_total: int, spus: Sequence[SPU], resource: Resource
    ) -> Dict[int, int]:
        """Re-apportion ``resource`` over a changed capacity and apply it.

        Every SPU's *entitled* level moves to its contractual share of
        ``new_total``; its *allowed* cap is pulled down toward the new
        entitlement, but never below current *used* — over-cap usage is
        reclaimed gradually by the revocation machinery (page stealing,
        loan revocation), exactly as for a sharing-policy revocation.
        Returns the new entitlements by SPU id.
        """
        new = self.entitlements(new_total, spus)
        for spu in spus:
            levels = spu.levels[resource]
            target = new[spu.spu_id]
            levels.set_entitled(target)
            levels.set_allowed(max(target, levels.used))
        return new


class ScaledContract(SharingContract):
    """A base contract with per-SPU degradation fractions on top.

    This is the fleet-capacity renegotiation path: when an SPU is
    evacuated onto a machine that cannot cover its full demand, the
    admission controller *degrades* it to a fraction of its contract
    rather than rejecting it outright.  The fraction multiplies the
    SPU's base weight, so every later renegotiation (another disk
    death, another evacuation) composes **multiplicatively** — a
    contract renegotiated twice ends at the product of the
    surviving-capacity fractions, never at whichever fraction came
    last.

    Fractions are keyed by SPU name; SPUs without an entry keep their
    base weight (fraction 1).  :meth:`scale` returns a *new* contract
    so in-flight entitlement maps never see a half-applied change.
    """

    def __init__(
        self,
        base: SharingContract,
        fractions: Optional[Dict[str, Fraction]] = None,
    ):
        if not isinstance(base, SharingContract):
            raise ContractError(f"base must be a SharingContract, got {base!r}")
        self.base = base
        self.fractions: Dict[str, Fraction] = {}
        for name, fraction in (fractions or {}).items():
            self.fractions[name] = self._as_fraction(name, fraction)

    @staticmethod
    def _as_fraction(name: str, value) -> Fraction:
        try:
            fraction = Fraction(value)
        except (TypeError, ValueError):
            raise ContractError(
                f"fraction for SPU {name!r} must be numeric, got {value!r}"
            ) from None
        if not 0 <= fraction <= 1:
            raise ContractError(
                f"fraction for SPU {name!r} must be in [0, 1], got {value!r}"
            )
        return fraction

    def fraction_of(self, name: str) -> Fraction:
        """The accumulated degradation fraction for one SPU name."""
        return self.fractions.get(name, Fraction(1))

    def scale(self, name: str, fraction) -> "ScaledContract":
        """A new contract with ``name`` degraded by a further ``fraction``.

        Composes with any existing degradation: scaling an SPU already
        at 1/2 by 3/4 leaves it at 3/8 of its base weight.
        """
        step = self._as_fraction(name, fraction)
        fractions = dict(self.fractions)
        fractions[name] = self.fraction_of(name) * step
        return ScaledContract(self.base, fractions)

    def restore(self, name: str) -> "ScaledContract":
        """A new contract with ``name`` back at its full base weight."""
        fractions = {n: f for n, f in self.fractions.items() if n != name}
        return ScaledContract(self.base, fractions)

    def weights(self, spus: Sequence[SPU]) -> List[float]:
        base = self.base.weights(spus)
        return [
            w * self.fraction_of(spu.name) for spu, w in zip(spus, base)
        ]


class EqualShareContract(SharingContract):
    """All active SPUs get equal shares (the paper's implementation)."""

    def weights(self, spus: Sequence[SPU]) -> List[float]:
        return [1.0] * len(spus)


class WeightedContract(SharingContract):
    """Explicit per-SPU weights, keyed by SPU name.

    SPUs without an entry get ``default_weight``.  With weights
    ``{"A": 1, "B": 2}`` project B owns two thirds of the machine.
    """

    def __init__(self, weights_by_name: Dict[str, float], default_weight: float = 1.0):
        if default_weight < 0:
            raise ContractError("default_weight must be >= 0")
        if any(w < 0 for w in weights_by_name.values()):
            raise ContractError("weights must be >= 0")
        self._weights = dict(weights_by_name)
        self._default = default_weight

    def weights(self, spus: Sequence[SPU]) -> List[float]:
        return [self._weights.get(s.name, self._default) for s in spus]
