"""Goal-driven entitlement management (an OS390-WLM-style layer).

The paper's related work (Section 5) describes the IBM OS390 Workload
Manager, which accepts high-level performance goals and continuously
re-adjusts resource allocation to meet them, and observes that "the
underlying controls in the OS390 systems seem to be sufficient to
implement performance isolation should it be desired".  This module
demonstrates the converse: the SPU's entitlement knob is sufficient to
implement WLM-style goal management.

A :class:`GoalManager` holds per-SPU goals — currently *velocity*
goals: the fraction of ideal (uncontended) speed the SPU's work should
achieve, measured as CPU received over CPU demanded — plus an
importance ordering.  Each control period it measures attainment and
shifts contract weight from over-achieving, less-important SPUs to
under-achieving, more-important ones, then re-entitles the machine.

This layer only moves *entitlements*; all the isolation and sharing
mechanics underneath are untouched SPU machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.core.contracts import SharingContract
from repro.core.spu import SPU
from repro.sim.units import MSEC

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel


@dataclass(frozen=True)
class VelocityGoal:
    """Run at least ``target`` of uncontended speed.

    Velocity is measured as CPU time received divided by the time the
    SPU had runnable work wanting CPU — the OS390 "execution velocity"
    idea reduced to what the simulator can observe cheaply.
    """

    target: float
    #: Smaller numbers matter more (OS390 importance levels).
    importance: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.target <= 1.0:
            raise ValueError(f"velocity target must be in (0, 1], got {self.target}")
        if self.importance < 1:
            raise ValueError("importance starts at 1")


@dataclass
class GoalReport:
    """One control period's attainment for one SPU."""

    time: int
    spu_id: int
    velocity: float
    target: float
    weight: float

    @property
    def satisfied(self) -> bool:
        return self.velocity >= self.target


class AdaptiveContract(SharingContract):
    """A contract whose weights the GoalManager adjusts at runtime."""

    def __init__(self, initial: Optional[Dict[str, float]] = None):
        self._weights: Dict[str, float] = dict(initial or {})

    def weight_of(self, name: str) -> float:
        return self._weights.get(name, 1.0)

    def set_weight(self, name: str, weight: float) -> None:
        if weight <= 0:
            raise ValueError("weights must stay positive")
        self._weights[name] = weight

    def weights(self, spus) -> List[float]:
        return [self.weight_of(s.name) for s in spus]


class GoalManager:
    """Measures goal attainment and re-weights the contract.

    Attach to a booted kernel whose ``contract`` is an
    :class:`AdaptiveContract`::

        manager = GoalManager(kernel)
        manager.set_goal(spu, VelocityGoal(0.9, importance=1))
        manager.start()
    """

    #: Multiplicative weight step per control period.
    STEP = 1.25

    def __init__(self, kernel: "Kernel", period: int = 200 * MSEC):
        contract = kernel.config.contract
        if not isinstance(contract, AdaptiveContract):
            raise TypeError(
                "GoalManager needs a MachineConfig with an AdaptiveContract"
            )
        self.kernel = kernel
        self.contract = contract
        self.period = period
        self.goals: Dict[int, VelocityGoal] = {}
        self.history: List[GoalReport] = []
        self._last_cpu: Dict[int, int] = {}
        self._last_time = 0
        self._timer = None

    def set_goal(self, spu: SPU, goal: VelocityGoal) -> None:
        self.goals[spu.spu_id] = goal

    def start(self) -> None:
        if self._timer is not None:
            raise RuntimeError("goal manager already started")
        self._timer = self.kernel.engine.every(self.period, self.control)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()
            self._timer = None

    # --- the control loop ------------------------------------------------------

    def _velocity(self, spu: SPU, elapsed: int) -> Optional[float]:
        """CPU received / CPU demanded over the last period.

        Demand approximation: an SPU with N live CPU-hungry processes
        wants min(N, ncpus) CPUs.  Idle SPUs return None (no basis for
        adjustment).
        """
        live = [
            p for p in self.kernel.processes.values()
            if p.spu_id == spu.spu_id and p.alive
        ]
        if not live or elapsed <= 0:
            return None
        total = self.kernel.cpu_account.total(spu.spu_id)
        received = total - self._last_cpu.get(spu.spu_id, 0)
        self._last_cpu[spu.spu_id] = total
        wanted_cpus = min(len(live), self.kernel.config.ncpus)
        demanded = wanted_cpus * elapsed
        return received / demanded

    def control(self) -> None:
        """One period: measure attainment, shift weight, re-entitle."""
        now = self.kernel.engine.now
        elapsed = now - self._last_time
        self._last_time = now
        unsatisfied: List[SPU] = []
        donors: List[SPU] = []
        for spu in self.kernel.registry.active_user_spus():
            goal = self.goals.get(spu.spu_id)
            if goal is None:
                donors.append(spu)
                continue
            velocity = self._velocity(spu, elapsed)
            if velocity is None:
                continue
            self.history.append(
                GoalReport(now, spu.spu_id, velocity, goal.target,
                           self.contract.weight_of(spu.name))
            )
            if velocity < goal.target:
                unsatisfied.append(spu)
            elif velocity > goal.target * 1.1:
                donors.append(spu)
        if not unsatisfied:
            return
        # Help the most important unsatisfied SPU first (OS390 style).
        unsatisfied.sort(key=lambda s: (self.goals[s.spu_id].importance, s.spu_id))
        needy = unsatisfied[0]
        self.contract.set_weight(
            needy.name, self.contract.weight_of(needy.name) * self.STEP
        )
        for donor in donors:
            self.contract.set_weight(
                donor.name,
                max(0.05, self.contract.weight_of(donor.name) / self.STEP),
            )
        self.kernel.rebalance_spus()
