"""Usage accounting primitives.

The disk-bandwidth metric in the paper (Section 3.3) is "sectors
transferred per second", approximated by a counter that is halved every
500 ms.  :class:`DecayedCounter` implements that scheme lazily: decay is
applied on access, based on how many whole decay periods have elapsed,
so no periodic event is needed and the value is identical to what an
eagerly-decayed counter would hold at period boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.sim.units import MSEC


class AccountingError(ValueError):
    """Raised on illegal accounting operations."""


class DecayedCounter:
    """A counter halved once per ``period`` microseconds.

    The count is stored as a float so repeated halving keeps fractional
    residue (matching an exponential moving average at period
    granularity), but additions are in whole units.
    """

    def __init__(self, period: int = 500 * MSEC, now: int = 0):
        if period <= 0:
            raise AccountingError(f"decay period must be positive, got {period}")
        self.period = period
        self._value = 0.0
        self._last_decay = now

    def _decay_to(self, now: int) -> None:
        if now < self._last_decay:
            raise AccountingError(
                f"time went backwards: {now} < {self._last_decay}"
            )
        periods = (now - self._last_decay) // self.period
        if periods:
            # Halve once per elapsed period; skip the arithmetic once the
            # value has decayed to nothing.
            if self._value:
                if periods >= 64:
                    self._value = 0.0
                else:
                    self._value /= 1 << periods
            self._last_decay += periods * self.period

    def add(self, amount: float, now: int) -> None:
        """Add ``amount`` at simulated time ``now``."""
        if amount < 0:
            raise AccountingError(f"cannot add negative amount {amount}")
        self._decay_to(now)
        self._value += amount

    def value(self, now: int) -> float:
        """The decayed count as of simulated time ``now``."""
        self._decay_to(now)
        return self._value

    def reset(self, now: int) -> None:
        """Zero the counter."""
        self._value = 0.0
        self._last_decay = now


@dataclass
class UsageSample:
    """A point-in-time snapshot of one SPU's usage of one resource."""

    time: int
    entitled: int
    allowed: int
    used: int


@dataclass
class UsageTimeline:
    """An append-only series of :class:`UsageSample` for reporting."""

    samples: list = field(default_factory=list)

    def record(self, time: int, entitled: int, allowed: int, used: int) -> None:
        self.samples.append(UsageSample(time, entitled, allowed, used))

    def peak_used(self) -> int:
        return max((s.used for s in self.samples), default=0)

    def mean_used(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.used for s in self.samples) / len(self.samples)


class CpuTimeAccount:
    """Accumulates CPU time consumed per SPU, for fairness metrics."""

    def __init__(self):
        self._by_spu: Dict[int, int] = {}

    def charge(self, spu_id: int, usecs: int) -> None:
        if usecs < 0:
            raise AccountingError(f"cannot charge negative time {usecs}")
        self._by_spu[spu_id] = self._by_spu.get(spu_id, 0) + usecs

    def total(self, spu_id: int) -> int:
        return self._by_spu.get(spu_id, 0)

    def as_dict(self) -> Dict[int, int]:
        return dict(self._by_spu)
