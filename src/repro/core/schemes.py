"""The resource-allocation schemes compared in the paper (Table 2).

Each scheme is a bundle of switches the kernel subsystems consult:

* **SMP** — stock IRIX 5.3 behaviour: unconstrained sharing, no
  isolation.  One global run queue, one global page pool, position-only
  (C-SCAN) disk scheduling.
* **Quo** — fixed quotas: good isolation, no sharing.  CPUs are
  hard-partitioned to their home SPUs, memory caps stay at the
  entitlement, disk bandwidth is split round-robin.
* **PIso** — performance isolation: isolation plus careful sharing of
  idle resources.

The disk experiments (Tables 3 and 4) additionally compare three disk
scheduling policies — ``Pos``, ``Iso``, ``PIso`` — which are captured by
:class:`DiskSchedPolicy` so they can be varied independently.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.core.policy import AlwaysShare, NeverShare, ShareIdle, SharingPolicy  # noqa: F401
from repro.sim.units import MSEC


class DiskSchedPolicy(enum.Enum):
    """Disk request scheduling policies (Section 4.5)."""

    #: Head-position-only C-SCAN scheduling; stock IRIX ("Pos").
    POS = "pos"
    #: Blind fairness: ignore head position, serve SPUs by bandwidth
    #: share ("Iso").
    ISO = "iso"
    #: Performance isolation: head position, overridden by a fairness
    #: criterion when an SPU exceeds its share ("PIso").
    PISO = "piso"


@dataclass(frozen=True)
class IsolationParams:
    """Tunables of the performance-isolation implementation (Section 3).

    Defaults are the values the paper used.
    """

    #: Scheduler time slice (IRIX: 30 ms unless the process blocks).
    time_slice: int = 30 * MSEC
    #: Clock-tick interval; the maximum CPU-loan revocation latency.
    clock_tick: int = 10 * MSEC
    #: Fraction of total memory kept free to hide memory revocation
    #: cost (the Reserve Threshold; IRIX low-memory value).
    reserve_threshold: float = 0.08
    #: How often the memory-sharing daemon re-examines SPU page usage.
    memory_rebalance_period: int = 100 * MSEC
    #: Disk bandwidth counters are halved once per this period.
    disk_decay_period: int = 500 * MSEC
    #: An SPU fails the disk fairness criterion when its usage ratio
    #: exceeds the mean of active SPUs' ratios by this many decayed
    #: sectors-per-share.  0 degenerates to round-robin; very large
    #: values degenerate to position-only scheduling.
    bw_difference_threshold: float = 256.0
    #: CPU-loan revocation mode: ``"tick"`` waits for the next clock
    #: tick (max latency one tick, the paper's implementation);
    #: ``"ipi"`` sends an inter-processor interrupt immediately — the
    #: alternative the paper suggests "to provide response time
    #: performance isolation guarantees to interactive processes".
    revocation_mode: str = "tick"
    #: Cost of delivering an IPI and switching, when revocation_mode
    #: is "ipi".
    ipi_cost: int = 25
    #: Cache-affinity penalty: extra warm-up time on a CPU other than
    #: the one the process last ran on (the paper's "hidden costs to
    #: reallocating CPUs, such as cache pollution").  0 disables.
    migration_cost: int = 0
    #: After a loan is revoked, the CPU refuses new loans for this
    #: long, damping the frequent-reallocation pathology the paper
    #: warns about.  0 disables.
    loan_holddown: int = 0
    #: Run a background pageout daemon that keeps the free pool at the
    #: Reserve Threshold, taking reclamation off the fault path.
    proactive_pageout: bool = False
    #: How often the pageout daemon scans.
    pageout_period: int = 250 * MSEC

    def __post_init__(self) -> None:
        if self.revocation_mode not in ("tick", "ipi"):
            raise ValueError(
                f"revocation_mode must be 'tick' or 'ipi',"
                f" got {self.revocation_mode!r}"
            )
        if self.migration_cost < 0 or self.loan_holddown < 0 or self.ipi_cost < 0:
            raise ValueError("costs must be >= 0")


@dataclass(frozen=True)
class SchemeConfig:
    """One resource-allocation scheme as a set of subsystem switches."""

    name: str
    #: CPUs have home SPUs and schedule only from them by default.
    cpu_partitioned: bool
    #: Idle CPUs may run processes from foreign SPUs (loans).
    cpu_lending: bool
    #: Per-SPU memory caps are enforced at page allocation.
    mem_limits: bool
    #: Idle memory is periodically redistributed by raising caps.
    mem_sharing: bool
    #: Disk request scheduling policy.
    disk_policy: DiskSchedPolicy
    #: Default per-SPU sharing policy.
    sharing_policy: SharingPolicy
    #: Implementation tunables.
    params: IsolationParams = field(default_factory=IsolationParams)
    #: Use SPU-level stride scheduling instead of partitioning (the
    #: related-work alternative [Wal95]; see :mod:`repro.cpu.stride`).
    cpu_stride: bool = False

    def with_disk_policy(self, policy: DiskSchedPolicy) -> "SchemeConfig":
        """A copy of this scheme with a different disk policy."""
        return replace(self, disk_policy=policy)

    def with_params(self, params: IsolationParams) -> "SchemeConfig":
        """A copy of this scheme with different tunables."""
        return replace(self, params=params)


def smp_scheme(params: IsolationParams = IsolationParams()) -> SchemeConfig:
    """Stock SMP: unconstrained sharing, no isolation (Table 2, "SMP")."""
    return SchemeConfig(
        name="SMP",
        cpu_partitioned=False,
        cpu_lending=True,
        mem_limits=False,
        mem_sharing=False,
        disk_policy=DiskSchedPolicy.POS,
        sharing_policy=AlwaysShare(),
        params=params,
    )


def quota_scheme(params: IsolationParams = IsolationParams()) -> SchemeConfig:
    """Fixed quotas: good isolation, no sharing (Table 2, "Quo")."""
    return SchemeConfig(
        name="Quo",
        cpu_partitioned=True,
        cpu_lending=False,
        mem_limits=True,
        mem_sharing=False,
        disk_policy=DiskSchedPolicy.ISO,
        sharing_policy=NeverShare(),
        params=params,
    )


def piso_scheme(params: IsolationParams = IsolationParams()) -> SchemeConfig:
    """Performance isolation: isolation + idle sharing (Table 2, "PIso")."""
    return SchemeConfig(
        name="PIso",
        cpu_partitioned=True,
        cpu_lending=True,
        mem_limits=True,
        mem_sharing=True,
        disk_policy=DiskSchedPolicy.PISO,
        sharing_policy=ShareIdle(),
        params=params,
    )


def stride_scheme(params: IsolationParams = IsolationParams()) -> SchemeConfig:
    """Proportional-share CPU via stride scheduling [Wal95].

    Memory and disk isolation work exactly as under PIso; only the CPU
    mechanism differs — no partition, no loans, shares enforced by
    pass ordering.  Used to compare the paper's approach against its
    main related-work alternative.
    """
    return SchemeConfig(
        name="Stride",
        cpu_partitioned=False,
        cpu_lending=True,
        mem_limits=True,
        mem_sharing=True,
        disk_policy=DiskSchedPolicy.PISO,
        sharing_policy=ShareIdle(),
        params=params,
        cpu_stride=True,
    )


def scheme_by_name(name: str, params: IsolationParams = IsolationParams()) -> SchemeConfig:
    """Look up a scheme by its paper name (case-insensitive)."""
    factories = {
        "smp": smp_scheme,
        "quo": quota_scheme,
        "piso": piso_scheme,
        "stride": stride_scheme,
    }
    try:
        return factories[name.lower()](params)  # simlint: dynamic=factory-table
    except KeyError:
        raise ValueError(
            f"unknown scheme {name!r}; expected one of {sorted(factories)}"
        ) from None
