"""The Software Performance Unit (SPU) and its registry.

An SPU (paper Section 2.1) groups processes and owns a share of each
machine resource.  Performance of a process is isolated from processes
*outside* its SPU; processes inside one SPU compete freely.

Two default SPUs exist in every system (Section 2.2):

* ``kernel`` — kernel daemons, kernel code/data pages.  Unrestricted
  access to all resources.
* ``shared`` — resources used by multiple SPUs at once (shared library
  pages, delayed disk writes carrying many SPUs' dirty data).  Its cost
  is effectively borne by all user SPUs, because only the remainder of
  the machine is divided among them.
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict, List, Optional, Set

from repro.core.accounting import DecayedCounter
from repro.core.resources import Resource, ResourceLevels


class SPUKind(enum.Enum):
    USER = "user"
    KERNEL = "kernel"
    SHARED = "shared"


class SPUState(enum.Enum):
    ACTIVE = "active"
    SUSPENDED = "suspended"
    DESTROYED = "destroyed"


class SPUError(RuntimeError):
    """Raised on illegal SPU lifecycle or membership operations."""


KERNEL_SPU_ID = 0
SHARED_SPU_ID = 1
_FIRST_USER_SPU_ID = 2


class SPU:
    """One software performance unit.

    Do not construct directly; use :meth:`SPURegistry.create`.
    """

    def __init__(self, spu_id: int, name: str, kind: SPUKind = SPUKind.USER):
        self.spu_id = spu_id
        self.name = name
        self.kind = kind
        self.state = SPUState.ACTIVE
        self.levels: Dict[Resource, ResourceLevels] = {
            r: ResourceLevels() for r in Resource
        }
        # The per-resource accessors are on the allocation hot path
        # (every page grant consults memory()); the enum-keyed dict
        # lookups are hoisted to plain attributes here.  ``kind`` never
        # changes after construction, so is_user is precomputed too.
        self._cpu_levels = self.levels[Resource.CPU]
        self._memory_levels = self.levels[Resource.MEMORY]
        self._disk_bw_levels = self.levels[Resource.DISK_BW]
        self.is_user = kind is SPUKind.USER
        #: Processes currently assigned to this SPU (by pid).
        self.pids: Set[int] = set()
        #: Decayed sectors-transferred counter per disk id (Section 3.3).
        self.disk_counters: Dict[int, DecayedCounter] = {}

    # --- convenience accessors ------------------------------------------------

    def cpu(self) -> ResourceLevels:
        return self._cpu_levels

    def memory(self) -> ResourceLevels:
        return self._memory_levels

    def disk_bw(self) -> ResourceLevels:
        return self._disk_bw_levels

    def disk_counter(self, disk_id: int, decay_period: int, now: int) -> DecayedCounter:
        """The decayed sector counter for one disk, created on demand."""
        counter = self.disk_counters.get(disk_id)
        if counter is None:
            counter = DecayedCounter(period=decay_period, now=now)
            self.disk_counters[disk_id] = counter
        return counter

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SPU {self.spu_id} {self.name!r} {self.kind.value} {self.state.value}>"


class SPURegistry:
    """Creates, looks up, and retires SPUs; maps processes to SPUs.

    The registry always contains the ``kernel`` and ``shared`` default
    SPUs.  User SPUs can be created and destroyed dynamically, or
    suspended while they have no active processes (Section 2.1).
    """

    def __init__(self):
        self.kernel_spu = SPU(KERNEL_SPU_ID, "kernel", SPUKind.KERNEL)
        self.shared_spu = SPU(SHARED_SPU_ID, "shared", SPUKind.SHARED)
        self._spus: Dict[int, SPU] = {
            KERNEL_SPU_ID: self.kernel_spu,
            SHARED_SPU_ID: self.shared_spu,
        }
        self._next_id = itertools.count(_FIRST_USER_SPU_ID)
        self._pid_to_spu: Dict[int, int] = {}

    # --- lifecycle -----------------------------------------------------------

    def create(self, name: str) -> SPU:
        """Create a new active user SPU."""
        spu_id = next(self._next_id)
        spu = SPU(spu_id, name, SPUKind.USER)
        self._spus[spu_id] = spu
        return spu

    def destroy(self, spu: SPU) -> None:
        """Destroy a user SPU; it must have no processes."""
        if not spu.is_user:
            raise SPUError(f"cannot destroy default SPU {spu.name!r}")
        if spu.pids:
            raise SPUError(f"SPU {spu.name!r} still has {len(spu.pids)} processes")
        spu.state = SPUState.DESTROYED
        del self._spus[spu.spu_id]

    def suspend(self, spu: SPU) -> None:
        """Suspend an SPU that has no active processes."""
        if not spu.is_user:
            raise SPUError(f"cannot suspend default SPU {spu.name!r}")
        if spu.pids:
            raise SPUError(f"SPU {spu.name!r} has active processes")
        spu.state = SPUState.SUSPENDED

    def resume(self, spu: SPU) -> None:
        if spu.state is not SPUState.SUSPENDED:
            raise SPUError(f"SPU {spu.name!r} is not suspended")
        spu.state = SPUState.ACTIVE

    # --- lookup ---------------------------------------------------------------

    def get(self, spu_id: int) -> SPU:
        try:
            return self._spus[spu_id]
        except KeyError:
            raise SPUError(f"no SPU with id {spu_id}") from None

    def user_spus(self) -> List[SPU]:
        """All user SPUs, in creation order."""
        return [s for s in self._spus.values() if s.is_user]

    def active_user_spus(self) -> List[SPU]:
        return [s for s in self.user_spus() if s.state is SPUState.ACTIVE]

    def all_spus(self) -> List[SPU]:
        return list(self._spus.values())

    # --- process membership -----------------------------------------------------

    def assign(self, pid: int, spu: SPU) -> None:
        """Assign process ``pid`` to ``spu`` (moving it if already assigned)."""
        if spu.state is SPUState.DESTROYED:
            raise SPUError(f"SPU {spu.name!r} is destroyed")
        old = self._pid_to_spu.get(pid)
        if old is not None:
            self._spus[old].pids.discard(pid)
        spu.pids.add(pid)
        self._pid_to_spu[pid] = spu.spu_id

    def remove(self, pid: int) -> None:
        """Remove a (terminating) process from its SPU."""
        spu_id = self._pid_to_spu.pop(pid, None)
        if spu_id is not None:
            self._spus[spu_id].pids.discard(pid)

    def spu_of(self, pid: int) -> SPU:
        try:
            return self._spus[self._pid_to_spu[pid]]
        except KeyError:
            raise SPUError(f"process {pid} is not assigned to any SPU") from None

    def spu_of_or_none(self, pid: int) -> Optional[SPU]:
        spu_id = self._pid_to_spu.get(pid)
        return self._spus.get(spu_id) if spu_id is not None else None
