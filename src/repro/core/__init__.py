"""The paper's contribution: the SPU abstraction and isolation model.

* :mod:`repro.core.resources` — the entitled/allowed/used three-level
  model per resource.
* :mod:`repro.core.spu` — SPUs, the registry, and the ``kernel`` /
  ``shared`` default SPUs.
* :mod:`repro.core.policy` — per-SPU sharing policies.
* :mod:`repro.core.contracts` — dividing the machine into entitlements.
* :mod:`repro.core.schemes` — the SMP / Quo / PIso scheme bundles the
  evaluation compares.
* :mod:`repro.core.accounting` — decayed bandwidth counters and usage
  timelines.
"""

from repro.core.accounting import CpuTimeAccount, DecayedCounter, UsageSample, UsageTimeline
from repro.core.contracts import (
    ContractError,
    EqualShareContract,
    ScaledContract,
    SharingContract,
    WeightedContract,
    apportion,
)
from repro.core.goals import (
    AdaptiveContract,
    GoalManager,
    GoalReport,
    VelocityGoal,
)
from repro.core.policy import (
    AlwaysShare,
    NeverShare,
    ShareIdle,
    ShareIdleWithSubset,
    SharingPolicy,
)
from repro.core.resources import MILLI_CPU, Resource, ResourceLevelError, ResourceLevels
from repro.core.schemes import (
    DiskSchedPolicy,
    IsolationParams,
    SchemeConfig,
    piso_scheme,
    quota_scheme,
    scheme_by_name,
    smp_scheme,
    stride_scheme,
)
from repro.core.spu import (
    KERNEL_SPU_ID,
    SHARED_SPU_ID,
    SPU,
    SPUError,
    SPUKind,
    SPURegistry,
    SPUState,
)

__all__ = [
    "Resource",
    "ResourceLevels",
    "ResourceLevelError",
    "MILLI_CPU",
    "SPU",
    "SPUKind",
    "SPUState",
    "SPUError",
    "SPURegistry",
    "KERNEL_SPU_ID",
    "SHARED_SPU_ID",
    "SharingPolicy",
    "NeverShare",
    "AlwaysShare",
    "ShareIdle",
    "ShareIdleWithSubset",
    "SharingContract",
    "EqualShareContract",
    "ScaledContract",
    "WeightedContract",
    "ContractError",
    "apportion",
    "AdaptiveContract",
    "GoalManager",
    "GoalReport",
    "VelocityGoal",
    "DecayedCounter",
    "CpuTimeAccount",
    "UsageSample",
    "UsageTimeline",
    "DiskSchedPolicy",
    "IsolationParams",
    "SchemeConfig",
    "smp_scheme",
    "quota_scheme",
    "piso_scheme",
    "stride_scheme",
    "scheme_by_name",
]
