"""Network packets and per-link statistics.

The paper does not implement network-bandwidth isolation but states
(Section 5) that "the implementation would be similar to that of disk
bandwidth, without the complication of head position".  This package
builds exactly that: per-SPU decayed byte counters and a fair link
scheduler, next to a FIFO baseline.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional


class NetOp(enum.Enum):
    SEND = "send"
    RECEIVE = "receive"


#: Maximum transmission unit; larger messages are sent as packet trains.
MTU_BYTES = 1500

_packet_ids = itertools.count(1)


@dataclass
class Packet:
    """One packet queued for a link."""

    spu_id: int
    op: NetOp
    nbytes: int
    on_complete: Optional[Callable[["Packet"], None]] = None
    pid: int = -1
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    # --- filled in by the link --------------------------------------------
    enqueue_time: int = -1
    start_time: int = -1
    finish_time: int = -1

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise ValueError(f"packet must carry >= 1 byte, got {self.nbytes}")

    @property
    def wait_us(self) -> int:
        """Time queued before transmission began."""
        if self.start_time < 0 or self.enqueue_time < 0:
            raise ValueError("packet has not been transmitted yet")
        return self.start_time - self.enqueue_time

    @property
    def response_us(self) -> int:
        if self.finish_time < 0:
            raise ValueError("packet has not finished yet")
        return self.finish_time - self.enqueue_time


@dataclass
class LinkStats:
    """Aggregated statistics over transmitted packets."""

    completed: List[Packet] = field(default_factory=list)

    def record(self, packet: Packet) -> None:
        self.completed.append(packet)

    def for_spu(self, spu_id: int) -> List[Packet]:
        return [p for p in self.completed if p.spu_id == spu_id]

    def mean_wait_ms(self, spu_id: Optional[int] = None) -> float:
        packets = self.completed if spu_id is None else self.for_spu(spu_id)
        if not packets:
            return 0.0
        return sum(p.wait_us for p in packets) / len(packets) / 1000.0

    def total_bytes(self, spu_id: Optional[int] = None) -> int:
        packets = self.completed if spu_id is None else self.for_spu(spu_id)
        return sum(p.nbytes for p in packets)

    def count(self, spu_id: Optional[int] = None) -> int:
        return len(self.completed if spu_id is None else self.for_spu(spu_id))
