"""Link schedulers: FIFO (no isolation) and per-SPU fair share.

Fair sharing is the disk PIso policy minus the head position: an SPU's
decayed bytes-transferred count, divided by its bandwidth share, is
compared against the other queued SPUs; the neediest SPU transmits
next, FIFO within the SPU.  A threshold variant mirrors the disk's BW
difference threshold: below the threshold, plain FIFO order holds
(cheap, keeps packet trains together); an SPU that exceeds the mean by
the threshold is deferred.
"""

from __future__ import annotations

import abc
from typing import Dict, Protocol, Sequence

from repro.net.packet import Packet


class ByteLedger(Protocol):
    """Per-SPU transmitted-byte accounting, decayed."""

    def usage_ratio(self, spu_id: int, now: int) -> float:
        ...


class LinkScheduler(abc.ABC):
    """Chooses the next packet to transmit."""

    name = "abstract"

    @abc.abstractmethod
    def select(
        self, queue: Sequence[Packet], now: int, ledger: ByteLedger
    ) -> Packet:
        """Pick one packet from a non-empty queue."""


class FifoLinkScheduler(LinkScheduler):
    """Stock behaviour: strict arrival order, no isolation.

    A bulk sender's packet train queues ahead of everyone else —
    the network analogue of the disk's core-dump lockout.
    """

    name = "fifo"

    def select(self, queue, now, ledger):
        return min(queue, key=lambda p: p.packet_id)


class FairShareLinkScheduler(LinkScheduler):
    """Serve the SPU with the lowest bytes-per-share, FIFO within it."""

    name = "fair"

    def select(self, queue, now, ledger):
        ratios: Dict[int, float] = {
            spu_id: ledger.usage_ratio(spu_id, now)
            for spu_id in sorted({p.spu_id for p in queue})
        }
        neediest = min(ratios, key=lambda s: (ratios[s], s))
        own = [p for p in queue if p.spu_id == neediest]
        return min(own, key=lambda p: p.packet_id)


class ThresholdFairLinkScheduler(LinkScheduler):
    """FIFO until an SPU exceeds the mean usage ratio by a threshold.

    The network counterpart of the disk's BW difference threshold:
    0 degenerates to per-packet fair share, infinity to plain FIFO.
    """

    name = "threshold"

    def __init__(self, threshold: float):
        if threshold < 0:
            raise ValueError("threshold must be >= 0")
        self.threshold = threshold

    def select(self, queue, now, ledger):
        active = sorted({p.spu_id for p in queue})
        if len(active) <= 1:
            return min(queue, key=lambda p: p.packet_id)
        ratios = {s: ledger.usage_ratio(s, now) for s in active}
        mean = sum(ratios.values()) / len(active)
        passing = {s for s in active if ratios[s] <= mean + self.threshold}
        candidates = [p for p in queue if p.spu_id in passing]
        if not candidates:  # pragma: no cover - min ratio always passes
            candidates = list(queue)
        return min(candidates, key=lambda p: p.packet_id)


def make_link_scheduler(name: str, threshold: float = 16384.0) -> LinkScheduler:
    """Build a link scheduler by policy name."""
    lowered = name.lower()
    if lowered == "fifo":
        return FifoLinkScheduler()
    if lowered == "fair":
        return FairShareLinkScheduler()
    if lowered == "threshold":
        return ThresholdFairLinkScheduler(threshold)
    raise ValueError(f"unknown link scheduling policy {name!r}")
