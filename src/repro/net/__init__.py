"""Network substrate: the paper's sketched extension of performance
isolation to network bandwidth ("similar to that of disk bandwidth,
without the complication of head position", Section 5)."""

from repro.net.link import NetByteLedger, NetworkLink
from repro.net.packet import LinkStats, MTU_BYTES, NetOp, Packet
from repro.net.schedulers import (
    FairShareLinkScheduler,
    FifoLinkScheduler,
    LinkScheduler,
    ThresholdFairLinkScheduler,
    make_link_scheduler,
)

__all__ = [
    "NetworkLink",
    "NetByteLedger",
    "Packet",
    "NetOp",
    "LinkStats",
    "MTU_BYTES",
    "LinkScheduler",
    "FifoLinkScheduler",
    "FairShareLinkScheduler",
    "ThresholdFairLinkScheduler",
    "make_link_scheduler",
]
