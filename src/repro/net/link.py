"""The network link: a serial transmitter with a scheduled queue.

A :class:`NetworkLink` transmits one packet at a time at the configured
line rate and charges transmitted bytes to the sending SPU's decayed
counter — the "sectors per second" scheme of Section 3.3 applied to
bytes.  Messages larger than the MTU are fragmented into packet trains
so that fair scheduling can interleave senders mid-message.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.accounting import DecayedCounter
from repro.core.spu import SPURegistry
from repro.net.packet import LinkStats, MTU_BYTES, NetOp, Packet
from repro.net.schedulers import LinkScheduler
from repro.sim.engine import Engine
from repro.sim.units import MSEC, SEC


class NetByteLedger:
    """Decayed transmitted-bytes accounting per SPU for one link."""

    def __init__(self, registry: SPURegistry, decay_period: int = 500 * MSEC):
        self.registry = registry
        self.decay_period = decay_period
        self._counters: Dict[int, DecayedCounter] = {}

    def _counter(self, spu_id: int, now: int) -> DecayedCounter:
        counter = self._counters.get(spu_id)
        if counter is None:
            counter = DecayedCounter(period=self.decay_period, now=now)
            self._counters[spu_id] = counter
        return counter

    def _share(self, spu_id: int) -> int:
        entitled = self.registry.get(spu_id).disk_bw().entitled
        return entitled if entitled > 0 else 1

    def usage_ratio(self, spu_id: int, now: int) -> float:
        return self._counter(spu_id, now).value(now) / self._share(spu_id)

    def charge(self, spu_id: int, nbytes: int, now: int) -> None:
        self._counter(spu_id, now).add(nbytes, now)


class NetworkLink:
    """One serial link with a queue and a scheduling policy."""

    def __init__(
        self,
        engine: Engine,
        scheduler: LinkScheduler,
        ledger: NetByteLedger,
        bandwidth_mbps: float = 100.0,
        per_packet_overhead_us: int = 10,
        link_id: int = 0,
    ):
        if bandwidth_mbps <= 0:
            raise ValueError("link rate must be positive")
        self.engine = engine
        self.scheduler = scheduler
        self.ledger = ledger
        self.bandwidth_mbps = bandwidth_mbps
        self.per_packet_overhead_us = per_packet_overhead_us
        self.link_id = link_id
        self.queue: List[Packet] = []
        self.stats = LinkStats()
        self.busy = False

    def transmit_us(self, nbytes: int) -> int:
        """Serialization delay for one packet, plus fixed overhead."""
        return round(nbytes * 8 / self.bandwidth_mbps) + self.per_packet_overhead_us

    # --- sending ----------------------------------------------------------

    def send(
        self,
        spu_id: int,
        nbytes: int,
        on_complete: Optional[Callable[[], None]] = None,
        pid: int = -1,
    ) -> int:
        """Queue a message; fragments to MTU-sized packets.

        ``on_complete`` fires when the *last* fragment finishes.
        Returns the number of packets queued.
        """
        if nbytes <= 0:
            raise ValueError(f"message must carry >= 1 byte, got {nbytes}")
        sizes = [MTU_BYTES] * (nbytes // MTU_BYTES)
        if nbytes % MTU_BYTES:
            sizes.append(nbytes % MTU_BYTES)
        remaining = {"count": len(sizes)}

        def fragment_done(_packet: Packet) -> None:
            remaining["count"] -= 1
            if remaining["count"] == 0 and on_complete is not None:
                on_complete()  # simlint: dynamic=continuation

        for size in sizes:
            self._enqueue(Packet(spu_id, NetOp.SEND, size,
                                 on_complete=fragment_done, pid=pid))
        return len(sizes)

    def _enqueue(self, packet: Packet) -> None:
        packet.enqueue_time = self.engine.now
        self.queue.append(packet)
        if not self.busy:
            self._start_next()

    def _start_next(self) -> None:
        if not self.queue:
            self.busy = False
            return
        self.busy = True
        packet = self.scheduler.select(self.queue, self.engine.now, self.ledger)
        self.queue.remove(packet)
        packet.start_time = self.engine.now
        self.engine.call_after(self.transmit_us(packet.nbytes), self._complete, packet)

    def _complete(self, packet: Packet) -> None:
        packet.finish_time = self.engine.now
        self.ledger.charge(packet.spu_id, packet.nbytes, self.engine.now)
        self.stats.record(packet)
        self._start_next()
        if packet.on_complete is not None:
            packet.on_complete(packet)  # simlint: dynamic=callback-field

    def queue_depth(self) -> int:
        return len(self.queue)
