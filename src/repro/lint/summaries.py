"""Effect-summary data model for the interprocedural analysis.

The engine (:mod:`repro.lint.effects`) computes one
:class:`FunctionSummary` per function in the tree: its *direct*
determinism effects (wall-clock reads, entropy draws, environment
reads, hash-order iteration), its *transitive* taints (the same four
kinds, propagated over the call graph with a witness call chain), the
ledger fields it writes, and the call edges that leave it.  The
summaries are consumed twice — by the SL5xx/SL6xx project checkers and
by the SweepCache closure digest — so they live in their own module
with no dependency on either consumer.

Everything here is a plain frozen dataclass: summaries are computed
once per run and then only read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: The four determinism-taint kinds, in severity order.
TAINT_KINDS: Tuple[str, ...] = ("wall-clock", "entropy", "env-read", "hash-order")

#: Taint kind -> the file-local SL1xx rule that reports the same site.
#: Used to decide whether a site *escapes* local review (a suppressed
#: or out-of-scope site is invisible to the per-file pass).
LOCAL_RULE: Dict[str, str] = {
    "wall-clock": "SL101",
    "entropy": "SL102",
    "env-read": "SL104",
    "hash-order": "SL105",
}


@dataclass(frozen=True)
class EffectSite:
    """One concrete nondeterminism source in a function body."""

    kind: str          #: one of TAINT_KINDS
    module: str        #: dotted module of the enclosing function
    path: str          #: display path of the file
    line: int
    detail: str        #: e.g. ``time.monotonic`` or ``os.environ[REPRO_FUZZ_PLANT]``
    #: True when the per-file SL1xx pass does not report this site —
    #: either the file is outside SIM_SCOPE or the line carries an
    #: inline suppression.  Only escaping sites can raise SL5xx in a
    #: transitive caller.
    escapes_local: bool = False
    #: ``REPRO_*`` environment reads are sanctioned steering knobs: the
    #: sweep-cache key folds them in, so they cannot silently change a
    #: cached result.  Sanctioned sites never raise SL503.
    sanctioned: bool = False

    def describe(self) -> str:
        return f"{self.detail} ({self.path}:{self.line})"


@dataclass(frozen=True)
class CallEdge:
    """One resolved edge out of a function.

    ``kind`` is how the edge was found:

    * ``direct`` — a call whose target resolved uniquely;
    * ``cha`` — a method call resolved by name over the class
      hierarchy (possibly several candidates, one edge each);
    * ``ref`` — the target is *referenced* (passed as a callback,
      scheduled on the engine, decorated, stored in a field) but not
      syntactically called here;
    * ``import`` — a function-level ``import`` of a repro module.

    Taint propagates through ``direct`` and ``cha`` edges (the call
    happens at this site); dependency closures follow all four kinds
    (a referenced callee's code still runs under this entry point).
    """

    caller: str
    callee: str        #: function ref, or a module name for ``import`` edges
    kind: str
    line: int

    @property
    def calls(self) -> bool:
        return self.kind in ("direct", "cha")


@dataclass(frozen=True)
class Taint:
    """A transitive effect reaching a function, with one witness chain.

    ``chain`` is the witness path from the tainted function down to the
    site's owner: ``((ref, line), ...)`` where ``line`` is the call
    site inside ``ref`` that continues the chain (the last element's
    line is the effect site itself).  Chains are deterministic: the
    fixpoint keeps the lexicographically-least shortest witness per
    origin class.
    """

    kind: str
    site: EffectSite
    chain: Tuple[Tuple[str, int], ...]

    def render_chain(self) -> str:
        hops = [ref.split(":", 1)[1] for ref, _line in self.chain]
        return " -> ".join(hops + [self.site.describe()])


@dataclass(frozen=True)
class WriteSite:
    """A direct assignment to a ledger-named attribute."""

    token: str         #: ``Class.attr``, e.g. ``BufferCache.used``
    module: str
    path: str
    line: int


@dataclass
class FunctionSummary:
    """Everything the analysis knows about one function."""

    ref: str           #: ``dotted.module:qualname`` (``<module>`` for top-level code)
    module: str
    qualname: str
    path: str
    line: int
    direct_effects: Tuple[EffectSite, ...] = ()
    writes: Tuple[WriteSite, ...] = ()
    edges: Tuple[CallEdge, ...] = ()
    #: Reasons this function's outgoing calls could not be fully
    #: resolved; a widened function poisons closure completeness.
    widened: Tuple[str, ...] = ()
    #: ``# simlint: dynamic=<tag>`` audit markers used in the body.
    markers: Tuple[str, ...] = ()
    #: kind -> list of taints (one per distinct origin class), filled
    #: by the fixpoint pass.
    taints: Dict[str, Tuple[Taint, ...]] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.qualname

    def tainted(self, kind: str) -> bool:
        return bool(self.taints.get(kind))
