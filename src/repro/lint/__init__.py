"""simlint — static analysis for the simulator's own rules.

Four checker families guard the properties the rest of the repo can
only test end-to-end:

* **determinism** (SL1xx) — no wall clocks, process entropy, hash-order
  iteration, or address-derived keys inside the simulated world;
* **event safety** (SL2xx) — SPU ledgers mutate only through the
  accounting API; every ordering carries a deterministic tie-break;
* **typed units** (SL3xx) — the ``_us``/``_ms``/``nbytes``/``npages``
  suffix conventions of :mod:`repro.sim.units` are internally
  consistent;
* **hot path** (SL4xx) — the PR-3-optimised modules keep ``__slots__``
  and allocation-free dispatch loops.

Entry points: :func:`repro.lint.framework.run_lint` (library),
``python -m repro lint`` (CLI).  Intentional exceptions live in the
checked-in ``lint-baseline.json`` with justifications.  The runtime
companion is :mod:`repro.sanitizer` (SIMSAN).
"""

from repro.lint.baseline import Baseline, BaselineEntry, load as load_baseline
from repro.lint.finding import Finding, Rule
from repro.lint.framework import (
    Checker,
    FileContext,
    HOT_MODULES,
    LintError,
    SIM_SCOPE,
    all_rules,
    register,
    run_lint,
)

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Checker",
    "FileContext",
    "Finding",
    "HOT_MODULES",
    "LintError",
    "Rule",
    "SIM_SCOPE",
    "all_rules",
    "load_baseline",
    "register",
    "run_lint",
]
