"""The interprocedural effect engine.

Builds a :class:`~repro.lint.callgraph.CallGraph` over the full tree,
extracts each function's *direct* effects (the same nondeterminism
sources SL1xx flags file-locally, plus ledger writes), and runs a
fixpoint pass propagating determinism taint over call edges.  The
result — one :class:`~repro.lint.summaries.FunctionSummary` per
function — feeds three consumers:

* the SL5xx interprocedural determinism rules and the SL6xx
  shared-state ordering rules (:mod:`repro.lint.checkers.interproc`,
  :mod:`repro.lint.checkers.sharedstate`);
* the SweepCache closure digest (:func:`EffectAnalysis.closure`): the
  set of modules whose bytes can influence a cached function, with a
  completeness bit that is False whenever a reachable function is
  widened — the cache then falls back to the whole-tree digest, so a
  hit can never be unsound;
* ``python -m repro lint --why <fn>`` (the explain mode).

**Taint propagation** follows call edges only (``direct``/``cha``) —
a function that merely *schedules* a tainted handler is not itself
tainted; the handler is flagged directly.  Taint never crosses out of
the boundary packages ({parallel, bench, lint}): host-side code reads
clocks and environment legitimately, and the executor's byte-identity
gate — not the linter — guards that seam.  **Closures** follow every
edge kind plus module imports: a referenced callee's code still runs
under the entry point, and an imported module's top-level code runs at
import, so both belong to the dependency slice.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.callgraph import (
    BOUNDARY_PACKAGES,
    CallGraph,
    FunctionInfo,
    ModuleInfo,
    MODULE_REF,
    _dotted,
    _top_package,
)
from repro.lint.summaries import (
    EffectSite,
    FunctionSummary,
    LOCAL_RULE,
    TAINT_KINDS,
    Taint,
    WriteSite,
)

#: Packages making up the simulated world (mirrors framework.SIM_SCOPE;
#: duplicated here so the engine has no import cycle with the checker
#: framework).
SIM_PACKAGES: Tuple[str, ...] = (
    "sim", "kernel", "cpu", "mem", "disk", "fs", "net", "core",
    "chaos", "faults", "antagonists", "workloads", "experiments",
    "metrics", "api", "snapshot", "fuzz",
)

#: Ledger attribute names whose writes form the shared-state footprint.
LEDGER_FIELDS: Tuple[str, ...] = ("entitled", "allowed", "used")

#: The one module allowed to write ledgers (the accounting core).
_ACCOUNTING_MODULE = "repro.core.resources"

#: Witness chains longer than this are truncated (diagnostics only;
#: taint itself still propagates).
_MAX_CHAIN = 12


def _effect_tables():
    # The SL1xx checker owns the canonical effect tables; reuse them so
    # the file-local and interprocedural passes can never disagree on
    # what counts as a clock or an entropy source.
    from repro.lint.checkers import determinism as det

    return det._WALL_CLOCK, det._GLOBAL_RANDOM, det._ENV_READS


class EffectAnalysis:
    """Summaries + closures for one parsed source tree."""

    def __init__(self, graph: CallGraph):
        self.graph = graph
        self.summaries: Dict[str, FunctionSummary] = {}

    # --- construction ------------------------------------------------------

    @classmethod
    def from_sources(
        cls, sources: Iterable[Tuple[str, str, Optional[ast.Module]]]
    ) -> "EffectAnalysis":
        """Build from (display_path, source, optional pre-parsed tree)."""
        graph = CallGraph()
        for display_path, source, tree in sources:
            graph.index_source(display_path, source, tree)
        graph.finalize()
        analysis = cls(graph)
        analysis._summarize()
        analysis._propagate()
        return analysis

    def _summarize(self) -> None:
        wall_clock, global_random, env_reads = _effect_tables()
        for ref in sorted(self.graph.functions):
            fi = self.graph.functions[ref]
            mi = self.graph.modules[fi.module]
            effects: List[EffectSite] = []
            writes: List[WriteSite] = []
            for stmt in fi.body:
                for node in ast.walk(stmt):
                    effects.extend(self._direct_effects(
                        mi, fi, node, wall_clock, global_random, env_reads))
                    site = self._ledger_write(mi, fi, node)
                    if site is not None:
                        writes.append(site)
            self.summaries[ref] = FunctionSummary(
                ref=ref,
                module=fi.module,
                qualname=fi.qualname,
                path=fi.path,
                line=fi.line,
                direct_effects=tuple(effects),
                writes=tuple(writes),
                edges=tuple(self.graph.edges[ref]),
                widened=tuple(sorted(set(self.graph.widened[ref]))),
                markers=tuple(sorted(set(self.graph.markers_used[ref]))),
            )

    def _site(self, mi: ModuleInfo, fi: FunctionInfo, node: ast.AST,
              kind: str, detail: str, sanctioned: bool = False) -> EffectSite:
        line = getattr(node, "lineno", fi.line)
        suppressed = LOCAL_RULE[kind] in mi.suppressed.get(line, ()) or \
            "all" in mi.suppressed.get(line, ())
        out_of_scope = _top_package(mi.name) not in SIM_PACKAGES
        return EffectSite(
            kind=kind, module=mi.name, path=fi.path, line=line, detail=detail,
            escapes_local=suppressed or out_of_scope, sanctioned=sanctioned,
        )

    def _direct_effects(self, mi: ModuleInfo, fi: FunctionInfo, node: ast.AST,
                        wall_clock, global_random, env_reads):
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func, mi.aliases)
            if dotted is None:
                return
            if dotted in wall_clock:
                yield self._site(mi, fi, node, "wall-clock", dotted)
            elif dotted in global_random or dotted.startswith("secrets."):
                yield self._site(mi, fi, node, "entropy", dotted)
            elif dotted == "random.Random" and not node.args and not node.keywords:
                yield self._site(mi, fi, node, "entropy", "random.Random()")
            elif dotted in ("os.getenv", "os.environ.get"):
                key = _str_expr(node.args[0], mi, self.graph.modules) \
                    if node.args else None
                yield self._site(
                    mi, fi, node, "env-read",
                    f"{dotted}({key or '...'})",
                    sanctioned=bool(key and key.startswith("REPRO_")),
                )
        elif isinstance(node, ast.Subscript):
            dotted = _dotted(node.value, mi.aliases)
            if dotted == "os.environ":
                key = _str_expr(node.slice, mi, self.graph.modules)
                yield self._site(
                    mi, fi, node, "env-read", f"os.environ[{key or '...'}]",
                    sanctioned=bool(key and key.startswith("REPRO_")),
                )
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if self._is_set_expr(mi, node.iter):
                yield self._site(mi, fi, node.iter, "hash-order",
                                 "iteration over a set")
        elif isinstance(node, ast.comprehension):
            if self._is_set_expr(mi, node.iter):
                yield self._site(mi, fi, node.iter, "hash-order",
                                 "iteration over a set")

    def _is_set_expr(self, mi: ModuleInfo, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return _dotted(node.func, mi.aliases) in ("set", "frozenset")
        return False

    def _ledger_write(self, mi: ModuleInfo, fi: FunctionInfo,
                      node: ast.AST) -> Optional[WriteSite]:
        if mi.name == _ACCOUNTING_MODULE:
            return None
        if fi.qualname.endswith(("__init__", "__post_init__")):
            # Constructor writes initialise a fresh object: it cannot
            # yet be shared between event roots, so they are not
            # ordering-coupled mutations.
            return None
        target = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            target = node.target
        if not isinstance(target, ast.Attribute) or \
                target.attr not in LEDGER_FIELDS:
            return None
        if not (isinstance(target.value, ast.Name)
                and target.value.id == "self" and fi.class_name):
            return None
        return WriteSite(
            token=f"{fi.class_name}.{target.attr}",
            module=mi.name, path=fi.path, line=node.lineno,
        )

    # --- taint fixpoint ----------------------------------------------------

    def _propagate(self) -> None:
        # Seed: every function is tainted by its own direct effects.
        taints: Dict[str, Dict[str, Dict[tuple, Taint]]] = {}
        for ref, summary in self.summaries.items():
            per_kind: Dict[str, Dict[tuple, Taint]] = {}
            for site in summary.direct_effects:
                chain = ((ref, site.line),)
                taint = Taint(kind=site.kind, site=site, chain=chain)
                per_kind.setdefault(site.kind, {}).setdefault(
                    self._origin_key(site), taint)
            taints[ref] = per_kind

        callers: Dict[str, List[Tuple[str, int]]] = {}
        for ref, summary in self.summaries.items():
            for edge in summary.edges:
                if edge.calls and edge.callee in self.summaries:
                    callers.setdefault(edge.callee, []).append((ref, edge.line))

        # Synchronous rounds: shortest witness chains settle first, and
        # within a round ties break on the lexicographically-least
        # chain, so the summaries are deterministic.
        changed = True
        while changed:
            changed = False
            pending: Dict[str, Dict[str, Dict[tuple, Taint]]] = {}
            for callee in sorted(callers):
                if _top_package(callee.split(":")[0]) in BOUNDARY_PACKAGES:
                    continue  # host-side code absorbs taint
                for kind, variants in taints.get(callee, {}).items():
                    for key, taint in variants.items():
                        for caller, line in callers[callee]:
                            if key in taints[caller].get(kind, {}):
                                continue
                            chain = ((caller, line),) + taint.chain
                            if len(chain) > _MAX_CHAIN:
                                chain = chain[:_MAX_CHAIN]
                            candidate = Taint(kind=kind, site=taint.site,
                                              chain=chain)
                            slot = pending.setdefault(caller, {}).setdefault(
                                kind, {})
                            if key not in slot or chain < slot[key].chain:
                                slot[key] = candidate
            for caller, per_kind in pending.items():
                for kind, variants in per_kind.items():
                    for key, taint in variants.items():
                        if key not in taints[caller].setdefault(kind, {}):
                            taints[caller][kind][key] = taint
                            changed = True

        for ref, per_kind in taints.items():
            self.summaries[ref].taints = {
                kind: tuple(variants[k] for k in sorted(variants))
                for kind, variants in per_kind.items() if variants
            }

    @staticmethod
    def _origin_key(site: EffectSite) -> tuple:
        return (site.kind, _top_package(site.module),
                site.escapes_local, site.sanctioned)

    # --- closures ----------------------------------------------------------

    def closure(self, ref: str) -> Optional[Tuple[Set[str], List[str]]]:
        """(module set, widening reasons) reachable from ``ref``.

        Returns None when ``ref`` is not in the graph.  The module set
        covers every function reachable over *all* edge kinds, each
        reached module's transitive top-level repro imports, and every
        parent package ``__init__`` (importing a module executes them
        all).  An empty reason list means the closure is complete and
        safe to hash in place of the whole tree.
        """
        if ref not in self.graph.functions:
            return None
        modules: Set[str] = set()
        reasons: List[str] = []
        seen_fns: Set[str] = set()
        stack: List[str] = [ref]

        def add_module(name: str) -> None:
            if name in modules:
                return
            mi = self.graph.modules.get(name)
            if mi is None:
                reasons.append(f"unindexed module {name}")
                modules.add(name)
                return
            modules.add(name)
            # Importing a module runs its top-level code.
            stack.append(f"{name}:{MODULE_REF}")
            for imported in sorted(mi.top_imports):
                add_module(imported)
            parts = name.split(".")
            for cut in range(1, len(parts)):
                parent = ".".join(parts[:cut])
                if parent in self.graph.modules:
                    add_module(parent)

        while stack:
            fn = stack.pop()
            if fn in seen_fns:
                continue
            seen_fns.add(fn)
            fi = self.graph.functions.get(fn)
            if fi is None:
                continue
            add_module(fi.module)
            reasons.extend(self.graph.widened.get(fn, ()))
            for edge in self.graph.edges.get(fn, ()):
                if edge.kind == "import":
                    add_module(edge.callee)
                elif edge.callee in self.graph.functions:
                    stack.append(edge.callee)
        return modules, sorted(set(reasons))

    # --- event roots and footprints ----------------------------------------

    def event_roots(self) -> Dict[str, Set[str]]:
        return self.graph.event_roots

    def root_footprint(self, root: str) -> Dict[str, List[WriteSite]]:
        """Ledger write sites reachable from one event root."""
        footprint: Dict[str, List[WriteSite]] = {}
        seen: Set[str] = set()
        stack = [root]
        while stack:
            fn = stack.pop()
            if fn in seen:
                continue
            seen.add(fn)
            summary = self.summaries.get(fn)
            if summary is None:
                continue
            for site in summary.writes:
                footprint.setdefault(site.token, []).append(site)
            for edge in summary.edges:
                if edge.kind != "import" and edge.callee in self.summaries:
                    stack.append(edge.callee)
        return footprint

    # --- hot-module derivation ---------------------------------------------

    def hot_modules(self) -> List[str]:
        """Modules on the event-dispatch hot path, derived.

        Hot = reachable over call edges (direct/cha, not refs) from
        ``Engine.run``/``Engine.step`` or from any engine-scheduled
        event root, masked to the inner-loop packages.  Returned as
        ``pkg/file.py`` tails matching ``framework.HOT_MODULES``.
        """
        mask = ("sim", "cpu", "kernel", "mem", "fs", "disk")
        roots = [r for r in (
            "repro.sim.engine:Engine.run", "repro.sim.engine:Engine.step",
        ) if r in self.summaries]
        roots.extend(
            r for r in self.graph.event_roots
            if _top_package(r.split(":")[0]) in mask
        )
        seen: Set[str] = set()
        stack = list(roots)
        while stack:
            fn = stack.pop()
            if fn in seen:
                continue
            seen.add(fn)
            summary = self.summaries.get(fn)
            if summary is None:
                continue
            for edge in summary.edges:
                if edge.calls and edge.callee in self.summaries and \
                        _top_package(edge.callee.split(":")[0]) in mask:
                    stack.append(edge.callee)
        tails: Set[str] = set()
        for fn in seen:
            module = fn.split(":")[0]
            if _top_package(module) not in mask:
                continue
            mi = self.graph.modules.get(module)
            if mi is None or mi.name == "repro":
                continue
            normalized = mi.path.replace("\\", "/")
            if "repro/" in normalized:
                tails.add(normalized.rsplit("repro/", 1)[1])
        return sorted(tails)


def analyze_paths(paths: Iterable[str],
                  root: Optional[str] = None) -> EffectAnalysis:
    """Build an analysis by reading ``.py`` files from disk."""
    from repro.lint.framework import display_path

    sources: List[Tuple[str, str, Optional[ast.Module]]] = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            sources.append((display_path(path, root), handle.read(), None))
    return EffectAnalysis.from_sources(sources)


def analyze_package_dir(package_dir: str) -> EffectAnalysis:
    """Build an analysis from an installed ``repro`` package directory."""
    import os

    sources: List[Tuple[str, str, Optional[ast.Module]]] = []
    for dirpath, dirnames, filenames in os.walk(package_dir):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            full = os.path.join(dirpath, name)
            rel = os.path.relpath(full, os.path.dirname(package_dir))
            with open(full, "r", encoding="utf-8") as fh:
                sources.append((rel.replace(os.sep, "/"), fh.read(), None))
    return EffectAnalysis.from_sources(sources)


def _literal_str_arg(node: ast.Call) -> Optional[str]:
    if node.args and isinstance(node.args[0], ast.Constant) and \
            isinstance(node.args[0].value, str):
        return node.args[0].value
    return None


def _str_expr(expr: ast.AST, mi, modules) -> Optional[str]:
    """A string literal, or a (possibly imported) module-level string
    constant: ``os.environ.get(ENV_ENABLE)`` resolves its key."""
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value
    dotted = _dotted(expr, mi.aliases)
    if not dotted:
        return None
    if "." not in dotted:
        return mi.str_constants.get(dotted)
    mod, _, attr = dotted.rpartition(".")
    owner = modules.get(mod)
    return owner.str_constants.get(attr) if owner is not None else None
