"""The lint baseline: known findings that are intentional, with reasons.

A baseline entry matches findings by (rule, path, fingerprint) — the
fingerprint hashes the offending line's text, so unrelated edits that
shift line numbers do not invalidate entries, while any edit to the
flagged line itself forces the entry to be re-justified.

Each entry carries a ``justification``; ``--write-baseline`` preserves
justifications for surviving entries and stamps new ones with a TODO
so a reviewer can spot them.  Entries whose finding disappeared are
dropped on rewrite (and reported as stale by :func:`diff`).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.finding import Finding

BASELINE_VERSION = 1
TODO_JUSTIFICATION = "TODO: justify this exception"


class BaselineError(ValueError):
    """Raised for unreadable or wrong-shape baseline files."""


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    fingerprint: str
    #: Line recorded when the baseline was written; informational only
    #: (matching goes by fingerprint).
    line: int
    snippet: str
    justification: str = TODO_JUSTIFICATION

    @classmethod
    def from_finding(cls, finding: Finding, justification: str) -> "BaselineEntry":
        return cls(
            rule=finding.rule,
            path=finding.path,
            fingerprint=finding.fingerprint,
            line=finding.line,
            snippet=finding.snippet,
            justification=justification,
        )


@dataclass
class Baseline:
    entries: List[BaselineEntry] = field(default_factory=list)

    def _counts(self) -> Dict[Tuple[str, str, str], int]:
        counts: Dict[Tuple[str, str, str], int] = {}
        for entry in self.entries:
            key = (entry.rule, entry.path, entry.fingerprint)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def diff(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
        """Split findings into (new, baselined) and report stale entries.

        Duplicate findings with the same fingerprint (the same construct
        repeated on identical lines) consume one baseline entry each.
        """
        budget = self._counts()
        new: List[Finding] = []
        baselined: List[Finding] = []
        for finding in findings:
            key = (finding.rule, finding.path, finding.fingerprint)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                baselined.append(finding)
            else:
                new.append(finding)
        stale: List[BaselineEntry] = []
        remaining = dict(budget)
        for entry in self.entries:
            key = (entry.rule, entry.path, entry.fingerprint)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                stale.append(entry)
        return new, baselined, stale

    def justification_for(self, finding: Finding) -> str:
        for entry in self.entries:
            if (
                entry.rule == finding.rule
                and entry.path == finding.path
                and entry.fingerprint == finding.fingerprint
            ):
                return entry.justification
        return TODO_JUSTIFICATION


def load(path: str) -> Baseline:
    if not os.path.exists(path):
        raise BaselineError(f"baseline file not found: {path}")
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from None
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"baseline {path} has unsupported shape/version; expected"
            f' {{"version": {BASELINE_VERSION}, "entries": [...]}}'
        )
    entries = []
    for record in payload.get("entries", []):
        try:
            entries.append(
                BaselineEntry(
                    rule=record["rule"],
                    path=record["path"],
                    fingerprint=record["fingerprint"],
                    line=int(record.get("line", 0)),
                    snippet=record.get("snippet", ""),
                    justification=record.get("justification", TODO_JUSTIFICATION),
                )
            )
        except (KeyError, TypeError) as exc:
            raise BaselineError(f"bad baseline entry {record!r}: {exc}") from None
    return Baseline(entries=entries)


def save(path: str, baseline: Baseline) -> None:
    payload = {
        "version": BASELINE_VERSION,
        "tool": "simlint",
        "entries": [
            {
                "rule": entry.rule,
                "path": entry.path,
                "line": entry.line,
                "fingerprint": entry.fingerprint,
                "snippet": entry.snippet,
                "justification": entry.justification,
            }
            for entry in sorted(
                baseline.entries,
                key=lambda e: (e.path, e.line, e.rule, e.fingerprint),
            )
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")


def from_findings(
    findings: Sequence[Finding], previous: Optional[Baseline] = None
) -> Baseline:
    """Baseline covering ``findings``, keeping prior justifications."""
    previous = previous if previous is not None else Baseline()
    return Baseline(
        entries=[
            BaselineEntry.from_finding(f, previous.justification_for(f))
            for f in findings
        ]
    )
