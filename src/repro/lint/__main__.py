"""``python -m repro.lint`` — shim for ``python -m repro lint``."""

import sys

from repro.lint.cli import main

if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
