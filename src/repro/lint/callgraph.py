"""Project-wide call-graph construction for the effect engine.

The graph is built in two passes over already-parsed ASTs:

1. **Index** (:meth:`CallGraph.index_module`): record every module's
   import aliases, top-level functions, classes (methods, base names,
   callable fields), re-exports, and the literal ``_LAZY_EXPORTS``
   table of :mod:`repro.api`.  Module-level statements become a
   ``<module>`` pseudo-function — that code runs at import time, so it
   participates in taint and closure like any other function.
2. **Resolve** (:meth:`CallGraph.finalize`): walk every function body
   and turn each call or reference into a :class:`CallEdge`:

   * dotted names resolve through import aliases, module re-export
     chains, and the lazy-export table;
   * ``self.x()`` / ``cls.x()`` resolve through the class layout and
     its repro bases;
   * other ``obj.x()`` calls fall back to class-hierarchy analysis —
     one edge per repro class defining ``x`` (boundary packages are
     excluded: simulated code never holds executor/linter objects);
   * a ``Name`` or ``self.method`` merely *referenced* (callback
     argument, engine scheduling, decoration) becomes a ``ref`` edge,
     which closures follow but taint does not.

Anything that cannot be resolved — a call through a parameter, an
unknown local, or a callable field — **widens** the function: closures
containing a widened function are incomplete, and the sweep cache then
falls back to the whole-tree digest.  A call site that is dynamic *by
design* (the engine's event dispatch, the experiment registry, the
worker pool) carries a ``# simlint: dynamic=<tag>`` audit marker: the
marker suppresses widening because the possible targets are connected
to the graph at their registration sites (scheduling a handler,
decorating an experiment, submitting a cell) as ``ref`` edges.
"""

from __future__ import annotations

import ast
import builtins
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.summaries import CallEdge

#: Top-level repro packages whose classes are never held by simulated
#: code; they are excluded from CHA candidate sets so host-side
#: machinery (the executor, the linter itself) cannot leak into
#: simulation closures through common method names (``get``, ``run``).
BOUNDARY_PACKAGES: Tuple[str, ...] = ("lint", "parallel", "bench")

#: Engine scheduling methods: a repro function passed as an argument
#: is an *event root* (it will be invoked by the dispatch loop).
_SCHEDULE_METHODS = ("at", "call_after", "every", "set_sanitizer", "set_idle_probe")

#: Decorators that neither wrap nor capture the decorated function in
#: a way the graph cannot see.
_TRANSPARENT_DECORATORS = {
    "staticmethod", "classmethod", "property", "abstractmethod",
    "dataclass", "dataclasses.dataclass", "abc.abstractmethod",
    "functools.wraps", "functools.lru_cache", "functools.total_ordering",
    "contextlib.contextmanager", "typing.overload", "typing.final",
}

_DYNAMIC_MARKER = "# simlint: dynamic="

MODULE_REF = "<module>"


def module_name_for(display_path: str) -> Optional[str]:
    """Dotted module name from a display path containing ``repro/``."""
    parts = display_path.replace("\\", "/").split("/")
    if "repro" not in parts:
        return None
    parts = parts[parts.index("repro"):]
    if not parts[-1].endswith(".py"):
        return None
    leaf = parts[-1][:-3]
    if leaf == "__init__":
        parts = parts[:-1]
    else:
        parts = parts[:-1] + [leaf]
    return ".".join(parts)


class FunctionInfo:
    """One analyzable function (or ``<module>`` / lambda pseudo-fn)."""

    __slots__ = ("ref", "module", "qualname", "path", "line", "node",
                 "class_name", "body")

    def __init__(self, ref, module, qualname, path, line, node, class_name=None):
        self.ref = ref
        self.module = module
        self.qualname = qualname
        self.path = path
        self.line = line
        self.node = node
        self.class_name = class_name
        #: Statements walked for this function (for ``<module>`` the
        #: top-level code; for defs the def node itself).
        self.body: List[ast.AST] = []


class ClassInfo:
    __slots__ = ("module", "name", "bases", "methods", "callable_fields",
                 "attr_types", "elem_types", "subclasses")

    def __init__(self, module: str, name: str):
        self.module = module
        self.name = name
        #: Base-class dotted names (alias-resolved).
        self.bases: List[str] = []
        #: method name -> function ref
        self.methods: Dict[str, str] = {}
        #: field name -> lambda function ref (class-level lambda) or
        #: None (annotation/assignment says "may hold a callable").
        self.callable_fields: Dict[str, Optional[str]] = {}
        #: instance attr -> dotted class name, from ``self.x = Cls(...)``
        #: and annotated parameters — lets ``self._engine.at(...)``
        #: resolve directly instead of through CHA.
        self.attr_types: Dict[str, str] = {}
        #: container attr -> dotted element class (``events:
        #: List[FaultEvent]``), so loop variables get typed too.
        self.elem_types: Dict[str, str] = {}
        #: direct subclass keys, filled during finalize().
        self.subclasses: List[str] = []


class ModuleInfo:
    __slots__ = ("name", "path", "tree", "aliases", "top_imports",
                 "defs", "classes", "exports", "lazy_exports",
                 "union_aliases", "str_constants", "markers", "suppressed")

    def __init__(self, name: str, path: str, tree: ast.Module):
        self.name = name
        self.path = path
        self.tree = tree
        self.aliases: Dict[str, str] = {}
        #: repro modules imported at module level (closure expansion).
        self.top_imports: Set[str] = set()
        #: top-level function name -> ref
        self.defs: Dict[str, str] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: top-level ``X = <resolvable>`` assignments (re-export style).
        self.exports: Dict[str, str] = {}
        #: ``_LAZY_EXPORTS`` literal: name -> (module, attr)
        self.lazy_exports: Dict[str, Tuple[str, str]] = {}
        #: ``FaultEvent = Union[A, B, ...]`` type aliases: a receiver
        #: annotated with one dispatches over the member classes
        #: instead of falling back to name-based CHA.
        self.union_aliases: Dict[str, Tuple[str, ...]] = {}
        #: module-level ``NAME = "literal"`` string constants, so
        #: ``os.environ.get(ENV_ENABLE)`` resolves its key.
        self.str_constants: Dict[str, str] = {}
        #: line -> dynamic-dispatch audit tag
        self.markers: Dict[int, str] = {}
        #: line -> suppressed rule codes (``# simlint: disable=``)
        self.suppressed: Dict[int, Set[str]] = {}


class CallGraph:
    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}        # "module:Class"
        self.methods_by_name: Dict[str, List[str]] = {}
        self.callable_field_names: Set[str] = set()
        self.edges: Dict[str, List[CallEdge]] = {}
        self.widened: Dict[str, List[str]] = {}
        self.markers_used: Dict[str, List[str]] = {}
        #: event-root function ref -> descriptions of the scheduling sites
        self.event_roots: Dict[str, Set[str]] = {}
        #: refs registered through the experiment registry
        self.registry_targets: Set[str] = set()

    # --- pass 1: indexing --------------------------------------------------

    def index_source(self, display_path: str, source: str,
                     tree: Optional[ast.Module] = None) -> Optional[str]:
        """Index one file; returns its module name (None = not repro)."""
        name = module_name_for(display_path)
        if name is None:
            return None
        if tree is None:
            tree = ast.parse(source, filename=display_path)
        mi = ModuleInfo(name, display_path, tree)
        self.modules[name] = mi
        self._scan_comments(mi, source)
        self._collect_aliases(mi)
        self._index_top_level(mi)
        return name

    def _scan_comments(self, mi: ModuleInfo, source: str) -> None:
        for lineno, line in enumerate(source.splitlines(), start=1):
            at = line.find(_DYNAMIC_MARKER)
            if at >= 0:
                tag = line[at + len(_DYNAMIC_MARKER):].split()[0]
                mi.markers[lineno] = tag
            at = line.find("# simlint: disable=")
            if at >= 0:
                codes = line[at + len("# simlint: disable="):].split()[0]
                mi.suppressed[lineno] = {
                    c.strip() for c in codes.split(",") if c.strip()
                }

    def _collect_aliases(self, mi: ModuleInfo) -> None:
        package = mi.name if self._is_package(mi) else mi.name.rsplit(".", 1)[0]
        for node in ast.walk(mi.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    mi.aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    # Relative import: resolve against this package.
                    anchor = package.split(".")
                    if node.level > 1:
                        anchor = anchor[: len(anchor) - (node.level - 1)]
                    base = ".".join(anchor + ([base] if base else []))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    mi.aliases[local] = f"{base}.{alias.name}" if base else alias.name
        # Top-level repro imports drive the module-closure expansion.
        for node in mi.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "repro":
                        mi.top_imports.add(alias.name)
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    anchor = package.split(".")
                    if node.level > 1:
                        anchor = anchor[: len(anchor) - (node.level - 1)]
                    base = ".".join(anchor + ([base] if base else []))
                if base.split(".")[0] == "repro":
                    mi.top_imports.add(base)

    def _is_package(self, mi: ModuleInfo) -> bool:
        return mi.path.replace("\\", "/").endswith("/__init__.py")

    def _index_top_level(self, mi: ModuleInfo) -> None:
        module_fi = FunctionInfo(
            f"{mi.name}:{MODULE_REF}", mi.name, MODULE_REF, mi.path, 1, None
        )
        self._add_function(module_fi)
        for node in mi.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                ref = f"{mi.name}:{node.name}"
                fi = FunctionInfo(ref, mi.name, node.name, mi.path,
                                  node.lineno, node)
                fi.body = [node]
                self._add_function(fi)
                mi.defs[node.name] = ref
                module_fi.body.extend(node.decorator_list)
            elif isinstance(node, ast.ClassDef):
                self._index_class(mi, node, module_fi)
            else:
                self._index_module_stmt(mi, node, module_fi)

    def _index_module_stmt(self, mi: ModuleInfo, node: ast.stmt,
                           module_fi: FunctionInfo) -> None:
        module_fi.body.append(node)
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                isinstance(node.targets[0], ast.Name):
            name = node.targets[0].id
            if name == "_LAZY_EXPORTS" and isinstance(node.value, ast.Dict):
                self._index_lazy_exports(mi, node.value)
            else:
                if isinstance(node.value, ast.Constant) and \
                        isinstance(node.value.value, str):
                    mi.str_constants[name] = node.value.value
                    return
                members = _union_members_of(node.value, mi.aliases)
                if members:
                    mi.union_aliases[name] = members
                    return
                dotted = _dotted(node.value, mi.aliases)
                if dotted:
                    mi.exports[name] = dotted

    def _index_lazy_exports(self, mi: ModuleInfo, table: ast.Dict) -> None:
        for key, value in zip(table.keys, table.values):
            if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                continue
            if isinstance(value, ast.Tuple) and len(value.elts) == 2 and all(
                isinstance(e, ast.Constant) and isinstance(e.value, str)
                for e in value.elts
            ):
                mi.lazy_exports[key.value] = (
                    value.elts[0].value, value.elts[1].value
                )

    def _index_class(self, mi: ModuleInfo, node: ast.ClassDef,
                     module_fi: FunctionInfo) -> None:
        ci = ClassInfo(mi.name, node.name)
        for base in node.bases:
            dotted = _dotted(base, mi.aliases)
            if dotted:
                ci.bases.append(dotted)
        key = f"{mi.name}:{node.name}"
        self.classes[key] = ci
        mi.exports.setdefault(node.name, f"{mi.name}.{node.name}")
        module_fi.body.extend(node.decorator_list)
        module_fi.body.extend(node.bases)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                ref = f"{mi.name}:{node.name}.{stmt.name}"
                fi = FunctionInfo(ref, mi.name, f"{node.name}.{stmt.name}",
                                  mi.path, stmt.lineno, stmt, node.name)
                fi.body = [stmt]
                self._add_function(fi)
                ci.methods[stmt.name] = ref
                self.methods_by_name.setdefault(stmt.name, []).append(ref)
                module_fi.body.extend(stmt.decorator_list)
                self._scan_attr_types(mi, ci, stmt)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                field = stmt.target.id
                if isinstance(stmt.value, ast.Lambda):
                    ci.callable_fields[field] = self._index_lambda(
                        mi, node.name, field, stmt.value
                    )
                elif _annotation_is_callable(stmt.annotation):
                    ci.callable_fields[field] = None
                else:
                    attr_type, elem_type = _annotation_types(
                        stmt.annotation, mi.aliases)
                    if attr_type:
                        ci.attr_types[field] = attr_type
                    if elem_type:
                        ci.elem_types[field] = elem_type
                    module_fi.body.append(stmt)
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
                    isinstance(stmt.targets[0], ast.Name):
                field = stmt.targets[0].id
                if isinstance(stmt.value, ast.Lambda):
                    ci.callable_fields[field] = self._index_lambda(
                        mi, node.name, field, stmt.value
                    )
                else:
                    module_fi.body.append(stmt)
            else:
                module_fi.body.append(stmt)
        for field in ci.callable_fields:
            self.callable_field_names.add(field)

    def _index_lambda(self, mi: ModuleInfo, cls: str, field: str,
                      node: ast.Lambda) -> str:
        ref = f"{mi.name}:{cls}.{field}"
        fi = FunctionInfo(ref, mi.name, f"{cls}.{field}", mi.path,
                          node.lineno, node, cls)
        fi.body = [node]
        self._add_function(fi)
        return ref

    def _scan_attr_types(self, mi: ModuleInfo, ci: ClassInfo,
                         method: ast.AST) -> None:
        """Record ``self.x = Cls(...)`` / annotated-param attr types."""
        params: Dict[str, str] = {}
        args = method.args
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            if arg.annotation is not None:
                dotted = _dotted(arg.annotation, mi.aliases)
                if dotted:
                    params[arg.arg] = dotted
        for node in ast.walk(method):
            target = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
            elif isinstance(node, ast.AnnAssign):
                target = node.target
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                continue
            value = getattr(node, "value", None)
            if isinstance(node, ast.AnnAssign) and node.annotation is not None:
                attr_type, elem_type = _annotation_types(
                    node.annotation, mi.aliases)
                if elem_type:
                    ci.elem_types.setdefault(target.attr, elem_type)
                if attr_type:
                    ci.attr_types[target.attr] = attr_type
                    continue
            if isinstance(value, ast.Call):
                dotted = _dotted(value.func, mi.aliases)
                if dotted and dotted.rsplit(".", 1)[-1][:1].isupper():
                    # Looks like a constructor; resolved lazily at use,
                    # since the class may be indexed after this module.
                    ci.attr_types.setdefault(target.attr, dotted)
            elif isinstance(value, ast.Name) and value.id in params:
                ci.attr_types[target.attr] = params[value.id]
            elif isinstance(value, ast.Lambda):
                ci.callable_fields.setdefault(target.attr, None)
                self.callable_field_names.add(target.attr)
            elif not _obviously_not_callable(value):
                # Optional hooks default to None and are attached later
                # (``self.on_failed = None``): any call through such a
                # field is dynamic dispatch.
                ci.callable_fields.setdefault(target.attr, None)
                self.callable_field_names.add(target.attr)

    def _add_function(self, fi: FunctionInfo) -> None:
        self.functions[fi.ref] = fi
        self.edges.setdefault(fi.ref, [])
        self.widened.setdefault(fi.ref, [])
        self.markers_used.setdefault(fi.ref, [])

    # --- pass 2: resolution ------------------------------------------------

    def finalize(self) -> None:
        for key in sorted(self.classes):
            ci = self.classes[key]
            owner = self.modules[ci.module]
            for base in ci.bases:
                base_ci = self._resolve_class(owner, base)
                if base_ci is not None:
                    base_ci.subclasses.append(key)
        for ref in sorted(self.functions):
            self._resolve_function(self.functions[ref])
        for ref in self.edges:
            seen: Set[Tuple[str, str, int]] = set()
            unique: List[CallEdge] = []
            for edge in self.edges[ref]:
                key = (edge.callee, edge.kind, edge.line)
                if key not in seen:
                    seen.add(key)
                    unique.append(edge)
            self.edges[ref] = unique

    def _resolve_function(self, fi: FunctionInfo) -> None:
        mi = self.modules[fi.module]
        ci = self.classes.get(f"{fi.module}:{fi.class_name}") \
            if fi.class_name else None
        local_fns, local_unknowns = self._collect_locals(mi, fi)
        # Decorators: applied at import time; an opaque one hides what
        # the name is rebound to, so it widens the decorated function.
        node = fi.node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for dec in node.decorator_list:
                self._resolve_decorator(mi, fi, dec)
        for stmt in fi.body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Call):
                    self._resolve_call(mi, fi, ci, local_fns, local_unknowns, sub)
                elif isinstance(sub, (ast.Import, ast.ImportFrom)):
                    self._resolve_inner_import(mi, fi, sub)
                elif isinstance(sub, (ast.Name, ast.Attribute)) and \
                        isinstance(getattr(sub, "ctx", None), ast.Load):
                    self._resolve_reference(mi, fi, ci, local_fns, sub)

    def _collect_locals(self, mi: ModuleInfo, fi: FunctionInfo):
        """(name -> fn ref/class dotted) and the set of opaque locals."""
        local_fns: Dict[str, Tuple[str, str]] = {}   # name -> ("fn"|"instance", target)
        unknowns: Set[str] = set()

        def bind(name: str) -> None:
            if name not in local_fns:
                unknowns.add(name)

        for stmt in fi.body:
            for sub in ast.walk(stmt):
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                        and sub is not fi.node:
                    # Nested defs merge into this summary; the bound
                    # name is "this function" for resolution purposes.
                    local_fns[sub.name] = ("fn", fi.ref)
                elif isinstance(sub, ast.Lambda):
                    continue
                elif isinstance(sub, ast.Assign) and len(sub.targets) == 1 \
                        and isinstance(sub.targets[0], ast.Name):
                    name = sub.targets[0].id
                    resolved = self._resolve_value(mi, fi, sub.value)
                    if resolved is not None:
                        local_fns[name] = resolved
                    else:
                        bind(name)
                elif isinstance(sub, (ast.Assign, ast.AnnAssign, ast.For,
                                      ast.AsyncFor, ast.withitem,
                                      ast.ExceptHandler, ast.comprehension)):
                    for name in _bound_names(sub):
                        bind(name)
        node = fi.node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            args = node.args
            for arg in (list(args.posonlyargs) + list(args.args)
                        + list(args.kwonlyargs)):
                if arg.arg == "cls" and fi.class_name and \
                        arg.arg not in local_fns and \
                        arg.arg not in unknowns:
                    # ``cls(...)`` in a classmethod constructs this
                    # class (or a subclass — covered by the subclass
                    # scan in _add_constructor_edges' virtual lookup).
                    local_fns[arg.arg] = ("class", fi.class_name)
                    continue
                # An annotated, never-reassigned parameter is typed:
                # ``def _check(event: FaultEvent)`` resolves
                # ``event._validate()`` through the class hierarchy
                # instead of name-based CHA.
                attr_type, _elem = _annotation_types(
                    getattr(arg, "annotation", None), mi.aliases)
                if attr_type and arg.arg not in unknowns and \
                        arg.arg not in local_fns:
                    local_fns[arg.arg] = ("instance", attr_type)
                else:
                    bind(arg.arg)
            if args.vararg:
                bind(args.vararg.arg)
            if args.kwarg:
                bind(args.kwarg.arg)
        # Loop variables over typed containers: ``for e in self.events``
        # with ``events: List[FaultEvent]`` types ``e``.
        ci = self.classes.get(f"{fi.module}:{fi.class_name}") \
            if fi.class_name else None
        if ci is not None:
            for stmt in fi.body:
                for sub in ast.walk(stmt):
                    if not isinstance(sub, (ast.For, ast.AsyncFor,
                                            ast.comprehension)):
                        continue
                    if not (isinstance(sub.target, ast.Name)
                            and isinstance(sub.iter, ast.Attribute)
                            and isinstance(sub.iter.value, ast.Name)
                            and sub.iter.value.id in ("self", "cls")):
                        continue
                    elem = ci.elem_types.get(sub.iter.attr)
                    if elem and sub.target.id in unknowns:
                        local_fns[sub.target.id] = ("instance", elem)
                        unknowns.discard(sub.target.id)
        return local_fns, unknowns

    def _resolve_value(self, mi: ModuleInfo, fi: FunctionInfo,
                       value: ast.AST) -> Optional[Tuple[str, str]]:
        """Resolve a binding RHS to ("fn", ref) or ("instance", dotted)."""
        if isinstance(value, ast.Call):
            dotted = _dotted(value.func, mi.aliases)
            if dotted and self._resolve_class(mi, dotted):
                return ("instance", dotted)
            return None
        dotted = _dotted(value, mi.aliases)
        if dotted:
            kind, target = self.resolve_dotted(mi, dotted)
            if kind == "fn":
                return ("fn", target)
            if kind == "class":
                return ("class", target)
            if kind == "stdlib" or (
                "." not in dotted and dotted in _BUILTIN_NAMES
            ):
                # ``pop = heappop`` / ``pow_ = pow``: calls through the
                # binding are host-library calls, not widening.
                return ("stdlib", dotted)
        if isinstance(value, ast.Attribute):
            # ``home_get = self.partition._home.get``: a hoisted bound
            # method.  Calls through the binding resolve the same way
            # an unknown-receiver ``x.get(...)`` would — CHA by name,
            # assumed host-library when nothing matches.
            return ("method", value.attr)
        return None

    def _resolve_decorator(self, mi: ModuleInfo, fi: FunctionInfo,
                           dec: ast.AST) -> None:
        expr = dec.func if isinstance(dec, ast.Call) else dec
        dotted = _dotted(expr, mi.aliases)
        module_ref = f"{fi.module}:{MODULE_REF}"
        if dotted:
            root = dotted.split(".")[0]
            if dotted in _TRANSPARENT_DECORATORS or \
                    dotted.split(".")[-1] in ("setter", "getter", "deleter"):
                return
            if root == "repro" or self.resolve_dotted(mi, dotted)[0] != "unknown":
                kind, target = self.resolve_dotted(mi, dotted)
                if kind == "fn":
                    self.edges[module_ref].append(CallEdge(
                        module_ref, target, "direct", dec.lineno))
                    # Decoration captures the function at import: the
                    # module's code references it from then on.
                    self.edges[module_ref].append(CallEdge(
                        module_ref, fi.ref, "ref", dec.lineno))
                    if target.endswith(":experiment") or \
                            dotted.split(".")[-1] == "experiment":
                        self.registry_targets.add(fi.ref)
                    return
                if kind in ("class", "module", "stdlib"):
                    return
            if root not in ("repro",) and root in mi.aliases.values() or \
                    dotted.split(".")[0] in _STDLIB_ROOTS:
                return
        self.widened[fi.ref].append(
            f"opaque decorator at {fi.path}:{getattr(dec, 'lineno', fi.line)}"
        )

    def _resolve_inner_import(self, mi: ModuleInfo, fi: FunctionInfo,
                              node: ast.AST) -> None:
        names: List[str] = []
        if isinstance(node, ast.Import):
            names = [a.name for a in node.names]
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            names = [node.module]
        for name in names:
            if name.split(".")[0] == "repro":
                self.edges[fi.ref].append(
                    CallEdge(fi.ref, name, "import", node.lineno)
                )

    def _widen(self, fi: FunctionInfo, mi: ModuleInfo, node: ast.AST,
               reason: str) -> None:
        tag = mi.markers.get(node.lineno)
        if tag is not None:
            self.markers_used[fi.ref].append(tag)
            return
        self.widened[fi.ref].append(
            f"{reason} at {fi.path}:{node.lineno}"
        )

    def _resolve_call(self, mi: ModuleInfo, fi: FunctionInfo,
                      ci: Optional[ClassInfo],
                      local_fns: Dict[str, Tuple[str, str]],
                      local_unknowns: Set[str], node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            self._resolve_name_call(mi, fi, local_fns, local_unknowns, node)
            return
        if isinstance(func, ast.Attribute):
            self._resolve_attr_call(mi, fi, ci, local_fns, local_unknowns,
                                    node)
            return
        # Calling the result of a call / a subscript / a lambda inline.
        self._widen(fi, mi, node, "call of a computed callable")

    def _resolve_name_call(self, mi: ModuleInfo, fi: FunctionInfo,
                           local_fns: Dict[str, Tuple[str, str]],
                           local_unknowns: Set[str], node: ast.Call) -> None:
        name = node.func.id
        if name in local_fns:
            kind, target = local_fns[name]
            if kind == "fn":
                if target != fi.ref:
                    self.edges[fi.ref].append(
                        CallEdge(fi.ref, target, "direct", node.lineno))
            elif kind in ("class", "instance"):
                self._add_constructor_edges(mi, fi, target, node.lineno)
            elif kind == "method":
                candidates = self._cha_candidates(fi, target)
                if candidates:
                    for cand in candidates:
                        self.edges[fi.ref].append(
                            CallEdge(fi.ref, cand, "cha", node.lineno))
                elif target in self.callable_field_names:
                    self._widen(fi, mi, node,
                                "call through hoisted bound method "
                                f"{target!r}")
                # else: assumed stdlib/container bound method.
            # "stdlib" bindings are host-library calls: no edge.
            return
        if name in local_unknowns:
            self._widen(fi, mi, node,
                        f"call through local/parameter {name!r}")
            return
        dotted = mi.aliases.get(name, name)
        kind, target = self.resolve_dotted(mi, dotted)
        if kind == "fn":
            self.edges[fi.ref].append(
                CallEdge(fi.ref, target, "direct", node.lineno))
        elif kind == "class":
            self._add_constructor_edges(mi, fi, target, node.lineno)
        elif kind in ("module", "stdlib"):
            return
        elif name in _BUILTIN_NAMES:
            return
        else:
            self._widen(fi, mi, node, f"call of unresolvable name {name!r}")

    def _resolve_attr_call(self, mi: ModuleInfo, fi: FunctionInfo,
                           ci: Optional[ClassInfo],
                           local_fns: Dict[str, Tuple[str, str]],
                           local_unknowns: Set[str],
                           node: ast.Call) -> None:
        func = node.func
        attr = func.attr
        receiver = func.value
        # A local binding shadows any same-named module: ``sched =
        # self._sched(); sched.find_cpu_for(...)`` must not resolve
        # through the stdlib ``sched`` module.
        receiver_is_local = isinstance(receiver, ast.Name) and (
            receiver.id in local_unknowns or receiver.id in local_fns)
        # self.x() / cls.x(): the class layout answers precisely.
        if isinstance(receiver, ast.Name) and receiver.id in ("self", "cls") \
                and ci is not None:
            targets = self._virtual_targets(mi, ci, attr)
            if targets:
                for target in targets:
                    self.edges[fi.ref].append(
                        CallEdge(fi.ref, target, "direct", node.lineno))
                return
            hint = ci.attr_types.get(attr)
            if hint is None and attr in ci.callable_fields:
                lam = ci.callable_fields[attr]
                if lam is not None:
                    self.edges[fi.ref].append(
                        CallEdge(fi.ref, lam, "direct", node.lineno))
                    return
                self._widen(fi, mi, node,
                            f"dynamic call through callable field {attr!r}")
                return
        # Typed receiver: a local bound to an instance, or a typed
        # instance attribute (``self._engine.at(...)``).
        recv_class = self._receiver_class(mi, ci, local_fns, receiver)
        if recv_class is not None:
            recv_ci = self._resolve_class(mi, recv_class)
            if recv_ci is not None:
                targets = self._virtual_targets(mi, recv_ci, attr)
                if _is_protocol(recv_ci):
                    # A Protocol type is structural: any class with the
                    # method may be bound, so fan out over the
                    # hierarchy by name as well as the stub.
                    for cand in self._cha_candidates(fi, attr):
                        if cand not in targets:
                            targets.append(cand)
                if targets:
                    for target in targets:
                        self.edges[fi.ref].append(
                            CallEdge(fi.ref, target, "direct", node.lineno))
                    self._check_schedule_site(mi, fi, local_fns, ci, node, attr)
                    return
            else:
                # ``event: FaultEvent`` where FaultEvent is a Union
                # alias: dispatch over the member classes.
                targets = self._union_targets(mi, recv_class, attr)
                if targets:
                    for target in targets:
                        self.edges[fi.ref].append(
                            CallEdge(fi.ref, target, "direct", node.lineno))
                    return
        dotted = None if receiver_is_local else _dotted(func, mi.aliases)
        if dotted:
            kind, target = self.resolve_dotted(mi, dotted)
            if kind == "fn":
                self.edges[fi.ref].append(
                    CallEdge(fi.ref, target, "direct", node.lineno))
                return
            if kind == "class":
                self._add_constructor_edges(mi, fi, target, node.lineno)
                return
            if kind in ("module", "stdlib"):
                return
            recv_dotted = _dotted(receiver, mi.aliases)
            if recv_dotted:
                rkind, rtarget = self.resolve_dotted(mi, recv_dotted)
                if rkind == "module" and rtarget in self.modules:
                    # The receiver IS a repro module but the attribute
                    # did not resolve (e.g. a lazy-export name missing
                    # from the table): never assume it is harmless.
                    self._widen(fi, mi, node,
                                f"unresolvable attribute {attr!r} on "
                                f"module {rtarget}")
                    return
        if receiver_is_local and \
                local_fns.get(getattr(receiver, "id", ""), ("", ""))[0] \
                == "stdlib":
            return
        # Unknown receiver: CHA by method name, boundary-filtered.
        candidates = self._cha_candidates(fi, attr)
        if candidates:
            for target in candidates:
                self.edges[fi.ref].append(
                    CallEdge(fi.ref, target, "cha", node.lineno))
            self._check_schedule_site(mi, fi, local_fns, ci, node, attr)
            return
        if attr in self.callable_field_names:
            self._widen(fi, mi, node,
                        f"dynamic call through callable field {attr!r}")
            return
        # Assumed stdlib/object method (str.split, dict.items, ...).

    def _receiver_class(self, mi: ModuleInfo, ci: Optional[ClassInfo],
                        local_fns: Dict[str, Tuple[str, str]],
                        receiver: ast.AST) -> Optional[str]:
        """Dotted class of a typed receiver expression, if known."""
        if isinstance(receiver, ast.Name):
            bound = local_fns.get(receiver.id)
            if bound is not None and bound[0] in ("instance", "class"):
                return bound[1]
            return None
        if isinstance(receiver, ast.Attribute) and \
                isinstance(receiver.value, ast.Name) and \
                receiver.value.id in ("self", "cls") and ci is not None:
            return ci.attr_types.get(receiver.attr)
        return None

    def _check_schedule_site(self, mi: ModuleInfo, fi: FunctionInfo,
                             local_fns, ci: Optional[ClassInfo],
                             node: ast.Call, attr: str) -> None:
        """Engine scheduling: the fn argument becomes an event root."""
        if attr not in _SCHEDULE_METHODS:
            return
        # Only the fn slot matters: ``at(time, fn, *args)``,
        # ``call_after(delay, fn, *args)``, ``every(period, fn, ...)``
        # take it second; the setters take it first.  Trailing
        # positional arguments are data, not callables.
        slot = 0 if attr.startswith("set_") else 1
        expr = None
        for kw in node.keywords:
            if kw.arg == "fn":
                expr = kw.value
        if expr is None and len(node.args) > slot:
            expr = node.args[slot]
        if expr is None or isinstance(expr, ast.Lambda) or \
                _obviously_not_callable(expr):
            return
        target = self._resolve_callable_expr(mi, fi, ci, local_fns, expr)
        if target is not None:
            site = f"{attr}@{fi.path}:{node.lineno}"
            self.event_roots.setdefault(target, set()).add(site)
        elif isinstance(expr, ast.Constant) and expr.value is None:
            return
        else:
            self._widen(fi, mi, node,
                        f"scheduling an unresolvable callable via .{attr}()")

    def _resolve_callable_expr(self, mi: ModuleInfo, fi: FunctionInfo,
                               ci: Optional[ClassInfo], local_fns,
                               expr: ast.AST) -> Optional[str]:
        if isinstance(expr, ast.Name):
            bound = local_fns.get(expr.id)
            if bound and bound[0] == "fn":
                return bound[1]
            kind, target = self.resolve_dotted(
                mi, mi.aliases.get(expr.id, expr.id))
            if kind == "fn":
                return target
            return None
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name) \
                and expr.value.id in ("self", "cls") and ci is not None:
            return self._lookup_method(mi, ci, expr.attr)
        if isinstance(expr, ast.Attribute):
            dotted = _dotted(expr, mi.aliases)
            if dotted:
                kind, target = self.resolve_dotted(mi, dotted)
                if kind == "fn":
                    return target
        return None

    def _resolve_reference(self, mi: ModuleInfo, fi: FunctionInfo,
                           ci: Optional[ClassInfo], local_fns,
                           node: ast.AST) -> None:
        """Load-context mentions of repro functions become ref edges."""
        if isinstance(node, ast.Name):
            bound = local_fns.get(node.id)
            if bound is not None:
                if bound[0] == "fn" and bound[1] != fi.ref:
                    self.edges[fi.ref].append(
                        CallEdge(fi.ref, bound[1], "ref", node.lineno))
                return
            if node.id in _BUILTIN_NAMES:
                return
            dotted = mi.aliases.get(node.id, node.id)
            kind, target = self.resolve_dotted(mi, dotted)
            if kind == "fn":
                self.edges[fi.ref].append(
                    CallEdge(fi.ref, target, "ref", node.lineno))
            return
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and \
                    node.value.id in ("self", "cls") and ci is not None:
                target = self._lookup_method(mi, ci, node.attr)
                if target is not None:
                    self.edges[fi.ref].append(
                        CallEdge(fi.ref, target, "ref", node.lineno))
                return
            dotted = _dotted(node, mi.aliases)
            if dotted and dotted.split(".")[0] == "repro":
                kind, target = self.resolve_dotted(mi, dotted)
                if kind == "fn":
                    self.edges[fi.ref].append(
                        CallEdge(fi.ref, target, "ref", node.lineno))

    # --- lookup helpers ----------------------------------------------------

    def _add_constructor_edges(self, mi: ModuleInfo, fi: FunctionInfo,
                               class_dotted_or_key: str, line: int) -> None:
        ci = self._class_info(mi, class_dotted_or_key)
        if ci is None:
            return
        self.edges[fi.ref].append(CallEdge(
            fi.ref, f"{ci.module}:{MODULE_REF}", "ref", line))
        for name in ("__init__", "__post_init__", "__new__"):
            target = self._lookup_method_info(mi, ci, name)
            if target is not None:
                self.edges[fi.ref].append(
                    CallEdge(fi.ref, target, "direct", line))

    def _class_info(self, mi: ModuleInfo, key: str) -> Optional[ClassInfo]:
        if key in self.classes:
            return self.classes[key]
        resolved = self._resolve_class(mi, key)
        return resolved

    def _resolve_class(self, mi: ModuleInfo, dotted: str) -> Optional[ClassInfo]:
        kind, target = self.resolve_dotted(mi, dotted)
        if kind == "class":
            return self.classes.get(target)
        return None

    def _lookup_method(self, mi: ModuleInfo, ci: ClassInfo,
                       name: str) -> Optional[str]:
        return self._lookup_method_info(mi, ci, name)

    def _virtual_targets(self, mi: ModuleInfo, ci: ClassInfo,
                         name: str) -> List[str]:
        """The inherited implementation plus every subclass override —
        a typed receiver may hold any subclass instance."""
        out: List[str] = []
        inherited = self._lookup_method_info(mi, ci, name)
        if inherited is not None:
            out.append(inherited)
        stack = list(ci.subclasses)
        seen: Set[str] = set()
        while stack:
            key = stack.pop()
            if key in seen:
                continue
            seen.add(key)
            sub = self.classes[key]
            override = sub.methods.get(name) or sub.callable_fields.get(name)
            if override and override not in out:
                out.append(override)
            stack.extend(sub.subclasses)
        return out

    def _union_targets(self, mi: ModuleInfo, dotted: str,
                       name: str) -> Optional[List[str]]:
        """Virtual targets of ``name`` over a Union type alias.

        Returns targets only when *every* member class resolves and
        provides the method — otherwise the caller falls back to CHA
        (the conservative direction).
        """
        if "." in dotted:
            mod, _, alias = dotted.rpartition(".")
            owner = self.modules.get(mod)
        else:
            owner, alias = mi, dotted
        if owner is None:
            return None
        members = owner.union_aliases.get(alias)
        if not members:
            return None
        out: List[str] = []
        for member in members:
            member_ci = self._resolve_class(owner, member)
            if member_ci is None:
                return None
            targets = self._virtual_targets(owner, member_ci, name)
            if not targets:
                return None
            for target in targets:
                if target not in out:
                    out.append(target)
        return out

    def _lookup_method_on(self, mi: ModuleInfo, class_dotted: str,
                          name: str) -> Optional[str]:
        ci = self._resolve_class(mi, class_dotted)
        if ci is None:
            return None
        return self._lookup_method_info(mi, ci, name)

    def _lookup_method_info(self, mi: ModuleInfo, ci: ClassInfo,
                            name: str, depth: int = 0) -> Optional[str]:
        if name in ci.methods:
            return ci.methods[name]
        lam = ci.callable_fields.get(name)
        if lam is not None:
            return lam
        if depth >= 6:
            return None
        owner = self.modules.get(ci.module, mi)
        for base in ci.bases:
            base_ci = self._resolve_class(owner, base)
            if base_ci is not None:
                found = self._lookup_method_info(owner, base_ci, name, depth + 1)
                if found is not None:
                    return found
        return None

    def _cha_candidates(self, fi: FunctionInfo, name: str) -> List[str]:
        caller_pkg = _top_package(fi.module)
        out: List[str] = []
        for ref in self.methods_by_name.get(name, []):
            pkg = _top_package(self.functions[ref].module)
            if pkg in BOUNDARY_PACKAGES and pkg != caller_pkg:
                continue
            out.append(ref)
        return out

    def resolve_dotted(self, mi: ModuleInfo, dotted: str,
                       depth: int = 0) -> Tuple[str, Optional[str]]:
        """('fn'|'class'|'module'|'stdlib'|'unknown', target)."""
        if depth > 8:
            return ("unknown", None)
        parts = dotted.split(".")
        if parts[0] != "repro":
            # A bare (or dotted) name defined in this very module:
            # top-level functions, classes, and re-export assignments.
            head = parts[0]
            if head in mi.defs or head in mi.exports or \
                    head in mi.lazy_exports or \
                    f"{mi.name}:{head}" in self.classes:
                resolved = self._resolve_in_module(mi, parts[:2], depth)
                if resolved[0] != "unknown":
                    return resolved
        if parts[0] != "repro":
            if parts[0] == mi.name.split(".")[-1] and len(parts) > 1:
                # ``module.attr`` spelled with the short module name.
                return self.resolve_dotted(
                    mi, ".".join([mi.name] + parts[1:]), depth + 1)
            return ("stdlib", None) if parts[0] in _STDLIB_ROOTS or \
                parts[0] in mi.aliases.values() else ("unknown", None)
        # Longest known-module prefix.
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            owner = self.modules.get(prefix)
            if owner is None:
                continue
            rest = parts[cut:]
            if not rest:
                return ("module", prefix)
            return self._resolve_in_module(owner, rest, depth)
        return ("unknown", None)

    def _resolve_in_module(self, owner: ModuleInfo, rest: List[str],
                           depth: int) -> Tuple[str, Optional[str]]:
        head = rest[0]
        if len(rest) == 1:
            if head in owner.defs:
                return ("fn", owner.defs[head])
            if f"{owner.name}:{head}" in self.classes:
                return ("class", f"{owner.name}:{head}")
            if head in owner.lazy_exports:
                target_mod, target_attr = owner.lazy_exports[head]
                return self.resolve_dotted(
                    owner, f"{target_mod}.{target_attr}", depth + 1)
            if head in owner.aliases:
                return self.resolve_dotted(owner, owner.aliases[head], depth + 1)
            if head in owner.exports:
                return self.resolve_dotted(owner, owner.exports[head], depth + 1)
            return ("unknown", None)
        if len(rest) == 2 and f"{owner.name}:{head}" in self.classes:
            ci = self.classes[f"{owner.name}:{head}"]
            found = self._lookup_method_info(owner, ci, rest[1])
            if found is not None:
                return ("fn", found)
            return ("unknown", None)
        if head in owner.aliases:
            return self.resolve_dotted(
                owner, ".".join([owner.aliases[head]] + rest[1:]), depth + 1)
        return ("unknown", None)


# --- small shared helpers ----------------------------------------------------


def _dotted(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, alias-resolved at the root."""
    # Unwrap Optional[X]-style subscripts in annotations.
    if isinstance(node, ast.Subscript):
        node = node.value
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(aliases.get(node.id, node.id))
    return ".".join(reversed(parts))


#: Typing containers whose subscript names the element type.
_ELEM_CONTAINERS = {"List", "Sequence", "Iterable", "Iterator", "Set",
                    "FrozenSet", "Tuple", "Deque", "list", "set",
                    "frozenset", "tuple", "deque"}


def _annotation_types(annotation: Optional[ast.AST],
                      aliases: Dict[str, str]):
    """(attr class dotted, container element dotted) from an annotation.

    ``Engine`` -> ("Engine", None); ``Optional[Engine]`` -> ("Engine",
    None); ``List[FaultEvent]`` -> (None, "FaultEvent"); anything else
    -> (None, None).  Names are returned unresolved — the class may be
    indexed later; lookups resolve them lazily.
    """
    if annotation is None:
        return (None, None)
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return (None, None)
    if isinstance(annotation, ast.Subscript):
        outer = _dotted(annotation.value, aliases) or ""
        tail = outer.rsplit(".", 1)[-1]
        inner = annotation.slice
        if tail == "Optional":
            return _annotation_types(inner, aliases)
        if tail in _ELEM_CONTAINERS:
            if isinstance(inner, ast.Tuple) and inner.elts:
                inner = inner.elts[0]
            elem = _dotted(inner, aliases)
            if elem and elem.rsplit(".", 1)[-1][:1].isupper():
                return (None, elem)
        return (None, None)
    dotted = _dotted(annotation, aliases)
    if dotted and dotted.rsplit(".", 1)[-1][:1].isupper():
        return (dotted, None)
    return (None, None)


def _is_protocol(ci: ClassInfo) -> bool:
    return any(base.rsplit(".", 1)[-1] == "Protocol" for base in ci.bases)


def _union_members_of(value: ast.AST,
                      aliases: Dict[str, str]) -> Tuple[str, ...]:
    """Member class names of ``Union[A, B, ...]`` / ``A | B`` RHS."""
    if isinstance(value, ast.Subscript):
        outer = _dotted(value.value, aliases) or ""
        if outer.rsplit(".", 1)[-1] != "Union":
            return ()
        inner = value.slice
        elts = inner.elts if isinstance(inner, ast.Tuple) else [inner]
    elif isinstance(value, ast.BinOp) and isinstance(value.op, ast.BitOr):
        elts = []
        stack = [value]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
                stack.extend([node.left, node.right])
            else:
                elts.append(node)
    else:
        return ()
    members = []
    for elt in elts:
        dotted = _dotted(elt, aliases)
        if not dotted or not dotted.rsplit(".", 1)[-1][:1].isupper():
            return ()
        members.append(dotted)
    return tuple(members)


def _annotation_is_callable(annotation: Optional[ast.AST]) -> bool:
    if annotation is None:
        return False
    try:
        text = ast.unparse(annotation)
    except Exception:  # pragma: no cover - malformed annotation
        return False
    return "Callable" in text


def _obviously_not_callable(value: Optional[ast.AST]) -> bool:
    if value is None:
        return False
    if isinstance(value, ast.Constant):
        return value.value is not None
    if isinstance(value, (ast.List, ast.Dict, ast.Tuple, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp, ast.GeneratorExp,
                          ast.JoinedStr, ast.Compare, ast.BoolOp)):
        return True
    if isinstance(value, ast.UnaryOp):
        return _obviously_not_callable(value.operand)
    if isinstance(value, ast.BinOp):
        return True
    return False


def _bound_names(node: ast.AST):
    targets: List[ast.AST] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, ast.AnnAssign):
        targets = [node.target]
    elif isinstance(node, (ast.For, ast.AsyncFor)):
        targets = [node.target]
    elif isinstance(node, ast.withitem):
        targets = [node.optional_vars] if node.optional_vars else []
    elif isinstance(node, ast.ExceptHandler):
        return [node.name] if node.name else []
    elif isinstance(node, ast.comprehension):
        targets = [node.target]
    names: List[str] = []
    for target in targets:
        for sub in ast.walk(target):
            if isinstance(sub, ast.Name):
                names.append(sub.id)
    return names


def _top_package(module: str) -> str:
    parts = module.split(".")
    return parts[1] if len(parts) > 1 else parts[0]


#: Import roots assumed to be the standard library (or vendored tools
#: whose behaviour is host-side anyway).
_STDLIB_ROOTS = {
    "abc", "argparse", "array", "ast", "base64", "binascii", "bisect",
    "builtins", "collections", "contextlib", "copy", "copyreg", "csv",
    "dataclasses", "datetime", "decimal", "difflib", "enum", "errno",
    "fnmatch", "fractions", "functools", "gc", "glob", "hashlib",
    "heapq", "importlib", "inspect", "io", "itertools", "json",
    "logging", "math", "mmap", "multiprocessing", "numbers",
    "operator", "os", "pathlib", "pickle", "platform", "pprint",
    "queue", "random", "re", "secrets", "select", "selectors",
    "shutil", "signal", "socket", "stat", "statistics", "string",
    "struct", "subprocess", "sys", "tempfile", "textwrap",
    "threading", "time", "traceback", "types", "typing", "unittest",
    "urllib", "uuid", "warnings", "weakref", "zlib",
}
# Newer interpreters can enumerate the rest exactly.
_STDLIB_ROOTS |= set(getattr(__import__("sys"), "stdlib_module_names", ()))

_BUILTIN_NAMES = frozenset(dir(builtins))
