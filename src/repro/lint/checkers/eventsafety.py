"""SL2xx — the event-safety checker.

The SPU ledgers (entitled/allowed/used, paper §2.3) keep their
invariants only because every mutation funnels through the accounting
API (``ResourceLevels.acquire``/``release``/``set_*``), and replays are
byte-identical only because every ordering decision carries an explicit
deterministic tie-break.  These rules keep both properties local:

* SL201 — direct writes to ledger fields outside the accounting API
* SL202 — heap entries without a sequence tie-break between the sort
  key and the payload
* SL203 — sort/min/max keys with no tie-break component (equal keys
  fall back to memory layout or arrival order, both fragile)
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.finding import Finding, Rule
from repro.lint.framework import Checker, FileContext, register

SL201 = Rule(
    "SL201", "direct-ledger-write",
    "SPU accounting fields must change through the ResourceLevels API "
    "(acquire/release/set_entitled/set_allowed)",
    severity="error",
)
SL202 = Rule(
    "SL202", "heap-entry-tiebreak",
    "heap entries need (key, seq, payload): without a unique integer "
    "between key and payload, equal keys compare the payloads",
    severity="error",
)
SL203 = Rule(
    "SL203", "sort-key-tiebreak",
    "sort keys need a deterministic tie-break; add a stable secondary "
    "component (spu_id, pid, name, ...)",
    severity="warning",
)

#: The ledger triple; writes anywhere but the accounting module are
#: SL201.  ``used`` on ``self`` is exempt so unrelated classes may have
#: a ``used`` field of their own (e.g. the buffer cache's page count).
_LEDGER_FIELDS = ("entitled", "allowed", "used")

#: Files allowed to assign the ledger fields (the accounting API).
_ACCOUNTING_MODULES = ("core/resources.py",)

#: Terminal attribute names that identify an entity uniquely, making a
#: single-component sort key tie-free by construction.
_UNIQUE_SUFFIXES = ("_id", "_seq", "_key")
_UNIQUE_NAMES = ("pid", "seq", "key", "name", "spu", "cpu")


@register
class EventSafetyChecker(Checker):
    RULES = (SL201, SL202, SL203)
    SCOPE = None  # ledger writes and orderings matter everywhere

    def check(self, ctx: FileContext) -> Iterator[Optional[Finding]]:
        in_accounting = "/".join(ctx.module_parts()) in _ACCOUNTING_MODULES
        for node in ast.walk(ctx.tree):
            if not in_accounting and isinstance(node, (ast.Assign, ast.AugAssign)):
                yield from self._check_ledger_write(ctx, node)
            elif isinstance(node, ast.Call):
                yield from self._check_heappush(ctx, node)
                yield from self._check_sort_key(ctx, node)

    # --- SL201 -------------------------------------------------------------

    def _check_ledger_write(
        self, ctx: FileContext, node: ast.AST
    ) -> Iterator[Optional[Finding]]:
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if not isinstance(target, ast.Attribute):
                continue
            if target.attr not in _LEDGER_FIELDS:
                continue
            if target.attr == "used" and (
                isinstance(target.value, ast.Name) and target.value.id == "self"
            ):
                # A class's own `used` attribute (buffer cache, pools)
                # is not the SPU ledger.
                continue
            yield ctx.finding(
                SL201, node,
                f"direct write to .{target.attr} bypasses the accounting "
                "API and its invariant checks (entitled <= allowed, "
                "0 <= used <= allowed)",
            )

    # --- SL202 -------------------------------------------------------------

    def _check_heappush(
        self, ctx: FileContext, node: ast.Call
    ) -> Iterator[Optional[Finding]]:
        dotted = ctx.dotted_name(node.func) or ""
        if dotted.rsplit(".", 1)[-1] != "heappush" or len(node.args) != 2:
            return
        entry = node.args[1]
        if not isinstance(entry, ast.Tuple):
            yield ctx.finding(
                SL202, node,
                "heappush of a bare object relies on its __lt__ for "
                "ordering; push a (key, seq, payload) tuple instead",
            )
            return
        if len(entry.elts) < 3:
            yield ctx.finding(
                SL202, node,
                f"heap entry has {len(entry.elts)} element(s); same-key "
                "entries need an explicit integer sequence tie-break "
                "before the payload",
            )

    # --- SL203 -------------------------------------------------------------

    def _check_sort_key(
        self, ctx: FileContext, node: ast.Call
    ) -> Iterator[Optional[Finding]]:
        dotted = ctx.dotted_name(node.func) or ""
        tail = dotted.rsplit(".", 1)[-1]
        if tail not in ("sorted", "sort", "min", "max"):
            return
        key = next((kw.value for kw in node.keywords if kw.arg == "key"), None)
        if key is None or not isinstance(key, ast.Lambda):
            return
        if self._tie_safe(key.body):
            return
        yield ctx.finding(
            SL203, node,
            f"{tail}() key has no tie-break: equal keys fall back to "
            "list order (stable but fragile) or object comparison; make "
            "the key a tuple ending in a unique stable field",
        )

    def _tie_safe(self, body: ast.AST) -> bool:
        """Whether a key-lambda body is deterministic under key ties."""
        # A tuple with >= 2 components: assume the author added the
        # tie-break deliberately.
        if isinstance(body, ast.Tuple) and len(body.elts) >= 2:
            return True
        # A single component that is itself unique (request_id, pid, ...)
        # cannot tie at all.
        terminal = self._terminal_name(body)
        if terminal is None:
            return False
        lowered = terminal.lower()
        return lowered in _UNIQUE_NAMES or lowered.endswith(_UNIQUE_SUFFIXES)

    def _terminal_name(self, node: ast.AST) -> Optional[str]:
        """The attribute/name a single-component key ultimately reads."""
        while isinstance(node, ast.UnaryOp):
            node = node.operand
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Name):
            return node.id
        return None
