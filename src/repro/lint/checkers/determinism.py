"""SL1xx — the nondeterminism detector.

Everything the simulator computes must be a pure function of the
machine configuration and the engine seed (INTERNALS §1, §12).  These
rules ban the ways wall-clock time, process entropy, and memory-address
identity leak into simulated behaviour:

* SL101 — wall-clock reads (``time.time``, ``datetime.now``, …)
* SL102 — unseeded module-level randomness (``random.random``,
  ``os.urandom``, ``uuid.uuid4``, ``secrets``)
* SL103 — ``random.Random()`` constructed without a seed
* SL104 — environment-dependent behaviour (``os.environ`` /
  ``os.getenv``) inside the simulated world
* SL105 — iteration over a set/frozenset (hash order) without
  ``sorted()``
* SL106 — ``id()`` (an address, different every run) feeding sort
  keys, dict keys, or heap entries
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.finding import Finding, Rule
from repro.lint.framework import Checker, FileContext, SIM_SCOPE, register

SL101 = Rule(
    "SL101", "wall-clock-read",
    "wall-clock time leaks host state into the simulation; use Engine.now",
    severity="error", scope=SIM_SCOPE,
)
SL102 = Rule(
    "SL102", "unseeded-randomness",
    "module-level randomness is seeded from process entropy; draw from "
    "Engine.rng or a fork_rng() stream",
    severity="error", scope=SIM_SCOPE,
)
SL103 = Rule(
    "SL103", "unseeded-random-instance",
    "random.Random() without a seed draws from process entropy; pass a "
    "seed or an engine-forked stream",
    severity="error", scope=SIM_SCOPE,
)
SL104 = Rule(
    "SL104", "env-dependent-branch",
    "environment variables vary between hosts and runs; thread "
    "configuration through MachineConfig instead",
    severity="error", scope=SIM_SCOPE,
)
SL105 = Rule(
    "SL105", "set-iteration-order",
    "set iteration order depends on hashes; wrap the iterable in sorted()",
    severity="warning", scope=SIM_SCOPE,
)
SL106 = Rule(
    "SL106", "identity-as-key",
    "id() is a memory address, different every run; key on a stable "
    "field (disk_id, pid, request_id, ...)",
    severity="error", scope=SIM_SCOPE,
)

#: Dotted call targets that read the host's clock.
_WALL_CLOCK = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
}

#: Module-level RNG draws (the functions on the hidden global Random).
_GLOBAL_RANDOM = {
    "random.random", "random.randrange", "random.randint", "random.choice",
    "random.choices", "random.shuffle", "random.sample", "random.uniform",
    "random.gauss", "random.expovariate", "random.betavariate",
    "random.seed", "random.getrandbits", "random.triangular",
    "random.lognormvariate", "random.normalvariate", "random.vonmisesvariate",
    "random.paretovariate", "random.weibullvariate",
    "os.urandom", "uuid.uuid1", "uuid.uuid4",
}

_ENV_READS = {"os.getenv", "os.environ.get", "os.environ"}


@register
class DeterminismChecker(Checker):
    RULES = (SL101, SL102, SL103, SL104, SL105, SL106)
    SCOPE = SIM_SCOPE

    def check(self, ctx: FileContext) -> Iterator[Optional[Finding]]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, (ast.Attribute, ast.Subscript)):
                yield from self._check_env_access(ctx, node)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_iteration(ctx, node.iter)
            elif isinstance(node, ast.comprehension):
                yield from self._check_iteration(ctx, node.iter)

    # --- calls -------------------------------------------------------------

    def _check_call(
        self, ctx: FileContext, node: ast.Call
    ) -> Iterator[Optional[Finding]]:
        dotted = ctx.dotted_name(node.func)
        if dotted is None:
            return
        if dotted in _WALL_CLOCK:
            yield ctx.finding(
                SL101, node,
                f"call to {dotted}() reads the wall clock; simulated "
                "components must use Engine.now",
            )
        elif dotted in _GLOBAL_RANDOM or dotted.startswith("secrets."):
            yield ctx.finding(
                SL102, node,
                f"call to {dotted}() uses process entropy; draw from the "
                "engine's seeded RNG (Engine.rng / Engine.fork_rng)",
            )
        elif dotted == "random.Random" and not node.args and not node.keywords:
            yield ctx.finding(
                SL103, node,
                "random.Random() without a seed is nondeterministic; pass "
                "a seed derived from the engine seed",
            )
        elif dotted in ("os.getenv", "os.environ.get"):
            yield ctx.finding(
                SL104, node,
                f"{dotted}() makes simulated behaviour depend on the host "
                "environment",
            )
        elif dotted == "id":
            yield from self._check_id_use(ctx, node)

    def _check_env_access(
        self, ctx: FileContext, node: ast.AST
    ) -> Iterator[Optional[Finding]]:
        # os.environ[...] or bare os.environ attribute reads.
        target = node.value if isinstance(node, ast.Subscript) else node
        dotted = ctx.dotted_name(target)
        if dotted != "os.environ":
            return
        # Subscripts and os.environ.get() report through their own
        # branches; don't double-report the inner attribute node.
        parent = ctx.parent(node)
        if isinstance(node, ast.Attribute) and isinstance(
            parent, (ast.Attribute, ast.Subscript)
        ):
            return
        if isinstance(parent, ast.Call) and parent.func is node:
            return
        yield ctx.finding(
            SL104, node,
            "os.environ read makes simulated behaviour depend on the host "
            "environment",
        )

    # --- set iteration ------------------------------------------------------

    def _is_set_expr(self, ctx: FileContext, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            dotted = ctx.dotted_name(node.func)
            return dotted in ("set", "frozenset")
        return False

    def _check_iteration(
        self, ctx: FileContext, iterable: ast.AST
    ) -> Iterator[Optional[Finding]]:
        if self._is_set_expr(ctx, iterable):
            yield ctx.finding(
                SL105, iterable,
                "iterating a set: element order follows hash layout, not "
                "program order; wrap in sorted()",
            )

    # --- id() --------------------------------------------------------------

    def _check_id_use(
        self, ctx: FileContext, node: ast.Call
    ) -> Iterator[Optional[Finding]]:
        context = self._id_context(ctx, node)
        if context is None:
            return
        yield ctx.finding(
            SL106, node,
            f"id() used as a {context}: addresses differ between runs, so "
            "any order derived from them is unstable",
        )

    def _id_context(self, ctx: FileContext, node: ast.Call) -> Optional[str]:
        """Where the id() value flows; None for harmless uses (repr)."""
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, ast.Subscript):
                return "dict/sequence key"
            if isinstance(ancestor, ast.Lambda):
                # Typically key=lambda x: id(x) in a sort.
                return "sort key"
            if isinstance(ancestor, ast.Call):
                dotted = ctx.dotted_name(ancestor.func) or ""
                if dotted.endswith("heappush"):
                    return "heap entry"
                if dotted.endswith(("setdefault", "sorted", "sort", "min", "max")):
                    return "ordering or mapping key"
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if ancestor.name == "__repr__":
                    return None
        # Bare id() in other positions (comparisons, storage) is still
        # address-dependent state.
        return "value"
