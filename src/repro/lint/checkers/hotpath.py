"""SL4xx — hot-path lint for the modules PR 3 optimised.

The dispatch loop, the scheduler pick path, and the page-grant path
were hand-tuned (tuple heap entries, ``__slots__``, inlined checks);
these rules keep later edits from quietly regressing them:

* SL401 — a class in a hot module without ``__slots__`` (every
  instance pays a dict, and attribute loads miss the fast path)
* SL402 — container/lambda allocation inside a ``while`` loop in a hot
  module (per-iteration garbage on the dispatch path)

Scope is the :data:`~repro.lint.framework.HOT_MODULES` list only;
exception classes, dataclasses, enums, and Protocols are exempt from
SL401 (their shape is fixed by their role, not by the hot path).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.finding import Finding, Rule
from repro.lint.framework import Checker, FileContext, register

SL401 = Rule(
    "SL401", "hot-class-no-slots",
    "classes in hot modules should declare __slots__",
    severity="warning",
)
SL402 = Rule(
    "SL402", "hot-loop-allocation",
    "allocation inside a while-loop in a hot module churns the GC on "
    "the dispatch path; hoist it out of the loop",
    severity="warning",
)

#: Base classes / decorators that exempt a class from SL401.
_EXEMPT_BASES = ("Exception", "Error", "Protocol", "Enum", "IntEnum")
_EXEMPT_DECORATORS = ("dataclass",)

_ALLOCATING_NODES = (
    ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp,
    ast.Lambda, ast.Dict, ast.Set,
)


@register
class HotPathChecker(Checker):
    RULES = (SL401, SL402)
    SCOPE = None  # gated by is_hot_module() instead of a package scope

    def check(self, ctx: FileContext) -> Iterator[Optional[Finding]]:
        if not ctx.is_hot_module():
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_slots(ctx, node)
            elif isinstance(node, ast.While):
                yield from self._check_loop_allocation(ctx, node)

    # --- SL401 -------------------------------------------------------------

    def _exempt(self, ctx: FileContext, node: ast.ClassDef) -> bool:
        for base in node.bases:
            name = ctx.dotted_name(base) or ""
            tail = name.rsplit(".", 1)[-1]
            if tail.endswith(_EXEMPT_BASES):
                return True
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            name = ctx.dotted_name(target) or ""
            if name.rsplit(".", 1)[-1] in _EXEMPT_DECORATORS:
                return True
        return False

    def _check_slots(
        self, ctx: FileContext, node: ast.ClassDef
    ) -> Iterator[Optional[Finding]]:
        if self._exempt(ctx, node):
            return
        for statement in node.body:
            if isinstance(statement, ast.Assign):
                for target in statement.targets:
                    if isinstance(target, ast.Name) and target.id == "__slots__":
                        return
            if isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ) and statement.target.id == "__slots__":
                return
        yield ctx.finding(
            SL401, node,
            f"class {node.name} in a hot module has no __slots__; "
            "instances carry a __dict__ and attribute access skips the "
            "fast path",
        )

    # --- SL402 -------------------------------------------------------------

    def _check_loop_allocation(
        self, ctx: FileContext, loop: ast.While
    ) -> Iterator[Optional[Finding]]:
        for node in ast.walk(loop):
            if node is loop:
                continue
            # Allocations inside a nested function/class definition run
            # when *that* code runs, not per loop iteration.
            if self._inside_nested_scope(ctx, node, loop):
                continue
            if isinstance(node, _ALLOCATING_NODES):
                kind = type(node).__name__
                yield ctx.finding(
                    SL402, node,
                    f"{kind} allocated inside a while-loop in a hot "
                    "module; build it once outside the loop",
                )

    def _inside_nested_scope(
        self, ctx: FileContext, node: ast.AST, loop: ast.While
    ) -> bool:
        for ancestor in ctx.ancestors(node):
            if ancestor is loop:
                return False
            if isinstance(
                ancestor,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
            ):
                return True
        return False
