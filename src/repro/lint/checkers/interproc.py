"""SL5xx — interprocedural determinism: taint that SL1xx cannot see.

The SL1xx rules are file-local: a wall-clock read laundered through a
helper — ``def _stamp(): return time.time()`` in a utility module,
called from an event handler — never appears in the handler's file.
These rules close that hole using the effect engine's fixpoint
(:mod:`repro.lint.effects`): a simulated-world function is flagged
when it *transitively* reaches a nondeterminism site that escapes
local review, with the witness call chain in the message.

* SL501 — transitive wall-clock read
* SL502 — transitive unseeded entropy draw
* SL503 — transitive environment read (``REPRO_*`` steering knobs are
  sanctioned: the sweep cache folds them into its key)
* SL504 — transitive hash-order iteration (warning: order bugs are
  usually observable, not silent)

A site *escapes local review* when it lives outside SIM_SCOPE (host
code the per-file pass never judges) or carries an inline SL1xx
suppression.  A suppressed site only fires in callers from a
*different* top-level package — whoever audited the suppression saw
the package around it.  And only the frontier function reports: if the
next hop in the chain would fire the same rule itself, the caller
stays silent instead of cascading one root cause into a dozen
findings.
"""

from __future__ import annotations

from typing import Dict, Iterator, Set, Tuple

from repro.lint.finding import Finding, Rule
from repro.lint.framework import (
    FileContext,
    ProjectChecker,
    SIM_SCOPE,
    register_project,
)
from repro.lint.summaries import Taint

#: taint kind -> interprocedural rule
KIND_RULE = {
    "wall-clock": "SL501",
    "entropy": "SL502",
    "env-read": "SL503",
    "hash-order": "SL504",
}

SL501 = Rule(
    "SL501", "transitive-wall-clock",
    "a callee (possibly in host-side code) reads the wall clock on this "
    "function's behalf; thread Engine.now through instead",
    severity="error", scope=SIM_SCOPE,
)
SL502 = Rule(
    "SL502", "transitive-entropy",
    "a callee draws unseeded randomness on this function's behalf; pass "
    "an engine-forked stream down the chain",
    severity="error", scope=SIM_SCOPE,
)
SL503 = Rule(
    "SL503", "transitive-env-read",
    "a callee reads the process environment on this function's behalf; "
    "thread configuration through MachineConfig",
    severity="error", scope=SIM_SCOPE,
)
SL504 = Rule(
    "SL504", "transitive-hash-order",
    "a callee iterates a set in hash order on this function's behalf; "
    "sort at the source",
    severity="warning", scope=SIM_SCOPE,
)

_RULES = {"SL501": SL501, "SL502": SL502, "SL503": SL503, "SL504": SL504}


def _top_package(module: str) -> str:
    parts = module.split(".")
    return parts[1] if len(parts) > 1 else parts[0]


def _reportable(summary, taint: Taint) -> bool:
    """Whether this taint can fire on this function at all."""
    site = taint.site
    if len(taint.chain) < 2:
        return False        # a direct site is SL1xx's business
    if not site.escapes_local or site.sanctioned:
        return False
    if _top_package(site.module) in SIM_SCOPE:
        # Suppressed-in-scope site: the suppression reviewer audited
        # the surrounding package, so only cross-package callers fire.
        return _top_package(summary.module) != _top_package(site.module)
    return True


@register_project
class InterprocDeterminism(ProjectChecker):
    RULES = (SL501, SL502, SL503, SL504)

    def check_project(
        self, analysis, contexts: Dict[str, FileContext]
    ) -> Iterator[Finding]:
        # Pass 1: every (function, kind) pair that could fire.
        candidates: Dict[Tuple[str, str], Taint] = {}
        for ref, summary in analysis.summaries.items():
            if _top_package(summary.module) not in SIM_SCOPE:
                continue
            for kind, taints in summary.taints.items():
                for taint in taints:
                    if _reportable(summary, taint):
                        candidates.setdefault((ref, kind), taint)
                        break
        # Pass 2: report only the frontier — skip a function whose
        # next hop toward the site fires the same rule itself.
        fired: Set[Tuple[str, str]] = set()
        for (ref, kind), taint in sorted(candidates.items()):
            next_hop = taint.chain[1][0]
            if (next_hop, kind) in candidates:
                continue
            fired.add((ref, kind))
            summary = analysis.summaries[ref]
            rule = _RULES[KIND_RULE[kind]]
            line = taint.chain[0][1]
            ctx = contexts.get(summary.path)
            if ctx is not None and ctx.suppressed(line, rule.code):
                continue
            snippet = ctx.snippet(line) if ctx is not None else ""
            yield Finding(
                rule=rule.code,
                path=summary.path,
                line=line,
                col=1,
                message=(
                    f"{summary.qualname} transitively reaches "
                    f"{taint.site.detail}: {taint.render_chain()}"
                ),
                snippet=snippet,
                severity=rule.severity,
            )
