"""Built-in simlint checkers; importing the package registers them."""

from repro.lint.checkers import (
    determinism,
    eventsafety,
    hotpath,
    interproc,
    sharedstate,
    units,
)

__all__ = [
    "determinism", "eventsafety", "hotpath", "interproc", "sharedstate",
    "units",
]
