"""SL3xx — the typed-units checker.

The simulator's unit conventions (:mod:`repro.sim.units`): simulated
time is integer microsecond *ticks*, sizes are bytes with pages and
sectors as kernel/disk granularities.  There is no wrapper type — the
conventions live in identifier suffixes (``deadline_us``, ``nbytes``,
``npages``) and in the converter helpers (``msecs()``, ``pages()``).
This checker enforces those conventions structurally:

* SL301 — adding/subtracting/comparing values from different unit
  families (``x_ms + y_us``, ``nbytes < npages``)
* SL302 — converter called on a value already in another family
  (``msecs(delay_us)``; ``msecs`` takes milliseconds)
* SL303 — converter result bound to a name of the wrong family
  (``timeout_ms = msecs(5)``; ``msecs`` returns ticks/µs)

Only identifiers whose suffix names a known family participate; an
unsuffixed operand never fires a rule, so the conventions stay opt-in
and the checker stays quiet on generic arithmetic.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Tuple

from repro.lint.finding import Finding, Rule
from repro.lint.framework import Checker, FileContext, register

SL301 = Rule(
    "SL301", "unit-family-mix",
    "arithmetic between different unit families; convert explicitly "
    "via repro.sim.units first",
    severity="error",
)
SL302 = Rule(
    "SL302", "converter-arg-unit",
    "converter applied to a value already in a different unit family",
    severity="error",
)
SL303 = Rule(
    "SL303", "converter-result-unit",
    "converter result bound to a name declaring a different unit family",
    severity="error",
)

#: identifier suffix -> unit family.  Longest suffix wins.
_SUFFIX_FAMILY: Tuple[Tuple[str, str], ...] = (
    ("_usecs", "us"), ("_usec", "us"), ("_us", "us"), ("_ticks", "us"),
    ("_msecs", "ms"), ("_msec", "ms"), ("_ms", "ms"), ("_millis", "ms"),
    ("_secs", "s"), ("_sec", "s"), ("_seconds", "s"),
    ("_nbytes", "bytes"), ("_bytes", "bytes"),
    ("_npages", "pages"), ("_pages", "pages"),
    ("_nsectors", "sectors"), ("_sectors", "sectors"),
    ("_mb", "mb"), ("_kb", "kb"),
)

#: Whole identifiers with a known family (mostly repro.sim.units
#: constants and common parameter names).
_NAME_FAMILY: Dict[str, str] = {
    "USEC": "us", "MSEC": "us", "SEC": "us",  # constants are in ticks
    "nbytes": "bytes", "npages": "pages", "nsectors": "sectors",
    "usecs": "us", "ticks": "us",
    "PAGE_SIZE": "bytes", "SECTOR_SIZE": "bytes", "KB": "bytes", "MB": "bytes",
    "SECTORS_PER_PAGE": "sectors",
}

#: converter -> (argument family, result family).
_CONVERTERS: Dict[str, Tuple[str, str]] = {
    "usecs": ("us", "us"),
    "msecs": ("ms", "us"),
    "secs": ("s", "us"),
    "to_millis": ("us", "ms"),
    "to_seconds": ("us", "s"),
    "pages": ("bytes", "pages"),
    "sectors": ("bytes", "sectors"),
}


def family_of_name(name: str) -> Optional[str]:
    """Unit family an identifier declares, or None."""
    if name in _NAME_FAMILY:
        return _NAME_FAMILY[name]
    lowered = name.lower()
    for suffix, family in _SUFFIX_FAMILY:
        if lowered.endswith(suffix):
            return family
    return None


@register
class UnitsChecker(Checker):
    RULES = (SL301, SL302, SL303)
    SCOPE = None

    def check(self, ctx: FileContext) -> Iterator[Optional[Finding]]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                yield from self._check_pair(ctx, node, node.left, node.right, "+/-")
            elif isinstance(node, ast.Compare):
                operands = [node.left] + list(node.comparators)
                for left, right in zip(operands, operands[1:]):
                    yield from self._check_pair(ctx, node, left, right, "comparison")
            elif isinstance(node, ast.Call):
                yield from self._check_converter_arg(ctx, node)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                yield from self._check_converter_result(ctx, node)

    # --- expression families -----------------------------------------------

    def _family(self, node: ast.AST) -> Optional[str]:
        """Family of an expression, when a name states one."""
        while isinstance(node, ast.UnaryOp):
            node = node.operand
        if isinstance(node, ast.Name):
            return family_of_name(node.id)
        if isinstance(node, ast.Attribute):
            return family_of_name(node.attr)
        if isinstance(node, ast.Call):
            dotted = node.func
            name = None
            if isinstance(dotted, ast.Name):
                name = dotted.id
            elif isinstance(dotted, ast.Attribute):
                name = dotted.attr
            if name in _CONVERTERS:
                return _CONVERTERS[name][1]
        return None

    def _check_pair(
        self, ctx: FileContext, node: ast.AST, left: ast.AST, right: ast.AST,
        what: str,
    ) -> Iterator[Optional[Finding]]:
        left_family = self._family(left)
        right_family = self._family(right)
        if left_family is None or right_family is None:
            return
        if left_family == right_family:
            return
        yield ctx.finding(
            SL301, node,
            f"{what} mixes unit families {left_family!r} and "
            f"{right_family!r}; convert via repro.sim.units first",
        )

    # --- converters ---------------------------------------------------------

    def _converter_name(self, node: ast.Call) -> Optional[str]:
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        return name if name in _CONVERTERS else None

    def _check_converter_arg(
        self, ctx: FileContext, node: ast.Call
    ) -> Iterator[Optional[Finding]]:
        name = self._converter_name(node)
        if name is None or not node.args:
            return
        expected, _result = _CONVERTERS[name]
        actual = self._family(node.args[0])
        if actual is None or actual == expected:
            return
        yield ctx.finding(
            SL302, node,
            f"{name}() takes a value in {expected!r} but the argument "
            f"declares family {actual!r}",
        )

    def _check_converter_result(
        self, ctx: FileContext, node: ast.AST
    ) -> Iterator[Optional[Finding]]:
        value = node.value
        if not isinstance(value, ast.Call):
            return
        name = self._converter_name(value)
        if name is None:
            return
        _expected, result = _CONVERTERS[name]
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            target_name = None
            if isinstance(target, ast.Name):
                target_name = target.id
            elif isinstance(target, ast.Attribute):
                target_name = target.attr
            if target_name is None:
                continue
            declared = family_of_name(target_name)
            if declared is None or declared == result:
                continue
            yield ctx.finding(
                SL303, node,
                f"{name}() returns a value in {result!r} but the target "
                f"{target_name!r} declares family {declared!r}",
            )
