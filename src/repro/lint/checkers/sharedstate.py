"""SL6xx — shared-state ordering across event handlers.

The engine fires same-timestamp events in insertion order (INTERNALS
§6), so two handlers registered by *different* subsystems that both
mutate the same resource ledger are order-coupled: swapping their
registration order changes the final ledger value at a tie.  That is
legal only when the tie-break has been audited (the paper's accounting
laws are insertion-order-invariant for commutative updates, and the
sanitizer checks conservation after every event).

* SL601 — a ledger field (``entitled`` / ``allowed`` / ``used``
  outside the accounting module) is written by handlers reachable from
  two or more distinct engine event roots, and the write site carries
  no tie-break audit.  Suppress with ``# simlint: disable=SL601`` *at
  the write site* once the commutativity argument is written down.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set

from repro.lint.finding import Finding, Rule
from repro.lint.framework import (
    FileContext,
    ProjectChecker,
    SIM_SCOPE,
    register_project,
)

SL601 = Rule(
    "SL601", "multi-root-ledger-write",
    "a resource ledger is mutated by handlers of two or more event "
    "kinds; audit the tie-break (commutativity at equal timestamps) "
    "and suppress at the write site",
    severity="warning", scope=SIM_SCOPE,
)


@register_project
class SharedStateOrdering(ProjectChecker):
    RULES = (SL601,)

    def check_project(
        self, analysis, contexts: Dict[str, FileContext]
    ) -> Iterator[Finding]:
        token_roots: Dict[str, Set[str]] = {}
        token_sites: Dict[str, List] = {}
        for root in sorted(analysis.event_roots()):
            footprint = analysis.root_footprint(root)
            for token, sites in footprint.items():
                token_roots.setdefault(token, set()).add(root)
                token_sites.setdefault(token, []).extend(sites)
        for token in sorted(token_roots):
            roots = sorted(token_roots[token])
            if len(roots) < 2:
                continue
            shown = [r.split(":", 1)[1] for r in roots[:4]]
            names = ", ".join(shown)
            if len(roots) > len(shown):
                names += f", +{len(roots) - len(shown)} more"
            seen: Set[tuple] = set()
            for site in token_sites[token]:
                key = (site.path, site.line)
                if key in seen:
                    continue
                seen.add(key)
                ctx = contexts.get(site.path)
                if ctx is not None and ctx.suppressed(site.line, "SL601"):
                    continue
                yield Finding(
                    rule=SL601.code,
                    path=site.path,
                    line=site.line,
                    col=1,
                    message=(
                        f"{token} is written by handlers reachable from "
                        f"{len(roots)} event roots ({names}); the engine "
                        "fires ties in insertion order — audit and "
                        "suppress at this write site"
                    ),
                    snippet=ctx.snippet(site.line) if ctx is not None else "",
                    severity=SL601.severity,
                )
