"""The unit of lint output: one finding at one source location.

Findings are matched against the checked-in baseline by *fingerprint*
— a hash of the rule, the repo-relative path, and the normalized text
of the offending line — so edits elsewhere in a file (which shift line
numbers) do not invalidate baseline entries.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


#: Finding severities, in increasing order of trouble.  ``error`` is
#: for constructs that break determinism or accounting outright;
#: ``warning`` for constructs that are merely fragile.
SEVERITIES = ("warning", "error")


def fingerprint(rule: str, path: str, snippet: str) -> str:
    """Stable identity of a finding, independent of line numbers."""
    normalized = " ".join(snippet.split())
    digest = hashlib.sha256(f"{rule}|{path}|{normalized}".encode()).hexdigest()
    return digest[:16]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: The stripped source line the finding points at.
    snippet: str = ""
    severity: str = "warning"

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def fingerprint(self) -> str:
        return fingerprint(self.rule, self.path, self.snippet)

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )


@dataclass(frozen=True)
class Rule:
    """Metadata for one lint rule (shown by ``--list-rules`` and SARIF)."""

    code: str
    name: str
    summary: str
    severity: str = "warning"
    #: Package segments under ``repro`` the rule applies to; ``None``
    #: means every scanned file.
    scope: object = None
