"""The checker framework: file walking, AST context, and dispatch.

A *checker* is a class with a ``RULES`` tuple and a ``check(ctx)``
method yielding :class:`~repro.lint.finding.Finding`.  Checkers
register themselves with :func:`register`; :func:`run_lint` parses each
file once, builds a shared :class:`FileContext` (AST, parent links,
resolved import aliases, suppression comments), and hands it to every
registered checker whose scope covers the file.

Suppressions:

* ``# simlint: disable=SL203`` (comma-separated codes, or ``all``) on
  the offending line silences findings for that line;
* ``# simlint: skip-file`` anywhere in the first ten lines skips the
  whole file.

Intentional, long-lived exceptions belong in the checked-in baseline
(:mod:`repro.lint.baseline`) with a justification, not in suppression
comments.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Type

from repro.lint.finding import Finding, Rule

#: Package segments (directly under ``repro/``) that make up the
#: simulated world.  Determinism rules apply here; host-side code (the
#: parallel executor, the bench harness, the linter itself) may use
#: wall clocks and environment variables freely.
SIM_SCOPE: Tuple[str, ...] = (
    "sim", "kernel", "cpu", "mem", "disk", "fs", "net", "core",
    "chaos", "faults", "antagonists", "workloads", "experiments",
    "metrics", "api", "snapshot", "fuzz",
)

#: Modules PR 3 optimised; the hot-path rules only fire here.
HOT_MODULES: Tuple[str, ...] = (
    "sim/engine.py",
    "cpu/scheduler.py",
    "cpu/stride.py",
    "cpu/partition.py",
    "cpu/priorities.py",
    "kernel/kernel.py",
    "kernel/process.py",
    "mem/manager.py",
    "fs/buffercache.py",
    "disk/drive.py",
)


class LintError(RuntimeError):
    """Raised for unusable inputs (bad path, unparsable baseline)."""


class FileContext:
    """Everything checkers need about one file, computed once."""

    def __init__(self, path: str, display_path: str, source: str):
        self.path = path
        #: Repo-relative, forward-slash path used in findings/baseline.
        self.display_path = display_path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        #: node -> parent node, for ancestor-sensitive rules.
        self.parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        #: local alias -> canonical dotted module path, e.g. after
        #: ``import numpy as np`` this maps ``np`` -> ``numpy`` and
        #: after ``from time import monotonic as mono`` it maps
        #: ``mono`` -> ``time.monotonic``.
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    self.aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
        self._suppressed: Dict[int, Set[str]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            marker = line.find("# simlint: disable=")
            if marker < 0:
                continue
            codes = line[marker + len("# simlint: disable="):].split()[0]
            self._suppressed[lineno] = {c.strip() for c in codes.split(",") if c.strip()}
        self.skip_file = any(
            "# simlint: skip-file" in line for line in self.lines[:10]
        )
        #: Hot-path module tails for SL4xx.  The static PR-3 list by
        #: default; ``run_lint(effects=True)`` replaces it with the
        #: set the effect engine derives from ``Engine.run``.
        self.hot_modules: Sequence[str] = HOT_MODULES

    # --- queries checkers lean on ------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self.parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        cursor = self.parents.get(node)
        while cursor is not None:
            yield cursor
            cursor = self.parents.get(cursor)

    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """``a.b.c`` for a Name/Attribute chain, alias-resolved at the root."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def snippet(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def suppressed(self, lineno: int, rule: str) -> bool:
        codes = self._suppressed.get(lineno)
        if not codes:
            return False
        return rule in codes or "all" in codes

    def module_parts(self) -> Tuple[str, ...]:
        """Path segments after the ``repro/`` package root, if any."""
        normalized = self.display_path.replace(os.sep, "/")
        if "repro/" in normalized:
            tail = normalized.split("repro/", 1)[1]
            return tuple(tail.split("/"))
        return tuple(normalized.split("/"))

    def in_scope(self, scope: Optional[Sequence[str]]) -> bool:
        if scope is None:
            return True
        parts = self.module_parts()
        return bool(parts) and parts[0] in scope

    def is_hot_module(self) -> bool:
        tail = "/".join(self.module_parts())
        return tail in self.hot_modules

    def finding(
        self, rule: Rule, node: ast.AST, message: str
    ) -> Optional[Finding]:
        """Build a finding for ``node`` unless the line suppresses it."""
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if self.suppressed(lineno, rule.code):
            return None
        return Finding(
            rule=rule.code,
            path=self.display_path,
            line=lineno,
            col=col + 1,
            message=message,
            snippet=self.snippet(lineno),
            severity=rule.severity,
        )


class Checker:
    """Base class for lint passes; subclasses set RULES and check()."""

    #: The rules this checker can emit.
    RULES: Tuple[Rule, ...] = ()
    #: Package scope shared by all the checker's rules (None = all files).
    SCOPE: Optional[Tuple[str, ...]] = None

    def check(self, ctx: FileContext) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError


class ProjectChecker:
    """Base class for whole-tree passes over the effect analysis.

    Project checkers only run under ``run_lint(effects=True)``: they
    receive the :class:`~repro.lint.effects.EffectAnalysis` built from
    every linted file plus the per-file contexts (for suppression
    checks and snippets), and yield findings anchored wherever their
    evidence lives.
    """

    RULES: Tuple[Rule, ...] = ()

    def check_project(
        self, analysis, contexts: Dict[str, "FileContext"]
    ) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError


_CHECKERS: List[Type[Checker]] = []
_PROJECT_CHECKERS: List[Type[ProjectChecker]] = []


def register(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator adding a checker to the global registry."""
    _CHECKERS.append(cls)
    return cls


def register_project(cls: Type[ProjectChecker]) -> Type[ProjectChecker]:
    """Class decorator adding a project checker to the registry."""
    _PROJECT_CHECKERS.append(cls)
    return cls


def registered_checkers() -> List[Type[Checker]]:
    _load_builtin_checkers()
    return list(_CHECKERS)


def registered_project_checkers() -> List[Type[ProjectChecker]]:
    _load_builtin_checkers()
    return list(_PROJECT_CHECKERS)


def all_rules() -> List[Rule]:
    rules: List[Rule] = []
    for checker in registered_checkers():
        rules.extend(checker.RULES)
    for checker in registered_project_checkers():
        rules.extend(checker.RULES)
    return sorted(rules, key=lambda r: (r.code, r.name))


def _load_builtin_checkers() -> None:
    # Importing the package registers every built-in checker exactly
    # once; user plugins can register more before run_lint().
    import repro.lint.checkers  # noqa: F401


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    seen: Set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py") and path not in seen:
                seen.add(path)
        elif os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs if d != "__pycache__")
                for name in sorted(files):
                    if name.endswith(".py"):
                        full = os.path.join(root, name)
                        if full not in seen:
                            seen.add(full)
        else:
            raise LintError(f"no such file or directory: {path}")
    return iter(sorted(seen))


def display_path(path: str, root: Optional[str] = None) -> str:
    """Repo-relative forward-slash path for findings and baselines."""
    root = root if root is not None else os.getcwd()
    try:
        relative = os.path.relpath(os.path.abspath(path), root)
    except ValueError:  # pragma: no cover - windows cross-drive
        relative = path
    if relative.startswith(".."):
        relative = path
    return relative.replace(os.sep, "/")


def run_lint(
    paths: Sequence[str],
    root: Optional[str] = None,
    rules: Optional[Set[str]] = None,
    effects: bool = False,
) -> List[Finding]:
    """Run every registered checker over ``paths``.

    Findings come back sorted by (path, line, col, rule) so output and
    baselines are stable.  ``rules`` optionally restricts to a subset
    of rule codes.  ``effects=True`` additionally builds the
    interprocedural effect analysis over every parsed file, derives
    the SL4xx hot-module list from ``Engine.run`` reachability, and
    runs the registered project checkers (SL5xx/SL6xx).
    """
    findings: List[Finding] = []
    checkers = [cls() for cls in registered_checkers()]
    contexts: List[FileContext] = []
    for path in iter_python_files(paths):
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        try:
            ctx = FileContext(path, display_path(path, root), source)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    rule="SL000",
                    path=display_path(path, root),
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    message=f"file does not parse: {exc.msg}",
                    severity="error",
                )
            )
            continue
        if ctx.skip_file:
            continue
        contexts.append(ctx)

    analysis = None
    if effects:
        from repro.lint.effects import EffectAnalysis

        analysis = EffectAnalysis.from_sources(
            (ctx.display_path, ctx.source, ctx.tree) for ctx in contexts
        )
        derived_hot = tuple(analysis.hot_modules())
        if derived_hot:
            for ctx in contexts:
                ctx.hot_modules = derived_hot

    for ctx in contexts:
        for checker in checkers:
            if not ctx.in_scope(checker.SCOPE):
                continue
            for finding in checker.check(ctx):
                if finding is None:
                    continue
                if rules is not None and finding.rule not in rules:
                    continue
                findings.append(finding)

    if analysis is not None:
        by_display = {ctx.display_path: ctx for ctx in contexts}
        for cls in registered_project_checkers():
            for finding in cls().check_project(analysis, by_display):
                if finding is None:
                    continue
                if rules is not None and finding.rule not in rules:
                    continue
                findings.append(finding)

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
