"""Renderers for lint results: human text, JSON, and SARIF 2.1.0.

The SARIF output is the minimal valid subset GitHub code scanning and
editors consume: one run, one driver with the rule metadata, one result
per finding with a physical location.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.lint.finding import Finding, Rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_SARIF_LEVEL = {"warning": "warning", "error": "error"}


def render_text(
    findings: Sequence[Finding],
    baselined: Sequence[Finding] = (),
) -> str:
    lines = [f.render() for f in findings]
    summary = f"{len(findings)} finding(s)"
    if baselined:
        summary += f", {len(baselined)} baselined"
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    baselined: Sequence[Finding] = (),
) -> str:
    def encode(finding: Finding, suppressed: bool) -> Dict[str, object]:
        return {
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "col": finding.col,
            "severity": finding.severity,
            "message": finding.message,
            "snippet": finding.snippet,
            "fingerprint": finding.fingerprint,
            "baselined": suppressed,
        }

    payload = {
        "tool": "simlint",
        "findings": [encode(f, False) for f in findings]
        + [encode(f, True) for f in baselined],
        "summary": {"new": len(findings), "baselined": len(baselined)},
    }
    return json.dumps(payload, indent=2)


def render_sarif(
    findings: Sequence[Finding],
    rules: Sequence[Rule],
) -> str:
    rule_index = {rule.code: i for i, rule in enumerate(rules)}
    results: List[Dict[str, object]] = []
    for finding in findings:
        result: Dict[str, object] = {
            "ruleId": finding.rule,
            "level": _SARIF_LEVEL[finding.severity],
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    }
                }
            ],
            "partialFingerprints": {"simlint/v1": finding.fingerprint},
        }
        if finding.rule in rule_index:
            result["ruleIndex"] = rule_index[finding.rule]
        results.append(result)
    sarif = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "simlint",
                        "informationUri": "https://example.invalid/simlint",
                        "rules": [
                            {
                                "id": rule.code,
                                "name": rule.name,
                                "shortDescription": {"text": rule.summary},
                                "defaultConfiguration": {
                                    "level": _SARIF_LEVEL[rule.severity]
                                },
                            }
                            for rule in rules
                        ],
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(sarif, indent=2)
