"""``python -m repro lint`` — the simlint command line.

Exit status is 0 when every finding is covered by the baseline (or
there are none), 1 when new findings exist, 2 for usage errors.

Typical invocations::

    python -m repro lint                          # src/repro vs lint-baseline.json
    python -m repro lint --format sarif -o out.sarif
    python -m repro lint --write-baseline         # refresh the baseline
    python -m repro lint --list-rules
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.lint import baseline as baseline_mod
from repro.lint.framework import LintError, all_rules, run_lint
from repro.lint.output import render_json, render_sarif, render_text

DEFAULT_BASELINE = "lint-baseline.json"


def _default_paths() -> List[str]:
    # Prefer the repo layout (src/repro below the cwd); fall back to
    # the installed package's own directory so the CLI always has a
    # target.
    candidate = os.path.join("src", "repro")
    if os.path.isdir(candidate):
        return [candidate]
    import repro

    return [os.path.dirname(os.path.abspath(repro.__file__))]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="simlint: determinism, event-safety, units, and "
        "hot-path static analysis for the simulator",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "-o", "--output", default=None,
        help="write the report to a file instead of stdout",
    )
    parser.add_argument(
        "--baseline", default=None,
        help=f"baseline file (default: {DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file; report every finding as new",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--rules", default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every rule with its severity and summary",
    )
    parser.add_argument(
        "--effects", action="store_true",
        help="build the interprocedural effect analysis: run the "
        "SL5xx/SL6xx project rules and derive the SL4xx hot-module "
        "list from Engine.run reachability",
    )
    parser.add_argument(
        "--why", metavar="FN", default=None,
        help="explain one function's effect summary (module:qualname, "
        "or a unique qualname suffix) and exit; implies --effects",
    )
    return parser


def _explain(analysis, query: str) -> int:
    refs = sorted(analysis.summaries)
    matches = [r for r in refs if r == query]
    if not matches:
        matches = [
            r for r in refs
            if r.endswith(f":{query}") or r.split(":", 1)[1] == query
        ]
    if not matches:
        matches = [r for r in refs if query in r]
    if not matches:
        print(f"error: no function matches {query!r}", file=sys.stderr)
        return 2
    if len(matches) > 1 and query not in matches:
        print(f"error: {query!r} is ambiguous:", file=sys.stderr)
        for ref in matches[:10]:
            print(f"  {ref}", file=sys.stderr)
        return 2
    ref = query if query in matches else matches[0]
    summary = analysis.summaries[ref]
    print(f"{ref}  ({summary.path}:{summary.line})")
    if summary.markers:
        print(f"  audited dynamic seams: {', '.join(summary.markers)}")
    if summary.widened:
        print("  widened (closure falls back to whole-tree digest):")
        for reason in summary.widened:
            print(f"    - {reason}")
    for site in summary.direct_effects:
        tag = " [sanctioned]" if site.sanctioned else ""
        print(f"  direct {site.kind}: {site.describe()}{tag}")
    for kind in sorted(summary.taints):
        for taint in summary.taints[kind]:
            tag = " [sanctioned]" if taint.site.sanctioned else ""
            print(f"  transitive {kind}{tag}: {taint.render_chain()}")
    for write in summary.writes:
        print(f"  writes {write.token} ({write.path}:{write.line})")
    closure = analysis.closure(ref)
    if closure is not None:
        modules, widen_reasons = closure
        state = "complete" if not widen_reasons else \
            f"incomplete ({len(widen_reasons)} unresolved edges)"
        print(f"  dependency closure: {len(modules)} modules, {state}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  [{rule.severity:7}]  {rule.name}: {rule.summary}")
        return 0

    paths = args.paths or _default_paths()
    rules = None
    if args.rules:
        rules = {code.strip() for code in args.rules.split(",") if code.strip()}

    effects = args.effects or args.why is not None

    if args.why is not None:
        from repro.lint.effects import analyze_paths
        from repro.lint.framework import iter_python_files

        try:
            analysis = analyze_paths(iter_python_files(paths))
        except LintError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return _explain(analysis, args.why)

    try:
        findings = run_lint(paths, rules=rules, effects=effects)
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baseline_path = args.baseline or DEFAULT_BASELINE
    baseline = None
    if not args.no_baseline and not args.write_baseline:
        if args.baseline is not None or os.path.exists(baseline_path):
            try:
                baseline = baseline_mod.load(baseline_path)
            except baseline_mod.BaselineError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2

    if args.write_baseline:
        previous = None
        if os.path.exists(baseline_path):
            try:
                previous = baseline_mod.load(baseline_path)
            except baseline_mod.BaselineError:
                previous = None
        baseline_mod.save(
            baseline_path, baseline_mod.from_findings(findings, previous)
        )
        print(f"wrote {len(findings)} entr(ies) to {baseline_path}")
        return 0

    if baseline is not None:
        new, baselined, stale = baseline.diff(findings)
    else:
        new, baselined, stale = list(findings), [], []

    if args.format == "text":
        report = render_text(new, baselined)
        if stale:
            report += (
                f"\n{len(stale)} stale baseline entr(ies) no longer match;"
                f" refresh with --write-baseline"
            )
    elif args.format == "json":
        report = render_json(new, baselined)
    else:
        report = render_sarif(new, all_rules())

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    else:
        print(report)
    return 1 if new else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
