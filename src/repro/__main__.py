"""``python -m repro`` — the one front door.

Subcommands:

* ``experiments`` — regenerate the paper's tables and figures
  (``python -m repro experiments fig5 table4 --seed 1 --workers 4``);
* ``chaos`` — the seeded chaos soak (``python -m repro chaos --seed 0
  --workers 4``); ``python -m repro.chaos`` remains a shim;
* ``fuzz`` — generative scenario fuzzing with a resumable corpus and
  ddmin-shrunken repro files (``python -m repro fuzz --seed 0
  --count 50 --workers 4``; ``--repro FILE`` replays a repro);
* ``bench`` — the performance harness that writes
  ``BENCH_parallel.json`` (``python -m repro bench --quick``);
* ``fleet`` — the fleet failover smoke gate: a seeded multi-machine
  run with one whole-machine crash, checked for conservation
  violations and serial-vs-parallel byte-identity
  (``python -m repro fleet --scheme piso --seed 0``);
* ``lint`` — simlint, the simulator's own static analysis
  (``python -m repro lint --baseline lint-baseline.json``).

All subcommands share ``--seed``-style determinism and ``--workers``
for the parallel sweep executor (1 = in-process, 0 = auto-size).  For
back-compatibility, bare section names (``python -m repro pmake8
fig5``) still work and mean ``experiments``.
"""

from __future__ import annotations

import sys
from typing import List

USAGE = __doc__


def main(argv: List[str]) -> int:
    if argv and argv[0] in ("-h", "--help"):
        print(USAGE)
        return 0
    command, rest = (argv[0], argv[1:]) if argv else ("experiments", [])
    if command == "experiments":
        from repro.experiments.runner import main as experiments_main

        return experiments_main(rest)
    if command == "chaos":
        from repro.chaos.__main__ import main as chaos_main

        return chaos_main(rest)
    if command == "fuzz":
        from repro.fuzz.__main__ import main as fuzz_main

        return fuzz_main(rest)
    if command == "bench":
        from repro.bench.__main__ import main as bench_main

        return bench_main(rest)
    if command == "fleet":
        from repro.fleet.__main__ import main as fleet_main

        return fleet_main(rest)
    if command == "lint":
        from repro.lint.cli import main as lint_main

        return lint_main(rest)
    # Bare section names (the pre-subcommand CLI) mean "experiments".
    from repro.experiments.runner import main as experiments_main

    return experiments_main(argv)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
