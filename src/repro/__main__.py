"""``python -m repro`` — regenerate the paper's tables and figures.

Delegates to :mod:`repro.experiments.runner`; pass section names
(``pmake8 fig5 fig7 table3 table4 network ablations``) to run a subset.
"""

import sys

from repro.experiments.runner import main

if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
