"""``python -m repro`` — regenerate the paper's tables and figures.

Delegates to :mod:`repro.experiments.runner`; pass section names
(``pmake8 fig5 fig7 table3 table4 network faults antagonists
ablations``) to run a subset, and ``--seed N`` to change the base
RNG seed.
"""

import sys

from repro.experiments.runner import main

if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
