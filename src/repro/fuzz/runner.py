"""Run one generated scenario under the full oracle stack.

:func:`run_scenario` lowers a :class:`~repro.fuzz.scenario.ScenarioSpec`
onto the ordinary :func:`repro.api.build` seam, plants the same
latency-sensitive victim the chaos soak uses, starts the scenario's
workload mix from the calibrated library, fires its antagonist bursts,
arms its fault schedule (``on_error="skip"`` so shrunken scenarios stay
runnable), and judges the run with four oracle families:

* **conservation laws** — the :class:`~repro.faults.InvariantWatchdog`
  re-derives pages/CPU/levels/starvation/dead-drive invariants every
  tick;
* **SIMSAN** — with ``simsan=True`` (or ``REPRO_SIMSAN=1``) the runtime
  sanitizer re-checks the books at event granularity; its raise is
  caught and recorded as a ``simsan`` violation so campaigns keep
  going;
* **per-scheme contract bounds** — the victim-progress window scales
  with the scheme's promise: PIso must keep the victim moving in every
  quarter-horizon window, Quo and Stride in every half-horizon window,
  and SMP (which promises nothing under attack) is held only to the
  conservation laws;
* **differential** — :func:`run_record` is a pure function of
  ``(scenario, simsan)``; the campaign re-runs cells in-process and
  compares records byte-for-byte against worker results.

The deterministic journal (and its digest) is what makes corpus
entries, repro files, and ddmin trustworthy: same scenario, same bytes.
"""

from __future__ import annotations

import hashlib
import os
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.antagonists import launch
from repro.api import build
from repro.chaos.soak import (
    VICTIM_BURST_US,
    VICTIM_JOBS,
    VICTIM_LOCK_HOLD_US,
    progress_violations,
    victim_job,
)
from repro.faults import FaultInjector, InvariantWatchdog, OverloadGuard, Violation
from repro.fuzz.scenario import ScenarioSpec, WorkloadSpec
from repro.kernel.kernel import Kernel
from repro.kernel.locks import KernelLock
from repro.sanitizer import SanitizerError, SimSanitizer, check_stride
from repro.sim.units import KB, MSEC
from repro.workloads import (
    CopyParams,
    InteractiveParams,
    OceanParams,
    PmakeParams,
    SimulatorParams,
    copy_job,
    cpu_hog,
    create_pmake_files,
    interactive_user,
    ocean_processes,
    pmake_job,
    simulator_process,
)

#: Victim-progress bound per scheme, as a divisor of the horizon: the
#: contract oracle flags any window of ``horizon // divisor`` without a
#: victim checkpoint.  ``None`` means no progress promise (SMP shares
#: freely, so a fork bomb legitimately starves neighbours).
SCHEME_PROGRESS_DIVISOR = {
    "piso": 4,
    "quo": 2,
    "stride": 2,
    "smp": None,
}

#: Environment flag that plants a deliberate conservation bug, used to
#: prove the fuzzer finds and shrinks real invariant breaks end to end:
#: ``page-leak`` steals pages from the free list 1 ms after boot;
#: ``burst-leak`` steals them whenever an antagonist burst fires (so a
#: shrunken repro must keep at least one burst).
ENV_PLANT = "REPRO_FUZZ_PLANT"
PLANT_LEAK_PAGES = 7


@dataclass
class ScenarioResult:
    """Everything one scenario run produced."""

    scenario: ScenarioSpec
    violations: List[Violation] = field(default_factory=list)
    journal: List[str] = field(default_factory=list)
    checkpoints: int = 0
    #: Events executed by the engine (0 if SIMSAN aborted the run).
    events: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def verdict(self) -> str:
        return "ok" if self.ok else "violation"

    def digest(self) -> str:
        """Stable hash of the journal — the byte-identity handle."""
        return hashlib.sha256("\n".join(self.journal).encode()).hexdigest()[:16]


def _leak_pages(kernel: Kernel) -> None:
    """The planted bug: pages vanish without any SPU being charged."""
    kernel.memory.free_pages -= PLANT_LEAK_PAGES


def _start_workload(kernel: Kernel, spu, w: WorkloadSpec, tag: str) -> None:
    """Translate one :class:`WorkloadSpec` into running processes.

    Parameters are the calibrated library's, scaled down by
    ``intensity`` steps so a cell stays a fraction of a second of wall
    time; file names derive from ``tag`` so re-runs and sub-scenarios
    lay out identical footprints.
    """
    i = w.intensity
    if w.kind == "pmake":
        params = PmakeParams(
            n_tasks=2 * i, parallelism=2, compile_ms=10.0 * i,
            src_kb=16, obj_kb=8,
        )
        files = create_pmake_files(kernel.fs, w.mount, params, job_name=tag)
        kernel.spawn(pmake_job(files, params), spu, name=tag)
    elif w.kind == "copy":
        params = CopyParams(size_bytes=256 * i * KB)
        src, dst = kernel.fs.create(
            w.mount, f"{tag}/src", params.size_bytes
        ), kernel.fs.create(w.mount, f"{tag}/dst", params.size_bytes)
        kernel.spawn(copy_job(src, dst, params), spu, name=tag)
    elif w.kind == "ocean":
        params = OceanParams(nprocs=2, phases=4 * i, phase_ms=10.0)
        for n, behavior in enumerate(ocean_processes(params)):
            kernel.spawn(behavior, spu, name=f"{tag}.{n}")
    elif w.kind == "simulator":
        params = SimulatorParams(total_ms=100.0 * i, startup_ms=10.0)
        kernel.spawn(simulator_process(params), spu, name=tag)
    elif w.kind == "interactive":
        params = InteractiveParams(bursts=10 * i)
        kernel.spawn(interactive_user(params), spu, name=tag)
    else:  # cpu_hog — scenario validation guarantees the kind set
        kernel.spawn(cpu_hog(total_ms=50.0 * i), spu, name=tag)


def run_scenario(
    scenario: ScenarioSpec, simsan: Optional[bool] = None
) -> ScenarioResult:
    """Run ``scenario`` once and judge it against every oracle.

    ``simsan=None`` defers to the ``REPRO_SIMSAN`` environment (the
    kernel installs the sanitizer at boot); ``True``/``False`` force it
    on/off for this run regardless of the environment.
    """
    # The one sanctioned env read in the simulated world: the planted
    # bug exists to prove the fuzzer catches real invariant breaks.
    plant = os.environ.get(ENV_PLANT, "").strip()  # simlint: disable=SL104
    sim = build(scenario.simulation_spec())
    kernel = sim.kernel
    if simsan is True and kernel.sanitizer is None:
        kernel.sanitizer = SimSanitizer(kernel, every=check_stride())
        kernel.sanitizer.install()
    elif simsan is False and kernel.sanitizer is not None:
        kernel.sanitizer.uninstall()
        kernel.sanitizer = None

    victim = sim.spu("victim")
    attacker = sim.spu("attacker")
    lock = KernelLock("inode", reader_writer=True, inheritance=True)
    watchdog = InvariantWatchdog(kernel)
    watchdog.start()
    guard = OverloadGuard(
        kernel, pressure_threshold=40, throttle_after=2, kill_after=4
    )
    guard.start()
    injector = FaultInjector(kernel, scenario.faults, on_error="skip")
    injector.arm()

    if plant == "page-leak":
        kernel.engine.at(1 * MSEC, _leak_pages, kernel, daemon=True)

    rounds = scenario.horizon_us // (VICTIM_BURST_US + VICTIM_LOCK_HOLD_US)
    victim_procs = [
        kernel.spawn(victim_job(lock, rounds, f"v{j}"), victim, name=f"victim-{j}")
        for j in range(VICTIM_JOBS)
    ]

    starts: List[Tuple[int, str]] = []
    seen: Dict[Tuple[str, str, int], int] = {}
    for w in scenario.workloads:
        key = (w.spu, w.kind, w.start_us)
        nth = seen.get(key, 0)
        seen[key] = nth + 1
        tag = f"fuzz/{w.spu}.{w.kind}.{w.start_us}.{nth}"

        def go(w=w, tag=tag) -> None:
            _start_workload(kernel, sim.spu(w.spu), w, tag)
            starts.append((kernel.engine.now, f"workload {tag} x{w.intensity}"))

        kernel.engine.at(w.start_us, go, daemon=True)

    launches: List[Tuple[int, str]] = []
    for i, burst in enumerate(scenario.bursts):
        def fire(burst=burst, i=i) -> None:
            rng = random.Random(
                f"{scenario.seed}/fuzz/burst/{i}/{burst.kind}"
            )
            procs = launch(
                kernel, attacker, burst.kind, rng, mount=0,
                shared_lock=lock, scale=burst.scale,
            )
            launches.append(
                (kernel.engine.now,
                 f"burst {i}: {burst.kind} x{len(procs)} (scale {burst.scale:g})")
            )
            if plant == "burst-leak":
                _leak_pages(kernel)
        kernel.engine.at(burst.at_us, fire, daemon=True)

    events = 0
    sanitizer_violation: Optional[Violation] = None
    try:
        events = kernel.run(until=scenario.horizon_us)
    except SanitizerError as exc:
        sanitizer_violation = Violation(
            kernel.engine.now, "simsan", str(exc)
        )

    violations = list(watchdog.violations)
    if sanitizer_violation is not None:
        violations.append(sanitizer_violation)
    divisor = SCHEME_PROGRESS_DIVISOR[scenario.scheme]
    if divisor is not None and sanitizer_violation is None:
        window = max(1, scenario.horizon_us // divisor)
        violations += progress_violations(
            victim_procs, scenario.horizon_us, window_us=window
        )
    violations.sort(key=lambda v: (v.time_us, v.name))

    entries: List[Tuple[int, str]] = []
    entries += [(t, f"start | {text}") for t, text in starts]
    entries += [(t, f"launch | {text}") for t, text in launches]
    entries += [(t, f"fault | {text}") for t, text in injector.applied]
    entries += [(t, f"fault-skipped | {text}") for t, text in injector.skipped]
    entries += [
        (e.time_us, f"guard | {e.stage} SPU {e.spu_id}: {e.detail}")
        for e in guard.escalations
    ]
    entries += [(v.time_us, f"VIOLATION | {v.name}: {v.detail}") for v in violations]
    entries.sort(key=lambda e: (e[0], e[1]))

    checkpoints = sum(len(p.checkpoints) for p in victim_procs)
    journal = [
        f"scenario | seed={scenario.seed} fp={scenario.fingerprint()}"
        f" machine={scenario.ncpus}cpu/{scenario.memory_mb}MB/"
        f"{scenario.ndisks}disk scheme={scenario.scheme}"
        f" horizon={scenario.horizon_us}us"
        f" workloads={len(scenario.workloads)} bursts={len(scenario.bursts)}"
        f" faults={len(scenario.faults)}"
    ]
    journal += [f"t={t:>10} | {text}" for t, text in entries]
    journal.append(
        f"end | checkpoints={checkpoints}"
        f" escalations={len(guard.escalations)}"
        f" violations={len(violations)}"
    )

    return ScenarioResult(
        scenario=scenario,
        violations=violations,
        journal=journal,
        checkpoints=checkpoints,
        events=events,
    )


def run_record(
    scenario: ScenarioSpec, simsan: Optional[bool] = None
) -> Dict[str, Any]:
    """One scenario's corpus record: a pure function of the inputs.

    This is what campaign cells return and what corpus lines serialise;
    it must contain nothing host- or wall-clock-dependent, or corpus
    resume would stop being byte-identical.
    """
    result = run_scenario(scenario, simsan=simsan)
    return {
        "seed": scenario.seed,
        "fingerprint": scenario.fingerprint(),
        "verdict": result.verdict,
        "violations": sorted({v.name for v in result.violations}),
        "checkpoints": result.checkpoints,
        "events": result.events,
        "digest": result.digest(),
    }
