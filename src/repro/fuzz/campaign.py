"""Crash-resilient fuzz campaigns over the sweep executor.

A campaign maps a seed range through generate → run → judge, sharded
across worker processes, and records every cell in an **append-only
JSONL corpus**: one :func:`repro.fuzz.runner.run_record` per line.
Because each record is a pure function of ``(seed, horizon, simsan)``
and lines are appended in seed order with an fsync per shard, the
corpus doubles as the campaign's checkpoint: kill the campaign at any
point, re-run it, and it repairs a torn final line, skips every seed
already recorded, and converges on the byte-identical file an
uninterrupted run would have written.

Worker crashes and per-cell timeouts are absorbed twice over: the
executor retries the cell once on a fresh worker (the
:class:`repro.parallel.Executor` default ``retries=1``), and a cell
that still fails is recorded with a ``crashed``/``timeout`` verdict
rather than aborting the campaign.  All shards share one persistent
:class:`repro.parallel.WorkerPool`, so a thousand-seed campaign pays
the fork cost once, not once per shard; with ``cache=True`` cells
whose ``(seed, horizon, simsan)`` is already in the content-addressed
sweep cache are answered from the store — the cached value is the pure
cell's record, so the corpus bytes are identical either way.

Every ``violation`` verdict ends as a **repro file**: the campaign
re-runs the scenario in-process, shrinks it
(:func:`repro.fuzz.shrink.shrink_scenario`) against the first
violation, and writes ``fuzz-repro-<seed>.json`` next to the corpus —
including on resume, so an interruption between recording a failure
and shrinking it loses nothing.
"""

from __future__ import annotations

import json
import os
import sys
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.fuzz.generate import generate_scenario
from repro.fuzz.runner import run_record, run_scenario
from repro.fuzz.shrink import shrink_scenario, write_repro
from repro.parallel import Executor, SweepPlan, WorkerPool


class CampaignError(RuntimeError):
    """Raised for unusable campaign inputs (e.g. a corrupt corpus)."""


# --- the cell ----------------------------------------------------------------


def _fuzz_cell(payload: Tuple[int, Optional[int], Optional[bool]]) -> Dict[str, Any]:
    """One (seed, horizon, simsan) cell — the sweep worker function."""
    seed, horizon_us, simsan = payload
    scenario = generate_scenario(seed, horizon_us=horizon_us)
    return run_record(scenario, simsan=simsan)


def _fleet_fuzz_cell(
    payload: Tuple[int, Optional[int], Optional[bool]]
) -> Dict[str, Any]:
    """The fleet-dimension cell: same payload, fleet generator/runner."""
    from repro.fuzz.fleet import run_fleet_fuzz_record

    seed, horizon_us, simsan = payload
    return run_fleet_fuzz_record(seed, horizon_us=horizon_us, simsan=simsan)


# --- the corpus --------------------------------------------------------------


def repair_corpus(path: str) -> None:
    """Drop a torn final line left by a campaign killed mid-append.

    Everything after the last newline is an incomplete write; its seed
    re-runs on resume and reproduces the identical bytes, so truncating
    is lossless.
    """
    if not os.path.exists(path):
        return
    with open(path, "rb") as fh:
        data = fh.read()
    if not data or data.endswith(b"\n"):
        return
    keep = data.rfind(b"\n") + 1
    with open(path, "r+b") as fh:
        fh.truncate(keep)


def _warn_stderr(message: str) -> None:
    print(f"warning: {message}", file=sys.stderr)


def load_corpus(
    path: str, warn: Callable[[str], None] = _warn_stderr
) -> List[Dict[str, Any]]:
    """Read corpus records; tolerates a torn final line *and* rot.

    A truncated *last* line is the normal signature of a killed
    campaign and is silently dropped.  A malformed line anywhere
    *else* — invalid JSON, or a record missing ``seed``/``verdict`` —
    means the file was edited or otherwise corrupted; that line is
    **skipped with a warning** (via ``warn``, naming the line) rather
    than aborting the whole campaign: every record is a pure function
    of its seed, so the seed a corrupt line used to hold simply
    re-runs on resume and the corpus heals to the bytes an
    uninterrupted run would have written.
    """
    if not os.path.exists(path):
        return []
    with open(path, "rb") as fh:
        lines = fh.read().split(b"\n")
    records = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if lineno == len(lines):
                break
            warn(
                f"corpus {path} line {lineno} is not valid JSON;"
                " skipping it (its seed will re-run on resume)"
            )
            continue
        if not isinstance(record, dict) or "seed" not in record \
                or "verdict" not in record:
            warn(
                f"corpus {path} line {lineno} is not a fuzz record"
                " (missing seed/verdict); skipping it"
                " (its seed will re-run on resume)"
            )
            continue
        records.append(record)
    return records


# --- configuration and report ------------------------------------------------


@dataclass
class CampaignConfig:
    """Everything one campaign needs; plain data, CLI-shaped."""

    seeds: Sequence[int]
    corpus_path: str
    workers: Optional[int] = 1
    timeout_s: Optional[float] = 120.0
    #: Cells per sweep shard; also the corpus checkpoint granularity.
    shard_size: int = 8
    #: Pin every scenario's horizon (None = per-seed draw).
    horizon_us: Optional[int] = None
    #: Force SIMSAN on/off for every cell (None = REPRO_SIMSAN env).
    simsan: Optional[bool] = None
    #: Re-run ok worker cells in-process and compare records.
    differential: bool = False
    shrink: bool = True
    #: Simulation-run budget per shrink.
    shrink_budget: int = 48
    #: Directory for fuzz-repro-<seed>.json files (None = corpus dir).
    repro_dir: Optional[str] = None
    #: Wall-clock budget; the campaign stops cleanly between shards.
    budget_s: Optional[float] = None
    #: Stop after this many shards (test hook for interrupt/resume).
    max_shards: Optional[int] = None
    #: Fuzz multi-machine fleets (crash/failover/SLO admission) instead
    #: of single-machine scenarios; failures get a ``fleet-repro`` file
    #: (the full spec — fleet draws have no ddmin shrinker yet).
    fleet: bool = False
    #: Answer already-seen cells from the content-addressed sweep cache.
    cache: bool = False
    #: Cache store root (None = $REPRO_CACHE_DIR or .repro-cache).
    cache_dir: Optional[str] = None


@dataclass
class CampaignReport:
    """What a campaign run did and found."""

    corpus_path: str
    #: Cells run this invocation / skipped as already in the corpus.
    ran: int = 0
    resumed: int = 0
    #: Verdict counts over *all* requested seeds, resumed included.
    verdicts: Dict[str, int] = field(default_factory=dict)
    #: Executor crash/timeout retries consumed across all shards.
    retried_cells: int = 0
    #: Cells answered from the sweep cache instead of run.
    cache_hits: int = 0
    repro_files: List[str] = field(default_factory=list)
    #: True if budget_s/max_shards stopped the campaign before the end.
    stopped_early: bool = False

    @property
    def ok(self) -> bool:
        """No bad verdicts so far.  A budget stop is not a failure —
        the campaign is resumable — so ``stopped_early`` is reported
        but does not poison the exit code."""
        return set(self.verdicts) <= {"ok"}

    def summary(self) -> List[str]:
        counts = ", ".join(
            f"{name}={count}" for name, count in sorted(self.verdicts.items())
        ) or "nothing run"
        lines = [
            f"corpus {self.corpus_path}:"
            f" {self.ran} cell(s) run, {self.resumed} resumed"
            f" ({counts}; {self.retried_cells} retried)"
        ]
        if self.cache_hits:
            lines.append(f"{self.cache_hits} cell(s) answered from the sweep cache")
        if self.stopped_early:
            lines.append("stopped early (budget exhausted); resume to continue")
        for path in self.repro_files:
            lines.append(f"repro: {path}")
        return lines


# --- the campaign ------------------------------------------------------------


def _failure_record(seed: int, config: CampaignConfig, outcome) -> Dict[str, Any]:
    """Corpus record for a cell the executor could not complete."""
    if config.fleet:
        from repro.fuzz.fleet import fleet_fingerprint, generate_fleet_scenario

        fingerprint = fleet_fingerprint(
            generate_fleet_scenario(seed, horizon_us=config.horizon_us)
        )
    else:
        fingerprint = generate_scenario(
            seed, horizon_us=config.horizon_us
        ).fingerprint()
    record = {
        "seed": seed,
        "fingerprint": fingerprint,
        "verdict": outcome.status,
        "violations": [],
        "checkpoints": 0,
        "events": 0,
        "digest": "",
    }
    if config.fleet:
        record["fleet"] = True
    return record


def _write_fleet_repro_for(seed: int, config: CampaignConfig, path: str) -> bool:
    """Persist one failing fleet seed as a full-spec repro file.

    Fleet draws have no ddmin shrinker yet, so the repro is the whole
    :class:`~repro.fleet.spec.FleetSpec` plus the violations the
    in-process re-run observed — enough to replay with
    ``run_fleet(FleetSpec.from_json(...))`` byte-for-byte.
    """
    from repro.fuzz.fleet import generate_fleet_scenario, run_fleet_fuzz_record

    record = run_fleet_fuzz_record(
        seed, horizon_us=config.horizon_us, simsan=config.simsan
    )
    if record["verdict"] == "ok":
        # Worker-vs-parent skew only (differential verdict): nothing
        # reproduces in-process, so there is nothing to replay.
        return False
    spec = generate_fleet_scenario(seed, horizon_us=config.horizon_us)
    payload = {
        "schema": "repro.fuzz.fleet-repro/1",
        "seed": seed,
        "fingerprint": record["fingerprint"],
        "verdict": record["verdict"],
        "violations": record["violations"],
        "digest": record["digest"],
        "fleet_spec": spec.to_dict(),
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return True


def _write_repro_for(seed: int, config: CampaignConfig, path: str) -> bool:
    """Re-run, shrink, and persist one failing seed's repro file."""
    if config.fleet:
        return _write_fleet_repro_for(seed, config, path)
    scenario = generate_scenario(seed, horizon_us=config.horizon_us)
    result = run_scenario(scenario, simsan=config.simsan)
    if result.ok:
        # A differential verdict with no in-process violation: there is
        # no failing scenario to shrink, only a worker-vs-parent skew.
        return False
    if config.shrink:
        shrunk = shrink_scenario(
            scenario,
            result.violations[0].name,
            max_runs=config.shrink_budget,
            simsan=config.simsan,
        )
        result = run_scenario(shrunk.scenario, simsan=config.simsan)
    write_repro(path, result)
    return True


def run_campaign(config: CampaignConfig) -> CampaignReport:
    """Run (or resume) one fuzz campaign; see the module docstring."""
    seeds = list(config.seeds)
    if len(set(seeds)) != len(seeds):
        raise CampaignError("campaign seeds must be unique")
    repair_corpus(config.corpus_path)
    existing = load_corpus(config.corpus_path)
    wanted = set(seeds)
    done = {r["seed"] for r in existing}
    pending = [s for s in seeds if s not in done]
    relevant = [r for r in existing if r["seed"] in wanted]
    verdicts = Counter(r["verdict"] for r in relevant)
    failures = [r["seed"] for r in relevant if r["verdict"] == "violation"]

    cell_fn = _fleet_fuzz_cell if config.fleet else _fuzz_cell
    report = CampaignReport(
        corpus_path=config.corpus_path,
        resumed=len(relevant),
    )
    # Host-side campaign control only: the wall clock gates *whether*
    # more shards run, never what any cell computes.
    start = time.monotonic()  # simlint: disable=SL101
    shards = [
        pending[i:i + config.shard_size]
        for i in range(0, len(pending), config.shard_size)
    ]
    parent = os.path.dirname(config.corpus_path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    # One persistent pool serves every shard (the executor leases it
    # per shard); the fork cost is paid once per campaign, not per
    # shard.  The pool spawns lazily, so a serial campaign never forks.
    plan = SweepPlan(
        max_workers=config.workers, timeout_s=config.timeout_s,
        cache=config.cache, cache_dir=config.cache_dir,
    )
    pool = WorkerPool(max_workers=config.workers)
    executor = Executor(plan, pool=pool)
    try:
        with open(config.corpus_path, "a") as fh:
            for shard_no, shard in enumerate(shards):
                if config.max_shards is not None \
                        and shard_no >= config.max_shards:
                    report.stopped_early = True
                    break
                if config.budget_s is not None \
                        and time.monotonic() - start >= config.budget_s:  # simlint: disable=SL101
                    report.stopped_early = True
                    break
                payloads = [
                    (s, config.horizon_us, config.simsan) for s in shard
                ]
                outcomes = executor.run(cell_fn, payloads)
                report.cache_hits += executor.stats.cache_hits
                for seed, outcome in zip(shard, outcomes):
                    if outcome.ok:
                        record = outcome.value
                        if config.differential and outcome.worker >= 0:
                            serial = cell_fn(
                                (seed, config.horizon_us, config.simsan)
                            )
                            if serial != record:
                                record = dict(
                                    record,
                                    verdict="differential",
                                    violations=sorted(
                                        set(record["violations"])
                                        | {"differential"}
                                    ),
                                )
                    else:
                        record = _failure_record(seed, config, outcome)
                    fh.write(json.dumps(record, sort_keys=True) + "\n")
                    verdicts[record["verdict"]] += 1
                    report.ran += 1
                    report.retried_cells += outcome.retries
                    if record["verdict"] in ("violation", "differential"):
                        failures.append(seed)
                # One checkpoint per shard: a kill between shards loses
                # nothing, a kill mid-shard loses at most a torn tail.
                fh.flush()
                os.fsync(fh.fileno())
    finally:
        pool.shutdown()

    report.verdicts = dict(verdicts)

    # Shrink every failing seed that does not already have a repro file
    # (resumed failures included — an interrupt between recording and
    # shrinking heals here).
    repro_dir = config.repro_dir if config.repro_dir is not None \
        else (parent or ".")
    os.makedirs(repro_dir, exist_ok=True)
    stem = "fleet-repro" if config.fleet else "fuzz-repro"
    for seed in failures:
        path = os.path.join(repro_dir, f"{stem}-{seed}.json")
        if os.path.exists(path) or _write_repro_for(seed, config, path):
            report.repro_files.append(path)
    report.repro_files.sort()
    return report
