"""Universal shrinking: ddmin whole scenarios, then the machine itself.

PR 2 could only ddmin a ChaosPlan's event list.  A failing *generated*
scenario has more removable structure: workloads, antagonist bursts,
fault events — and beyond the event list, the machine's own dimensions
(CPUs, memory, disks, horizon).  :func:`shrink_scenario` minimises both
axes:

1. ddmin (:mod:`repro.fuzz.ddmin`) over the combined event list, with
   the violation *name* anchoring the search so the shrink cannot
   wander to a different bug;
2. greedy dimension reduction — repeatedly halve CPUs, memory, and the
   horizon and drop disks (never below the floor a remaining event
   still references), keeping each reduction only if the violation
   still reproduces.

The result lands in a **repro file**: the minimal scenario plus the
violation it produces, replayable with ``python -m repro fuzz --repro
FILE`` (and :func:`replay` from code).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.chaos.plan import AntagonistBurst
from repro.faults import Violation
from repro.fuzz.ddmin import ddmin
from repro.fuzz.runner import ScenarioResult, run_scenario
from repro.fuzz.scenario import ScenarioError, ScenarioSpec, WorkloadSpec
from repro.sim.units import MSEC

#: Repro-file format tag (the scenario inside carries its own).
REPRO_FORMAT = "repro.fuzz-repro/1"

#: Dimension floors the greedy pass never goes below.
MIN_NCPUS = 1
MIN_MEMORY_MB = 8
MIN_HORIZON_US = 200 * MSEC


# --- repro files -------------------------------------------------------------


def repro_record(result: ScenarioResult) -> Dict[str, Any]:
    """The repro-file payload for a failing scenario run."""
    if result.ok:
        raise ValueError("run produced no violation; nothing to reproduce")
    first = result.violations[0]
    return {
        "format": REPRO_FORMAT,
        "scenario": result.scenario.to_dict(),
        "violation": {
            "time_us": first.time_us,
            "name": first.name,
            "detail": first.detail,
        },
    }


def write_repro(path: str, result: ScenarioResult) -> None:
    """Write a failing run's repro file (JSON, stable key order)."""
    with open(path, "w") as fh:
        json.dump(repro_record(result), fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_repro(path: str) -> Tuple[ScenarioSpec, Violation]:
    """Read a repro file back into (scenario, recorded first violation)."""
    with open(path) as fh:
        record = json.load(fh)
    if record.get("format") != REPRO_FORMAT:
        raise ScenarioError(
            f"not a fuzz repro file (format={record.get('format')!r})"
        )
    scenario = ScenarioSpec.from_dict(record["scenario"])
    v = record["violation"]
    return scenario, Violation(v["time_us"], v["name"], v["detail"])


def replay(path: str, simsan: Optional[bool] = None) -> ScenarioResult:
    """Re-run a repro file's scenario; returns the deterministic result."""
    scenario, _ = load_repro(path)
    return run_scenario(scenario, simsan=simsan)


# --- shrinking ---------------------------------------------------------------


@dataclass
class ShrinkScenarioResult:
    """The minimal scenario the search converged on, plus bookkeeping."""

    scenario: ScenarioSpec
    violation_name: str
    runs: int


def _split_events(scenario: ScenarioSpec) -> List[Any]:
    return (
        list(scenario.workloads)
        + list(scenario.bursts)
        + list(scenario.faults.events)
    )


def _join_events(scenario: ScenarioSpec, events: List[Any]) -> ScenarioSpec:
    workloads = [e for e in events if isinstance(e, WorkloadSpec)]
    bursts = [e for e in events if isinstance(e, AntagonistBurst)]
    faults = [
        e for e in events
        if not isinstance(e, (WorkloadSpec, AntagonistBurst))
    ]
    return scenario.replace_events(workloads, bursts, faults)


def _disk_floor(scenario: ScenarioSpec) -> int:
    """Smallest ndisks that keeps every remaining disk reference legal."""
    referenced = [0]
    referenced += [w.mount for w in scenario.workloads]
    referenced += [
        e.disk for e in scenario.faults if getattr(e, "disk", None) is not None
    ]
    return 1 + max(referenced)


def _dim_candidates(scenario: ScenarioSpec) -> List[ScenarioSpec]:
    """The next batch of single-dimension reductions to try, in order."""
    out = []
    if scenario.ncpus > MIN_NCPUS:
        out.append(scenario.replace_machine(
            ncpus=max(MIN_NCPUS, scenario.ncpus // 2)
        ))
    if scenario.memory_mb > MIN_MEMORY_MB:
        out.append(scenario.replace_machine(
            memory_mb=max(MIN_MEMORY_MB, scenario.memory_mb // 2)
        ))
    floor = _disk_floor(scenario)
    if scenario.ndisks > floor:
        out.append(scenario.replace_machine(ndisks=scenario.ndisks - 1))
    if scenario.horizon_us > MIN_HORIZON_US:
        out.append(scenario.replace_machine(
            horizon_us=max(MIN_HORIZON_US, scenario.horizon_us // 2)
        ))
    return out


def shrink_scenario(
    scenario: ScenarioSpec,
    violation_name: str,
    max_runs: int = 64,
    simsan: Optional[bool] = None,
) -> ShrinkScenarioResult:
    """Minimise a failing scenario on both axes within ``max_runs``.

    ``violation_name`` anchors the search: a candidate "fails" only if
    it still produces a violation of that name.  Every probe is a full
    simulation, so ``max_runs`` bounds total cost; whatever the budget,
    the returned scenario is one that still fails.
    """
    runs = 0

    def fails(candidate: ScenarioSpec) -> bool:
        nonlocal runs
        runs += 1
        result = run_scenario(candidate, simsan=simsan)
        return any(v.name == violation_name for v in result.violations)

    if not fails(scenario):
        raise ValueError(
            f"scenario does not produce a {violation_name!r} violation;"
            " cannot shrink"
        )

    # Axis 1: the event list, via universal ddmin.
    if len(scenario) > 0 and runs < max_runs:
        # The closure already counts every ddmin probe in ``runs``, so
        # the returned probe count is deliberately unused.
        minimal, _ = ddmin(
            _split_events(scenario),
            lambda events: fails(_join_events(scenario, events)),
            max_runs=max_runs - runs,
        )
        scenario = _join_events(scenario, minimal)

    # Axis 2: machine dimensions, greedily.
    progressed = True
    while progressed and runs < max_runs:
        progressed = False
        for candidate in _dim_candidates(scenario):
            if runs >= max_runs:
                break
            if fails(candidate):
                scenario = candidate
                progressed = True
                break

    return ShrinkScenarioResult(
        scenario=scenario, violation_name=violation_name, runs=runs
    )
