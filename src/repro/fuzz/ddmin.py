"""Universal delta debugging: ddmin over any list of removable items.

PR 2's :func:`repro.chaos.shrink.shrink_plan` carried its own copy of
the ddmin loop, hard-wired to chaos events.  The fuzzer needs the same
minimisation over a richer item set (workloads, antagonist bursts,
fault events), so the algorithm now lives here, generic over *any*
sequence of items plus a ``fails`` predicate: :func:`ddmin` returns the
smallest item subset it found for which ``fails`` still returns True.

The predicate is typically one full simulation per call, so the search
is bounded by ``max_runs`` rather than run to convergence; ddmin's
subset order preserves item order, which keeps time-ordered event
schedules meaningful without any domain knowledge here.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple, TypeVar

T = TypeVar("T")


def ddmin(
    items: Sequence[T],
    fails: Callable[[List[T]], bool],
    max_runs: int = 64,
) -> Tuple[List[T], int]:
    """Minimise ``items`` to a small subset for which ``fails`` holds.

    The caller must have established that ``fails(list(items))`` is
    True; ddmin only shrinks, it never re-checks the full set.  Returns
    ``(minimal_items, runs)`` where ``runs`` counts the ``fails`` calls
    spent (each one is typically a whole simulation).  The result is
    1-minimal within budget: classic ddmin [ZH02] over subsets and
    complements, ending with an explicit empty-set probe so a failure
    that needs *no* items at all (a sabotaged kernel, a planted bug)
    shrinks all the way down.
    """
    if max_runs < 1:
        raise ValueError(f"max_runs must be >= 1, got {max_runs}")
    events = list(items)
    runs = 0

    def probe(subset: List[T]) -> bool:
        nonlocal runs
        runs += 1
        return fails(subset)

    n = 2
    while len(events) >= 2 and runs < max_runs:
        chunk = max(1, len(events) // n)
        subsets = [events[i:i + chunk] for i in range(0, len(events), chunk)]
        reduced = False
        for i, subset in enumerate(subsets):
            if runs >= max_runs:
                break
            complement = [e for j, s in enumerate(subsets) if j != i for e in s]
            if probe(subset):
                events, n = subset, 2
                reduced = True
                break
            if (len(subsets) > 2 and complement and runs < max_runs
                    and probe(complement)):
                events, n = complement, max(2, n - 1)
                reduced = True
                break
        if not reduced:
            if n >= len(events):
                break
            n = min(len(events), n * 2)

    # The sabotage-only case: the bug fires with no items at all.
    if events and runs < max_runs and probe([]):
        events = []

    return events, runs
