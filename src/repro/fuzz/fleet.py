"""The fuzzer's fleet dimension: random fleets, crash schedules, SLOs.

:func:`generate_fleet_scenario` draws one legal-by-construction
:class:`~repro.fleet.spec.FleetSpec` from a seed — machine count and
shapes, an SPU population with random demands and SLO floors that
never overcommits a home machine, and a fleet fault schedule where
crash/recover alternate per machine and every partition window ends
before the horizon.  :func:`run_fleet_fuzz_record` runs it through
:func:`repro.fleet.runner.run_fleet_record` and reshapes the result
into the campaign's corpus-record schema, so fleet cells flow through
the same resumable JSONL corpus, sharding, and differential replay as
single-machine scenario cells.

Everything derives from ``random.Random(f"{seed}/fuzz/fleet")``: the
corpus stores seeds, not fleets.
"""

from __future__ import annotations

import hashlib
import os
import random
from typing import Any, Dict, Optional

from repro.faults.fleet import (
    FleetFaultPlan,
    MachineCrash,
    MachineRecover,
    NetworkPartition,
)
from repro.fleet.runner import run_fleet_record
from repro.fleet.spec import (
    FLEET_SCHEMES,
    FleetMachineSpec,
    FleetSpec,
    FleetSpuSpec,
)
from repro.sim.units import MSEC

#: Fleet shapes the generator draws from.
GEN_MACHINES = (2, 3, 4)
GEN_NCPUS = (2, 4)
GEN_HORIZONS = (300 * MSEC, 500 * MSEC)
#: Max SPUs per home machine (subject to the capacity budget).
MAX_SPUS_PER_MACHINE = 2


def generate_fleet_scenario(
    seed: int,
    horizon_us: Optional[int] = None,
    scheme: Optional[str] = None,
) -> FleetSpec:
    """Draw a random, legal fleet from ``seed``.

    The draw is legal at generation time: SPU demands are budgeted
    against each home machine's capacity, at most one crash per
    machine (with an optional later recovery keeping the lifecycle
    alternation), and partitions only ever name machines the fleet
    has.  ``horizon_us``/``scheme`` pin those draws, mirroring
    :func:`repro.fuzz.generate.generate_scenario`.
    """
    rng = random.Random(f"{seed}/fuzz/fleet")

    n_machines = rng.choice(GEN_MACHINES)
    drawn_scheme = rng.choice(FLEET_SCHEMES)
    drawn_horizon = rng.choice(GEN_HORIZONS)
    if scheme is not None:
        drawn_scheme = scheme
    if horizon_us is not None:
        drawn_horizon = horizon_us

    machines = [
        FleetMachineSpec(ncpus=rng.choice(GEN_NCPUS), memory_mb=16)
        for _ in range(n_machines)
    ]
    spus = []
    placement: Dict[str, int] = {}
    for index, machine in enumerate(machines):
        budget = float(machine.ncpus)
        for n in range(rng.randint(1, MAX_SPUS_PER_MACHINE)):
            if budget < 0.5:
                break
            demand = rng.choice([0.5, 1.0, 1.5])
            demand = min(demand, budget)
            budget -= demand
            spu = FleetSpuSpec(
                name=f"spu{index}-{n}",
                demand_cpus=demand,
                slo_min_fraction=rng.choice([0.25, 0.5, 0.75, 0.9]),
                jobs=rng.randint(1, 2),
                rounds=rng.randint(50, 200),
                compute_us=rng.choice([2000, 5000]),
            )
            spus.append(spu)
            placement[spu.name] = index

    # Fault schedule: each machine crashes at most once, optionally
    # recovering later; one optional partition window inside the
    # horizon.  Crash times keep clear of 0 and the horizon so every
    # run has a pre-fault and post-fault epoch.
    events = []
    crashed = [i for i in range(n_machines) if rng.random() < 0.6]
    # Never crash everything at once: keep machine 0's index out if
    # the draw selected the whole fleet.
    if len(crashed) == n_machines:
        crashed = crashed[1:]
    for machine in crashed:
        at_us = rng.randrange(drawn_horizon // 4, (3 * drawn_horizon) // 4)
        events.append(MachineCrash(at_us=at_us, machine=machine))
        if rng.random() < 0.5:
            recover_at = rng.randrange(at_us + 1, drawn_horizon)
            events.append(MachineRecover(at_us=recover_at, machine=machine))
    if rng.random() < 0.4:
        target = tuple(sorted(rng.sample(
            range(n_machines), rng.randint(1, n_machines)
        )))
        at_us = rng.randrange(0, (3 * drawn_horizon) // 4)
        events.append(NetworkPartition(
            at_us=at_us,
            machines=target,
            duration_us=rng.randrange(1, drawn_horizon - at_us + 1),
        ))

    return FleetSpec(
        machines=machines,
        spus=spus,
        placement=placement,
        scheme=drawn_scheme,
        seed=seed,
        horizon_us=drawn_horizon,
        faults=FleetFaultPlan(events),
    )


def fleet_fingerprint(spec: FleetSpec) -> str:
    """Stable short hash of the full fleet draw (the corpus handle)."""
    return hashlib.sha256(
        spec.to_json(indent=None).encode()
    ).hexdigest()[:12]


def run_fleet_fuzz_record(
    seed: int,
    horizon_us: Optional[int] = None,
    simsan: Optional[bool] = None,
) -> Dict[str, Any]:
    """One fleet cell's corpus record: a pure function of the inputs.

    Matches the single-machine record schema (seed, fingerprint,
    verdict, violations, checkpoints, events, digest) so corpus
    resume, repair and reporting treat both dimensions identically;
    ``checkpoints`` counts the fleet's durable rounds.  ``simsan`` is
    forced via the same environment switch the kernel reads at boot —
    every machine in the fleet boots inside the override.
    """
    spec = generate_fleet_scenario(seed, horizon_us=horizon_us)
    # The kernel consults REPRO_SIMSAN at boot; flipping it around the
    # run is the one seam that reaches every lazily-built machine.
    env_before = os.environ.get("REPRO_SIMSAN")  # simlint: disable=SL104
    try:
        if simsan is True:
            os.environ["REPRO_SIMSAN"] = "1"  # simlint: disable=SL104
        elif simsan is False:
            os.environ.pop("REPRO_SIMSAN", None)  # simlint: disable=SL104
        record = run_fleet_record(spec)
    finally:
        if env_before is None:
            os.environ.pop("REPRO_SIMSAN", None)  # simlint: disable=SL104
        else:
            os.environ["REPRO_SIMSAN"] = env_before  # simlint: disable=SL104
    return {
        "seed": seed,
        "fingerprint": fleet_fingerprint(spec),
        "verdict": record["verdict"],
        "violations": record["violations"],
        "checkpoints": sum(record["progress"].values()),
        "events": record["events"],
        "digest": record["digest"],
        "fleet": True,
    }
