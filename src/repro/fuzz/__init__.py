"""repro.fuzz — generative scenario fuzzing for the simulator.

The chaos harness (PR 2) replays *hand-shaped* adversity: a fixed
machine, a fixed victim, randomized bursts and faults.  The fuzzer
generalises every axis the paper's claims quantify over — machine
shape, allocation scheme, workload mix, antagonist schedule, fault
schedule — into one seeded, legal-by-construction draw
(:func:`generate_scenario`), runs it under the full oracle stack
(:func:`run_scenario`), campaigns over seed ranges with a resumable
JSONL corpus (:func:`run_campaign`), and shrinks every failure to a
minimal replayable repro (:func:`shrink_scenario`), with the ddmin
core (:func:`ddmin`) now generic enough that the chaos shrinker is a
client of it too.

The fleet dimension (:func:`generate_fleet_scenario`,
:func:`run_fleet_fuzz_record`; ``--fleet`` on the CLI) draws whole
multi-machine fleets — crash/recover/partition schedules, SPU
failover, SLO admission — and judges them with the fleet watchdog,
flowing through the same resumable corpus and sharding.
"""

from repro.fuzz.campaign import (
    CampaignConfig,
    CampaignError,
    CampaignReport,
    load_corpus,
    repair_corpus,
    run_campaign,
)
from repro.fuzz.ddmin import ddmin
from repro.fuzz.fleet import (
    fleet_fingerprint,
    generate_fleet_scenario,
    run_fleet_fuzz_record,
)
from repro.fuzz.generate import generate_scenario
from repro.fuzz.runner import ScenarioResult, run_record, run_scenario
from repro.fuzz.scenario import (
    SCHEMES,
    WORKLOAD_KINDS,
    ScenarioError,
    ScenarioSpec,
    WorkloadSpec,
)
from repro.fuzz.shrink import (
    ShrinkScenarioResult,
    load_repro,
    replay,
    shrink_scenario,
    write_repro,
)

__all__ = [
    "CampaignConfig",
    "CampaignError",
    "CampaignReport",
    "SCHEMES",
    "ScenarioError",
    "ScenarioResult",
    "ScenarioSpec",
    "ShrinkScenarioResult",
    "WORKLOAD_KINDS",
    "WorkloadSpec",
    "ddmin",
    "fleet_fingerprint",
    "generate_fleet_scenario",
    "generate_scenario",
    "load_corpus",
    "load_repro",
    "repair_corpus",
    "replay",
    "run_campaign",
    "run_fleet_fuzz_record",
    "run_record",
    "run_scenario",
    "shrink_scenario",
    "write_repro",
]
