"""repro.fuzz — generative scenario fuzzing for the simulator.

The chaos harness (PR 2) replays *hand-shaped* adversity: a fixed
machine, a fixed victim, randomized bursts and faults.  The fuzzer
generalises every axis the paper's claims quantify over — machine
shape, allocation scheme, workload mix, antagonist schedule, fault
schedule — into one seeded, legal-by-construction draw
(:func:`generate_scenario`), runs it under the full oracle stack
(:func:`run_scenario`), campaigns over seed ranges with a resumable
JSONL corpus (:func:`run_campaign`), and shrinks every failure to a
minimal replayable repro (:func:`shrink_scenario`), with the ddmin
core (:func:`ddmin`) now generic enough that the chaos shrinker is a
client of it too.
"""

from repro.fuzz.campaign import (
    CampaignConfig,
    CampaignError,
    CampaignReport,
    load_corpus,
    repair_corpus,
    run_campaign,
)
from repro.fuzz.ddmin import ddmin
from repro.fuzz.generate import generate_scenario
from repro.fuzz.runner import ScenarioResult, run_record, run_scenario
from repro.fuzz.scenario import (
    SCHEMES,
    WORKLOAD_KINDS,
    ScenarioError,
    ScenarioSpec,
    WorkloadSpec,
)
from repro.fuzz.shrink import (
    ShrinkScenarioResult,
    load_repro,
    replay,
    shrink_scenario,
    write_repro,
)

__all__ = [
    "CampaignConfig",
    "CampaignError",
    "CampaignReport",
    "SCHEMES",
    "ScenarioError",
    "ScenarioResult",
    "ScenarioSpec",
    "ShrinkScenarioResult",
    "WORKLOAD_KINDS",
    "WorkloadSpec",
    "ddmin",
    "generate_scenario",
    "load_corpus",
    "load_repro",
    "repair_corpus",
    "replay",
    "run_campaign",
    "run_record",
    "run_scenario",
    "shrink_scenario",
    "write_repro",
]
