"""``python -m repro.fuzz`` — generative scenario fuzzing campaigns.

Two modes:

* **campaign** (default): run seeds through generate → run → judge,
  sharded across workers, appending every verdict to a JSONL corpus.
  Interrupting is safe — re-running the same command resumes from the
  corpus and converges on the byte-identical file.  Exits 1 if any
  requested seed's verdict is not ``ok``; every violation is shrunk to
  a minimal ``fuzz-repro-<seed>.json``.
* **replay** (``--repro FILE``): re-run one repro file's scenario and
  exit 1 if the recorded violation still reproduces.  Fleet repro
  files (``fleet-repro-<seed>.json``, written by ``--fleet``
  campaigns) replay through :func:`repro.fleet.run_fleet`.

``--fleet`` switches the campaign's cell from single-machine
scenarios to randomly drawn multi-machine fleets with whole-machine
crash/recover/partition schedules, judged by the fleet watchdog.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.fuzz.campaign import CampaignConfig, run_campaign
from repro.fuzz.shrink import replay
from repro.sim.units import MSEC


def main(argv: List[str] = sys.argv[1:]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.fuzz",
        description="Generative scenario fuzzer: random machines, workload"
        " mixes, antagonist bursts, and fault schedules, judged by the"
        " invariant/contract/sanitizer oracle stack.",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="first seed of the campaign range (default: 0)",
    )
    parser.add_argument(
        "--count", type=int, default=50,
        help="number of consecutive seeds to fuzz (default: 50)",
    )
    parser.add_argument(
        "--seeds", type=int, nargs="+", default=None,
        help="explicit seed list (overrides --seed/--count)",
    )
    parser.add_argument(
        "--corpus", default="fuzz-corpus.jsonl",
        help="append-only JSONL corpus; doubles as the resume checkpoint"
        " (default: fuzz-corpus.jsonl)",
    )
    parser.add_argument(
        "--horizon-ms", type=int, default=1000,
        help="simulated horizon per scenario in milliseconds"
        " (default: 1000; 0 = let each seed draw its own)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes to fan cells across"
        " (default: 1 = in-process; 0 = auto)",
    )
    parser.add_argument(
        "--timeout-s", type=float, default=120.0,
        help="wall-clock limit per cell before its worker is killed"
        " and the cell retried (default: 120)",
    )
    parser.add_argument(
        "--budget-s", type=float, default=None,
        help="wall-clock budget for the whole campaign; stops cleanly"
        " between shards, resumable (default: none)",
    )
    parser.add_argument(
        "--simsan", action="store_true",
        help="force the SIMSAN runtime sanitizer on for every cell",
    )
    parser.add_argument(
        "--fleet", action="store_true",
        help="fuzz multi-machine fleets (whole-machine crashes, SPU"
        " failover, SLO admission) instead of single-machine scenarios;"
        " failures are written as full-spec fleet-repro-<seed>.json",
    )
    parser.add_argument(
        "--differential", action="store_true",
        help="re-run ok worker cells in-process and flag any"
        " serial-vs-parallel record divergence",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="write repro files without ddmin-minimising them first",
    )
    parser.add_argument(
        "--shrink-budget", type=int, default=48,
        help="simulation runs each shrink may spend (default: 48)",
    )
    parser.add_argument(
        "--repro", default=None, metavar="FILE",
        help="replay mode: re-run FILE's scenario and exit 1 if its"
        " violation still reproduces",
    )
    parser.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=False,
        help="answer already-fuzzed (seed, horizon, simsan) cells from"
        " the content-addressed sweep cache; corpus bytes are identical"
        " either way (default: --no-cache)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="sweep-cache store root (default: $REPRO_CACHE_DIR or"
        " .repro-cache)",
    )
    args = parser.parse_args(argv)

    if args.repro is not None:
        import json

        with open(args.repro) as fh:
            payload = json.load(fh)
        if "fleet_spec" in payload:
            from repro.fleet import FleetSpec, run_fleet

            result = run_fleet(FleetSpec.from_dict(payload["fleet_spec"]))
            print(f"replayed {args.repro}: {result.verdict}"
                  f" ({sum(result.progress.values())} durable rounds,"
                  f" {len(result.violations)} violations)")
            for violation in result.violations:
                print(f"  [t={violation.time_us}us]"
                      f" {violation.name}: {violation.detail}")
            return 1 if result.violations else 0
        result = replay(args.repro, simsan=True if args.simsan else None)
        print(f"replayed {args.repro}: {result.verdict}"
              f" ({result.checkpoints} checkpoints,"
              f" {len(result.violations)} violations)")
        for violation in result.violations:
            print(f"  [t={violation.time_us}us]"
                  f" {violation.name}: {violation.detail}")
        return 1 if result.violations else 0

    seeds = args.seeds if args.seeds is not None \
        else list(range(args.seed, args.seed + args.count))
    config = CampaignConfig(
        seeds=seeds,
        corpus_path=args.corpus,
        workers=None if args.workers == 0 else args.workers,
        timeout_s=args.timeout_s,
        horizon_us=args.horizon_ms * MSEC if args.horizon_ms else None,
        simsan=True if args.simsan else None,
        differential=args.differential,
        shrink=not args.no_shrink,
        shrink_budget=args.shrink_budget,
        budget_s=args.budget_s,
        fleet=args.fleet,
        cache=args.cache,
        cache_dir=args.cache_dir,
    )
    report = run_campaign(config)
    for line in report.summary():
        print(line)
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
