"""The fuzzer's unit of work: one complete, picklable scenario.

A :class:`ScenarioSpec` describes *everything* about one generated
simulation — machine shape, allocation scheme, workload mix, antagonist
bursts, hardware fault schedule, horizon, seed — as plain data.  It is
the fuzzing analogue of :class:`repro.api.SimulationSpec` (and lowers
onto one via :meth:`simulation_spec`): a pure description whose run is
a function of the spec alone, which is what lets campaign cells fan out
across worker processes, corpus entries replay byte-identically, and
ddmin re-run arbitrary sub-scenarios.

Validation is load-time, not run-time: a scenario that names an unknown
workload, points a fault at a disk the machine does not have, or puts a
workload on a mount past ``ndisks`` is rejected with a message naming
the field — never a mid-run ``KeyError``.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.chaos.plan import AntagonistBurst, ChaosPlanError
from repro.faults.plan import DiskFailure, FaultEvent, FaultPlan, FaultPlanError

#: Scenario format tag for repro files and the corpus.
SCENARIO_FORMAT = "repro.fuzz/1"

#: Workload kinds drawn from the calibrated library.
WORKLOAD_KINDS = (
    "pmake",
    "copy",
    "ocean",
    "simulator",
    "interactive",
    "cpu_hog",
)

#: Legal machine-dimension ranges: generation draws inside them and
#: shrinking never goes below the floors.
NCPUS_RANGE = (1, 16)
MEMORY_MB_RANGE = (8, 128)
NDISKS_RANGE = (1, 4)
SCHEMES = ("smp", "quo", "piso", "stride")

#: SPU names the runner reserves for the victim and burst attacker.
RESERVED_SPUS = ("victim", "attacker")


class ScenarioError(ValueError):
    """Raised for ill-formed scenarios, with the offending field named."""


def _check_int(name: str, value: Any, lo: Optional[int] = None) -> int:
    """Reject NaN/inf/non-integers before they poison a schedule."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ScenarioError(f"{name} must be a number, got {value!r}")
    if isinstance(value, float):
        if not math.isfinite(value) or value != int(value):
            raise ScenarioError(f"{name} must be a finite integer, got {value!r}")
        value = int(value)
    if lo is not None and value < lo:
        raise ScenarioError(f"{name} must be >= {lo}, got {value}")
    return value


@dataclass(frozen=True)
class WorkloadSpec:
    """One workload from the calibrated library, placed and scheduled.

    ``intensity`` scales the job's size (task counts, file sizes,
    compute time) in calibrated steps; ``mount`` pins the workload's
    files to one disk so dropping *other* scenario elements cannot move
    its I/O.
    """

    kind: str
    spu: str
    start_us: int = 0
    mount: int = 0
    intensity: int = 1

    def _validate(self, ndisks: int) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise ScenarioError(
                f"unknown workload {self.kind!r};"
                f" expected one of {WORKLOAD_KINDS}"
            )
        if not self.spu or not isinstance(self.spu, str):
            raise ScenarioError(f"workload needs an SPU name: {self!r}")
        if self.spu in RESERVED_SPUS:
            raise ScenarioError(
                f"SPU name {self.spu!r} is reserved for the harness"
            )
        _check_int("workload start_us", self.start_us, lo=0)
        _check_int("workload intensity", self.intensity, lo=1)
        if self.intensity > 4:
            raise ScenarioError(f"intensity must be <= 4, got {self.intensity}")
        mount = _check_int("workload mount", self.mount, lo=0)
        if mount >= ndisks:
            raise ScenarioError(
                f"workload mount {mount} outside machine with {ndisks} disk(s)"
            )


@dataclass
class ScenarioSpec:
    """A validated, replayable fuzz scenario."""

    seed: int
    ncpus: int
    memory_mb: int
    ndisks: int
    scheme: str
    horizon_us: int
    workloads: List[WorkloadSpec] = field(default_factory=list)
    bursts: List[AntagonistBurst] = field(default_factory=list)
    faults: FaultPlan = field(default_factory=FaultPlan)

    def __post_init__(self) -> None:
        _check_int("seed", self.seed, lo=0)
        for name, value, (lo, hi) in (
            ("ncpus", self.ncpus, NCPUS_RANGE),
            ("memory_mb", self.memory_mb, MEMORY_MB_RANGE),
            ("ndisks", self.ndisks, NDISKS_RANGE),
        ):
            _check_int(name, value, lo=lo)
            if value > hi:
                raise ScenarioError(f"{name} must be <= {hi}, got {value}")
        if self.scheme not in SCHEMES:
            raise ScenarioError(
                f"unknown scheme {self.scheme!r}; expected one of {SCHEMES}"
            )
        _check_int("horizon_us", self.horizon_us, lo=1)
        for workload in self.workloads:
            workload._validate(self.ndisks)
        for burst in self.bursts:
            burst._validate()
        for event in self.faults:
            disk = getattr(event, "disk", None)
            if disk is not None and disk >= self.ndisks:
                raise ScenarioError(
                    f"fault targets disk {disk} outside machine"
                    f" with {self.ndisks} disk(s): {event!r}"
                )
            if isinstance(event, DiskFailure) and event.disk == 0:
                raise ScenarioError(
                    "disk 0 is the failover target and may not die"
                )
        self.workloads = sorted(
            self.workloads, key=lambda w: (w.start_us, w.spu, w.kind)
        )
        self.bursts = sorted(self.bursts, key=lambda b: (b.at_us, b.kind))

    def __len__(self) -> int:
        return len(self.workloads) + len(self.bursts) + len(self.faults)

    # --- derived forms -----------------------------------------------------

    def simulation_spec(self):
        """Lower onto the ordinary :class:`repro.api.SimulationSpec`."""
        from repro.api import SimulationSpec
        from repro.core.schemes import scheme_by_name

        spus = list(RESERVED_SPUS) + sorted({w.spu for w in self.workloads})
        return SimulationSpec(
            ncpus=self.ncpus,
            memory_mb=self.memory_mb,
            scheme=scheme_by_name(self.scheme),
            spus=spus,
            disks=self.ndisks,
            seed=self.seed,
        )

    def replace_events(
        self,
        workloads: List[WorkloadSpec],
        bursts: List[AntagonistBurst],
        faults: List[FaultEvent],
    ) -> "ScenarioSpec":
        """The same machine with a different (sub)set of events."""
        return ScenarioSpec(
            seed=self.seed,
            ncpus=self.ncpus,
            memory_mb=self.memory_mb,
            ndisks=self.ndisks,
            scheme=self.scheme,
            horizon_us=self.horizon_us,
            workloads=list(workloads),
            bursts=list(bursts),
            faults=FaultPlan(list(faults)),
        )

    def replace_machine(
        self,
        ncpus: Optional[int] = None,
        memory_mb: Optional[int] = None,
        ndisks: Optional[int] = None,
        horizon_us: Optional[int] = None,
    ) -> "ScenarioSpec":
        """The same events on a resized machine (shrinking's second axis)."""
        return ScenarioSpec(
            seed=self.seed,
            ncpus=self.ncpus if ncpus is None else ncpus,
            memory_mb=self.memory_mb if memory_mb is None else memory_mb,
            ndisks=self.ndisks if ndisks is None else ndisks,
            scheme=self.scheme,
            horizon_us=self.horizon_us if horizon_us is None else horizon_us,
            workloads=list(self.workloads),
            bursts=list(self.bursts),
            faults=FaultPlan(list(self.faults.events)),
        )

    # --- identity ----------------------------------------------------------

    def fingerprint(self) -> str:
        """A short stable hash of the whole scenario (corpus identity)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    # --- JSON round-trip ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": SCENARIO_FORMAT,
            "seed": self.seed,
            "ncpus": self.ncpus,
            "memory_mb": self.memory_mb,
            "ndisks": self.ndisks,
            "scheme": self.scheme,
            "horizon_us": self.horizon_us,
            "workloads": [
                {
                    "kind": w.kind,
                    "spu": w.spu,
                    "start_us": w.start_us,
                    "mount": w.mount,
                    "intensity": w.intensity,
                }
                for w in self.workloads
            ],
            "bursts": [
                {"at_us": b.at_us, "kind": b.kind, "scale": b.scale}
                for b in self.bursts
            ],
            "faults": self.faults.to_dicts(),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "ScenarioSpec":
        if not isinstance(record, dict):
            raise ScenarioError(f"scenario must be an object: {record!r}")
        fmt = record.get("format", SCENARIO_FORMAT)
        if fmt != SCENARIO_FORMAT:
            raise ScenarioError(
                f"not a fuzz scenario (format={fmt!r}, expected"
                f" {SCENARIO_FORMAT!r})"
            )
        missing = {
            "seed", "ncpus", "memory_mb", "ndisks", "scheme", "horizon_us",
            "workloads", "bursts", "faults",
        } - set(record)
        if missing:
            raise ScenarioError(f"scenario missing fields: {sorted(missing)}")
        try:
            workloads = [WorkloadSpec(**w) for w in record["workloads"]]
        except TypeError as exc:
            raise ScenarioError(f"bad workload fields: {exc}") from None
        try:
            bursts = [AntagonistBurst(**b) for b in record["bursts"]]
        except TypeError as exc:
            raise ScenarioError(f"bad burst fields: {exc}") from None
        try:
            faults = FaultPlan.from_dicts(record["faults"])
        except FaultPlanError as exc:
            raise ScenarioError(f"bad fault plan: {exc}") from None
        try:
            return cls(
                seed=record["seed"],
                ncpus=record["ncpus"],
                memory_mb=record["memory_mb"],
                ndisks=record["ndisks"],
                scheme=record["scheme"],
                horizon_us=record["horizon_us"],
                workloads=workloads,
                bursts=bursts,
                faults=faults,
            )
        except (ChaosPlanError, FaultPlanError) as exc:
            raise ScenarioError(str(exc)) from None

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            record = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"scenario is not valid JSON: {exc}") from None
        return cls.from_dict(record)
