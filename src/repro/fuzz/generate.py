"""Seeded, legal-by-construction scenario generation.

:func:`generate_scenario` draws one :class:`~repro.fuzz.scenario.ScenarioSpec`
from a seed: machine shape, scheme, a workload mix from the calibrated
library, antagonist bursts, and a fault schedule.  Like
:func:`repro.chaos.plan.generate_plan` it walks simulated time with a
small state machine so the draw is legal at generation time — the
machine keeps at least half its processors, disk 0 (the failover
target) never dies, memory losses stay bounded per event, and every
fault/workload targets a disk the drawn machine actually has.

Everything derives from ``random.Random(f"{seed}/fuzz/scenario")``, so
the mapping seed -> scenario is stable across runs, machines, and
worker processes — the corpus stores seeds, not scenarios.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.chaos.plan import AntagonistBurst
from repro.faults.plan import (
    CpuAdd,
    CpuRemove,
    DiskFailure,
    DiskTransient,
    FaultEvent,
    FaultPlan,
    MemoryLoss,
)
from repro.fuzz.scenario import SCHEMES, WORKLOAD_KINDS, ScenarioSpec, WorkloadSpec
from repro.sim.units import MSEC, SEC

#: Machine shapes the generator draws from (all inside the legal
#: ranges, all big enough for the victim's working set).
GEN_NCPUS = (2, 3, 4, 6, 8)
GEN_MEMORY_MB = (12, 16, 24, 32)
GEN_NDISKS = (1, 2, 3)
GEN_HORIZONS = (1 * SEC, 2 * SEC)

#: Event-count ceilings per scenario.
MAX_WORKLOADS = 3
MAX_BURSTS = 2
MAX_FAULTS = 3


def generate_scenario(
    seed: int,
    horizon_us: Optional[int] = None,
    scheme: Optional[str] = None,
) -> ScenarioSpec:
    """Draw a random, legal scenario from ``seed``.

    ``horizon_us``/``scheme`` pin those draws (the CI campaign pins the
    horizon to keep its budget); everything else comes from the seed.
    """
    rng = random.Random(f"{seed}/fuzz/scenario")

    ncpus = rng.choice(GEN_NCPUS)
    memory_mb = rng.choice(GEN_MEMORY_MB)
    ndisks = rng.choice(GEN_NDISKS)
    drawn_scheme = rng.choice(SCHEMES)
    drawn_horizon = rng.choice(GEN_HORIZONS)
    if scheme is not None:
        drawn_scheme = scheme
    if horizon_us is not None:
        drawn_horizon = horizon_us

    # Workload mix: jobs land in the first half so their behaviour has
    # time to interact with the bursts and faults that follow.
    workloads = []
    for _ in range(rng.randint(1, MAX_WORKLOADS)):
        workloads.append(
            WorkloadSpec(
                kind=rng.choice(WORKLOAD_KINDS),
                spu=f"load{rng.randint(0, 1)}",
                start_us=rng.randrange(0, max(1, drawn_horizon // 2)),
                mount=rng.randrange(ndisks),
                intensity=rng.randint(1, 2),
            )
        )

    bursts = []
    for _ in range(rng.randint(0, MAX_BURSTS)):
        bursts.append(
            AntagonistBurst(
                at_us=rng.randrange(0, max(1, drawn_horizon // 2)),
                kind=rng.choice(
                    ("fork_bomb", "memory_bomb", "disk_flooder",
                     "cache_polluter", "lock_hogger", "metadata_storm")
                ),
                scale=rng.choice([0.5, 1.0, 1.0, 1.5]),
            )
        )

    # Fault schedule: drawn in time order against a running machine
    # model, mirroring the chaos generator but on the drawn shape.
    events: list = []
    min_online = max(1, ncpus // 2)
    cpus_online = ncpus
    dead_disks: set = set()
    times = sorted(
        rng.randrange(0, drawn_horizon)
        for _ in range(rng.randint(0, MAX_FAULTS))
    )
    for at_us in times:
        choices = ["disk_transient", "memory_loss"]
        if cpus_online > min_online:
            choices.append("cpu_remove")
        if cpus_online < ncpus:
            choices.append("cpu_add")
        killable = [d for d in range(1, ndisks) if d not in dead_disks]
        if killable:
            choices.append("disk_failure")
        kind = rng.choice(choices)
        if kind == "disk_transient":
            events.append(
                DiskTransient(
                    at_us=at_us,
                    disk=rng.randrange(ndisks),
                    duration_us=rng.randrange(50 * MSEC, 400 * MSEC),
                    error_rate=round(rng.uniform(0.3, 0.9), 2),
                )
            )
        elif kind == "memory_loss":
            # At most 1/8 of the machine per event, well under the
            # victim's entitlement.
            ceiling = (memory_mb * 256) // 8
            events.append(
                MemoryLoss(at_us=at_us, pages=rng.randrange(64, ceiling))
            )
        elif kind == "cpu_remove":
            events.append(CpuRemove(at_us=at_us))
            cpus_online -= 1
        elif kind == "cpu_add":
            events.append(CpuAdd(at_us=at_us))
            cpus_online += 1
        else:
            disk = rng.choice(killable)
            events.append(DiskFailure(at_us=at_us, disk=disk))
            dead_disks.add(disk)

    faults: list[FaultEvent] = events
    return ScenarioSpec(
        seed=seed,
        ncpus=ncpus,
        memory_mb=memory_mb,
        ndisks=ndisks,
        scheme=drawn_scheme,
        horizon_us=drawn_horizon,
        workloads=workloads,
        bursts=bursts,
        faults=FaultPlan(faults),
    )
