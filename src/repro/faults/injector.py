"""Arming a :class:`~repro.faults.plan.FaultPlan` on a live kernel.

Each fault becomes an ordinary simulation event (``daemon=True`` — a
pending fault must not keep an otherwise-finished run alive).  The
injector validates the plan against the machine at arm time, so a plan
naming disk 7 on a two-disk machine fails fast instead of mid-run.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.faults.plan import (
    CpuAdd,
    CpuRemove,
    DiskFailure,
    DiskTransient,
    FaultPlan,
    FaultPlanError,
    MemoryLoss,
)
from repro.kernel.kernel import Kernel, KernelError


class FaultInjector:
    """Schedules a plan's faults against one kernel.

    ``on_error`` controls what happens when an event is *structurally*
    valid but illegal against the machine's state at fire time (e.g. a
    ``CpuAdd`` with nothing offline after delta-shrinking dropped its
    paired ``CpuRemove``): ``"raise"`` (default) propagates the
    :class:`~repro.kernel.kernel.KernelError`; ``"skip"`` logs the
    event as skipped and keeps going — what the chaos harness uses so
    shrunken plans stay runnable.
    """

    def __init__(self, kernel: Kernel, plan: FaultPlan, on_error: str = "raise"):
        if on_error not in ("raise", "skip"):
            raise ValueError(f"on_error must be 'raise' or 'skip', got {on_error!r}")
        self.kernel = kernel
        self.plan = plan
        self.on_error = on_error
        #: (time, description) log of faults actually applied.
        self.applied: List[Tuple[int, str]] = []
        #: (time, description) log of events skipped under on_error="skip".
        self.skipped: List[Tuple[int, str]] = []
        self._armed = False

    def arm(self) -> None:
        """Validate the plan against the machine and schedule it."""
        if self._armed:
            raise FaultPlanError("plan already armed")
        kernel = self.kernel
        ndisks = len(kernel.drives)
        for event in self.plan:
            if isinstance(event, (DiskTransient, DiskFailure)):
                if not 0 <= event.disk < ndisks:
                    raise FaultPlanError(
                        f"{event!r} names disk {event.disk};"
                        f" machine has {ndisks}"
                    )
            elif isinstance(event, (CpuRemove, CpuAdd)):
                if event.cpu is not None and not 0 <= event.cpu < kernel.config.ncpus:
                    raise FaultPlanError(
                        f"{event!r} names cpu {event.cpu};"
                        f" machine has {kernel.config.ncpus}"
                    )
            if event.at_us < kernel.engine.now:
                raise FaultPlanError(f"{event!r} is already in the past")
        for event in self.plan:
            kernel.engine.at(event.at_us, self._apply, event, daemon=True)
        self._armed = True

    # --- event application -------------------------------------------------

    def _apply(self, event) -> None:
        try:
            self._apply_checked(event)
        except KernelError as exc:
            if self.on_error != "skip":
                raise
            self.skipped.append((self.kernel.engine.now, f"{event!r}: {exc}"))

    def _apply_checked(self, event) -> None:
        kernel = self.kernel
        if isinstance(event, DiskTransient):
            drive = kernel.drives[event.disk]
            if drive.alive:
                drive.inject_transient(event.duration_us, event.error_rate)
                self._log(
                    f"disk {event.disk} transient errors for"
                    f" {event.duration_us}us (rate {event.error_rate})"
                )
            return
        if isinstance(event, DiskFailure):
            if kernel.drives[event.disk].alive:
                target = kernel.fail_disk(event.disk)
                self._log(f"disk {event.disk} died; failover to disk {target}")
            return
        if isinstance(event, CpuRemove):
            removed = kernel.remove_cpu(event.cpu)
            self._log(f"cpu {removed} hot-removed")
            return
        if isinstance(event, CpuAdd):
            added = kernel.add_cpu(event.cpu)
            self._log(f"cpu {added} hot-added")
            return
        if isinstance(event, MemoryLoss):
            removed = kernel.remove_memory(event.pages)
            self._log(f"memory module lost: {removed} pages decommissioned")
            return
        raise FaultPlanError(f"unknown fault event {event!r}")

    def _log(self, text: str) -> None:
        self.applied.append((self.kernel.engine.now, text))
