"""Conservation-law watchdog for degraded machines.

Fault handling rearranges ownership — pages are decommissioned, CPU
partitions rebuilt, disk queues handed between drives — and a bug in
any of those paths tends to *leak* (pages charged to nobody, CPU time
from offline processors, requests stranded on dead drives) rather than
crash.  The watchdog re-derives the global invariants from scratch on
every clock tick, so a leak is caught within 10 ms of simulated time
of its introduction.

Checked invariants:

* **page conservation** — pages charged to SPUs plus the free list
  equals the machine's (current, post-decommission) total;
* **CPU capacity** — busy microseconds never exceed the capacity
  integral (CPU-µs the online processors actually offered);
* **level sanity** — no SPU uses more than it is allowed;
* **no starvation** — no runnable process waits longer than the bound
  (livelock in the retry/failover/renegotiation machinery would show
  up here);
* **dead drives are quiet** — a failed drive holds no queued or
  in-flight work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.kernel.kernel import Kernel
from repro.kernel.process import ProcessState
from repro.sim.engine import PeriodicTimer
from repro.sim.units import SEC


class InvariantViolation(AssertionError):
    """Raised in strict mode when a conservation law breaks."""


@dataclass(frozen=True)
class Violation:
    """One recorded invariant breach."""

    time_us: int
    name: str
    detail: str


class InvariantWatchdog:
    """Re-checks kernel-wide invariants every ``period`` microseconds."""

    def __init__(
        self,
        kernel: Kernel,
        period: Optional[int] = None,
        starvation_bound_us: int = 10 * SEC,
        strict: bool = False,
    ):
        if starvation_bound_us <= 0:
            raise ValueError("starvation bound must be positive")
        self.kernel = kernel
        self.period = (
            period if period is not None else kernel.scheme.params.clock_tick
        )
        self.starvation_bound_us = starvation_bound_us
        self.strict = strict
        self.violations: List[Violation] = []
        self.checks_run = 0
        self._timer: Optional[PeriodicTimer] = None

    def start(self) -> None:
        if self._timer is not None:
            raise RuntimeError("watchdog already started")
        self._timer = self.kernel.engine.every(self.period, self.check)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()
            self._timer = None

    # --- the checks --------------------------------------------------------

    def check(self) -> None:
        """Run every invariant once (also callable directly from tests)."""
        self.checks_run += 1
        kernel = self.kernel
        now = kernel.engine.now

        charged = sum(s.memory().used for s in kernel.registry.all_spus())
        total = kernel.memory.total_pages
        free = kernel.memory.free_pages
        if charged + free != total:
            self._flag(
                "page-conservation",
                f"{charged} charged + {free} free != {total} total",
            )
        if free < 0 or total < 1:
            self._flag("page-pool", f"free={free} total={total}")

        capacity = kernel.cpu_capacity_us(now)
        busy = sum(kernel.cpu_busy_us.values())
        if busy > capacity:
            self._flag(
                "cpu-capacity",
                f"busy {busy}us exceeds offered capacity {capacity}us",
            )

        for spu in kernel.registry.all_spus():
            for resource, levels in spu.levels.items():
                if levels.used > levels.allowed:
                    self._flag(
                        "level-sanity",
                        f"SPU {spu.spu_id} uses {levels.used}"
                        f" > allowed {levels.allowed} of {resource}",
                    )

        for proc in kernel.processes.values():
            if proc.state is not ProcessState.RUNNABLE:
                continue
            waited = now - proc.runnable_since
            if waited > self.starvation_bound_us:
                self._flag(
                    "starvation",
                    f"pid {proc.pid} runnable for {waited}us"
                    f" (bound {self.starvation_bound_us}us)",
                )

        for drive in kernel.drives:
            if drive.alive:
                continue
            if drive.queue or drive.busy or drive._in_service is not None:
                self._flag(
                    "dead-drive-quiet",
                    f"dead disk {drive.disk_id} still holds work"
                    f" (queue={len(drive.queue)}, busy={drive.busy})",
                )

    def _flag(self, name: str, detail: str) -> None:
        violation = Violation(self.kernel.engine.now, name, detail)
        self.violations.append(violation)
        if self.strict:
            raise InvariantViolation(f"[t={violation.time_us}us] {name}: {detail}")
