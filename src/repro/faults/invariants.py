"""Conservation-law watchdog for degraded machines.

Fault handling rearranges ownership — pages are decommissioned, CPU
partitions rebuilt, disk queues handed between drives — and a bug in
any of those paths tends to *leak* (pages charged to nobody, CPU time
from offline processors, requests stranded on dead drives) rather than
crash.  The watchdog re-derives the global invariants from scratch on
every clock tick, so a leak is caught within 10 ms of simulated time
of its introduction.

Checked invariants:

* **page conservation** — pages charged to SPUs plus the free list
  equals the machine's (current, post-decommission) total;
* **CPU capacity** — busy microseconds never exceed the capacity
  integral (CPU-µs the online processors actually offered);
* **level sanity** — no SPU uses more than it is allowed;
* **no starvation** — no runnable process waits longer than the bound
  (livelock in the retry/failover/renegotiation machinery would show
  up here);
* **dead drives are quiet** — a failed drive holds no queued or
  in-flight work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.kernel.kernel import Kernel
from repro.kernel.process import ProcessState
from repro.sim.engine import PeriodicTimer
from repro.sim.units import SEC


class InvariantViolation(AssertionError):
    """Raised in strict mode when a conservation law breaks."""


@dataclass(frozen=True)
class Violation:
    """One recorded invariant breach."""

    time_us: int
    name: str
    detail: str


class InvariantWatchdog:
    """Re-checks kernel-wide invariants every ``period`` microseconds."""

    def __init__(
        self,
        kernel: Kernel,
        period: Optional[int] = None,
        starvation_bound_us: int = 10 * SEC,
        strict: bool = False,
    ):
        if starvation_bound_us <= 0:
            raise ValueError("starvation bound must be positive")
        self.kernel = kernel
        self.period = (
            period if period is not None else kernel.scheme.params.clock_tick
        )
        self.starvation_bound_us = starvation_bound_us
        self.strict = strict
        self.violations: List[Violation] = []
        self.checks_run = 0
        self._timer: Optional[PeriodicTimer] = None

    def start(self) -> None:
        if self._timer is not None:
            raise RuntimeError("watchdog already started")
        self._timer = self.kernel.engine.every(self.period, self.check)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()
            self._timer = None

    # --- the checks --------------------------------------------------------

    def check(self) -> None:
        """Run every invariant once (also callable directly from tests)."""
        self.checks_run += 1
        kernel = self.kernel
        now = kernel.engine.now

        charged = sum(s.memory().used for s in kernel.registry.all_spus())
        total = kernel.memory.total_pages
        free = kernel.memory.free_pages
        if charged + free != total:
            self._flag(
                "page-conservation",
                f"{charged} charged + {free} free != {total} total",
            )
        if free < 0 or total < 1:
            self._flag("page-pool", f"free={free} total={total}")

        capacity = kernel.cpu_capacity_us(now)
        busy = sum(kernel.cpu_busy_us.values())
        if busy > capacity:
            self._flag(
                "cpu-capacity",
                f"busy {busy}us exceeds offered capacity {capacity}us",
            )

        for spu in kernel.registry.all_spus():
            for resource, levels in spu.levels.items():
                if levels.used > levels.allowed:
                    self._flag(
                        "level-sanity",
                        f"SPU {spu.spu_id} uses {levels.used}"
                        f" > allowed {levels.allowed} of {resource}",
                    )

        for proc in kernel.processes.values():
            if proc.state is not ProcessState.RUNNABLE:
                continue
            waited = now - proc.runnable_since
            if waited > self.starvation_bound_us:
                self._flag(
                    "starvation",
                    f"pid {proc.pid} runnable for {waited}us"
                    f" (bound {self.starvation_bound_us}us)",
                )

        for drive in kernel.drives:
            if drive.alive:
                continue
            if drive.queue or drive.busy or drive._in_service is not None:
                self._flag(
                    "dead-drive-quiet",
                    f"dead disk {drive.disk_id} still holds work"
                    f" (queue={len(drive.queue)}, busy={drive.busy})",
                )

    def _flag(self, name: str, detail: str) -> None:
        violation = Violation(self.kernel.engine.now, name, detail)
        self.violations.append(violation)
        if self.strict:
            raise InvariantViolation(f"[t={violation.time_us}us] {name}: {detail}")


@dataclass(frozen=True)
class Escalation:
    """One overload-guard action against an abusive SPU."""

    time_us: int
    spu_id: int
    #: ``"throttle"`` (admission limits halved) or ``"kill"`` (the
    #: SPU's largest memory offender was OOM-killed).
    stage: str
    detail: str


class OverloadGuard:
    """Detect → throttle → kill escalation against abusive SPUs.

    The watchdog above checks that the kernel's *books* balance; this
    guard checks that no SPU is *abusing* the kernel's resource paths.
    Each period it sums, per user SPU, the pressure the SPU put on the
    kernel since the last check:

    * memory-allocation denials (a thrasher past its working set),
    * denied ``Spawn`` syscalls (a fork bomb at the process limit),
    * file syscalls delayed or failed by admission control (an I/O
      flood at the in-flight budget).

    An SPU whose pressure exceeds ``pressure_threshold`` is *hot*.
    Staying hot for ``throttle_after`` consecutive checks halves its
    admission limits (:meth:`Kernel.throttle_spu`); staying hot for
    ``kill_after`` checks OOM-kills its largest process — inside the
    offending SPU only — and the ladder re-arms, so a persistently
    abusive SPU is killed down until its pressure subsides.  An SPU
    that goes quiet is unthrottled and its ladder resets.  Every
    action is recorded in :attr:`escalations`.
    """

    def __init__(
        self,
        kernel: Kernel,
        period: Optional[int] = None,
        pressure_threshold: int = 50,
        throttle_after: int = 2,
        kill_after: int = 5,
    ):
        if pressure_threshold <= 0:
            raise ValueError("pressure threshold must be positive")
        if not 0 < throttle_after < kill_after:
            raise ValueError("need 0 < throttle_after < kill_after")
        self.kernel = kernel
        self.period = (
            period if period is not None
            else 10 * kernel.scheme.params.clock_tick
        )
        self.pressure_threshold = pressure_threshold
        self.throttle_after = throttle_after
        self.kill_after = kill_after
        self.escalations: List[Escalation] = []
        self.checks_run = 0
        #: Consecutive hot periods per SPU.
        self._hot: Dict[int, int] = {}
        #: Pressure totals per SPU at the previous check.
        self._seen: Dict[int, int] = {}
        self._timer: Optional[PeriodicTimer] = None

    def start(self) -> None:
        if self._timer is not None:
            raise RuntimeError("guard already started")
        self._timer = self.kernel.engine.every(self.period, self.check)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()
            self._timer = None

    def _pressure_total(self, spu_id: int) -> int:
        kernel = self.kernel
        return (
            kernel.memory.total_denials.get(spu_id, 0)
            + kernel.spawn_denials.get(spu_id, 0)
            + kernel.io_throttled.get(spu_id, 0)
            + kernel.io_rejected.get(spu_id, 0)
        )

    def check(self) -> None:
        """Run one escalation pass (also callable directly from tests)."""
        self.checks_run += 1
        kernel = self.kernel
        now = kernel.engine.now
        for spu in kernel.registry.active_user_spus():
            spu_id = spu.spu_id
            total = self._pressure_total(spu_id)
            delta = total - self._seen.get(spu_id, 0)
            self._seen[spu_id] = total
            if delta < self.pressure_threshold:
                if self._hot.get(spu_id):
                    self._hot[spu_id] = 0
                    if kernel.spu_throttled(spu_id):
                        kernel.unthrottle_spu(spu_id)
                continue
            hot = self._hot.get(spu_id, 0) + 1
            self._hot[spu_id] = hot
            if hot == self.throttle_after:
                kernel.throttle_spu(spu_id)
                self.escalations.append(Escalation(
                    now, spu_id, "throttle",
                    f"SPU {spu_id} hot for {hot} checks"
                    f" (pressure {delta}/check); admission limits halved",
                ))
            elif hot >= self.kill_after:
                victim = kernel.oom_kill(spu_id)
                detail = (
                    f"SPU {spu_id} still hot after throttling;"
                    f" killed pid {victim.pid} ({victim.name})"
                    if victim is not None
                    else f"SPU {spu_id} still hot but has no process to kill"
                )
                self.escalations.append(Escalation(now, spu_id, "kill", detail))
                # Re-arm one rung below the kill threshold: if the SPU
                # stays abusive, another process goes next period.
                self._hot[spu_id] = self.kill_after - 1
