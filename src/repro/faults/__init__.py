"""Deterministic hardware-fault injection (see DESIGN.md).

The paper argues performance isolation must hold "even in the presence
of a misbehaving SPU"; this package extends the claim to misbehaving
*hardware*.  A :class:`~repro.faults.plan.FaultPlan` declares disk
transient-error windows, permanent drive deaths, CPU hot-remove/add
and memory module loss at absolute simulated times; a
:class:`~repro.faults.injector.FaultInjector` arms the plan on a booted
kernel as ordinary (daemon) simulation events, and the
:class:`~repro.faults.invariants.InvariantWatchdog` checks conservation
laws every clock tick while the machine degrades.

Everything is driven by the seeded engine: the same seed and the same
plan give byte-identical runs.

:mod:`repro.faults.fleet` lifts the same idea one level up: a
:class:`~repro.faults.fleet.FleetFaultPlan` schedules whole-machine
crashes, recoveries and network partitions for the fleet layer
(:mod:`repro.fleet`), which answers them with checkpoint/migration
failover instead of in-kernel degradation.
"""

from repro.faults.fleet import (
    FleetFaultEvent,
    FleetFaultPlan,
    MachineCrash,
    MachineRecover,
    NetworkPartition,
)
from repro.faults.injector import FaultInjector
from repro.faults.invariants import (
    Escalation,
    InvariantViolation,
    InvariantWatchdog,
    OverloadGuard,
    Violation,
)
from repro.faults.plan import (
    CpuAdd,
    CpuRemove,
    DiskFailure,
    DiskTransient,
    FaultEvent,
    FaultPlan,
    FaultPlanError,
    MemoryLoss,
)

__all__ = [
    "CpuAdd",
    "CpuRemove",
    "DiskFailure",
    "DiskTransient",
    "Escalation",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FleetFaultEvent",
    "FleetFaultPlan",
    "InvariantViolation",
    "InvariantWatchdog",
    "MachineCrash",
    "MachineRecover",
    "MemoryLoss",
    "NetworkPartition",
    "OverloadGuard",
    "Violation",
]
