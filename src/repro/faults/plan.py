"""Declarative fault schedules.

A :class:`FaultPlan` is data, not behaviour: a validated list of fault
events at absolute simulated times.  The same plan can be armed against
machines running different allocation schemes, which is exactly how the
fault-isolation experiment compares SMP and PIso degradation under
identical hardware trouble.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Union


class FaultPlanError(ValueError):
    """Raised for ill-formed fault plans."""


@dataclass(frozen=True)
class DiskTransient:
    """A window during which a drive's service attempts error out.

    Each attempt inside the window fails independently with
    ``error_rate`` probability (drawn from the drive's forked RNG
    stream); the drive retries with exponential backoff per its
    :class:`~repro.disk.drive.RetryPolicy`.
    """

    at_us: int
    disk: int
    duration_us: int
    error_rate: float = 1.0

    def _validate(self) -> None:
        if self.duration_us <= 0:
            raise FaultPlanError(
                f"transient window must last >= 1us, got {self.duration_us}"
            )
        if not 0.0 <= self.error_rate <= 1.0:
            raise FaultPlanError(f"error rate {self.error_rate} outside [0, 1]")


@dataclass(frozen=True)
class DiskFailure:
    """Permanent drive death; traffic fails over to a surviving mirror."""

    at_us: int
    disk: int

    def _validate(self) -> None:
        return None


@dataclass(frozen=True)
class CpuRemove:
    """Hot-remove one processor (``cpu=None`` picks the highest online)."""

    at_us: int
    cpu: Optional[int] = None

    def _validate(self) -> None:
        return None


@dataclass(frozen=True)
class CpuAdd:
    """Bring an offlined processor back online (repair)."""

    at_us: int
    cpu: Optional[int] = None

    def _validate(self) -> None:
        return None


@dataclass(frozen=True)
class MemoryLoss:
    """Lose ``pages`` physical pages (a memory module dies)."""

    at_us: int
    pages: int

    def _validate(self) -> None:
        if self.pages <= 0:
            raise FaultPlanError(f"memory loss must remove >= 1 page, got {self.pages}")


FaultEvent = Union[DiskTransient, DiskFailure, CpuRemove, CpuAdd, MemoryLoss]


@dataclass
class FaultPlan:
    """A validated, time-ordered schedule of hardware faults."""

    events: List[FaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        for event in self.events:
            self._check(event)
        self.events = sorted(self.events, key=lambda e: e.at_us)

    @staticmethod
    def _check(event: FaultEvent) -> None:
        if not isinstance(
            event, (DiskTransient, DiskFailure, CpuRemove, CpuAdd, MemoryLoss)
        ):
            raise FaultPlanError(f"not a fault event: {event!r}")
        if event.at_us < 0:
            raise FaultPlanError(f"fault scheduled before boot: {event!r}")
        event._validate()

    def add(self, event: FaultEvent) -> "FaultPlan":
        """Append an event, keeping the plan ordered.  Returns self."""
        self._check(event)
        self.events.append(event)
        self.events.sort(key=lambda e: e.at_us)
        return self

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)
