"""Declarative fault schedules.

A :class:`FaultPlan` is data, not behaviour: a validated list of fault
events at absolute simulated times.  The same plan can be armed against
machines running different allocation schemes, which is exactly how the
fault-isolation experiment compares SMP and PIso degradation under
identical hardware trouble.
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Union


class FaultPlanError(ValueError):
    """Raised for ill-formed fault plans."""


def _finite(name: str, value: Any, event: Any) -> None:
    """Reject NaN/inf/non-numbers: ``NaN <= 0`` is False, so without
    this a NaN duration or timestamp would sail through the range
    checks and corrupt the engine's schedule much later."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise FaultPlanError(
            f"{name} must be a finite number, got {value!r} in {event!r}"
        )
    if not math.isfinite(value):
        raise FaultPlanError(
            f"{name} must be finite, got {value!r} in {event!r}"
        )


def _check_disk(disk: Any, event: Any) -> None:
    if isinstance(disk, bool) or not isinstance(disk, int):
        raise FaultPlanError(
            f"disk index must be an integer, got {disk!r} in {event!r}"
        )
    if disk < 0:
        raise FaultPlanError(
            f"disk index must be >= 0, got {disk} in {event!r}"
        )


@dataclass(frozen=True)
class DiskTransient:
    """A window during which a drive's service attempts error out.

    Each attempt inside the window fails independently with
    ``error_rate`` probability (drawn from the drive's forked RNG
    stream); the drive retries with exponential backoff per its
    :class:`~repro.disk.drive.RetryPolicy`.
    """

    at_us: int
    disk: int
    duration_us: int
    error_rate: float = 1.0

    def _validate(self) -> None:
        _finite("transient duration_us", self.duration_us, self)
        _finite("transient error_rate", self.error_rate, self)
        _check_disk(self.disk, self)
        if self.duration_us <= 0:
            raise FaultPlanError(
                f"transient window must last >= 1us, got {self.duration_us}"
            )
        if not 0.0 <= self.error_rate <= 1.0:
            raise FaultPlanError(f"error rate {self.error_rate} outside [0, 1]")


@dataclass(frozen=True)
class DiskFailure:
    """Permanent drive death; traffic fails over to a surviving mirror."""

    at_us: int
    disk: int

    def _validate(self) -> None:
        _check_disk(self.disk, self)


@dataclass(frozen=True)
class CpuRemove:
    """Hot-remove one processor (``cpu=None`` picks the highest online)."""

    at_us: int
    cpu: Optional[int] = None

    def _validate(self) -> None:
        return None


@dataclass(frozen=True)
class CpuAdd:
    """Bring an offlined processor back online (repair)."""

    at_us: int
    cpu: Optional[int] = None

    def _validate(self) -> None:
        return None


@dataclass(frozen=True)
class MemoryLoss:
    """Lose ``pages`` physical pages (a memory module dies)."""

    at_us: int
    pages: int

    def _validate(self) -> None:
        _finite("memory loss pages", self.pages, self)
        if self.pages <= 0:
            raise FaultPlanError(f"memory loss must remove >= 1 page, got {self.pages}")


FaultEvent = Union[DiskTransient, DiskFailure, CpuRemove, CpuAdd, MemoryLoss]


@dataclass
class FaultPlan:
    """A validated, time-ordered schedule of hardware faults."""

    events: List[FaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        for event in self.events:
            self._check(event)
        self._check_failures(self.events)
        self.events = sorted(self.events, key=lambda e: (e.at_us, type(e).__name__))

    @staticmethod
    def _check(event: FaultEvent) -> None:
        if not isinstance(
            event, (DiskTransient, DiskFailure, CpuRemove, CpuAdd, MemoryLoss)
        ):
            raise FaultPlanError(f"not a fault event: {event!r}")
        _finite("fault at_us", event.at_us, event)
        if event.at_us < 0:
            raise FaultPlanError(f"fault scheduled before boot: {event!r}")
        event._validate()

    @staticmethod
    def _check_failures(events: List[FaultEvent]) -> None:
        """A drive dies at most once: a second DiskFailure for the same
        disk means two permanent-death windows overlap (usually a sign
        two plans were merged), and the injector would half-apply it."""
        seen: Dict[int, int] = {}
        for event in events:
            if not isinstance(event, DiskFailure):
                continue
            if event.disk in seen:
                raise FaultPlanError(
                    f"disk {event.disk} dies twice (at {seen[event.disk]}us"
                    f" and {event.at_us}us); a DiskFailure is permanent, so"
                    " drop one of the two events"
                )
            seen[event.disk] = event.at_us

    def add(self, event: FaultEvent) -> "FaultPlan":
        """Append an event, keeping the plan ordered.  Returns self."""
        self._check(event)
        self._check_failures(self.events + [event])
        self.events.append(event)
        self.events.sort(key=lambda e: (e.at_us, type(e).__name__))
        return self

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    # --- JSON round-trip ---------------------------------------------------
    #
    # Chaos repro files embed the fault plan that was live when an
    # invariant broke; ``from_json(to_json(plan))`` must rebuild an
    # equal plan, re-running the same validation as the constructors.

    def to_dicts(self) -> List[Dict[str, Any]]:
        """The plan as plain dicts (``kind`` + the event's fields)."""
        out = []
        for event in self.events:
            record: Dict[str, Any] = {"kind": _KIND_OF[type(event)]}
            record.update(dataclasses.asdict(event))
            out.append(record)
        return out

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialise the plan to a JSON array of event objects."""
        return json.dumps(self.to_dicts(), indent=indent, sort_keys=True)

    @classmethod
    def from_dicts(cls, records: List[Dict[str, Any]]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dicts` output (re-validating)."""
        events: List[FaultEvent] = []
        for record in records:
            if not isinstance(record, dict) or "kind" not in record:
                raise FaultPlanError(f"fault record needs a 'kind': {record!r}")
            fields = dict(record)
            kind = fields.pop("kind")
            try:
                event_cls = _CLASS_OF[kind]
            except KeyError:
                raise FaultPlanError(
                    f"unknown fault kind {kind!r};"
                    f" expected one of {sorted(_CLASS_OF)}"
                ) from None
            try:
                # Audited: _CLASS_OF maps to dataclasses in this module.
                events.append(event_cls(**fields))  # simlint: dynamic=factory-table
            except TypeError as exc:
                raise FaultPlanError(f"bad fields for {kind!r}: {exc}") from None
        return cls(events)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse :meth:`to_json` output back into a validated plan."""
        try:
            records = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") from None
        if not isinstance(records, list):
            raise FaultPlanError("fault plan JSON must be an array of events")
        return cls.from_dicts(records)


#: Stable wire names for each fault event class.
_KIND_OF = {
    DiskTransient: "disk_transient",
    DiskFailure: "disk_failure",
    CpuRemove: "cpu_remove",
    CpuAdd: "cpu_add",
    MemoryLoss: "memory_loss",
}
_CLASS_OF = {name: cls for cls, name in _KIND_OF.items()}
