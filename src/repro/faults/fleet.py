"""Fleet-level fault schedules: whole machines, not components.

:mod:`repro.faults.plan` declares faults *inside* one machine (a disk
dies, a CPU is hot-removed).  A :class:`FleetFaultPlan` declares faults
*of* machines: a whole machine crashing (taking every SPU it hosts with
it), a crashed machine recovering as empty spare capacity, and network
partitions that make a set of machines unreachable as migration targets
for a window.  Like the single-machine plan it is data, not behaviour —
a validated, time-ordered event list with a JSON round-trip — and the
same plan can be armed against fleets running different allocation
schemes, which is how the fleet-isolation experiment compares SMP and
PIso degradation under identical machine loss.

Validation is two-phase, mirroring the single-machine plan: structural
checks at construction (finite times, sane machine indices, a machine
does not crash twice without recovering in between), and
:meth:`FleetFaultPlan.validate_against` re-checks every event against a
concrete fleet size so a plan naming machine 7 in a four-machine fleet
fails fast, naming the field and the event, instead of mid-run.
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Tuple, Union

from repro.faults.plan import FaultPlanError


def _finite(name: str, value: Any, event: Any) -> None:
    """Reject NaN/inf/non-numbers before they corrupt the epoch walk."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise FaultPlanError(
            f"{name} must be a finite number, got {value!r} in {event!r}"
        )
    if not math.isfinite(value):
        raise FaultPlanError(
            f"{name} must be finite, got {value!r} in {event!r}"
        )


def _check_machine(machine: Any, event: Any) -> None:
    if isinstance(machine, bool) or not isinstance(machine, int):
        raise FaultPlanError(
            f"machine index must be an integer, got {machine!r} in {event!r}"
        )
    if machine < 0:
        raise FaultPlanError(
            f"machine index must be >= 0, got {machine} in {event!r}"
        )


@dataclass(frozen=True)
class MachineCrash:
    """A whole machine dies: every SPU it hosts must be evacuated.

    The crash is fail-stop — the machine's kernel executes nothing past
    ``at_us`` — but checkpoint state (contract, ledgers, per-job
    progress) survives, modelling SPU state replicated off-machine.
    """

    at_us: int
    machine: int

    def _validate(self) -> None:
        _check_machine(self.machine, self)


@dataclass(frozen=True)
class MachineRecover:
    """A crashed machine rejoins as *empty* spare capacity.

    Recovery does not pull migrated SPUs back home; it only makes the
    machine a legal target for future evacuations.
    """

    at_us: int
    machine: int

    def _validate(self) -> None:
        _check_machine(self.machine, self)


@dataclass(frozen=True)
class NetworkPartition:
    """A set of machines is unreachable for ``duration_us``.

    Partitioned machines keep running their local work (the paper's
    isolation is per-machine), but the failover controller cannot
    migrate SPUs *onto* them while the window is open — a crash during
    a partition can therefore force degradation or shedding that spare
    capacity would otherwise have absorbed.
    """

    at_us: int
    machines: Tuple[int, ...]
    duration_us: int

    def __post_init__(self) -> None:
        # JSON round-trips lists; canonicalise so equality and hashing
        # hold across the trip.
        object.__setattr__(self, "machines", tuple(self.machines))

    def _validate(self) -> None:
        if not self.machines:
            raise FaultPlanError(
                f"partition must name at least one machine: {self!r}"
            )
        for machine in self.machines:
            _check_machine(machine, self)
        if len(set(self.machines)) != len(self.machines):
            raise FaultPlanError(
                f"partition names a machine twice: {self!r}"
            )
        _finite("partition duration_us", self.duration_us, self)
        if self.duration_us <= 0:
            raise FaultPlanError(
                f"partition must last >= 1us, got {self.duration_us}"
            )


FleetFaultEvent = Union[MachineCrash, MachineRecover, NetworkPartition]

_FLEET_EVENT_TYPES = (MachineCrash, MachineRecover, NetworkPartition)


@dataclass
class FleetFaultPlan:
    """A validated, time-ordered schedule of fleet-level faults."""

    events: List[FleetFaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        for event in self.events:
            self._check(event)
        self.events = sorted(
            self.events, key=lambda e: (e.at_us, type(e).__name__)
        )
        self._check_lifecycle(self.events)

    @staticmethod
    def _check(event: FleetFaultEvent) -> None:
        if not isinstance(event, _FLEET_EVENT_TYPES):
            raise FaultPlanError(f"not a fleet fault event: {event!r}")
        _finite("fleet fault at_us", event.at_us, event)
        if event.at_us < 0:
            raise FaultPlanError(f"fleet fault scheduled before boot: {event!r}")
        event._validate()

    @staticmethod
    def _check_lifecycle(events: List[FleetFaultEvent]) -> None:
        """Crash/recover must alternate per machine: a second crash
        without a recovery in between (or a recovery of a machine that
        is up) means two plans were merged, and the fleet runner would
        half-apply it."""
        down: Dict[int, int] = {}
        for event in events:
            if isinstance(event, MachineCrash):
                if event.machine in down:
                    raise FaultPlanError(
                        f"machine {event.machine} crashes twice"
                        f" (at {down[event.machine]}us and {event.at_us}us)"
                        " without a MachineRecover in between"
                    )
                down[event.machine] = event.at_us
            elif isinstance(event, MachineRecover):
                if event.machine not in down:
                    raise FaultPlanError(
                        f"machine {event.machine} recovers at {event.at_us}us"
                        " but never crashed"
                    )
                del down[event.machine]

    def add(self, event: FleetFaultEvent) -> "FleetFaultPlan":
        """Append an event, keeping the plan ordered.  Returns self."""
        self._check(event)
        events = sorted(
            self.events + [event], key=lambda e: (e.at_us, type(e).__name__)
        )
        self._check_lifecycle(events)
        self.events = events
        return self

    def validate_against(self, n_machines: int) -> None:
        """Reject events naming machines the fleet does not have.

        Every fleet-facing entry point (spec construction, arming)
        funnels through here so the error names the field and the
        event, never a mid-run ``IndexError``.
        """
        for event in self.events:
            if isinstance(event, (MachineCrash, MachineRecover)):
                if not 0 <= event.machine < n_machines:
                    raise FaultPlanError(
                        f"field 'machine' of {event!r} names machine"
                        f" {event.machine}; fleet has {n_machines}"
                    )
            else:
                for machine in event.machines:
                    if not 0 <= machine < n_machines:
                        raise FaultPlanError(
                            f"field 'machines' of {event!r} names machine"
                            f" {machine}; fleet has {n_machines}"
                        )

    def __iter__(self) -> Iterator[FleetFaultEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    # --- JSON round-trip ---------------------------------------------------
    #
    # Fleet fuzz records and repro files embed the plan; the round trip
    # re-runs the same validation as the constructors.

    def to_dicts(self) -> List[Dict[str, Any]]:
        """The plan as plain dicts (``kind`` + the event's fields)."""
        out = []
        for event in self.events:
            record: Dict[str, Any] = {"kind": _KIND_OF[type(event)]}
            for key, value in dataclasses.asdict(event).items():
                record[key] = list(value) if isinstance(value, tuple) else value
            out.append(record)
        return out

    def to_json(self, indent: Any = None) -> str:
        return json.dumps(self.to_dicts(), indent=indent, sort_keys=True)

    @classmethod
    def from_dicts(cls, records: List[Dict[str, Any]]) -> "FleetFaultPlan":
        """Rebuild a plan from :meth:`to_dicts` output (re-validating)."""
        events: List[FleetFaultEvent] = []
        for record in records:
            if not isinstance(record, dict) or "kind" not in record:
                raise FaultPlanError(
                    f"fleet fault record needs a 'kind': {record!r}"
                )
            fields_ = dict(record)
            kind = fields_.pop("kind")
            try:
                event_cls = _CLASS_OF[kind]
            except KeyError:
                raise FaultPlanError(
                    f"unknown fleet fault kind {kind!r};"
                    f" expected one of {sorted(_CLASS_OF)}"
                ) from None
            if event_cls is NetworkPartition and isinstance(
                fields_.get("machines"), list
            ):
                fields_["machines"] = tuple(fields_["machines"])
            try:
                # Audited: _CLASS_OF maps to dataclasses in this module.
                events.append(event_cls(**fields_))  # simlint: dynamic=factory-table
            except TypeError as exc:
                raise FaultPlanError(f"bad fields for {kind!r}: {exc}") from None
        return cls(events)

    @classmethod
    def from_json(cls, text: str) -> "FleetFaultPlan":
        try:
            records = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(
                f"fleet fault plan is not valid JSON: {exc}"
            ) from None
        if not isinstance(records, list):
            raise FaultPlanError("fleet fault plan JSON must be an array")
        return cls.from_dicts(records)


#: Stable wire names for each fleet fault event class.
_KIND_OF = {
    MachineCrash: "machine_crash",
    MachineRecover: "machine_recover",
    NetworkPartition: "network_partition",
}
_CLASS_OF = {name: cls for cls, name in _KIND_OF.items()}
