"""The persistent worker pool behind the sweep executor.

Before this module existed, every :meth:`repro.parallel.Executor.run`
forked a fresh set of worker processes and tore them down at the end —
one fork cost per *stage*, paid again by every bench stage, every fuzz
shard, and every chaos soak in the same process.  A
:class:`WorkerPool` decouples worker lifetime from sweep lifetime:

* **Function-per-batch protocol.**  Workers no longer bind the sweep
  callable at fork time; each batch message carries the callable
  (pickled by reference — it must stay a module-level function) along
  with its cells, so one pool serves ``run_experiment`` cells, fleet
  records, chaos seeds, and fuzz scenarios back to back.
* **Leases.**  A run asks for ``lease(n)`` and operates on the first
  ``n`` workers; the pool may hold more (sized once for the largest
  stage).  Replacements for crashed/retired workers happen through the
  lease so both views stay consistent.
* **Spool-aware payload descriptors.**  A cell's payload crosses the
  pipe either inline (``("inline", payload)``) or as a
  ``("spool", path, offset, length)`` reference into an mmap'd spool
  file (:mod:`repro.parallel.spool`) the worker slices lazily.
* **Lifecycle.**  ``shutdown()`` drains gracefully (poison pills),
  ``kill()`` tears down immediately (the Ctrl-C path), both are
  idempotent, and the pool registers an :mod:`atexit` ``kill`` so a
  process that exits with a live pool leaves no orphan processes,
  pipes, or ``/dev/shm`` segments behind.  ``with WorkerPool(...)``
  shuts down on exit.

Everything the old per-run pool promised still holds: one duplex pipe
per worker (a dead worker reads as EOF, never a wedged queue), results
via per-worker shared-memory segments with inline spill, recycling via
``tasks_per_worker``, and completions that arrive strictly in batch
order so crash attribution stays per-cell.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import connection
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.parallel.spool import SpoolReader

#: Default worker-count cap when ``max_workers`` is None: enough to
#: cover the experiment sweeps without oversubscribing small machines.
DEFAULT_WORKER_CAP = 4

#: How long the parent waits for worker messages per poll, seconds.
_POLL_S = 0.02

#: Size of each worker's shared-memory result segment.  Large enough
#: for any experiment record batch; results that do not fit spill to
#: inline pipe transport per cell.
_SEGMENT_BYTES = 1 << 23


def resolve_workers(max_workers: Optional[int]) -> int:
    """Map the user-facing ``--workers`` value to a worker count.

    ``None`` means auto: one worker per CPU, capped at
    :data:`DEFAULT_WORKER_CAP`.  Anything below 2 means in-process.
    """
    if max_workers is None:
        max_workers = min(DEFAULT_WORKER_CAP, os.cpu_count() or 1)
    return max(1, int(max_workers))


def shm_available() -> bool:
    """Shared-memory transport needs fork (segments are inherited)."""
    if multiprocessing.get_start_method(allow_none=False) != "fork":
        return False
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - ancient python
        return False
    return True


# --- worker side -----------------------------------------------------------


def _resolve_payload(desc: tuple, reader: SpoolReader) -> Any:
    """Turn one payload descriptor back into the payload object."""
    if desc[0] == "spool":
        return pickle.loads(reader.read(desc[1], desc[2], desc[3]))
    return desc[1]


def _worker_main(worker_id: int, conn, tasks_per_worker: Optional[int],
                 shm) -> None:
    """Run cell batches from the pipe until retired, poisoned, or crashed."""
    done = 0
    buf = shm.buf if shm is not None else None
    capacity = len(buf) if buf is not None else 0
    reader = SpoolReader()
    while True:
        try:
            batch = conn.recv()
        except (EOFError, OSError):
            return
        except KeyboardInterrupt:
            # A terminal Ctrl-C delivers SIGINT to the whole foreground
            # process group, workers included.  The parent owns the
            # interrupt (it kills the pool); a worker parked on recv()
            # just exits quietly instead of spraying tracebacks.
            return
        if batch is None:
            return
        fn, cells = batch
        # The parent has consumed every result of the previous batch
        # before assigning this one (the assignment is the ack), so the
        # segment is free to reuse from the top.
        offset = 0
        for index, desc in cells:
            started = time.perf_counter()
            try:
                payload = _resolve_payload(desc, reader)
                value = fn(payload)
                compute_s = time.perf_counter() - started
                if buf is not None:
                    blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
                    size = len(blob)
                    if offset + size <= capacity:
                        buf[offset:offset + size] = blob
                        message = ("ok", worker_id, index,
                                   ("shm", offset, size), None, compute_s)
                        offset += size
                    else:
                        message = ("ok", worker_id, index,
                                   ("inline", value), None, compute_s)
                else:
                    message = ("ok", worker_id, index,
                               ("inline", value), None, compute_s)
            except BaseException:
                message = ("error", worker_id, index, None,
                           traceback.format_exc(),
                           time.perf_counter() - started)
            try:
                # send() pickles then writes from this thread, so the
                # message is fully flushed before the next cell can
                # crash the process, and an unpicklable result surfaces
                # here as a structured error rather than killing the
                # worker.
                conn.send(message)
            except Exception as exc:
                conn.send(("error", worker_id, index, None,
                           f"result of cell {index} is not picklable: {exc!r}",
                           0.0))
            done += 1
            if tasks_per_worker is not None and done >= tasks_per_worker:
                conn.send(("retired", worker_id, None, None, None, 0.0))
                return


# --- parent side -----------------------------------------------------------


@dataclass
class _Worker:
    """Parent-side bookkeeping for one worker process."""

    ordinal: int
    process: Any
    conn: Any
    #: The worker's shared-memory segment, or None on pipe transport.
    shm: Any = None
    #: Indices of the assigned batch still awaiting completion, in the
    #: order the worker runs them (completions arrive in this order).
    pending: List[int] = field(default_factory=list)
    #: Wall-clock deadline for the cell now in flight, or None.
    deadline: Optional[float] = None
    #: When the cell now in flight started (parent clock).
    cell_started: float = 0.0
    tasks_done: int = field(default=0)

    @property
    def inflight(self) -> Optional[int]:
        """The cell the worker is running right now, or None when idle."""
        return self.pending[0] if self.pending else None


def _release_segment(shm) -> None:
    """Close and unlink one shared segment; tolerates double release."""
    if shm is None:
        return
    try:
        shm.close()
        shm.unlink()
    except (FileNotFoundError, OSError):  # pragma: no cover - already gone
        pass


class WorkerPool:
    """A set of worker processes that outlives any single sweep.

    ``max_workers`` bounds the pool (``None`` = the auto cap); workers
    spawn lazily as leases demand them, so a pool constructed for the
    largest stage costs nothing until used.  ``transport="shm"``
    degrades to ``"pipe"`` wholesale on platforms without fork or
    shared memory.

    ``tasks_per_worker`` is a *pool* property: a worker's recycling
    budget counts every cell it has run across all the sweeps the pool
    served, which is exactly what the budget is for (bounding leaked
    per-process state over a worker's whole lifetime).
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        tasks_per_worker: Optional[int] = None,
        transport: str = "shm",
        segment_bytes: int = _SEGMENT_BYTES,
    ):
        if transport not in ("shm", "pipe"):
            raise ValueError(
                f"transport must be 'shm' or 'pipe', got {transport!r}"
            )
        self.size = resolve_workers(max_workers)
        self.tasks_per_worker = tasks_per_worker
        self.transport = transport if shm_available() else "pipe"
        self._segment_bytes = segment_bytes
        self._ctx = multiprocessing.get_context()
        self._next_ordinal = 0
        self._dead = False
        self.workers: List[_Worker] = []
        #: Sweeps this pool has served (read by SweepStats.pool_reuse).
        self.runs_served = 0
        #: Worker processes spawned over the pool's lifetime.
        self.forks = 0
        # A pool abandoned without shutdown() (or killed by Ctrl-C
        # outside a sweep) must not strand processes or /dev/shm
        # segments; kill() is idempotent so a clean shutdown makes
        # this a no-op.
        atexit.register(self.kill)

    # -- lifecycle ----------------------------------------------------------

    def ensure(self, n: int) -> None:
        """Spawn workers until ``min(n, size)`` exist.

        Raises ``OSError``/``ValueError`` when the platform cannot
        create processes; whatever was spawned before the failure stays
        usable (callers may retry with a smaller lease or fall back to
        serial).
        """
        if self._dead:
            raise ValueError("pool is shut down")
        target = min(n, self.size)
        while len(self.workers) < target:
            self.workers.append(self._spawn())

    def lease(self, n: int) -> "PoolLease":
        """A view over the first ``min(n, size)`` workers for one sweep.

        Workers left with undelivered state by an aborted sweep are
        replaced before the lease is handed out, so each sweep starts
        from idle pipes.
        """
        self.ensure(n)
        workers = self.workers[:min(n, self.size)]
        for i, worker in enumerate(workers):
            if worker.pending or not worker.process.is_alive():
                workers[i] = self.replace(worker)
        return PoolLease(self, workers)

    def _spawn(self) -> _Worker:
        ordinal = self._next_ordinal
        self._next_ordinal += 1
        shm = None
        if self.transport == "shm":
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(
                create=True, size=self._segment_bytes
            )
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        try:
            process = self._ctx.Process(
                target=_worker_main,
                args=(ordinal, child_conn, self.tasks_per_worker, shm),
                daemon=True,
            )
            process.start()
        except BaseException:
            _release_segment(shm)
            parent_conn.close()
            child_conn.close()
            raise
        # Close the child's end in the parent so a dead worker reads as
        # EOF here instead of a half-open pipe.
        child_conn.close()
        self.forks += 1
        return _Worker(ordinal=ordinal, process=process, conn=parent_conn,
                       shm=shm)

    def replace(self, worker: _Worker) -> _Worker:
        """Kill a worker (timeout/crash/retired) and refill its slot."""
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=5)
        worker.conn.close()
        _release_segment(worker.shm)
        slot = self.workers.index(worker)
        fresh = self._spawn()
        self.workers[slot] = fresh
        return fresh

    def shutdown(self) -> None:
        """Drain gracefully: poison pills, then join, then close pipes."""
        if self._dead:
            return
        self._dead = True
        atexit.unregister(self.kill)
        for worker in self.workers:
            try:
                worker.conn.send(None)
            except Exception:  # pragma: no cover - pipe already broken
                pass
        for worker in self.workers:
            worker.process.join(timeout=2)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=2)
            worker.conn.close()
            _release_segment(worker.shm)

    def kill(self) -> None:
        """Tear the pool down *now*: no poison pills, no graceful drain.

        The interrupt path.  Terminate every worker (no matter what it
        is running), join briefly, close every pipe, and unlink every
        shared segment, so a Ctrl-C'd sweep leaves no orphan processes,
        leaked file descriptors, or stale ``/dev/shm`` entries behind.
        Idempotent, and makes any later :meth:`shutdown` a no-op.
        """
        if self._dead:
            return
        self._dead = True
        atexit.unregister(self.kill)
        for worker in self.workers:
            if worker.process.is_alive():
                worker.process.terminate()
        for worker in self.workers:
            worker.process.join(timeout=2)
            if worker.process.is_alive():  # pragma: no cover - stuck in D
                worker.process.kill()
                worker.process.join(timeout=2)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            _release_segment(worker.shm)

    @property
    def closed(self) -> bool:
        return self._dead

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


class PoolLease:
    """One sweep's view over a subset of a pool's workers.

    The executor's run loop talks to the lease only; worker
    replacement updates the pool's slot *and* the lease's, so the two
    views never diverge mid-sweep.
    """

    def __init__(self, pool: WorkerPool, workers: List[_Worker]):
        self._pool = pool
        self.workers = workers

    @property
    def tasks_per_worker(self) -> Optional[int]:
        return self._pool.tasks_per_worker

    @property
    def transport(self) -> str:
        return self._pool.transport

    def assign(self, worker: _Worker, fn: Callable[[Any], Any],
               indices: List[int], descs: Sequence[tuple],
               timeout_s: Optional[float]) -> None:
        worker.pending = list(indices)
        worker.cell_started = time.monotonic()
        worker.deadline = (
            worker.cell_started + timeout_s if timeout_s is not None else None
        )
        worker.conn.send((fn, [(i, descs[i]) for i in indices]))

    def poll(self) -> List[Tuple[_Worker, Optional[tuple]]]:
        """(worker, message) for every leased worker with news.

        A ``None`` message means the worker's pipe hit EOF (or broke
        mid-message): the process is gone.
        """
        ready = connection.wait(
            [worker.conn for worker in self.workers], timeout=_POLL_S
        )
        events: List[Tuple[_Worker, Optional[tuple]]] = []
        by_conn = {worker.conn: worker for worker in self.workers}
        for conn in ready:
            worker = by_conn[conn]
            try:
                events.append((worker, conn.recv()))
            except (EOFError, OSError):
                events.append((worker, None))
        return events

    def by_ordinal(self, ordinal: int) -> Optional[_Worker]:
        for worker in self.workers:
            if worker.ordinal == ordinal:
                return worker
        return None

    def replace(self, worker: _Worker) -> _Worker:
        fresh = self._pool.replace(worker)
        slot = self.workers.index(worker)
        self.workers[slot] = fresh
        return fresh

    def read_segment(self, worker: _Worker, offset: int, size: int) -> Any:
        """Decode one result from the worker's shared segment."""
        return pickle.loads(bytes(worker.shm.buf[offset:offset + size]))
