"""mmap-spooled payload fan-out for the sweep executor.

The mirror image of the shared-memory *result* transport: large cell
payloads (fleet specs, scenario specs, fault plans) are pickled **once**
into an append-only spool file by the parent, and only a tiny
``("spool", path, offset, length)`` descriptor crosses the control pipe
per cell — instead of the payload being re-pickled down every pipe for
every dispatch, retry, and re-queue.  Workers map the file read-only
with :mod:`mmap` on first use and slice payload blobs straight out of
the page cache, so a payload fanned to N workers costs one serialisation
and zero pipe copies.

Identical payloads deduplicate: :meth:`PayloadSpool.append` keys blobs
by content digest, so a sweep that hands the same large spec to many
cells spools it exactly once.

Lifecycle: the spool file lives in the system temp directory under a
``repro-spool-<pid>-`` prefix, is written and flushed strictly before
any descriptor referencing it is sent (workers therefore never observe
a short read), and is unlinked by :meth:`close` when the sweep ends —
workers hold their mappings open across the unlink, which POSIX keeps
valid until they unmap.  ``close`` is idempotent and registered with
the executor's cleanup paths (success, crash, and Ctrl-C alike), so an
interrupted sweep leaves no spool files behind.
"""

from __future__ import annotations

import hashlib
import mmap
import os
import tempfile
from collections import OrderedDict
from typing import Dict, Tuple

#: Filename prefix for spool files; the leak regression tests key on it.
SPOOL_PREFIX = "repro-spool-"

#: Mapped spool files a worker keeps open at once.  Spool paths are
#: unique per sweep, so old entries are dead weight; a tiny FIFO bounds
#: the address space a long-lived pooled worker can accumulate.
_READER_CACHE_LIMIT = 4


class PayloadSpool:
    """Parent-side append-only spool of pickled payload blobs."""

    def __init__(self, dir: str = None):
        fd, path = tempfile.mkstemp(
            prefix=f"{SPOOL_PREFIX}{os.getpid()}-", suffix=".bin", dir=dir
        )
        self.path = path
        self._fh = os.fdopen(fd, "wb")
        self.bytes_written = 0
        #: blob digest -> (offset, length); identical blobs spool once.
        self._index: Dict[bytes, Tuple[int, int]] = {}
        self._closed = False

    def append(self, blob: bytes) -> Tuple[int, int]:
        """Write one pickled blob (deduplicated); return (offset, length).

        The write is flushed before returning, so a descriptor built
        from the result may be sent to a worker immediately.
        """
        if self._closed:
            raise ValueError("spool is closed")
        digest = hashlib.blake2b(blob, digest_size=16).digest()
        existing = self._index.get(digest)
        if existing is not None:
            return existing
        offset = self.bytes_written
        self._fh.write(blob)
        self._fh.flush()
        self.bytes_written += len(blob)
        entry = (offset, len(blob))
        self._index[digest] = entry
        return entry

    def close(self) -> None:
        """Close and unlink the spool file; idempotent."""
        if self._closed:
            return
        self._closed = True
        try:
            self._fh.close()
        except OSError:  # pragma: no cover - close raced a full disk
            pass
        try:
            os.unlink(self.path)
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __enter__(self) -> "PayloadSpool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SpoolReader:
    """Worker-side reader: lazily mmaps spool files, slices blobs out.

    A mapping is (re)established when a path is first referenced or
    when a descriptor reaches beyond the region mapped so far (the
    parent appended after we mapped — the bytes are on disk by the
    time the descriptor arrives, only our view is stale).
    """

    def __init__(self, limit: int = _READER_CACHE_LIMIT):
        self._limit = limit
        #: path -> mmap, in insertion order (FIFO eviction).
        self._maps: "OrderedDict[str, mmap.mmap]" = OrderedDict()

    def read(self, path: str, offset: int, length: int) -> bytes:
        mapped = self._maps.get(path)
        if mapped is None or len(mapped) < offset + length:
            mapped = self._remap(path)
        return mapped[offset:offset + length]

    def _remap(self, path: str) -> mmap.mmap:
        old = self._maps.pop(path, None)
        if old is not None:
            old.close()
        with open(path, "rb") as fh:
            mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        self._maps[path] = mapped
        while len(self._maps) > self._limit:
            _stale_path, stale = self._maps.popitem(last=False)
            stale.close()
        return mapped

    def close(self) -> None:
        while self._maps:
            _path, mapped = self._maps.popitem()
            mapped.close()
