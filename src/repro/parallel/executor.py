"""A multiprocessing sweep executor for independent simulation runs.

Every figure and table in the paper's evaluation is a sweep of
independent (scheme, workload, seed) simulations, and the chaos soak is
a sweep of independent seeds — embarrassingly parallel work that the
serial runner used to grind through one cell at a time.
:func:`run_sweep` fans such cells across worker processes while keeping
the *results* exactly what the serial loop would have produced:

* **Deterministic merge order.**  Outcomes are returned in submission
  order, whatever order workers finish in.  Each cell is a pure
  function of its payload (the engine gives every simulation its own
  seeded RNG), so serial and parallel sweeps produce byte-identical
  results.
* **Worker recycling.**  A worker retires after ``tasks_per_worker``
  cells and is replaced by a fresh process, bounding the blast radius
  of any per-process state a simulation might leak.
* **Per-run timeouts.**  A cell that exceeds ``timeout_s`` has its
  worker killed and is reported as ``"timeout"``; the sweep continues
  on a replacement worker.
* **Crash containment with retry.**  A worker that dies mid-cell
  (segfault, ``os._exit``, OOM-kill) or blows its deadline charges that
  cell only; the cell is retried once on a fresh worker after a short
  backoff (``retries`` controls how many times) before being reported
  as ``"crashed"``/``"timeout"``, because a worker death is the one
  failure mode that is usually the *host's* fault (memory pressure,
  fork storms) rather than the payload's.  Deterministic failures —
  the callable raising — are never retried.
* **Graceful fallback.**  ``max_workers=1`` (or a platform where
  process creation fails) runs every cell in-process, in order, with
  no multiprocessing machinery at all.
* **Interrupt hygiene.**  A ``KeyboardInterrupt`` (or ``SystemExit``)
  mid-sweep terminates every worker outright, closes every pipe, and
  re-raises — a Ctrl-C'd sweep leaves no orphan processes behind.
  Workers receiving the terminal's group-wide SIGINT while idle exit
  quietly rather than printing tracebacks.

Transport is one duplex :func:`multiprocessing.Pipe` per worker rather
than shared queues, deliberately: a ``Queue`` flushes through a feeder
thread, so a worker killed between cells can die holding the shared
write lock and wedge every other worker.  With a pipe the worker sends
synchronously from its main thread — a message is fully written before
the next (crashable) cell starts — each worker's failure domain is its
own pipe, and a broken pipe doubles as immediate crash detection
(EOF on :func:`multiprocessing.connection.wait`).

The worker function must be a module-level callable (it is imported by
name in the worker) and payloads/results must be picklable.  Timeouts
are only enforceable when real workers exist; the in-process path runs
each cell to completion and records the timeout budget as advisory.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import connection
from typing import Any, Callable, List, Optional, Sequence, Tuple

#: Default worker-count cap when ``max_workers`` is None: enough to
#: cover the experiment sweeps without oversubscribing small machines.
DEFAULT_WORKER_CAP = 4

#: How long the parent waits for worker messages per poll, seconds.
_POLL_S = 0.02


class SweepError(RuntimeError):
    """Raised by :func:`values` when a sweep cell did not succeed."""


@dataclass
class RunOutcome:
    """What happened to one sweep cell.

    ``status`` is one of ``"ok"``, ``"error"`` (the callable raised),
    ``"timeout"`` (killed at the per-run deadline), or ``"crashed"``
    (the worker process died without reporting).  ``value`` is only
    meaningful when ``status == "ok"``.
    """

    index: int
    status: str
    value: Any = None
    error: Optional[str] = None
    elapsed_s: float = 0.0
    #: Ordinal of the worker process that ran the cell; -1 in-process.
    worker: int = -1
    #: Crash/timeout retries this cell consumed (0 = first try stood).
    retries: int = 0

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def values(outcomes: Sequence[RunOutcome]) -> List[Any]:
    """Unwrap outcome values, raising :class:`SweepError` on any failure."""
    bad = [o for o in outcomes if not o.ok]
    if bad:
        first = bad[0]
        raise SweepError(
            f"{len(bad)} of {len(outcomes)} sweep cells failed; first:"
            f" cell {first.index} {first.status}: {first.error}"
        )
    return [o.value for o in outcomes]


def resolve_workers(max_workers: Optional[int]) -> int:
    """Map the user-facing ``--workers`` value to a worker count.

    ``None`` means auto: one worker per CPU, capped at
    :data:`DEFAULT_WORKER_CAP`.  Anything below 2 means in-process.
    """
    if max_workers is None:
        max_workers = min(DEFAULT_WORKER_CAP, os.cpu_count() or 1)
    return max(1, int(max_workers))


# --- worker side -----------------------------------------------------------


def _worker_main(worker_id: int, conn, tasks_per_worker: Optional[int]) -> None:
    """Run cells from the pipe until retired, poisoned, or crashed."""
    done = 0
    while True:
        try:
            item = conn.recv()
        except (EOFError, OSError):
            return
        except KeyboardInterrupt:
            # A terminal Ctrl-C delivers SIGINT to the whole foreground
            # process group, workers included.  The parent owns the
            # interrupt (it kills the pool); a worker parked on recv()
            # just exits quietly instead of spraying tracebacks.
            return
        if item is None:
            return
        index, fn, payload = item
        try:
            value = fn(payload)
            message = ("ok", worker_id, index, value, None)
        except BaseException:
            message = ("error", worker_id, index, None, traceback.format_exc())
        try:
            # send() pickles then writes from this thread, so the
            # message is fully flushed before the next cell can crash
            # the process, and an unpicklable result surfaces here as a
            # structured error rather than killing the worker.
            conn.send(message)
        except Exception as exc:
            conn.send(("error", worker_id, index, None,
                       f"result of cell {index} is not picklable: {exc!r}"))
        done += 1
        if tasks_per_worker is not None and done >= tasks_per_worker:
            conn.send(("retired", worker_id, None, None, None))
            return


# --- parent side -----------------------------------------------------------


@dataclass
class _Worker:
    """Parent-side bookkeeping for one worker process."""

    ordinal: int
    process: Any
    conn: Any
    #: Index of the cell currently assigned, or None when idle.
    inflight: Optional[int] = None
    #: Wall-clock deadline for the in-flight cell, or None.
    deadline: Optional[float] = None
    started_at: float = 0.0
    tasks_done: int = field(default=0)


class _Pool:
    """The worker set: spawn, assign, reap, recycle, kill."""

    def __init__(
        self,
        fn: Callable[[Any], Any],
        n_workers: int,
        tasks_per_worker: Optional[int],
    ):
        self._fn = fn
        self._tasks_per_worker = tasks_per_worker
        self._ctx = multiprocessing.get_context()
        self._next_ordinal = 0
        self._dead = False
        self.workers: List[_Worker] = []
        for _ in range(n_workers):
            self.workers.append(self._spawn())

    def _spawn(self) -> _Worker:
        ordinal = self._next_ordinal
        self._next_ordinal += 1
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(ordinal, child_conn, self._tasks_per_worker),
            daemon=True,
        )
        process.start()
        # Close the child's end in the parent so a dead worker reads as
        # EOF here instead of a half-open pipe.
        child_conn.close()
        return _Worker(ordinal=ordinal, process=process, conn=parent_conn)

    def replace(self, worker: _Worker) -> _Worker:
        """Kill a worker (timeout/crash/retired) and refill its slot."""
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=5)
        worker.conn.close()
        slot = self.workers.index(worker)
        fresh = self._spawn()
        self.workers[slot] = fresh
        return fresh

    def assign(self, worker: _Worker, index: int, payload: Any,
               timeout_s: Optional[float]) -> None:
        worker.inflight = index
        worker.started_at = time.monotonic()
        worker.deadline = (
            worker.started_at + timeout_s if timeout_s is not None else None
        )
        worker.conn.send((index, self._fn, payload))

    def poll(self) -> List[Tuple[_Worker, Optional[tuple]]]:
        """(worker, message) for every worker with something to say.

        A ``None`` message means the worker's pipe hit EOF (or broke
        mid-message): the process is gone.
        """
        ready = connection.wait(
            [worker.conn for worker in self.workers], timeout=_POLL_S
        )
        events: List[Tuple[_Worker, Optional[tuple]]] = []
        by_conn = {worker.conn: worker for worker in self.workers}
        for conn in ready:
            worker = by_conn[conn]
            try:
                events.append((worker, conn.recv()))
            except (EOFError, OSError):
                events.append((worker, None))
        return events

    def by_ordinal(self, ordinal: int) -> Optional[_Worker]:
        for worker in self.workers:
            if worker.ordinal == ordinal:
                return worker
        return None

    def shutdown(self) -> None:
        """Drain gracefully: poison pills, then join, then close pipes."""
        if self._dead:
            return
        self._dead = True
        for worker in self.workers:
            try:
                worker.conn.send(None)
            except Exception:  # pragma: no cover - pipe already broken
                pass
        for worker in self.workers:
            worker.process.join(timeout=2)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=2)
            worker.conn.close()

    def kill(self) -> None:
        """Tear the pool down *now*: no poison pills, no graceful drain.

        The interrupt path.  Terminate every worker (no matter what it
        is running), join briefly, and close every pipe, so a Ctrl-C'd
        sweep leaves no orphan processes or leaked file descriptors
        behind.  Idempotent, and makes any later :meth:`shutdown` a
        no-op.
        """
        if self._dead:
            return
        self._dead = True
        for worker in self.workers:
            if worker.process.is_alive():
                worker.process.terminate()
        for worker in self.workers:
            worker.process.join(timeout=2)
            if worker.process.is_alive():  # pragma: no cover - stuck in D
                worker.process.kill()
                worker.process.join(timeout=2)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass


def _run_serial(
    fn: Callable[[Any], Any], payloads: Sequence[Any]
) -> List[RunOutcome]:
    """The in-process fallback: the plain loop the serial runner was."""
    outcomes = []
    for index, payload in enumerate(payloads):
        start = time.monotonic()
        try:
            value = fn(payload)
            outcomes.append(RunOutcome(
                index=index, status="ok", value=value,
                elapsed_s=time.monotonic() - start,
            ))
        except Exception:
            outcomes.append(RunOutcome(
                index=index, status="error", error=traceback.format_exc(),
                elapsed_s=time.monotonic() - start,
            ))
    return outcomes


def run_sweep(
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    max_workers: Optional[int] = None,
    timeout_s: Optional[float] = None,
    tasks_per_worker: Optional[int] = None,
    retries: int = 1,
) -> List[RunOutcome]:
    """Run ``fn(payload)`` for every payload; outcomes in payload order.

    ``max_workers=None`` auto-sizes (see :func:`resolve_workers`);
    ``1`` runs in-process.  ``timeout_s`` bounds each cell's wall time
    (workers only).  ``tasks_per_worker`` retires a worker after that
    many cells (``None`` = never).  ``retries`` re-runs a crashed or
    timed-out cell on a fresh worker that many times before charging
    it; cells whose callable *raises* are never retried (that failure
    is deterministic).  ``RunOutcome.retries`` reports what each cell
    consumed.
    """
    payloads = list(payloads)
    if not payloads:
        return []
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    n_workers = min(resolve_workers(max_workers), len(payloads))
    if n_workers <= 1:
        return _run_serial(fn, payloads)
    try:
        pool = _Pool(fn, n_workers, tasks_per_worker)
    except (OSError, ValueError):
        # No processes on this platform (sandbox, resource limits):
        # degrade to the serial path rather than failing the sweep.
        return _run_serial(fn, payloads)
    try:
        return _run_pool(pool, payloads, timeout_s, retries)
    except (KeyboardInterrupt, SystemExit):
        # Ctrl-C (or a hard exit request) mid-sweep: kill the workers
        # outright — they may be mid-cell and will never see a poison
        # pill — close every pipe, and let the interrupt propagate.
        pool.kill()
        raise
    finally:
        pool.shutdown()


#: Backoff before a retried cell is reassigned, seconds per attempt —
#: long enough for transient host pressure (the usual cause of a worker
#: death) to clear, short enough to be invisible in a sweep.
_RETRY_BACKOFF_S = 0.25


def _run_pool(
    pool: _Pool, payloads: Sequence[Any], timeout_s: Optional[float],
    retries: int = 0,
) -> List[RunOutcome]:
    outcomes: List[Optional[RunOutcome]] = [None] * len(payloads)
    next_index = 0
    completed = 0
    budget = pool._tasks_per_worker
    #: Crash/timeout retries consumed so far, per cell.
    attempts = [0] * len(payloads)
    #: Cells awaiting a retry slot, as (not_before, index).
    retry_queue: List[Tuple[float, int]] = []

    def feed() -> None:
        nonlocal next_index
        now = time.monotonic()
        for worker in pool.workers:
            # Never hand a cell to a worker that has hit its recycling
            # budget: it exits right after announcing retirement, and a
            # cell sent behind that announcement would strand in a dead
            # process's pipe.  Its replacement picks up the slack.
            if budget is not None and worker.tasks_done >= budget:
                continue
            if worker.inflight is not None:
                continue
            # Retries first, so a flaky cell's result stops gating the
            # sweep's tail; each retry lands on a worker that is fresh
            # by construction (the failed worker was replaced).
            ready = next((r for r in retry_queue if r[0] <= now), None)
            if ready is not None:
                retry_queue.remove(ready)
                pool.assign(worker, ready[1], payloads[ready[1]], timeout_s)
                continue
            if next_index < len(payloads):
                pool.assign(worker, next_index, payloads[next_index], timeout_s)
                next_index += 1

    def fail(worker: _Worker, index: int, status: str, error: str) -> None:
        """Charge a crashed/timed-out cell, or queue its retry."""
        nonlocal completed
        if outcomes[index] is not None:
            return
        if attempts[index] < retries:
            attempts[index] += 1
            retry_queue.append(
                (time.monotonic() + _RETRY_BACKOFF_S * attempts[index], index)
            )
            return
        outcomes[index] = RunOutcome(
            index=index, status=status, error=error,
            elapsed_s=time.monotonic() - worker.started_at,
            worker=worker.ordinal, retries=attempts[index],
        )
        completed += 1

    def record(worker: _Worker, message: tuple) -> None:
        """Fold one worker message into outcomes and bookkeeping."""
        nonlocal completed
        status, ordinal, index, value, error = message
        if status == "retired":
            # The worker hit its recycling budget: replace it with a
            # fresh process.
            if pool.by_ordinal(ordinal) is not None:
                pool.replace(worker)
            return
        if index is not None and outcomes[index] is None:
            outcomes[index] = RunOutcome(
                index=index, status=status, value=value, error=error,
                elapsed_s=time.monotonic() - worker.started_at, worker=ordinal,
                retries=attempts[index],
            )
            completed += 1
        if worker.inflight == index:
            worker.inflight = None
            worker.deadline = None
            worker.tasks_done += 1

    feed()
    while completed < len(payloads):
        events = pool.poll()
        for worker, message in events:
            if message is None:
                # EOF: the worker died.  Charge (or retry) its
                # in-flight cell and refill the slot.
                index = worker.inflight
                if index is not None:
                    fail(
                        worker, index, "crashed",
                        f"worker {worker.ordinal} died"
                        f" (exitcode {worker.process.exitcode},"
                        f" attempt {attempts[index] + 1})",
                    )
                if pool.by_ordinal(worker.ordinal) is not None:
                    pool.replace(worker)
            else:
                record(worker, message)
        if events:
            feed()
            continue

        # Nothing to read: enforce per-cell deadlines.
        now = time.monotonic()
        for worker in list(pool.workers):
            if worker.inflight is None:
                continue
            if worker.deadline is not None and now > worker.deadline:
                index = worker.inflight
                fail(
                    worker, index, "timeout",
                    f"cell exceeded {timeout_s}s"
                    f" (attempt {attempts[index] + 1})",
                )
                pool.replace(worker)
        feed()

    return [o for o in outcomes if o is not None]
