"""A multiprocessing sweep executor for independent simulation runs.

Every figure and table in the paper's evaluation is a sweep of
independent (scheme, workload, seed) simulations, and the chaos soak is
a sweep of independent seeds — embarrassingly parallel work that the
serial runner used to grind through one cell at a time.  The
:class:`Executor` (configured by a :class:`SweepPlan`; the legacy
:func:`run_sweep` is a deprecated shim over both) fans such cells
across worker processes while keeping the *results* exactly what the
serial loop would have produced:

* **Deterministic merge order.**  Outcomes are returned in submission
  order, whatever order workers finish in.  Each cell is a pure
  function of its payload (the engine gives every simulation its own
  seeded RNG), so serial, parallel, and cached sweeps produce
  byte-identical results.
* **Persistent worker pools.**  Pass ``pool=`` a
  :class:`~repro.parallel.pool.WorkerPool` and the same worker
  processes serve every ``run()`` — one fork cost per process, not per
  stage; the pool protocol carries the callable per batch, so unlike
  sweeps (experiments, fleet records, fuzz cells) share one pool.
  Without ``pool=`` an ephemeral pool is created and torn down per run,
  the pre-pool behaviour.
* **Batched dispatch.**  Cells are handed to workers in batches
  (``batch_size``; auto-sized from the sweep by default) so one pipe
  round-trip amortises over several cells.  Completion is still
  reported per cell — progress, timeouts, and crash containment keep
  cell granularity.
* **Shared-memory results, mmap-spooled payloads.**  With
  ``transport="shm"`` each worker owns a shared-memory segment;
  results are pickled into it and only a tiny ``(offset, length)``
  descriptor crosses the pipe (oversized results spill inline, counted
  in :class:`SweepStats.shm_spills`).  Symmetrically, payloads whose
  pickle meets ``spool_threshold`` are written once to an mmap'd spool
  file (:mod:`repro.parallel.spool`) and referenced by descriptor, so a
  large spec is serialised once however many cells, retries, and
  re-queues touch it.  Platforms without ``fork`` degrade to ``"pipe"``
  transport wholesale.
* **Content-addressed caching.**  With ``plan.cache`` (or an explicit
  ``cache=`` :class:`~repro.parallel.cache.SweepCache`), each cell's
  key — canonical payload + callable + code digest — is probed before
  dispatch; hits return the stored result without touching a worker
  (``RunOutcome.cached``), misses run and are recorded.  Because a
  cached value is the pickled bytes of a previous pure run, cached and
  cold sweeps are byte-identical; :class:`SweepStats` reports the
  hit/miss split.
* **Worker recycling.**  A worker retires after ``tasks_per_worker``
  cells and is replaced by a fresh process, bounding the blast radius
  of any per-process state a simulation might leak.  Batches never
  straddle the recycling budget.  (For a shared pool the pool's own
  budget governs, counted across every sweep the worker served.)
* **Per-run timeouts.**  Each cell gets ``timeout_s`` of wall clock —
  the deadline re-arms as every cell of a batch completes.  A cell
  that exceeds it has its worker killed and is reported as
  ``"timeout"``; the batch's not-yet-started cells are re-queued with
  no penalty and the sweep continues on a replacement worker.
* **Crash containment with retry.**  A worker that dies mid-cell
  (segfault, ``os._exit``, OOM-kill) or blows its deadline charges that
  cell only; the cell is retried once on a fresh worker after a short
  backoff (``retries`` controls how many times) before being reported
  as ``"crashed"``/``"timeout"``, because a worker death is the one
  failure mode that is usually the *host's* fault (memory pressure,
  fork storms) rather than the payload's.  Cells behind it in the
  batch had not started (completions arrive in batch order) and are
  re-queued without consuming a retry.  Deterministic failures — the
  callable raising — are never retried.
* **Graceful fallback.**  ``max_workers=1`` (or a platform where
  process creation fails) runs every cell in-process, in order, with
  no multiprocessing machinery at all.
* **Interrupt hygiene.**  A ``KeyboardInterrupt`` (or ``SystemExit``)
  mid-sweep terminates every worker outright, closes every pipe,
  unlinks every shared-memory segment and spool file, and re-raises —
  a Ctrl-C'd sweep leaves no orphan processes behind.  Workers
  receiving the terminal's group-wide SIGINT while idle exit quietly
  rather than printing tracebacks.

Control transport is one duplex :func:`multiprocessing.Pipe` per worker
rather than shared queues, deliberately: a ``Queue`` flushes through a
feeder thread, so a worker killed between cells can die holding the
shared write lock and wedge every other worker.  With a pipe the worker
sends synchronously from its main thread — a message is fully written
before the next (crashable) cell starts — each worker's failure domain
is its own pipe, and a broken pipe doubles as immediate crash detection
(EOF on :func:`multiprocessing.connection.wait`).  See
:mod:`repro.parallel.pool` for the worker protocol and segment
synchronisation argument.

The worker function must be a module-level callable (it crosses the
pipe pickled by reference) and payloads/results must be picklable.
Timeouts are only enforceable when real workers exist; the in-process
path runs each cell to completion and records the timeout budget as
advisory.
"""

from __future__ import annotations

import pickle
import time
import traceback
import warnings
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.parallel.cache import SweepCache
from repro.parallel.pool import (
    DEFAULT_WORKER_CAP,
    PoolLease,
    WorkerPool,
    resolve_workers,
    shm_available,
)
from repro.parallel.spool import PayloadSpool

__all__ = [
    "DEFAULT_WORKER_CAP",
    "Executor",
    "RunOutcome",
    "SweepError",
    "SweepPlan",
    "SweepStats",
    "resolve_workers",
    "run_sweep",
    "values",
]

#: Ceiling for the auto-sized batch: load balancing degrades if one
#: worker hoards too much of the sweep.
_MAX_AUTO_BATCH = 16

#: Payloads at or above this many pickled bytes go through the mmap
#: spool by default.  Registry/fuzz payloads (tens to hundreds of
#: bytes) stay inline; generated fleet scenarios and fault plans that
#: outgrow a pipe buffer's comfort zone spool.
DEFAULT_SPOOL_THRESHOLD = 1 << 14

# Backwards-compatible private alias (pre-pool layout).
_shm_available = shm_available


class SweepError(RuntimeError):
    """Raised by :func:`values` when a sweep cell did not succeed."""


@dataclass(frozen=True)
class SweepPlan:
    """Everything configurable about a sweep, as one picklable object.

    ``batch_size=None`` auto-sizes from the sweep (1 for short sweeps,
    growing with cells-per-worker, capped).  ``transport`` selects how
    results travel back: ``"shm"`` (shared memory, the default; falls
    back to ``"pipe"`` where unavailable) or ``"pipe"`` (pickled over
    the control pipe, the pre-batching behaviour).
    ``spool_threshold`` is the pickled-payload size, in bytes, at which
    payload fan-out switches from inline pipe messages to the mmap
    spool (``None`` disables spooling).  ``cache=True`` consults the
    content-addressed result cache in ``cache_dir`` (default:
    ``$REPRO_CACHE_DIR`` or ``.repro-cache``) before dispatching any
    cell.

    When an :class:`Executor` is given a shared
    :class:`~repro.parallel.pool.WorkerPool`, the pool's own
    ``transport`` and ``tasks_per_worker`` govern (they are properties
    of the processes, which outlive any one plan); the plan's values
    apply to the ephemeral pool created when no shared pool is passed.
    """

    max_workers: Optional[int] = None
    timeout_s: Optional[float] = None
    tasks_per_worker: Optional[int] = None
    retries: int = 1
    batch_size: Optional[int] = None
    transport: str = "shm"
    spool_threshold: Optional[int] = DEFAULT_SPOOL_THRESHOLD
    cache: bool = False
    cache_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.transport not in ("shm", "pipe"):
            raise ValueError(
                f"transport must be 'shm' or 'pipe', got {self.transport!r}"
            )
        if self.tasks_per_worker is not None and self.tasks_per_worker < 1:
            raise ValueError(
                f"tasks_per_worker must be >= 1, got {self.tasks_per_worker}"
            )
        if self.spool_threshold is not None and self.spool_threshold < 1:
            raise ValueError(
                f"spool_threshold must be >= 1, got {self.spool_threshold}"
            )


@dataclass
class SweepStats:
    """Where a sweep's wall clock went, for overhead attribution.

    ``dispatch_s`` is parent time spent choosing and sending work,
    ``compute_s`` is the sum of worker-measured per-cell run times
    (across workers, so it can exceed the wall clock), ``merge_s`` is
    parent time spent decoding results into outcomes.  ``wall_s`` minus
    the parent-side stages is time the parent sat in poll waits.
    ``pool_reuse`` is how many sweeps the shared pool had already
    served before this one (0 for an ephemeral pool);
    ``cache_hits``/``cache_misses`` split the cells that were answered
    from the content-addressed store vs actually run.
    """

    workers: int = 0
    batch_size: int = 1
    transport: str = "serial"
    cells: int = 0
    wall_s: float = 0.0
    dispatch_s: float = 0.0
    compute_s: float = 0.0
    merge_s: float = 0.0
    #: Cells whose result outgrew the shared segment and went inline.
    shm_spills: int = 0
    retried_cells: int = 0
    #: Sweeps the shared pool served before this one (0 = cold/ephemeral).
    pool_reuse: int = 0
    #: Payload descriptors that referenced the mmap spool.
    spooled_payloads: int = 0
    #: Unique payload bytes written to the spool file (deduplicated).
    spool_bytes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def to_dict(self) -> dict:
        return {
            "workers": self.workers,
            "batch_size": self.batch_size,
            "transport": self.transport,
            "cells": self.cells,
            "wall_s": round(self.wall_s, 4),
            "dispatch_s": round(self.dispatch_s, 4),
            "compute_s": round(self.compute_s, 4),
            "merge_s": round(self.merge_s, 4),
            "shm_spills": self.shm_spills,
            "retried_cells": self.retried_cells,
            "pool_reuse": self.pool_reuse,
            "spooled_payloads": self.spooled_payloads,
            "spool_bytes": self.spool_bytes,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }


@dataclass
class RunOutcome:
    """What happened to one sweep cell.

    ``status`` is one of ``"ok"``, ``"error"`` (the callable raised),
    ``"timeout"`` (killed at the per-run deadline), or ``"crashed"``
    (the worker process died without reporting).  ``value`` is only
    meaningful when ``status == "ok"``.  ``cached`` marks a result
    answered from the content-addressed store without running.
    """

    index: int
    status: str
    value: Any = None
    error: Optional[str] = None
    elapsed_s: float = 0.0
    #: Ordinal of the worker process that ran the cell; -1 in-process.
    worker: int = -1
    #: Crash/timeout retries this cell consumed (0 = first try stood).
    retries: int = 0
    #: True when the value came from the sweep cache, not a run.
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def values(outcomes: Sequence[RunOutcome]) -> List[Any]:
    """Unwrap outcome values, raising :class:`SweepError` on any failure."""
    bad = [o for o in outcomes if not o.ok]
    if bad:
        first = bad[0]
        raise SweepError(
            f"{len(bad)} of {len(outcomes)} sweep cells failed; first:"
            f" cell {first.index} {first.status}: {first.error}"
        )
    return [o.value for o in outcomes]


def _auto_batch(n_cells: int, n_workers: int) -> int:
    """Batch size when the plan leaves it to us.

    Small sweeps (the experiment registry: ~10 heterogeneous cells)
    stay at 1 — batching would serialise unlike-sized cells behind one
    worker.  Large sweeps (fuzz campaigns: hundreds of uniform seeds)
    grow toward :data:`_MAX_AUTO_BATCH` so dispatch overhead amortises.
    """
    return max(1, min(_MAX_AUTO_BATCH, n_cells // (n_workers * 8)))


def _run_serial(
    fn: Callable[[Any], Any], payloads: Sequence[Any], stats: SweepStats
) -> List[RunOutcome]:
    """The in-process fallback: the plain loop the serial runner was."""
    outcomes = []
    for index, payload in enumerate(payloads):
        start = time.monotonic()
        try:
            value = fn(payload)
            outcomes.append(RunOutcome(
                index=index, status="ok", value=value,
                elapsed_s=time.monotonic() - start,
            ))
        except Exception:
            outcomes.append(RunOutcome(
                index=index, status="error", error=traceback.format_exc(),
                elapsed_s=time.monotonic() - start,
            ))
        stats.compute_s += time.monotonic() - start
    return outcomes


#: Backoff before a retried cell is reassigned, seconds per attempt —
#: long enough for transient host pressure (the usual cause of a worker
#: death) to clear, short enough to be invisible in a sweep.
_RETRY_BACKOFF_S = 0.25


def _spool_payloads(
    payloads: Sequence[Any],
    threshold: Optional[int],
    stats: SweepStats,
) -> Tuple[List[tuple], Optional[PayloadSpool]]:
    """Payload descriptors for dispatch; big payloads go to the spool.

    Returns one descriptor per payload — ``("inline", payload)`` below
    the threshold, ``("spool", path, offset, length)`` at or above it —
    plus the spool (caller closes it when the sweep ends).  Identical
    large payloads deduplicate to one spool region.
    """
    if threshold is None:
        return [("inline", p) for p in payloads], None
    descs: List[tuple] = []
    spool: Optional[PayloadSpool] = None
    try:
        for payload in payloads:
            blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
            if len(blob) < threshold:
                descs.append(("inline", payload))
                continue
            if spool is None:
                spool = PayloadSpool()
            offset, length = spool.append(blob)
            descs.append(("spool", spool.path, offset, length))
            stats.spooled_payloads += 1
    except BaseException:
        if spool is not None:
            spool.close()
        raise
    if spool is not None:
        stats.spool_bytes = spool.bytes_written
    return descs, spool


class Executor:
    """Runs sweeps under one :class:`SweepPlan`.

    ``pool`` is an optional shared :class:`WorkerPool`: when given, its
    processes serve this run (and are left running afterwards — the
    caller owns the pool's lifecycle); when omitted, an ephemeral pool
    is created and torn down inside :meth:`run`.  ``cache`` is an
    optional :class:`SweepCache`; when omitted and ``plan.cache`` is
    set, one is opened on ``plan.cache_dir``.  Stateless between runs
    except :attr:`stats`, which after each :meth:`run` holds that
    sweep's stage breakdown.
    """

    def __init__(self, plan: Optional[SweepPlan] = None,
                 pool: Optional[WorkerPool] = None,
                 cache: Optional[SweepCache] = None):
        self.plan = plan if plan is not None else SweepPlan()
        self.stats: Optional[SweepStats] = None
        self._pool = pool
        if cache is None and self.plan.cache:
            cache = SweepCache(self.plan.cache_dir)
        self._cache = cache

    @property
    def cache(self) -> Optional[SweepCache]:
        return self._cache

    def run(self, fn: Callable[[Any], Any],
            payloads: Sequence[Any]) -> List[RunOutcome]:
        """Run ``fn(payload)`` for every payload; outcomes in payload order."""
        payloads = list(payloads)
        stats = SweepStats(cells=len(payloads))
        self.stats = stats
        if not payloads:
            return []
        started = time.monotonic()
        try:
            outcomes: List[Optional[RunOutcome]] = [None] * len(payloads)
            keys: List[Optional[str]] = [None] * len(payloads)
            cache = self._cache
            if cache is not None:
                for i, payload in enumerate(payloads):
                    key = cache.key_for(fn, payload)
                    keys[i] = key
                    if key is None:
                        continue
                    hit, value = cache.get(key)
                    if hit:
                        outcomes[i] = RunOutcome(
                            index=i, status="ok", value=value, cached=True,
                        )
                        stats.cache_hits += 1
            todo = [i for i, o in enumerate(outcomes) if o is None]
            if cache is not None:
                stats.cache_misses = len(todo)
            if todo:
                ran = self._run_cells(fn, [payloads[i] for i in todo], stats)
                for outcome in ran:
                    index = todo[outcome.index]
                    outcome.index = index
                    outcomes[index] = outcome
                    if cache is not None and outcome.ok \
                            and keys[index] is not None:
                        cache.put(keys[index], outcome.value)
            stats.retried_cells = sum(
                o.retries for o in outcomes if o is not None
            )
            return [o for o in outcomes if o is not None]
        finally:
            stats.wall_s = time.monotonic() - started

    def _run_cells(self, fn: Callable[[Any], Any], payloads: List[Any],
                   stats: SweepStats) -> List[RunOutcome]:
        plan = self.plan
        n_workers = min(resolve_workers(plan.max_workers), len(payloads))
        if n_workers <= 1:
            stats.workers = 1
            return _run_serial(fn, payloads, stats)
        shared = self._pool is not None
        pool = self._pool
        lease: Optional[PoolLease] = None
        try:
            if shared:
                stats.pool_reuse = pool.runs_served
                lease = pool.lease(n_workers)
            else:
                pool = WorkerPool(
                    max_workers=n_workers,
                    tasks_per_worker=plan.tasks_per_worker,
                    transport=plan.transport,
                )
                lease = pool.lease(n_workers)
        except (OSError, ValueError):
            # No processes on this platform (sandbox, resource limits):
            # degrade to the serial path rather than failing the sweep.
            if not shared and pool is not None:
                pool.kill()
            stats.workers = 1
            stats.transport = "serial"
            return _run_serial(fn, payloads, stats)
        pool.runs_served += 1
        budget = pool.tasks_per_worker
        batch = (
            plan.batch_size if plan.batch_size is not None
            else _auto_batch(len(payloads), n_workers)
        )
        if budget is not None:
            batch = min(batch, budget)
        stats.workers = len(lease.workers)
        stats.batch_size = batch
        stats.transport = pool.transport
        spool: Optional[PayloadSpool] = None
        try:
            descs, spool = _spool_payloads(
                payloads, plan.spool_threshold, stats
            )
            return _run_pool(lease, fn, payloads, descs, plan, batch,
                             budget, stats)
        except (KeyboardInterrupt, SystemExit):
            # Ctrl-C (or a hard exit request) mid-sweep: kill the
            # workers outright — they may be mid-cell and will never
            # see a poison pill — close every pipe, and let the
            # interrupt propagate.
            pool.kill()
            raise
        except BaseException:
            # Any other escape leaves workers with undelivered batches
            # and unread pipes; a shared pool in that state would
            # poison the next sweep, so tear it down too.
            pool.kill()
            raise
        finally:
            if spool is not None:
                spool.close()
            if not shared:
                pool.shutdown()


def run_sweep(
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    max_workers: Optional[int] = None,
    timeout_s: Optional[float] = None,
    tasks_per_worker: Optional[int] = None,
    retries: int = 1,
) -> List[RunOutcome]:
    """Deprecated entry point; builds a :class:`SweepPlan` and runs it.

    Kept as a byte-identical shim over
    ``Executor(SweepPlan(...)).run(fn, payloads)`` so external callers
    migrate at their own pace; it emits a single-shot
    :class:`DeprecationWarning` per process and will be removed in a
    later release (``tests/test_parallel_executor.py`` pins the shim's
    equivalence until then).
    """
    global _RUN_SWEEP_WARNED
    if not _RUN_SWEEP_WARNED:
        _RUN_SWEEP_WARNED = True
        warnings.warn(
            "repro.parallel.run_sweep is deprecated; use"
            " Executor(SweepPlan(...)).run(fn, payloads) instead",
            DeprecationWarning,
            stacklevel=2,
        )
    plan = SweepPlan(
        max_workers=max_workers,
        timeout_s=timeout_s,
        tasks_per_worker=tasks_per_worker,
        retries=retries,
    )
    return Executor(plan).run(fn, payloads)


_RUN_SWEEP_WARNED = False


def _run_pool(
    lease: PoolLease, fn: Callable[[Any], Any], payloads: Sequence[Any],
    descs: Sequence[tuple], plan: SweepPlan, batch_cap: int,
    budget: Optional[int], stats: SweepStats,
) -> List[RunOutcome]:
    outcomes: List[Optional[RunOutcome]] = [None] * len(payloads)
    next_index = 0
    completed = 0
    retries = plan.retries
    timeout_s = plan.timeout_s
    #: Crash/timeout retries consumed so far, per cell.
    attempts = [0] * len(payloads)
    #: Cells awaiting a retry slot, as (not_before, index).
    retry_queue: List[Tuple[float, int]] = []
    #: Batch cells orphaned unstarted by a crash/timeout ahead of them;
    #: re-dispatched first, with no retry penalty.
    requeue: List[int] = []

    def feed() -> None:
        nonlocal next_index
        t0 = time.monotonic()
        for worker in lease.workers:
            # Never hand a cell to a worker that has hit its recycling
            # budget: it exits right after announcing retirement, and a
            # cell sent behind that announcement would strand in a dead
            # process's pipe.  Its replacement picks up the slack.
            if budget is not None and worker.tasks_done >= budget:
                continue
            if worker.pending:
                continue
            now = time.monotonic()
            # Retries first, so a flaky cell's result stops gating the
            # sweep's tail; a retry runs alone (batch of one) so no
            # innocent cell sits behind a suspect one.
            ready = next((r for r in retry_queue if r[0] <= now), None)
            if ready is not None:
                retry_queue.remove(ready)
                lease.assign(worker, fn, [ready[1]], descs, timeout_s)
                continue
            room = batch_cap
            if budget is not None:
                room = min(room, budget - worker.tasks_done)
            indices: List[int] = []
            while requeue and len(indices) < room:
                indices.append(requeue.pop(0))
            while next_index < len(payloads) and len(indices) < room:
                indices.append(next_index)
                next_index += 1
            if indices:
                lease.assign(worker, fn, indices, descs, timeout_s)
        stats.dispatch_s += time.monotonic() - t0

    def fail(worker, index: int, status: str, error: str) -> None:
        """Charge a crashed/timed-out cell, or queue its retry."""
        nonlocal completed
        if outcomes[index] is not None:
            return
        if attempts[index] < retries:
            attempts[index] += 1
            retry_queue.append(
                (time.monotonic() + _RETRY_BACKOFF_S * attempts[index], index)
            )
            return
        outcomes[index] = RunOutcome(
            index=index, status=status, error=error,
            elapsed_s=time.monotonic() - worker.cell_started,
            worker=worker.ordinal, retries=attempts[index],
        )
        completed += 1

    def abandon(worker) -> None:
        """Re-queue a dead worker's unstarted batch cells, penalty-free.

        Completions arrive in batch order, so ``pending[0]`` is the
        cell that was actually running; everything behind it never
        started and keeps its retry budget intact.
        """
        for index in worker.pending[1:]:
            if outcomes[index] is None:
                requeue.append(index)
        worker.pending = []

    def record(worker, message: tuple) -> None:
        """Fold one worker message into outcomes and bookkeeping."""
        nonlocal completed
        status, ordinal, index, desc, error, compute_s = message
        if status == "retired":
            # The worker hit its recycling budget: replace it with a
            # fresh process.  (Batches never straddle the budget, so a
            # retiring worker has no unstarted cells to abandon.)
            abandon(worker)
            if lease.by_ordinal(ordinal) is not None:
                lease.replace(worker)
            return
        t0 = time.monotonic()
        stats.compute_s += compute_s
        if index is not None and outcomes[index] is None:
            value = None
            if status == "ok":
                kind = desc[0]
                if kind == "shm":
                    value = lease.read_segment(worker, desc[1], desc[2])
                else:
                    value = desc[1]
                    if worker.shm is not None:
                        stats.shm_spills += 1
            outcomes[index] = RunOutcome(
                index=index, status=status, value=value, error=error,
                elapsed_s=time.monotonic() - worker.cell_started,
                worker=ordinal, retries=attempts[index],
            )
            completed += 1
        if worker.pending and worker.pending[0] == index:
            worker.pending.pop(0)
            worker.tasks_done += 1
            now = time.monotonic()
            worker.cell_started = now
            worker.deadline = (
                now + timeout_s
                if timeout_s is not None and worker.pending else None
            )
        stats.merge_s += time.monotonic() - t0

    feed()
    while completed < len(payloads):
        events = lease.poll()
        for worker, message in events:
            if message is None:
                # EOF: the worker died.  Charge (or retry) its in-
                # flight cell, re-queue the rest of its batch, and
                # refill the slot.
                index = worker.inflight
                if index is not None:
                    fail(
                        worker, index, "crashed",
                        f"worker {worker.ordinal} died"
                        f" (exitcode {worker.process.exitcode},"
                        f" attempt {attempts[index] + 1})",
                    )
                abandon(worker)
                if lease.by_ordinal(worker.ordinal) is not None:
                    lease.replace(worker)
            else:
                record(worker, message)
        if events:
            feed()
            continue

        # Nothing to read: enforce per-cell deadlines.
        now = time.monotonic()
        for worker in list(lease.workers):
            if worker.inflight is None:
                continue
            if worker.deadline is not None and now > worker.deadline:
                index = worker.inflight
                fail(
                    worker, index, "timeout",
                    f"cell exceeded {timeout_s}s"
                    f" (attempt {attempts[index] + 1})",
                )
                abandon(worker)
                lease.replace(worker)
        feed()

    return [o for o in outcomes if o is not None]
