"""A multiprocessing sweep executor for independent simulation runs.

Every figure and table in the paper's evaluation is a sweep of
independent (scheme, workload, seed) simulations, and the chaos soak is
a sweep of independent seeds — embarrassingly parallel work that the
serial runner used to grind through one cell at a time.  The
:class:`Executor` (configured by a :class:`SweepPlan`; the legacy
:func:`run_sweep` is a thin shim over both) fans such cells across
worker processes while keeping the *results* exactly what the serial
loop would have produced:

* **Deterministic merge order.**  Outcomes are returned in submission
  order, whatever order workers finish in.  Each cell is a pure
  function of its payload (the engine gives every simulation its own
  seeded RNG), so serial and parallel sweeps produce byte-identical
  results.
* **Batched dispatch.**  Cells are handed to workers in batches
  (``batch_size``; auto-sized from the sweep by default) so one pipe
  round-trip amortises over several cells.  Completion is still
  reported per cell — progress, timeouts, and crash containment keep
  cell granularity.
* **Shared-memory results.**  With ``transport="shm"`` each worker owns
  a shared-memory segment; results are pickled into it and only a tiny
  ``(offset, length)`` descriptor crosses the pipe.  Results that
  outgrow the segment fall back to inline pipe transport per cell
  (counted in :class:`SweepStats.shm_spills`); platforms without
  ``fork`` (the segment is inherited, never re-attached) or without
  shared memory degrade to ``"pipe"`` wholesale.
* **Worker recycling.**  A worker retires after ``tasks_per_worker``
  cells and is replaced by a fresh process, bounding the blast radius
  of any per-process state a simulation might leak.  Batches never
  straddle the recycling budget.
* **Per-run timeouts.**  Each cell gets ``timeout_s`` of wall clock —
  the deadline re-arms as every cell of a batch completes.  A cell
  that exceeds it has its worker killed and is reported as
  ``"timeout"``; the batch's not-yet-started cells are re-queued with
  no penalty and the sweep continues on a replacement worker.
* **Crash containment with retry.**  A worker that dies mid-cell
  (segfault, ``os._exit``, OOM-kill) or blows its deadline charges that
  cell only; the cell is retried once on a fresh worker after a short
  backoff (``retries`` controls how many times) before being reported
  as ``"crashed"``/``"timeout"``, because a worker death is the one
  failure mode that is usually the *host's* fault (memory pressure,
  fork storms) rather than the payload's.  Cells behind it in the
  batch had not started (completions arrive in batch order) and are
  re-queued without consuming a retry.  Deterministic failures — the
  callable raising — are never retried.
* **Graceful fallback.**  ``max_workers=1`` (or a platform where
  process creation fails) runs every cell in-process, in order, with
  no multiprocessing machinery at all.
* **Interrupt hygiene.**  A ``KeyboardInterrupt`` (or ``SystemExit``)
  mid-sweep terminates every worker outright, closes every pipe,
  unlinks every shared-memory segment, and re-raises — a Ctrl-C'd
  sweep leaves no orphan processes behind.  Workers receiving the
  terminal's group-wide SIGINT while idle exit quietly rather than
  printing tracebacks.

Control transport is one duplex :func:`multiprocessing.Pipe` per worker
rather than shared queues, deliberately: a ``Queue`` flushes through a
feeder thread, so a worker killed between cells can die holding the
shared write lock and wedge every other worker.  With a pipe the worker
sends synchronously from its main thread — a message is fully written
before the next (crashable) cell starts — each worker's failure domain
is its own pipe, and a broken pipe doubles as immediate crash detection
(EOF on :func:`multiprocessing.connection.wait`).  The shared-memory
segment adds no synchronisation of its own: a worker only writes a
region before sending the descriptor for it, the parent only reads a
region after receiving the descriptor, and the write offset only
resets when a new batch is assigned — which the parent does strictly
after consuming every descriptor of the previous batch.

The worker function must be a module-level callable (it is imported by
name in the worker) and payloads/results must be picklable.  Timeouts
are only enforceable when real workers exist; the in-process path runs
each cell to completion and records the timeout budget as advisory.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import connection
from typing import Any, Callable, List, Optional, Sequence, Tuple

#: Default worker-count cap when ``max_workers`` is None: enough to
#: cover the experiment sweeps without oversubscribing small machines.
DEFAULT_WORKER_CAP = 4

#: How long the parent waits for worker messages per poll, seconds.
_POLL_S = 0.02

#: Size of each worker's shared-memory result segment.  Large enough
#: for any experiment record batch; results that do not fit spill to
#: inline pipe transport per cell.
_SEGMENT_BYTES = 1 << 23

#: Ceiling for the auto-sized batch: load balancing degrades if one
#: worker hoards too much of the sweep.
_MAX_AUTO_BATCH = 16


class SweepError(RuntimeError):
    """Raised by :func:`values` when a sweep cell did not succeed."""


@dataclass(frozen=True)
class SweepPlan:
    """Everything configurable about a sweep, as one picklable object.

    ``batch_size=None`` auto-sizes from the sweep (1 for short sweeps,
    growing with cells-per-worker, capped).  ``transport`` selects how
    results travel back: ``"shm"`` (shared memory, the default; falls
    back to ``"pipe"`` where unavailable) or ``"pipe"`` (pickled over
    the control pipe, the pre-batching behaviour).
    """

    max_workers: Optional[int] = None
    timeout_s: Optional[float] = None
    tasks_per_worker: Optional[int] = None
    retries: int = 1
    batch_size: Optional[int] = None
    transport: str = "shm"

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.transport not in ("shm", "pipe"):
            raise ValueError(
                f"transport must be 'shm' or 'pipe', got {self.transport!r}"
            )
        if self.tasks_per_worker is not None and self.tasks_per_worker < 1:
            raise ValueError(
                f"tasks_per_worker must be >= 1, got {self.tasks_per_worker}"
            )


@dataclass
class SweepStats:
    """Where a sweep's wall clock went, for overhead attribution.

    ``dispatch_s`` is parent time spent choosing and sending work,
    ``compute_s`` is the sum of worker-measured per-cell run times
    (across workers, so it can exceed the wall clock), ``merge_s`` is
    parent time spent decoding results into outcomes.  ``wall_s`` minus
    the parent-side stages is time the parent sat in poll waits.
    """

    workers: int = 0
    batch_size: int = 1
    transport: str = "serial"
    cells: int = 0
    wall_s: float = 0.0
    dispatch_s: float = 0.0
    compute_s: float = 0.0
    merge_s: float = 0.0
    #: Cells whose result outgrew the shared segment and went inline.
    shm_spills: int = 0
    retried_cells: int = 0

    def to_dict(self) -> dict:
        return {
            "workers": self.workers,
            "batch_size": self.batch_size,
            "transport": self.transport,
            "cells": self.cells,
            "wall_s": round(self.wall_s, 4),
            "dispatch_s": round(self.dispatch_s, 4),
            "compute_s": round(self.compute_s, 4),
            "merge_s": round(self.merge_s, 4),
            "shm_spills": self.shm_spills,
            "retried_cells": self.retried_cells,
        }


@dataclass
class RunOutcome:
    """What happened to one sweep cell.

    ``status`` is one of ``"ok"``, ``"error"`` (the callable raised),
    ``"timeout"`` (killed at the per-run deadline), or ``"crashed"``
    (the worker process died without reporting).  ``value`` is only
    meaningful when ``status == "ok"``.
    """

    index: int
    status: str
    value: Any = None
    error: Optional[str] = None
    elapsed_s: float = 0.0
    #: Ordinal of the worker process that ran the cell; -1 in-process.
    worker: int = -1
    #: Crash/timeout retries this cell consumed (0 = first try stood).
    retries: int = 0

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def values(outcomes: Sequence[RunOutcome]) -> List[Any]:
    """Unwrap outcome values, raising :class:`SweepError` on any failure."""
    bad = [o for o in outcomes if not o.ok]
    if bad:
        first = bad[0]
        raise SweepError(
            f"{len(bad)} of {len(outcomes)} sweep cells failed; first:"
            f" cell {first.index} {first.status}: {first.error}"
        )
    return [o.value for o in outcomes]


def resolve_workers(max_workers: Optional[int]) -> int:
    """Map the user-facing ``--workers`` value to a worker count.

    ``None`` means auto: one worker per CPU, capped at
    :data:`DEFAULT_WORKER_CAP`.  Anything below 2 means in-process.
    """
    if max_workers is None:
        max_workers = min(DEFAULT_WORKER_CAP, os.cpu_count() or 1)
    return max(1, int(max_workers))


# --- worker side -----------------------------------------------------------


def _worker_main(
    worker_id: int, conn, fn: Callable[[Any], Any],
    tasks_per_worker: Optional[int], shm,
) -> None:
    """Run cell batches from the pipe until retired, poisoned, or crashed."""
    done = 0
    buf = shm.buf if shm is not None else None
    capacity = len(buf) if buf is not None else 0
    while True:
        try:
            batch = conn.recv()
        except (EOFError, OSError):
            return
        except KeyboardInterrupt:
            # A terminal Ctrl-C delivers SIGINT to the whole foreground
            # process group, workers included.  The parent owns the
            # interrupt (it kills the pool); a worker parked on recv()
            # just exits quietly instead of spraying tracebacks.
            return
        if batch is None:
            return
        # The parent has consumed every result of the previous batch
        # before assigning this one (the assignment is the ack), so the
        # segment is free to reuse from the top.
        offset = 0
        for index, payload in batch:
            started = time.perf_counter()
            try:
                value = fn(payload)
                compute_s = time.perf_counter() - started
                if buf is not None:
                    blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
                    size = len(blob)
                    if offset + size <= capacity:
                        buf[offset:offset + size] = blob
                        message = ("ok", worker_id, index,
                                   ("shm", offset, size), None, compute_s)
                        offset += size
                    else:
                        message = ("ok", worker_id, index,
                                   ("inline", value), None, compute_s)
                else:
                    message = ("ok", worker_id, index,
                               ("inline", value), None, compute_s)
            except BaseException:
                message = ("error", worker_id, index, None,
                           traceback.format_exc(),
                           time.perf_counter() - started)
            try:
                # send() pickles then writes from this thread, so the
                # message is fully flushed before the next cell can
                # crash the process, and an unpicklable result surfaces
                # here as a structured error rather than killing the
                # worker.
                conn.send(message)
            except Exception as exc:
                conn.send(("error", worker_id, index, None,
                           f"result of cell {index} is not picklable: {exc!r}",
                           0.0))
            done += 1
            if tasks_per_worker is not None and done >= tasks_per_worker:
                conn.send(("retired", worker_id, None, None, None, 0.0))
                return


# --- parent side -----------------------------------------------------------


@dataclass
class _Worker:
    """Parent-side bookkeeping for one worker process."""

    ordinal: int
    process: Any
    conn: Any
    #: The worker's shared-memory segment, or None on pipe transport.
    shm: Any = None
    #: Indices of the assigned batch still awaiting completion, in the
    #: order the worker runs them (completions arrive in this order).
    pending: List[int] = field(default_factory=list)
    #: Wall-clock deadline for the cell now in flight, or None.
    deadline: Optional[float] = None
    #: When the cell now in flight started (parent clock).
    cell_started: float = 0.0
    tasks_done: int = field(default=0)

    @property
    def inflight(self) -> Optional[int]:
        """The cell the worker is running right now, or None when idle."""
        return self.pending[0] if self.pending else None


class _Pool:
    """The worker set: spawn, assign, reap, recycle, kill."""

    def __init__(
        self,
        fn: Callable[[Any], Any],
        n_workers: int,
        tasks_per_worker: Optional[int],
        transport: str = "pipe",
        segment_bytes: int = _SEGMENT_BYTES,
    ):
        self._fn = fn
        self._tasks_per_worker = tasks_per_worker
        self._transport = transport
        self._segment_bytes = segment_bytes
        self._ctx = multiprocessing.get_context()
        self._next_ordinal = 0
        self._dead = False
        self.workers: List[_Worker] = []
        try:
            for _ in range(n_workers):
                self.workers.append(self._spawn())
        except BaseException:
            # Creation failed partway: release what exists before the
            # caller falls back to serial.
            self.kill()
            raise

    def _spawn(self) -> _Worker:
        ordinal = self._next_ordinal
        self._next_ordinal += 1
        shm = None
        if self._transport == "shm":
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(
                create=True, size=self._segment_bytes
            )
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        try:
            process = self._ctx.Process(
                target=_worker_main,
                args=(ordinal, child_conn, self._fn,
                      self._tasks_per_worker, shm),
                daemon=True,
            )
            process.start()
        except BaseException:
            _release_segment(shm)
            parent_conn.close()
            child_conn.close()
            raise
        # Close the child's end in the parent so a dead worker reads as
        # EOF here instead of a half-open pipe.
        child_conn.close()
        return _Worker(ordinal=ordinal, process=process, conn=parent_conn,
                       shm=shm)

    def replace(self, worker: _Worker) -> _Worker:
        """Kill a worker (timeout/crash/retired) and refill its slot."""
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=5)
        worker.conn.close()
        _release_segment(worker.shm)
        slot = self.workers.index(worker)
        fresh = self._spawn()
        self.workers[slot] = fresh
        return fresh

    def assign(self, worker: _Worker, indices: List[int],
               payloads: Sequence[Any], timeout_s: Optional[float]) -> None:
        worker.pending = list(indices)
        worker.cell_started = time.monotonic()
        worker.deadline = (
            worker.cell_started + timeout_s if timeout_s is not None else None
        )
        worker.conn.send([(i, payloads[i]) for i in indices])

    def poll(self) -> List[Tuple[_Worker, Optional[tuple]]]:
        """(worker, message) for every worker with something to say.

        A ``None`` message means the worker's pipe hit EOF (or broke
        mid-message): the process is gone.
        """
        ready = connection.wait(
            [worker.conn for worker in self.workers], timeout=_POLL_S
        )
        events: List[Tuple[_Worker, Optional[tuple]]] = []
        by_conn = {worker.conn: worker for worker in self.workers}
        for conn in ready:
            worker = by_conn[conn]
            try:
                events.append((worker, conn.recv()))
            except (EOFError, OSError):
                events.append((worker, None))
        return events

    def by_ordinal(self, ordinal: int) -> Optional[_Worker]:
        for worker in self.workers:
            if worker.ordinal == ordinal:
                return worker
        return None

    def read_segment(self, worker: _Worker, offset: int, size: int) -> Any:
        """Decode one result from the worker's shared segment."""
        return pickle.loads(bytes(worker.shm.buf[offset:offset + size]))

    def shutdown(self) -> None:
        """Drain gracefully: poison pills, then join, then close pipes."""
        if self._dead:
            return
        self._dead = True
        for worker in self.workers:
            try:
                worker.conn.send(None)
            except Exception:  # pragma: no cover - pipe already broken
                pass
        for worker in self.workers:
            worker.process.join(timeout=2)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=2)
            worker.conn.close()
            _release_segment(worker.shm)

    def kill(self) -> None:
        """Tear the pool down *now*: no poison pills, no graceful drain.

        The interrupt path.  Terminate every worker (no matter what it
        is running), join briefly, close every pipe, and unlink every
        shared segment, so a Ctrl-C'd sweep leaves no orphan processes,
        leaked file descriptors, or stale ``/dev/shm`` entries behind.
        Idempotent, and makes any later :meth:`shutdown` a no-op.
        """
        if self._dead:
            return
        self._dead = True
        for worker in self.workers:
            if worker.process.is_alive():
                worker.process.terminate()
        for worker in self.workers:
            worker.process.join(timeout=2)
            if worker.process.is_alive():  # pragma: no cover - stuck in D
                worker.process.kill()
                worker.process.join(timeout=2)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            _release_segment(worker.shm)


def _release_segment(shm) -> None:
    """Close and unlink one shared segment; tolerates double release."""
    if shm is None:
        return
    try:
        shm.close()
        shm.unlink()
    except (FileNotFoundError, OSError):  # pragma: no cover - already gone
        pass


def _auto_batch(n_cells: int, n_workers: int) -> int:
    """Batch size when the plan leaves it to us.

    Small sweeps (the experiment registry: ~10 heterogeneous cells)
    stay at 1 — batching would serialise unlike-sized cells behind one
    worker.  Large sweeps (fuzz campaigns: hundreds of uniform seeds)
    grow toward :data:`_MAX_AUTO_BATCH` so dispatch overhead amortises.
    """
    return max(1, min(_MAX_AUTO_BATCH, n_cells // (n_workers * 8)))


def _run_serial(
    fn: Callable[[Any], Any], payloads: Sequence[Any], stats: SweepStats
) -> List[RunOutcome]:
    """The in-process fallback: the plain loop the serial runner was."""
    outcomes = []
    for index, payload in enumerate(payloads):
        start = time.monotonic()
        try:
            value = fn(payload)
            outcomes.append(RunOutcome(
                index=index, status="ok", value=value,
                elapsed_s=time.monotonic() - start,
            ))
        except Exception:
            outcomes.append(RunOutcome(
                index=index, status="error", error=traceback.format_exc(),
                elapsed_s=time.monotonic() - start,
            ))
        stats.compute_s += time.monotonic() - start
    return outcomes


#: Backoff before a retried cell is reassigned, seconds per attempt —
#: long enough for transient host pressure (the usual cause of a worker
#: death) to clear, short enough to be invisible in a sweep.
_RETRY_BACKOFF_S = 0.25


class Executor:
    """Runs sweeps under one :class:`SweepPlan`.

    Stateless between runs except :attr:`stats`, which after each
    :meth:`run` holds that sweep's stage breakdown.
    """

    def __init__(self, plan: Optional[SweepPlan] = None):
        self.plan = plan if plan is not None else SweepPlan()
        self.stats: Optional[SweepStats] = None

    def run(self, fn: Callable[[Any], Any],
            payloads: Sequence[Any]) -> List[RunOutcome]:
        """Run ``fn(payload)`` for every payload; outcomes in payload order."""
        plan = self.plan
        payloads = list(payloads)
        stats = SweepStats(cells=len(payloads))
        self.stats = stats
        if not payloads:
            return []
        started = time.monotonic()
        try:
            return self._run(fn, payloads, stats)
        finally:
            stats.wall_s = time.monotonic() - started

    def _run(self, fn: Callable[[Any], Any], payloads: List[Any],
             stats: SweepStats) -> List[RunOutcome]:
        plan = self.plan
        n_workers = min(resolve_workers(plan.max_workers), len(payloads))
        if n_workers <= 1:
            stats.workers = 1
            return _run_serial(fn, payloads, stats)
        transport = plan.transport
        if transport == "shm" and not _shm_available():
            transport = "pipe"
        batch = (
            plan.batch_size if plan.batch_size is not None
            else _auto_batch(len(payloads), n_workers)
        )
        if plan.tasks_per_worker is not None:
            batch = min(batch, plan.tasks_per_worker)
        stats.workers = n_workers
        stats.batch_size = batch
        stats.transport = transport
        try:
            pool = _Pool(fn, n_workers, plan.tasks_per_worker,
                         transport=transport)
        except (OSError, ValueError):
            # No processes on this platform (sandbox, resource limits):
            # degrade to the serial path rather than failing the sweep.
            stats.workers = 1
            stats.transport = "serial"
            return _run_serial(fn, payloads, stats)
        try:
            return _run_pool(pool, payloads, plan, batch, stats)
        except (KeyboardInterrupt, SystemExit):
            # Ctrl-C (or a hard exit request) mid-sweep: kill the
            # workers outright — they may be mid-cell and will never
            # see a poison pill — close every pipe, and let the
            # interrupt propagate.
            pool.kill()
            raise
        finally:
            pool.shutdown()


def _shm_available() -> bool:
    """Shared-memory transport needs fork (segments are inherited)."""
    if multiprocessing.get_start_method(allow_none=False) != "fork":
        return False
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - ancient python
        return False
    return True


def run_sweep(
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    max_workers: Optional[int] = None,
    timeout_s: Optional[float] = None,
    tasks_per_worker: Optional[int] = None,
    retries: int = 1,
) -> List[RunOutcome]:
    """Deprecated entry point; builds a :class:`SweepPlan` and runs it.

    Kept as a shim so existing callers (chaos, fuzz, fleet, bench)
    migrate at their own pace — behaviour is identical to
    ``Executor(SweepPlan(...)).run(fn, payloads)`` with the loose
    kwargs folded into the plan.
    """
    plan = SweepPlan(
        max_workers=max_workers,
        timeout_s=timeout_s,
        tasks_per_worker=tasks_per_worker,
        retries=retries,
    )
    return Executor(plan).run(fn, payloads)


def _run_pool(
    pool: _Pool, payloads: Sequence[Any], plan: SweepPlan, batch_cap: int,
    stats: SweepStats,
) -> List[RunOutcome]:
    outcomes: List[Optional[RunOutcome]] = [None] * len(payloads)
    next_index = 0
    completed = 0
    budget = pool._tasks_per_worker
    retries = plan.retries
    timeout_s = plan.timeout_s
    #: Crash/timeout retries consumed so far, per cell.
    attempts = [0] * len(payloads)
    #: Cells awaiting a retry slot, as (not_before, index).
    retry_queue: List[Tuple[float, int]] = []
    #: Batch cells orphaned unstarted by a crash/timeout ahead of them;
    #: re-dispatched first, with no retry penalty.
    requeue: List[int] = []

    def feed() -> None:
        nonlocal next_index
        t0 = time.monotonic()
        for worker in pool.workers:
            # Never hand a cell to a worker that has hit its recycling
            # budget: it exits right after announcing retirement, and a
            # cell sent behind that announcement would strand in a dead
            # process's pipe.  Its replacement picks up the slack.
            if budget is not None and worker.tasks_done >= budget:
                continue
            if worker.pending:
                continue
            now = time.monotonic()
            # Retries first, so a flaky cell's result stops gating the
            # sweep's tail; a retry runs alone (batch of one) so no
            # innocent cell sits behind a suspect one.
            ready = next((r for r in retry_queue if r[0] <= now), None)
            if ready is not None:
                retry_queue.remove(ready)
                pool.assign(worker, [ready[1]], payloads, timeout_s)
                continue
            room = batch_cap
            if budget is not None:
                room = min(room, budget - worker.tasks_done)
            indices: List[int] = []
            while requeue and len(indices) < room:
                indices.append(requeue.pop(0))
            while next_index < len(payloads) and len(indices) < room:
                indices.append(next_index)
                next_index += 1
            if indices:
                pool.assign(worker, indices, payloads, timeout_s)
        stats.dispatch_s += time.monotonic() - t0

    def fail(worker: _Worker, index: int, status: str, error: str) -> None:
        """Charge a crashed/timed-out cell, or queue its retry."""
        nonlocal completed
        if outcomes[index] is not None:
            return
        if attempts[index] < retries:
            attempts[index] += 1
            retry_queue.append(
                (time.monotonic() + _RETRY_BACKOFF_S * attempts[index], index)
            )
            return
        outcomes[index] = RunOutcome(
            index=index, status=status, error=error,
            elapsed_s=time.monotonic() - worker.cell_started,
            worker=worker.ordinal, retries=attempts[index],
        )
        completed += 1

    def abandon(worker: _Worker) -> None:
        """Re-queue a dead worker's unstarted batch cells, penalty-free.

        Completions arrive in batch order, so ``pending[0]`` is the
        cell that was actually running; everything behind it never
        started and keeps its retry budget intact.
        """
        for index in worker.pending[1:]:
            if outcomes[index] is None:
                requeue.append(index)
        worker.pending = []

    def record(worker: _Worker, message: tuple) -> None:
        """Fold one worker message into outcomes and bookkeeping."""
        nonlocal completed
        status, ordinal, index, desc, error, compute_s = message
        if status == "retired":
            # The worker hit its recycling budget: replace it with a
            # fresh process.  (Batches never straddle the budget, so a
            # retiring worker has no unstarted cells to abandon.)
            abandon(worker)
            if pool.by_ordinal(ordinal) is not None:
                pool.replace(worker)
            return
        t0 = time.monotonic()
        stats.compute_s += compute_s
        if index is not None and outcomes[index] is None:
            value = None
            if status == "ok":
                kind = desc[0]
                if kind == "shm":
                    value = pool.read_segment(worker, desc[1], desc[2])
                else:
                    value = desc[1]
                    if worker.shm is not None:
                        stats.shm_spills += 1
            outcomes[index] = RunOutcome(
                index=index, status=status, value=value, error=error,
                elapsed_s=time.monotonic() - worker.cell_started,
                worker=ordinal, retries=attempts[index],
            )
            completed += 1
        if worker.pending and worker.pending[0] == index:
            worker.pending.pop(0)
            worker.tasks_done += 1
            now = time.monotonic()
            worker.cell_started = now
            worker.deadline = (
                now + timeout_s
                if timeout_s is not None and worker.pending else None
            )
        stats.merge_s += time.monotonic() - t0

    feed()
    while completed < len(payloads):
        events = pool.poll()
        for worker, message in events:
            if message is None:
                # EOF: the worker died.  Charge (or retry) its in-
                # flight cell, re-queue the rest of its batch, and
                # refill the slot.
                index = worker.inflight
                if index is not None:
                    fail(
                        worker, index, "crashed",
                        f"worker {worker.ordinal} died"
                        f" (exitcode {worker.process.exitcode},"
                        f" attempt {attempts[index] + 1})",
                    )
                abandon(worker)
                if pool.by_ordinal(worker.ordinal) is not None:
                    pool.replace(worker)
            else:
                record(worker, message)
        if events:
            feed()
            continue

        # Nothing to read: enforce per-cell deadlines.
        now = time.monotonic()
        for worker in list(pool.workers):
            if worker.inflight is None:
                continue
            if worker.deadline is not None and now > worker.deadline:
                index = worker.inflight
                fail(
                    worker, index, "timeout",
                    f"cell exceeded {timeout_s}s"
                    f" (attempt {attempts[index] + 1})",
                )
                abandon(worker)
                pool.replace(worker)
        feed()

    stats.retried_cells = sum(
        o.retries for o in outcomes if o is not None
    )
    return [o for o in outcomes if o is not None]
