"""Parallel sweep execution for independent simulation runs."""

from repro.parallel.cache import (
    SweepCache,
    closure_digest,
    closure_stats,
    default_cache_dir,
)
from repro.parallel.executor import (
    DEFAULT_WORKER_CAP,
    Executor,
    RunOutcome,
    SweepError,
    SweepPlan,
    SweepStats,
    resolve_workers,
    run_sweep,
    values,
)
from repro.parallel.pool import WorkerPool, shm_available
from repro.parallel.spool import PayloadSpool, SpoolReader

__all__ = [
    "DEFAULT_WORKER_CAP",
    "Executor",
    "PayloadSpool",
    "RunOutcome",
    "SpoolReader",
    "SweepCache",
    "SweepError",
    "SweepPlan",
    "SweepStats",
    "WorkerPool",
    "closure_digest",
    "closure_stats",
    "default_cache_dir",
    "resolve_workers",
    "run_sweep",
    "shm_available",
    "values",
]
