"""Parallel sweep execution for independent simulation runs."""

from repro.parallel.executor import (
    DEFAULT_WORKER_CAP,
    Executor,
    RunOutcome,
    SweepError,
    SweepPlan,
    SweepStats,
    resolve_workers,
    run_sweep,
    values,
)

__all__ = [
    "DEFAULT_WORKER_CAP",
    "Executor",
    "RunOutcome",
    "SweepError",
    "SweepPlan",
    "SweepStats",
    "resolve_workers",
    "run_sweep",
    "values",
]
