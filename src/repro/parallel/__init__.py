"""Parallel sweep execution for independent simulation runs."""

from repro.parallel.executor import (
    DEFAULT_WORKER_CAP,
    RunOutcome,
    SweepError,
    resolve_workers,
    run_sweep,
    values,
)

__all__ = [
    "DEFAULT_WORKER_CAP",
    "RunOutcome",
    "SweepError",
    "resolve_workers",
    "run_sweep",
    "values",
]
