"""The content-addressed sweep cache.

Every sweep cell in this repository is a **pure function of its
payload** — that is the determinism contract the executor's
serial-vs-parallel byte-identity gate enforces — so a cell whose
payload, callable, and *code* are byte-identical to a previously
recorded run must produce the byte-identical result.  The cache turns
that contract into wall clock: re-running ``python -m repro bench``, a
fuzz campaign, or a chaos soak skips every cell the store already
holds.

**Key derivation.**  A cell's key is::

    sha256(closure_digest(fn) | fn_module:qualname | canonical_json(payload))

* ``canonical_json(payload)`` recursively canonicalises the payload —
  sorted keys, tagged tuples/dataclasses (class identity included, so
  a ``CpuAdd`` never collides with a ``CpuRemove`` of equal fields).
  A payload containing something canonicalisation refuses (callables,
  sets, non-string dict keys, unknown objects) is **uncacheable**: the
  cell simply runs, it is never mis-keyed.
* the code part is **function-precise** when the static effect engine
  (``repro.lint.effects``) can prove the cached callable's dependency
  closure: only the ``.py`` files the callable can transitively reach
  are hashed, so touching a module *outside* that closure (the linter
  itself, the bench harness, an unrelated experiment) preserves every
  hit.  When the closure cannot be proven complete — the callable is
  not a ``repro`` function, the call graph hit an unresolvable dynamic
  edge, or the analysis itself fails — the key falls back to
  ``code_digest()``, which hashes **every** ``.py`` file of the
  installed ``repro`` package.  Both forms fold in every ``REPRO_*``
  environment variable that can steer a run (SIMSAN on/off, plant
  backdoors, …) and the interpreter tag (implementation + feature
  version — entries are pickles, and pickle portability across
  interpreters is not part of the contract).  The fallback is
  conservative by design: a stale hit silently corrupts the
  byte-identity the rest of the system is built on, so imprecision is
  only ever allowed to cause *misses*.

**Store layout.**  Append-only and content-addressed:
``<root>/objects/<key[:2]>/<key>.bin``, one immutable entry per key,
written atomically (temp file + rename) so a crashed writer can never
publish a half-entry under the final name.  Entries are never mutated
or rewritten; a ``put`` for an existing key is a no-op.  Each entry is
``magic | sha256(blob) | pickled blob``; a read that fails the
checksum (torn by an unclean filesystem, truncated by hand) is treated
as a **miss with a warning** and the bad entry is removed so the next
write heals it.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import sys
import tempfile
from dataclasses import fields, is_dataclass
from typing import Any, Callable, Dict, Optional, Tuple

#: Entry header magic; bump when the entry layout changes.
_MAGIC = b"RSC1"

#: Environment variables that configure the cache itself and therefore
#: must not participate in key derivation.
_KEY_IRRELEVANT_ENV = ("REPRO_CACHE_DIR",)

#: Interpreter identity folded into every key: entries are pickles, and
#: a blob written by one implementation/feature-version pair is not
#: guaranteed to load (or to mean the same thing) under another.
_INTERP_TAG = "{}-{}.{}".format(
    sys.implementation.name, sys.version_info[0], sys.version_info[1]
)

#: Default store location when neither the plan nor the CLI names one.
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> str:
    """The store root: ``$REPRO_CACHE_DIR`` or ``.repro-cache``."""
    # Host-side cache placement only: never read inside a simulation.
    return os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)  # simlint: disable=SL103


# --- canonical payload form -------------------------------------------------


def _jsonable(obj: Any) -> Any:
    """Recursively canonicalise a payload; raises TypeError if unsafe.

    Tuples and dataclasses are tagged (a ``(1, 2)`` payload must not
    collide with ``[1, 2]``, nor two different dataclass types with
    equal fields); anything whose identity or ordering the JSON form
    cannot capture faithfully (sets, non-string dict keys, arbitrary
    objects) is refused, which makes the payload uncacheable rather
    than wrongly cacheable.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (bytes, bytearray)):
        return {"__bytes__": obj.hex()}
    if isinstance(obj, list):
        return [_jsonable(x) for x in obj]
    if isinstance(obj, tuple):
        return {"__tuple__": [_jsonable(x) for x in obj]}
    if is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        return {
            "__dataclass__": f"{cls.__module__}.{cls.__qualname__}",
            "fields": {
                f.name: _jsonable(getattr(obj, f.name)) for f in fields(obj)
            },
        }
    if isinstance(obj, dict):
        if not all(isinstance(k, str) for k in obj):
            raise TypeError("non-string dict keys are not cacheable")
        return {k: _jsonable(v) for k, v in obj.items()}
    raise TypeError(f"payload of type {type(obj).__name__} is not cacheable")


def canonical_payload(payload: Any) -> Optional[bytes]:
    """Canonical bytes for a payload, or None when uncacheable."""
    try:
        return json.dumps(
            _jsonable(payload), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
    except (TypeError, ValueError):
        return None


# --- code digest ------------------------------------------------------------

#: Per-process memo of the source-tree hash (the expensive part).
_CODE_DIGEST: Optional[str] = None


def _digest_tree(root: str) -> "hashlib._Hash":
    """Content hash of every .py file under ``root`` (path-labelled)."""
    digest = hashlib.sha256()
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            digest.update(os.path.relpath(path, root).encode("utf-8"))
            digest.update(b"\0")
            with open(path, "rb") as fh:
                digest.update(fh.read())
            digest.update(b"\0")
    return digest


def _fold_key_context(digest: "hashlib._Hash") -> None:
    """Fold the interpreter tag and ``REPRO_*`` overlay into ``digest``.

    Folded per key derivation (not memoised), so a knob flipped
    mid-process — a test harness toggling SIMSAN — changes the key
    immediately.
    """
    digest.update(_INTERP_TAG.encode("utf-8"))
    digest.update(b"\0")
    # Host-side key derivation, not simulation behaviour: the env is
    # hashed so a knob flip can never alias a cache entry.
    for key in sorted(os.environ):  # simlint: disable=SL103
        if key.startswith("REPRO_") and key not in _KEY_IRRELEVANT_ENV:
            value = os.environ[key]  # simlint: disable=SL103
            digest.update(f"{key}={value}".encode("utf-8"))
            digest.update(b"\0")


def code_digest() -> str:
    """Digest of the whole ``repro`` source tree plus key context.

    The source-tree hash is computed once per process (hashing ~150
    files costs tens of milliseconds; doing it per cell would not);
    the interpreter tag and ``REPRO_*`` environment overlay are folded
    in per call.  Any source edit or knob change forces a whole-store
    miss — the invalidation rule is "same bytes of code, same knobs,
    or no hit at all".  This is the conservative fallback;
    :func:`closure_digest` is the function-precise path.
    """
    global _CODE_DIGEST
    if _CODE_DIGEST is None:
        import repro

        _CODE_DIGEST = _digest_tree(
            os.path.dirname(os.path.abspath(repro.__file__))
        ).hexdigest()
    digest = hashlib.sha256(_CODE_DIGEST.encode("utf-8"))
    _fold_key_context(digest)
    return digest.hexdigest()


def _fn_ref(fn: Callable[[Any], Any]) -> str:
    return f"{fn.__module__}:{getattr(fn, '__qualname__', fn.__name__)}"


# --- function-precise closure digests ---------------------------------------

#: Per-process effect analysis of the installed tree: None = not built
#: yet, False = build failed (don't retry per cell), else the analysis.
_CLOSURE_ANALYSIS: Any = None

#: Per-function memo: fn ref -> closure tree-part hex, or None when the
#: function must use the whole-tree fallback (unknown to the graph,
#: incomplete closure, or analysis unavailable).
_CLOSURE_PARTS: Dict[str, Optional[str]] = {}

#: Per-file content-hash memo (sources don't change mid-process — the
#: same assumption ``_CODE_DIGEST`` already makes).
_FILE_DIGESTS: Dict[str, bytes] = {}

#: Key derivations served precisely vs via the whole-tree fallback,
#: since process start; surfaced by ``python -m repro bench``.
_CLOSURE_STATS = {"precise": 0, "fallback": 0}


def _ensure_analysis() -> Any:
    """Build (once per process) the effect analysis, or None."""
    global _CLOSURE_ANALYSIS
    if _CLOSURE_ANALYSIS is None:
        try:
            # Imported lazily *inside* this function on purpose: the
            # cache module is imported by the executor, and a
            # module-level import here would drag ``repro.lint`` into
            # every cached function's dependency closure.
            import repro
            from repro.lint.effects import analyze_package_dir

            _CLOSURE_ANALYSIS = analyze_package_dir(
                os.path.dirname(os.path.abspath(repro.__file__))
            )
        except Exception:
            _CLOSURE_ANALYSIS = False
    return _CLOSURE_ANALYSIS or None


def _file_digest(path: str) -> bytes:
    digest = _FILE_DIGESTS.get(path)
    if digest is None:
        with open(path, "rb") as fh:
            digest = hashlib.sha256(fh.read()).digest()
        _FILE_DIGESTS[path] = digest
    return digest


def _closure_part(ref: str) -> Optional[str]:
    """Hash of ``ref``'s proven dependency closure, or None."""
    analysis = _ensure_analysis()
    if analysis is None:
        return None
    closure = analysis.closure(ref)
    if closure is None:
        return None
    modules, widen_reasons = closure
    if widen_reasons:
        # The graph could not resolve some edge out of this closure;
        # hashing only the known part would risk a stale hit.
        return None
    import repro

    tree_root = os.path.dirname(
        os.path.dirname(os.path.abspath(repro.__file__))
    )
    digest = hashlib.sha256()
    for name in sorted(modules):
        mi = analysis.graph.modules.get(name)
        if mi is None:  # pragma: no cover - complete closures are indexed
            return None
        digest.update(mi.path.encode("utf-8"))
        digest.update(b"\0")
        digest.update(_file_digest(os.path.join(tree_root, mi.path)))
        digest.update(b"\0")
    return digest.hexdigest()


def closure_digest(fn: Callable[[Any], Any]) -> str:
    """Function-precise code digest for ``fn``; never less safe.

    When the effect engine proves ``fn``'s dependency closure is
    complete, the digest covers exactly the source files in that
    closure (plus the interpreter tag and ``REPRO_*`` overlay), so
    edits to files *outside* the closure keep the store warm.  In
    every other case — ``fn`` is not a ``repro`` function, its closure
    contains a widened edge, the analysis failed — the whole-tree
    :func:`code_digest` is returned instead, which can only turn
    would-be hits into misses, never the reverse.
    """
    module = getattr(fn, "__module__", "") or ""
    part: Optional[str] = None
    if module == "repro" or module.startswith("repro."):
        ref = _fn_ref(fn)
        if ref not in _CLOSURE_PARTS:
            try:
                _CLOSURE_PARTS[ref] = _closure_part(ref)
            except Exception:
                _CLOSURE_PARTS[ref] = None
        part = _CLOSURE_PARTS[ref]
    if part is None:
        _CLOSURE_STATS["fallback"] += 1
        return code_digest()
    _CLOSURE_STATS["precise"] += 1
    digest = hashlib.sha256(part.encode("utf-8"))
    _fold_key_context(digest)
    return digest.hexdigest()


def closure_stats() -> Dict[str, int]:
    """Precise vs fallback key derivations since process start."""
    return dict(_CLOSURE_STATS)


def _warn_stderr(message: str) -> None:
    print(f"warning: {message}", file=sys.stderr)


# --- the store --------------------------------------------------------------


class SweepCache:
    """Append-only on-disk store of sweep cell results.

    One instance's ``hits``/``misses``/``errors``/``puts`` counters
    cover its lifetime (an Executor surfaces per-run deltas through
    :class:`~repro.parallel.executor.SweepStats`).
    """

    def __init__(self, root: Optional[str] = None,
                 warn: Callable[[str], None] = _warn_stderr):
        self.root = root if root is not None else default_cache_dir()
        self._warn = warn
        self.hits = 0
        self.misses = 0
        #: Corrupt/torn entries encountered (each also counts a miss).
        self.errors = 0
        self.puts = 0

    def key_for(self, fn: Callable[[Any], Any], payload: Any) -> Optional[str]:
        """The cell's content address, or None when uncacheable."""
        canonical = canonical_payload(payload)
        if canonical is None:
            return None
        digest = hashlib.sha256()
        digest.update(closure_digest(fn).encode("utf-8"))
        digest.update(b"\0")
        digest.update(_fn_ref(fn).encode("utf-8"))
        digest.update(b"\0")
        digest.update(canonical)
        return digest.hexdigest()

    def _entry_path(self, key: str) -> str:
        return os.path.join(self.root, "objects", key[:2], f"{key}.bin")

    def get(self, key: str) -> Tuple[bool, Any]:
        """(hit, value).  Corruption is a miss with a warning, never
        an exception: the entry is dropped and the cell re-runs."""
        path = self._entry_path(key)
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except FileNotFoundError:
            self.misses += 1
            return False, None
        except OSError as exc:  # pragma: no cover - unreadable store
            self._warn(f"cache entry {path} unreadable ({exc}); treating as miss")
            self.errors += 1
            self.misses += 1
            return False, None
        try:
            if data[:4] != _MAGIC:
                raise ValueError("bad magic")
            checksum, blob = data[4:36], data[36:]
            if hashlib.sha256(blob).digest() != checksum:
                raise ValueError("checksum mismatch")
            value = pickle.loads(blob)
        except Exception as exc:
            self._warn(
                f"cache entry {path} is corrupt ({exc}); treating as a miss"
                " and removing it"
            )
            self.errors += 1
            self.misses += 1
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - raced another process
                pass
            return False, None
        self.hits += 1
        return True, value

    def put(self, key: str, value: Any) -> None:
        """Record one result; no-op if the key already exists.

        The entry is written to a temp file in the final directory and
        published with an atomic rename, so concurrent writers of the
        same key race benignly and readers never observe a torn entry
        under the final name.  An unpicklable value is skipped with a
        warning — the sweep already returned it inline, only the reuse
        is lost.
        """
        path = self._entry_path(key)
        if os.path.exists(path):
            return
        try:
            blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            self._warn(f"cache: result not picklable ({exc!r}); not stored")
            return
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(_MAGIC)
                fh.write(hashlib.sha256(blob).digest())
                fh.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:  # pragma: no cover - never written
                pass
            raise
        self.puts += 1

    def stats_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "errors": self.errors,
            "puts": self.puts,
        }
