"""SLO-driven failover: admit, degrade, or shed evacuated SPUs.

When a machine crashes, its SPUs arrive here as checkpoints and must
be re-placed on the survivors.  The controller is an *admission
controller*: surviving machines' own tenants keep their contracts in
full (performance isolation — someone else's crash must not degrade
you below your contract), so an evacuee only gets each machine's
*uncommitted* capacity.  Per SPU the controller finds the machine
offering the best contract fraction and decides:

* **admit** — the best machine covers the SPU's full incoming
  contract;
* **degrade** — the best fraction is partial but at or above the SPU's
  ``slo_min_fraction``; the SPU lands with its contract renegotiated
  down (composing multiplicatively with any earlier degradation, via
  :class:`~repro.core.contracts.ScaledContract`);
* **shed** — no reachable machine can hold the SLO floor; the SPU is
  parked, its progress preserved, with the refusal recorded.

Every computation is exact — integer milli-CPUs and
:class:`~fractions.Fraction` — and every ordering rule is total
(demand descending, then name; target by best fraction, then lowest
machine index), so the same crash always produces the same placements,
which is what makes the fleet journal byte-identical across serial and
parallel replays.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fleet.checkpoint import SpuCheckpoint

#: Decision verdicts, in the order of preference.
ADMIT = "admit"
DEGRADE = "degrade"
SHED = "shed"


@dataclass(frozen=True)
class Decision:
    """One recorded placement decision for one evacuated SPU."""

    time_us: int
    spu: str
    action: str
    #: Target machine for admit/degrade; None when shed.
    machine: Optional[int]
    #: Contract fraction after this decision (0 when shed).
    fraction: Fraction
    reason: str

    def render(self) -> str:
        where = f"machine {self.machine}" if self.machine is not None else "-"
        return (
            f"{self.spu}: {self.action} -> {where}"
            f" at {self.fraction} ({self.reason})"
        )


@dataclass
class MachineCapacity:
    """One candidate machine's CPU book-keeping, in milli-CPUs.

    ``committed_mcpu`` is the sum of ``demand * fraction`` over the
    SPUs already hosted — the capacity promised to tenants.  Placement
    commits against it immediately so a batch of evacuees cannot all be
    admitted into the same free slice.
    """

    index: int
    capacity_mcpu: int
    committed_mcpu: Fraction
    reachable: bool = True

    @property
    def free_mcpu(self) -> Fraction:
        return Fraction(self.capacity_mcpu) - self.committed_mcpu

    def commit(self, demand_mcpu: int, fraction: Fraction) -> None:
        self.committed_mcpu += Fraction(demand_mcpu) * fraction


class AdmissionController:
    """Deterministic SLO-driven placement of evacuated SPUs."""

    def place(
        self,
        now_us: int,
        evacuees: Sequence[SpuCheckpoint],
        machines: Sequence[MachineCapacity],
    ) -> List[Tuple[SpuCheckpoint, Decision]]:
        """Decide a placement for every evacuee; returns (ckpt, decision).

        Largest demand places first (the hardest SPU to fit gets first
        pick of the spare capacity); ties break by name so the order is
        total.  ``machines`` is mutated: committed capacity grows as
        decisions land.
        """
        order = sorted(
            evacuees, key=lambda c: (-c.spec.demand_mcpu, c.name)
        )
        by_index: Dict[int, MachineCapacity] = {m.index: m for m in machines}
        out: List[Tuple[SpuCheckpoint, Decision]] = []
        for ckpt in order:
            decision = self._decide(now_us, ckpt, by_index)
            if decision.machine is not None:
                by_index[decision.machine].commit(
                    ckpt.spec.demand_mcpu, decision.fraction
                )
            out.append((ckpt, decision))
        return out

    def _decide(
        self,
        now_us: int,
        ckpt: SpuCheckpoint,
        machines: Dict[int, MachineCapacity],
    ) -> Decision:
        spec = ckpt.spec
        incoming = ckpt.fraction
        best: Optional[Tuple[Fraction, int]] = None
        candidates = [m for _, m in sorted(machines.items()) if m.reachable]
        if not candidates:
            return Decision(
                time_us=now_us, spu=spec.name, action=SHED, machine=None,
                fraction=Fraction(0),
                reason="no reachable machine (crashes/partitions)",
            )
        for machine in candidates:
            free = machine.free_mcpu
            if free <= 0:
                continue
            offered = min(incoming, free / spec.demand_mcpu)
            if offered <= 0:
                continue
            # Best fraction wins; lowest index breaks ties (total order
            # -> deterministic placement).
            if best is None or offered > best[0]:
                best = (offered, machine.index)
        if best is None:
            return Decision(
                time_us=now_us, spu=spec.name, action=SHED, machine=None,
                fraction=Fraction(0),
                reason="no machine has uncommitted capacity",
            )
        offered, index = best
        if offered < spec.slo_min_fraction:
            return Decision(
                time_us=now_us, spu=spec.name, action=SHED, machine=None,
                fraction=Fraction(0),
                reason=(
                    f"best offer {offered} on machine {index} is below"
                    f" SLO floor {spec.slo_min_fraction}"
                ),
            )
        if offered == incoming:
            return Decision(
                time_us=now_us, spu=spec.name, action=ADMIT, machine=index,
                fraction=offered,
                reason=f"full contract fits on machine {index}",
            )
        return Decision(
            time_us=now_us, spu=spec.name, action=DEGRADE, machine=index,
            fraction=offered,
            reason=(
                f"machine {index} covers {offered} of contract"
                f" (floor {spec.slo_min_fraction})"
            ),
        )
