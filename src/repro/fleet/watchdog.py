"""Fleet-level conservation laws, audited at every epoch boundary.

The per-machine :class:`~repro.faults.invariants.InvariantWatchdog`
checks one kernel's books; this watchdog checks the *fleet's*: that
failover moved state around without losing, duplicating, or inventing
any of it.  The runner calls :meth:`FleetWatchdog.check` at every
epoch boundary (before and after fleet fault events apply), against a
duck-typed fleet view, and every breach is recorded as a
:class:`~repro.faults.invariants.Violation` — the same value object
the chaos and fuzz pipelines already aggregate.

Checked invariants:

* **no SPU lost** — every SPU in the spec is hosted on exactly one
  online machine, or explicitly shed with a recorded decision; never
  both, never neither, never hosted on a crashed machine;
* **progress conservation** — each SPU's durable rounds never decrease
  across a migration and never exceed its spec total;
* **capacity accounting** — the runner's incrementally-accumulated
  fleet capacity integral equals the value re-derived independently
  from the fault plan, and is monotone non-decreasing;
* **no overcommit** — on every online machine, the demand committed to
  hosted SPUs (demand × contract fraction) fits in the machine;
* **machine books** — per-machine invariant watchdog violations are
  surfaced with an ``m<i>:`` prefix so one compromised kernel fails
  the fleet run.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List

from repro.faults.fleet import MachineCrash, MachineRecover
from repro.faults.invariants import Violation
from repro.fleet.spec import FleetSpec


def expected_capacity_integral(spec: FleetSpec, now_us: int) -> int:
    """Re-derive ∫ online-capacity dt from the fault plan alone.

    The runner accumulates the same integral incrementally as it
    advances epochs; re-deriving it from first principles here means a
    book-keeping bug in either place shows up as a mismatch.  A machine
    contributes over ``(a, b]`` iff it was online at ``a`` — fleet
    events that fire *at* a boundary take effect for the following
    interval, matching the runner's advance-then-apply loop.
    """
    online = [True] * len(spec.machines)
    integral = 0
    prev = 0
    changes: Dict[int, List[object]] = {}
    for event in spec.faults:
        if isinstance(event, (MachineCrash, MachineRecover)):
            changes.setdefault(event.at_us, []).append(event)
    for at_us in sorted(changes):
        if at_us >= now_us:
            break
        if at_us > prev:
            integral += sum(
                m.capacity_mcpu
                for m, up in zip(spec.machines, online) if up
            ) * (at_us - prev)
            prev = at_us
        for event in changes[at_us]:
            online[event.machine] = isinstance(event, MachineRecover)
    integral += sum(
        m.capacity_mcpu for m, up in zip(spec.machines, online) if up
    ) * (now_us - prev)
    return integral


class FleetWatchdog:
    """Audits fleet conservation laws against a live fleet view.

    ``fleet`` is duck-typed (the runner's ``FleetSimulation``): it
    exposes ``spec``, ``machines`` (each with ``index``, ``online``,
    ``capacity_mcpu``, ``hosted`` name→HostedSpu, and an optional
    per-machine ``watchdog``), ``shed`` (name→Decision) and
    ``capacity_integral`` (the runner's incremental accumulator).
    """

    def __init__(self, fleet) -> None:
        self.fleet = fleet
        self.violations: List[Violation] = []
        self.checks_run = 0
        self._last_rounds: Dict[str, int] = {}
        self._last_integral = 0

    def check(self, now_us: int) -> None:
        self.checks_run += 1
        fleet = self.fleet
        spec: FleetSpec = fleet.spec

        # --- no SPU lost --------------------------------------------------
        hosts: Dict[str, List[int]] = {s.name: [] for s in spec.spus}
        for machine in fleet.machines:
            for name in machine.hosted:
                hosts.setdefault(name, []).append(machine.index)
                if not machine.online:
                    self._flag(
                        now_us, "fleet-spu-lost",
                        f"SPU {name!r} hosted on crashed machine"
                        f" {machine.index}",
                    )
        for name, where in sorted(hosts.items()):
            is_shed = name in fleet.shed
            if len(where) > 1:
                self._flag(
                    now_us, "fleet-spu-duplicated",
                    f"SPU {name!r} hosted on machines {where}",
                )
            elif not where and not is_shed:
                self._flag(
                    now_us, "fleet-spu-lost",
                    f"SPU {name!r} neither hosted nor shed",
                )
            elif where and is_shed:
                self._flag(
                    now_us, "fleet-spu-duplicated",
                    f"SPU {name!r} hosted on machine {where[0]}"
                    " but also recorded as shed",
                )

        # --- progress conservation ---------------------------------------
        for spu_spec in spec.spus:
            rounds = fleet.progress(spu_spec.name)
            last = self._last_rounds.get(spu_spec.name, 0)
            if rounds < last:
                self._flag(
                    now_us, "fleet-progress-lost",
                    f"SPU {spu_spec.name!r} rounds fell {last} ->"
                    f" {rounds} across a migration",
                )
            if rounds > spu_spec.total_rounds:
                self._flag(
                    now_us, "fleet-progress-invented",
                    f"SPU {spu_spec.name!r} has {rounds} rounds of a"
                    f" possible {spu_spec.total_rounds}",
                )
            self._last_rounds[spu_spec.name] = rounds

        # --- capacity accounting -----------------------------------------
        expected = expected_capacity_integral(spec, now_us)
        actual = fleet.capacity_integral
        if actual != expected:
            self._flag(
                now_us, "fleet-capacity-accounting",
                f"runner accumulated {actual} mCPU-us online capacity;"
                f" fault plan implies {expected}",
            )
        if actual < self._last_integral:
            self._flag(
                now_us, "fleet-capacity-monotone",
                f"capacity integral fell {self._last_integral} -> {actual}",
            )
        self._last_integral = actual

        # --- no overcommit ------------------------------------------------
        for machine in fleet.machines:
            if not machine.online:
                continue
            committed = sum(
                (Fraction(h.spec.demand_mcpu) * h.fraction
                 for h in machine.hosted.values()),
                Fraction(0),
            )
            if committed > machine.capacity_mcpu:
                self._flag(
                    now_us, "fleet-overcommit",
                    f"machine {machine.index} committed {committed} mCPU"
                    f" of {machine.capacity_mcpu}",
                )

        # --- machine books ------------------------------------------------
        # The surfaced count lives on the machine (not here) because a
        # recovered machine gets a *new* per-machine watchdog and the
        # count must reset with it.
        for machine in fleet.machines:
            watchdog = getattr(machine, "watchdog", None)
            if watchdog is None:
                continue
            for violation in watchdog.violations[machine.violations_seen:]:
                self.violations.append(Violation(
                    time_us=now_us,
                    name=f"m{machine.index}:{violation.name}",
                    detail=violation.detail,
                ))
            machine.violations_seen = len(watchdog.violations)

    def _flag(self, now_us: int, name: str, detail: str) -> None:
        self.violations.append(Violation(now_us, name, detail))
