"""Multi-machine fleets: crash injection, failover, graceful degradation.

The paper's machine is one shared-memory multiprocessor divided among
SPUs; this package composes many of them into a *fleet* and extends
the isolation story across whole-machine failure.  A
:class:`~repro.fleet.spec.FleetSpec` declares the machines, the SPUs
(with explicit SLO contracts: a CPU demand and a minimum acceptable
fraction of it), their home placement and a
:class:`~repro.faults.fleet.FleetFaultPlan`;
:func:`~repro.fleet.runner.run_fleet` advances the machines in
lock-step epochs, and when a machine crashes its SPUs are
checkpointed (:mod:`repro.fleet.checkpoint`), re-placed by the SLO
admission controller (:mod:`repro.fleet.controller`) — admit at full
contract, degrade via :class:`~repro.core.contracts.ScaledContract`
renegotiation, or shed with the refusal recorded — while the
:class:`~repro.fleet.watchdog.FleetWatchdog` audits that no SPU and no
unit of progress or capacity is ever lost, duplicated, or invented.

Everything is a pure function of the spec, so fleet runs fan out
through :mod:`repro.parallel` with byte-identical journals.
"""

from repro.fleet.checkpoint import JobCheckpoint, SpuCheckpoint, capture
from repro.fleet.controller import (
    ADMIT,
    DEGRADE,
    SHED,
    AdmissionController,
    Decision,
    MachineCapacity,
)
from repro.fleet.runner import (
    FleetResult,
    FleetSimulation,
    build_fleet,
    fleet_job,
    run_fleet,
    run_fleet_record,
)
from repro.fleet.spec import (
    FLEET_SCHEMES,
    FleetMachineSpec,
    FleetSpec,
    FleetSpecError,
    FleetSpuSpec,
)
from repro.fleet.watchdog import FleetWatchdog, expected_capacity_integral

__all__ = [
    "ADMIT",
    "DEGRADE",
    "SHED",
    "AdmissionController",
    "Decision",
    "FLEET_SCHEMES",
    "FleetMachineSpec",
    "FleetResult",
    "FleetSimulation",
    "FleetSpec",
    "FleetSpecError",
    "FleetSpuSpec",
    "FleetWatchdog",
    "JobCheckpoint",
    "MachineCapacity",
    "SpuCheckpoint",
    "build_fleet",
    "capture",
    "expected_capacity_integral",
    "fleet_job",
    "run_fleet",
    "run_fleet_record",
]
