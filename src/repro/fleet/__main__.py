"""``python -m repro fleet`` — the fleet failover smoke gate.

Runs a small seeded fleet (two machines, one whole-machine crash)
twice — in-process and through the parallel sweep executor — and
gates on the two things CI cares about:

* the fleet watchdog found no conservation violations (no SPU lost,
  progress and capacity conserved across the failover), and
* the serial and parallel records are byte-identical (the fleet run
  is a pure function of its spec, wherever it executes).

``--scheme``, ``--seed``, ``--machines``, ``--crash-at`` and
``--horizon`` reshape the smoke fleet; ``--json`` dumps the records.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.faults.fleet import FleetFaultPlan, MachineCrash
from repro.fleet.runner import run_fleet_record
from repro.fleet.spec import (
    FLEET_SCHEMES,
    FleetMachineSpec,
    FleetSpec,
    FleetSpuSpec,
)
from repro.parallel import Executor, SweepPlan
from repro.sim.units import MSEC


def smoke_spec(
    scheme: str = "piso",
    seed: int = 0,
    machines: int = 2,
    crash_at_us: int = 200 * MSEC,
    horizon_us: int = 600 * MSEC,
) -> FleetSpec:
    """The canonical smoke fleet: the last machine crashes mid-run.

    Every machine hosts a moderately-loaded pair of SPUs; the crashed
    machine's pair has one migratable service (low SLO floor) and one
    strict tenant that survivors may have to shed — so one crash
    exercises admit, degrade *and* shed paths deterministically.
    """
    shapes = [FleetMachineSpec(ncpus=4, memory_mb=16) for _ in range(machines)]
    spus: List[FleetSpuSpec] = []
    placement = {}
    for i in range(machines - 1):
        for kind, demand in (("svc", 1.5), ("batch", 1.5)):
            spu = FleetSpuSpec(
                name=f"{kind}-{i}", demand_cpus=demand,
                slo_min_fraction=0.5, jobs=2, rounds=400, compute_us=5000,
            )
            spus.append(spu)
            placement[spu.name] = i
    victim = machines - 1
    for spu in (
        FleetSpuSpec(name=f"svc-{victim}", demand_cpus=1.5,
                     slo_min_fraction=0.5, jobs=2, rounds=400,
                     compute_us=5000),
        FleetSpuSpec(name=f"scratch-{victim}", demand_cpus=2.0,
                     slo_min_fraction=0.9, jobs=2, rounds=400,
                     compute_us=5000),
    ):
        spus.append(spu)
        placement[spu.name] = victim
    faults = FleetFaultPlan([MachineCrash(at_us=crash_at_us, machine=victim)])
    return FleetSpec(
        machines=shapes, spus=spus, placement=placement,
        scheme=scheme, seed=seed, horizon_us=horizon_us, faults=faults,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro fleet",
        description="fleet failover smoke: watchdog + serial/parallel identity",
    )
    parser.add_argument("--scheme", choices=FLEET_SCHEMES, default="piso")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--machines", type=int, default=2)
    parser.add_argument("--crash-at", type=int, default=200 * MSEC,
                        metavar="US")
    parser.add_argument("--horizon", type=int, default=600 * MSEC,
                        metavar="US")
    parser.add_argument("--workers", type=int, default=2,
                        help="sweep workers for the parallel leg")
    parser.add_argument("--json", action="store_true",
                        help="print the serial record as JSON")
    args = parser.parse_args(argv)

    spec = smoke_spec(
        scheme=args.scheme, seed=args.seed, machines=args.machines,
        crash_at_us=args.crash_at, horizon_us=args.horizon,
    )
    payload = spec.to_dict()
    serial = run_fleet_record(payload)
    outcomes = Executor(SweepPlan(max_workers=args.workers)).run(
        run_fleet_record, [payload]
    )
    parallel = outcomes[0].value if outcomes[0].status == "ok" else None

    if args.json:
        print(json.dumps(serial, indent=2, sort_keys=True))

    failed = False
    if serial["violations"]:
        print(
            f"FAIL: fleet watchdog violations: {serial['violations']}",
            file=sys.stderr,
        )
        failed = True
    if parallel is None:
        print(
            f"FAIL: parallel cell errored: {outcomes[0].error}",
            file=sys.stderr,
        )
        failed = True
    elif parallel != serial:
        print(
            "FAIL: serial and parallel fleet records differ"
            f" (serial digest {serial['digest']},"
            f" parallel digest {parallel['digest']})",
            file=sys.stderr,
        )
        failed = True
    if failed:
        return 1
    print(
        f"fleet smoke ok: scheme={args.scheme} seed={args.seed}"
        f" machines={args.machines} digest={serial['digest']}"
        f" decisions={len(serial['decisions'])} shed={serial['shed']}"
        f" events={serial['events']}"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    raise SystemExit(main(sys.argv[1:]))
