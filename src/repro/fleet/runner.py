"""The fleet runner: epochs, crashes, failover, and the fleet journal.

A fleet is a set of independent machines — one
:class:`~repro.api.Simulation` (kernel + engine) each — advanced in
lock-step *epochs*.  Epoch boundaries are the fleet fault plan's event
times plus the horizon; between boundaries every online machine runs
its own discrete-event simulation undisturbed (machines share nothing,
so no cross-machine event interleaving exists to get wrong).  At each
boundary the fleet watchdog audits the conservation laws, then the
boundary's fleet events apply: recoveries first (new spare capacity),
then partitions (reachability shrinks), then crashes (evacuation under
the freshest view of the fleet).

Failover is checkpoint/replay: a crash captures each hosted SPU's
durable state (:mod:`repro.fleet.checkpoint`), the admission
controller (:mod:`repro.fleet.controller`) decides admit / degrade /
shed per SPU against the survivors' uncommitted capacity, and admitted
SPUs are re-created on their target machine —
:meth:`~repro.kernel.kernel.Kernel.set_contract` installs a
:class:`~repro.core.contracts.ScaledContract` carrying the SPU's
(possibly degraded) weight, ``add_spu`` renegotiates the machine, and
the SPU's unfinished jobs respawn with exactly their remaining rounds.

Machines are built lazily: a spare holds no kernel until the first SPU
lands on it, at which point its engine starts at local time zero with
a fixed offset from fleet time (local = fleet − built_at).  Everything
is a pure function of the :class:`~repro.fleet.spec.FleetSpec`, so the
journal — and its digest — is byte-identical however the fleet cells
are distributed across sweep workers.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.api.spec import Simulation, SimulationSpec, build
from repro.core.contracts import ScaledContract, WeightedContract
from repro.core.schemes import scheme_by_name
from repro.faults.fleet import (
    MachineCrash,
    MachineRecover,
    NetworkPartition,
)
from repro.faults.invariants import InvariantWatchdog, Violation
from repro.fleet.checkpoint import (
    JobCheckpoint,
    SpuCheckpoint,
    capture,
    fresh_jobs,
)
from repro.fleet.controller import (
    SHED,
    AdmissionController,
    Decision,
    MachineCapacity,
)
from repro.fleet.spec import FleetMachineSpec, FleetSpec, FleetSpuSpec
from repro.fleet.watchdog import FleetWatchdog
from repro.kernel.process import Process
from repro.kernel.syscalls import Behavior, Checkpoint, Compute
from repro.sanitizer import SanitizerError


def fleet_job(rounds: int, compute_us: int) -> Behavior:
    """The canonical fleet workload: compute, checkpoint, repeat.

    Each completed round is durable progress; migration respawns the
    job with only its remaining rounds.
    """
    for _ in range(rounds):
        yield Compute(compute_us)
        yield Checkpoint("round")


@dataclass
class HostedSpu:
    """One SPU as currently hosted on one machine."""

    spec: FleetSpuSpec
    #: Accumulated contract fraction (product of every degradation).
    fraction: Fraction
    #: CPU time consumed on *previous* hostings.
    cpu_time_before: int
    #: Job checkpoints the SPU arrived with.
    bases: Tuple[JobCheckpoint, ...]
    #: Live processes, parallel to ``bases`` (None = arrived complete).
    procs: List[Optional[Process]]

    def rounds_done(self) -> int:
        total = 0
        for base, proc in zip(self.bases, self.procs):
            total += base.rounds_done
            if proc is not None:
                total += min(len(proc.checkpoints), base.remaining)
        return total


@dataclass
class MachineState:
    """One machine's slot in the fleet: shape, liveness, and tenants."""

    index: int
    mspec: FleetMachineSpec
    online: bool = True
    sim: Optional[Simulation] = None
    built_at_us: int = 0
    hosted: Dict[str, HostedSpu] = field(default_factory=dict)
    watchdog: Optional[InvariantWatchdog] = None
    #: Machine-watchdog violations already surfaced into the fleet log.
    violations_seen: int = 0
    #: Engine events executed across the machine's whole life.
    events: int = 0
    #: Contract inputs: base weight (demand) and degradation fraction
    #: per hosted SPU name.
    base_weights: Dict[str, float] = field(default_factory=dict)
    fractions: Dict[str, Fraction] = field(default_factory=dict)

    @property
    def capacity_mcpu(self) -> int:
        return self.mspec.capacity_mcpu

    def committed_mcpu(self) -> Fraction:
        return sum(
            (Fraction(h.spec.demand_mcpu) * h.fraction
             for h in self.hosted.values()),
            Fraction(0),
        )

    def contract(self) -> ScaledContract:
        """The machine's current contract from its tenancy book."""
        return ScaledContract(
            WeightedContract(dict(self.base_weights), default_weight=0.0),
            dict(self.fractions),
        )


class FleetSimulation:
    """A built fleet: per-machine sims plus the failover machinery."""

    def __init__(self, spec: FleetSpec):
        self.spec = spec
        self.machines = [
            MachineState(index=i, mspec=m) for i, m in enumerate(spec.machines)
        ]
        self.controller = AdmissionController()
        #: Shed SPUs: name -> the refusing Decision.
        self.shed: Dict[str, Decision] = {}
        #: Parked checkpoints of shed SPUs (progress preserved).
        self.parked: Dict[str, SpuCheckpoint] = {}
        self.decisions: List[Decision] = []
        #: Fleet time each machine is partitioned until (exclusive).
        self.partitioned_until: Dict[int, int] = {}
        #: Incrementally accumulated ∫ online-capacity dt, in mCPU-µs.
        self.capacity_integral = 0
        self.now_us = 0
        self.aborted = False
        self._entries: List[Tuple[int, int, str]] = []
        self._seq = 0
        #: Per-boundary progress snapshots (time, {spu: rounds}).
        self.snapshots: List[Tuple[int, Dict[str, int]]] = []
        self.watchdog = FleetWatchdog(self)

        for index in range(len(spec.machines)):
            arrivals = [
                (SpuCheckpoint(
                    spec=s, fraction=Fraction(1), cpu_time_us=0,
                    jobs=fresh_jobs(s),
                ), Fraction(1))
                for s in spec.hosted_on(index)
            ]
            if arrivals:
                self._build_machine(index, 0, arrivals)
                self._log(0, (
                    f"boot | machine {index}:"
                    f" {spec.machines[index].ncpus}cpu"
                    f"/{spec.machines[index].memory_mb}MB"
                    f" spus=[{', '.join(c.name for c, _ in arrivals)}]"
                ))

    # --- progress & reachability ------------------------------------------

    def progress(self, name: str) -> int:
        """Durable rounds for one SPU, wherever it currently lives."""
        for machine in self.machines:
            hosted = machine.hosted.get(name)
            if hosted is not None:
                return hosted.rounds_done()
        if name in self.parked:
            return self.parked[name].rounds_done
        return 0

    def progress_all(self) -> Dict[str, int]:
        return {s.name: self.progress(s.name) for s in self.spec.spus}

    def reachable(self, index: int, now_us: int) -> bool:
        machine = self.machines[index]
        return machine.online and self.partitioned_until.get(index, 0) <= now_us

    # --- construction / placement -----------------------------------------

    def _machine_seed(self, index: int) -> int:
        # Distinct per machine, pure function of the fleet spec.
        return self.spec.seed * 8191 + index

    def _build_machine(
        self,
        index: int,
        now_us: int,
        arrivals: List[Tuple[SpuCheckpoint, Fraction]],
    ) -> None:
        machine = self.machines[index]
        for ckpt, fraction in arrivals:
            machine.base_weights[ckpt.name] = ckpt.spec.demand_cpus
            machine.fractions[ckpt.name] = fraction
        sim_spec = SimulationSpec(
            ncpus=machine.mspec.ncpus,
            memory_mb=machine.mspec.memory_mb,
            scheme=scheme_by_name(self.spec.scheme),
            spus=[ckpt.name for ckpt, _ in arrivals],
            disks=machine.mspec.ndisks,
            seed=self._machine_seed(index),
            contract=machine.contract(),
        )
        machine.sim = build(sim_spec)
        machine.built_at_us = now_us
        machine.watchdog = InvariantWatchdog(machine.sim.kernel)
        machine.watchdog.start()
        machine.violations_seen = 0
        for ckpt, fraction in arrivals:
            self._spawn_jobs(machine, ckpt, fraction)

    def _spawn_jobs(
        self, machine: MachineState, ckpt: SpuCheckpoint, fraction: Fraction
    ) -> None:
        procs: List[Optional[Process]] = []
        for base in ckpt.jobs:
            if base.remaining <= 0:
                procs.append(None)
                continue
            procs.append(machine.sim.spawn(
                fleet_job(base.remaining, ckpt.spec.compute_us),
                ckpt.name,
                name=base.name,
            ))
        machine.hosted[ckpt.name] = HostedSpu(
            spec=ckpt.spec,
            fraction=fraction,
            cpu_time_before=ckpt.cpu_time_us,
            bases=ckpt.jobs,
            procs=procs,
        )

    def _place(
        self, index: int, ckpt: SpuCheckpoint, fraction: Fraction,
        now_us: int,
    ) -> None:
        machine = self.machines[index]
        if machine.sim is None:
            self._build_machine(index, now_us, [(ckpt, fraction)])
            return
        machine.base_weights[ckpt.name] = ckpt.spec.demand_cpus
        machine.fractions[ckpt.name] = fraction
        # Install the newcomer's weight first so the add_spu rebalance
        # renegotiates every tenant over the updated contract at once.
        machine.sim.kernel.set_contract(machine.contract(), rebalance=False)
        spu = machine.sim.kernel.add_spu(ckpt.name)
        machine.sim.spus.append(spu)
        machine.sim._by_name[ckpt.name] = spu
        self._spawn_jobs(machine, ckpt, fraction)

    # --- fleet fault events -------------------------------------------------

    def _apply_recover(self, event: MachineRecover) -> None:
        machine = self.machines[event.machine]
        machine.online = True
        # The machine rejoins empty: its old kernel died with the
        # crash, so it is spare capacity, not a restored tenant host.
        machine.sim = None
        machine.watchdog = None
        machine.violations_seen = 0
        machine.hosted = {}
        machine.base_weights = {}
        machine.fractions = {}
        self._log(event.at_us, f"recover | machine {event.machine} online (spare)")

    def _apply_partition(self, event: NetworkPartition) -> None:
        until = event.at_us + event.duration_us
        for index in event.machines:
            self.partitioned_until[index] = max(
                self.partitioned_until.get(index, 0), until
            )
        names = ",".join(str(m) for m in event.machines)
        self._log(event.at_us, (
            f"partition | machines [{names}] unreachable"
            f" for {event.duration_us}us"
        ))

    def _apply_crash(self, event: MachineCrash) -> None:
        machine = self.machines[event.machine]
        machine.online = False
        evacuees: List[SpuCheckpoint] = []
        # Spec order keeps the evacuation set deterministic before the
        # controller imposes its own total order.
        for spu_spec in self.spec.spus:
            hosted = machine.hosted.get(spu_spec.name)
            if hosted is None:
                continue
            evacuees.append(capture(
                hosted.spec, hosted.fraction, hosted.cpu_time_before,
                hosted.bases, hosted.procs,
            ))
        # The kernel is gone; the (stopped) watchdog object keeps its
        # recorded violations for the final surfacing pass.
        machine.sim = None
        machine.hosted = {}
        machine.base_weights = {}
        machine.fractions = {}
        self._log(event.at_us, (
            f"crash | machine {event.machine} down;"
            f" evacuating [{', '.join(c.name for c in evacuees)}]"
        ))
        if not evacuees:
            return
        capacities = [
            MachineCapacity(
                index=m.index,
                capacity_mcpu=m.capacity_mcpu,
                committed_mcpu=m.committed_mcpu(),
                reachable=self.reachable(m.index, event.at_us),
            )
            for m in self.machines if m.online
        ]
        for ckpt, decision in self.controller.place(
            event.at_us, evacuees, capacities
        ):
            self.decisions.append(decision)
            self._log(event.at_us, f"decision | {decision.render()}")
            if decision.action == SHED:
                self.shed[ckpt.name] = decision
                self.parked[ckpt.name] = ckpt
            else:
                self._place(
                    decision.machine, ckpt, decision.fraction, event.at_us
                )

    # --- the epoch loop -----------------------------------------------------

    def run(self) -> None:
        """Advance the whole fleet to the horizon, applying the plan."""
        spec = self.spec
        boundaries = sorted({
            e.at_us for e in spec.faults if e.at_us < spec.horizon_us
        })
        boundaries.append(spec.horizon_us)
        for t in boundaries:
            self._advance(t)
            if self.aborted:
                return
            self.watchdog.check(t)
            events_here = [e for e in spec.faults if e.at_us == t]
            if events_here:
                # Recoveries first (capacity appears), then partitions
                # (reachability shrinks), then crashes — so a crash
                # sees the freshest view of the fleet.
                for event in events_here:
                    if isinstance(event, MachineRecover):
                        self._apply_recover(event)
                for event in events_here:
                    if isinstance(event, NetworkPartition):
                        self._apply_partition(event)
                for event in events_here:
                    if isinstance(event, MachineCrash):
                        self._apply_crash(event)
                self.watchdog.check(t)
            self.snapshots.append((t, self.progress_all()))

    def _advance(self, t: int) -> None:
        dt = t - self.now_us
        advanced: List[str] = []
        for machine in self.machines:
            if not machine.online or machine.sim is None:
                continue
            local = t - machine.built_at_us
            try:
                ran = machine.sim.run(until=local)
            except SanitizerError as exc:
                self.watchdog.violations.append(Violation(
                    t, f"m{machine.index}:simsan", str(exc)
                ))
                self.aborted = True
                self._log(t, f"abort | m{machine.index} sanitizer: {exc}")
                return
            machine.events += ran
            advanced.append(f"m{machine.index}=+{ran}ev")
        self.capacity_integral += sum(
            m.capacity_mcpu for m in self.machines if m.online
        ) * dt
        self.now_us = t
        rounds = ",".join(
            f"{name}:{done}"
            for name, done in sorted(self.progress_all().items())
        )
        self._log(t, f"epoch | {' '.join(advanced) or '-'} rounds={rounds}")

    # --- journal ------------------------------------------------------------

    def _log(self, t: int, text: str) -> None:
        self._entries.append((t, self._seq, text))
        self._seq += 1

    def journal(self) -> List[str]:
        spec = self.spec
        head = (
            f"fleet | scheme={spec.scheme} seed={spec.seed}"
            f" machines={len(spec.machines)} spus={len(spec.spus)}"
            f" horizon={spec.horizon_us}us faults={len(spec.faults)}"
        )
        lines = [head]
        lines += [
            f"t={t:>10} | {text}"
            for t, _, text in sorted(self._entries)
        ]
        for violation in self.watchdog.violations:
            lines.append(
                f"t={violation.time_us:>10} | VIOLATION |"
                f" {violation.name}: {violation.detail}"
            )
        lines.append(
            f"end | events={sum(m.events for m in self.machines)}"
            f" decisions={len(self.decisions)} shed={len(self.shed)}"
            f" violations={len(self.watchdog.violations)}"
            f" rounds={sum(self.progress_all().values())}"
        )
        return lines


@dataclass
class FleetResult:
    """Everything one fleet run produced."""

    spec: FleetSpec
    journal: List[str]
    violations: List[Violation]
    decisions: List[Decision]
    shed: Dict[str, Decision]
    progress: Dict[str, int]
    snapshots: List[Tuple[int, Dict[str, int]]]
    #: Final placement: name -> (machine index, fraction); absent when
    #: shed.
    placements: Dict[str, Tuple[int, Fraction]]
    events: int

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def verdict(self) -> str:
        return "ok" if self.ok else "violation"

    def digest(self) -> str:
        """Stable hash of the journal — the byte-identity handle."""
        return hashlib.sha256(
            "\n".join(self.journal).encode()
        ).hexdigest()[:16]


def build_fleet(spec: FleetSpec) -> FleetSimulation:
    """Spec -> built fleet (machines booted, failover armed)."""
    return FleetSimulation(spec)


def run_fleet(spec: FleetSpec) -> FleetResult:
    """Run one fleet to its horizon; a pure function of the spec."""
    fleet = build_fleet(spec)
    fleet.run()
    placements = {}
    for machine in fleet.machines:
        for name, hosted in machine.hosted.items():
            placements[name] = (machine.index, hosted.fraction)
    return FleetResult(
        spec=spec,
        journal=fleet.journal(),
        violations=list(fleet.watchdog.violations),
        decisions=list(fleet.decisions),
        shed=dict(fleet.shed),
        progress=fleet.progress_all(),
        snapshots=list(fleet.snapshots),
        placements=placements,
        events=sum(m.events for m in fleet.machines),
    )


def run_fleet_record(payload: Union[FleetSpec, Dict[str, Any]]) -> Dict[str, Any]:
    """One fleet run as a plain record: the sweep/fuzz cell worker.

    Accepts a :class:`FleetSpec` or its :meth:`~FleetSpec.to_dict`
    form (what crosses process boundaries), and returns only
    host-independent values — re-running the same payload anywhere
    must produce identical bytes.
    """
    spec = payload if isinstance(payload, FleetSpec) else FleetSpec.from_dict(payload)
    result = run_fleet(spec)
    return {
        "scheme": spec.scheme,
        "seed": spec.seed,
        "verdict": result.verdict,
        "violations": sorted({v.name for v in result.violations}),
        "decisions": [d.render() for d in result.decisions],
        "shed": sorted(result.shed),
        "progress": dict(sorted(result.progress.items())),
        "events": result.events,
        "digest": result.digest(),
    }
