"""Declarative fleet descriptions: machines, SPUs, SLOs, faults.

A :class:`FleetSpec` is to the fleet what
:class:`repro.api.SimulationSpec` is to one machine: a complete,
picklable, pure description.  It composes per-machine shapes
(:class:`FleetMachineSpec`, lowered onto ``SimulationSpec`` by the
runner), a population of SPUs with explicit SLO contracts
(:class:`FleetSpuSpec`: CPU demand, a minimum acceptable contract
fraction, and a deterministic compute/checkpoint workload), a home
placement, and a :class:`~repro.faults.fleet.FleetFaultPlan` of
machine crashes, recoveries, and network partitions.

Validation is load-time, mirroring the fuzz scenario spec: unknown
schemes, duplicate SPU names, placements off the end of the machine
list, initially-overcommitted machines, and fleet fault events naming
machines the fleet does not have are all rejected with a message
naming the field — never a mid-run ``IndexError``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.resources import MILLI_CPU
from repro.faults.fleet import FleetFaultPlan
from repro.faults.plan import FaultPlanError

#: Fleet spec format tag for fuzz records and repro files.
FLEET_FORMAT = "repro.fleet/1"

#: Schemes the fleet accepts (the per-machine scheme registry's names).
FLEET_SCHEMES = ("smp", "quo", "piso", "stride")


class FleetSpecError(ValueError):
    """Raised for ill-formed fleet specs, with the offending field named."""


def _check_pos_int(name: str, value: Any, lo: int = 1) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise FleetSpecError(f"{name} must be an integer, got {value!r}")
    if value < lo:
        raise FleetSpecError(f"{name} must be >= {lo}, got {value}")
    return value


def _check_fraction(name: str, value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise FleetSpecError(f"{name} must be a number, got {value!r}")
    if not math.isfinite(value) or not 0.0 < value <= 1.0:
        raise FleetSpecError(f"{name} must be in (0, 1], got {value!r}")
    return float(value)


@dataclass(frozen=True)
class FleetMachineSpec:
    """One machine's hardware shape (the scheme is fleet-wide)."""

    ncpus: int = 4
    memory_mb: int = 16
    ndisks: int = 1

    def __post_init__(self) -> None:
        _check_pos_int("machine ncpus", self.ncpus)
        _check_pos_int("machine memory_mb", self.memory_mb)
        _check_pos_int("machine ndisks", self.ndisks)

    @property
    def capacity_mcpu(self) -> int:
        """The machine's CPU capacity in milli-CPUs."""
        return self.ncpus * MILLI_CPU


@dataclass(frozen=True)
class FleetSpuSpec:
    """One SPU: its SLO contract and its deterministic workload.

    ``demand_cpus`` is the CPU share the SPU's contract asks for;
    ``slo_min_fraction`` is the smallest fraction of that demand the
    tenant will accept — the admission controller degrades an evacuated
    SPU down to (but never below) it, and sheds instead of admitting
    under it.  The workload is ``jobs`` independent single-threaded
    processes, each running ``rounds`` rounds of ``compute_us`` of CPU
    followed by a checkpoint; checkpoint counts are the unit of both
    migration (completed rounds survive a crash, in-flight rounds are
    lost) and progress accounting.
    """

    name: str
    demand_cpus: float = 1.0
    slo_min_fraction: float = 0.5
    jobs: int = 1
    rounds: int = 100
    compute_us: int = 5000

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise FleetSpecError(f"SPU needs a non-empty name: {self!r}")
        if isinstance(self.demand_cpus, bool) or not isinstance(
            self.demand_cpus, (int, float)
        ):
            raise FleetSpecError(
                f"SPU {self.name!r} demand_cpus must be a number,"
                f" got {self.demand_cpus!r}"
            )
        if not math.isfinite(self.demand_cpus) or self.demand_cpus <= 0:
            raise FleetSpecError(
                f"SPU {self.name!r} demand_cpus must be > 0,"
                f" got {self.demand_cpus!r}"
            )
        _check_fraction(f"SPU {self.name!r} slo_min_fraction",
                        self.slo_min_fraction)
        _check_pos_int(f"SPU {self.name!r} jobs", self.jobs)
        _check_pos_int(f"SPU {self.name!r} rounds", self.rounds)
        _check_pos_int(f"SPU {self.name!r} compute_us", self.compute_us)

    @property
    def demand_mcpu(self) -> int:
        """Contractual CPU demand in integer milli-CPUs (determinism:
        every admission computation is exact integer/rational math)."""
        return max(1, round(self.demand_cpus * MILLI_CPU))

    @property
    def total_rounds(self) -> int:
        return self.jobs * self.rounds


@dataclass
class FleetSpec:
    """A complete, picklable description of one fleet run."""

    machines: List[FleetMachineSpec]
    spus: List[FleetSpuSpec]
    #: Home machine index per SPU name.
    placement: Dict[str, int]
    scheme: str = "piso"
    seed: int = 0
    horizon_us: int = 1_000_000
    faults: FleetFaultPlan = field(default_factory=FleetFaultPlan)

    def __post_init__(self) -> None:
        if not self.machines:
            raise FleetSpecError("fleet needs at least one machine")
        if not self.spus:
            raise FleetSpecError("fleet needs at least one SPU")
        names = [s.name for s in self.spus]
        if len(set(names)) != len(names):
            raise FleetSpecError(f"duplicate SPU names in {sorted(names)}")
        if self.scheme not in FLEET_SCHEMES:
            raise FleetSpecError(
                f"unknown scheme {self.scheme!r};"
                f" expected one of {FLEET_SCHEMES}"
            )
        _check_pos_int("seed", self.seed, lo=0)
        _check_pos_int("horizon_us", self.horizon_us)
        missing = set(names) - set(self.placement)
        if missing:
            raise FleetSpecError(
                f"placement missing SPUs: {sorted(missing)}"
            )
        unknown = set(self.placement) - set(names)
        if unknown:
            raise FleetSpecError(
                f"placement names unknown SPUs: {sorted(unknown)}"
            )
        for name, machine in self.placement.items():
            if isinstance(machine, bool) or not isinstance(machine, int) \
                    or not 0 <= machine < len(self.machines):
                raise FleetSpecError(
                    f"field 'placement' puts SPU {name!r} on machine"
                    f" {machine!r}; fleet has {len(self.machines)}"
                )
        try:
            self.faults.validate_against(len(self.machines))
        except FaultPlanError as exc:
            raise FleetSpecError(str(exc)) from None
        # Initial placement must not overcommit any machine: admission
        # control governs *migrations*; the spec itself has to start
        # legal.
        for index, machine in enumerate(self.machines):
            demand = sum(
                s.demand_mcpu for s in self.spus
                if self.placement[s.name] == index
            )
            if demand > machine.capacity_mcpu:
                raise FleetSpecError(
                    f"machine {index} overcommitted at boot:"
                    f" {demand} mCPU demanded, {machine.capacity_mcpu} available"
                )

    def spu(self, name: str) -> FleetSpuSpec:
        for spec in self.spus:
            if spec.name == name:
                return spec
        raise FleetSpecError(f"no SPU named {name!r}")

    def hosted_on(self, machine: int) -> List[FleetSpuSpec]:
        """The SPUs whose *home* is ``machine``, in spec order."""
        return [s for s in self.spus if self.placement[s.name] == machine]

    # --- JSON round-trip ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": FLEET_FORMAT,
            "machines": [
                {"ncpus": m.ncpus, "memory_mb": m.memory_mb,
                 "ndisks": m.ndisks}
                for m in self.machines
            ],
            "spus": [
                {
                    "name": s.name,
                    "demand_cpus": s.demand_cpus,
                    "slo_min_fraction": s.slo_min_fraction,
                    "jobs": s.jobs,
                    "rounds": s.rounds,
                    "compute_us": s.compute_us,
                }
                for s in self.spus
            ],
            "placement": dict(sorted(self.placement.items())),
            "scheme": self.scheme,
            "seed": self.seed,
            "horizon_us": self.horizon_us,
            "faults": self.faults.to_dicts(),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "FleetSpec":
        if not isinstance(record, dict):
            raise FleetSpecError(f"fleet spec must be an object: {record!r}")
        fmt = record.get("format", FLEET_FORMAT)
        if fmt != FLEET_FORMAT:
            raise FleetSpecError(
                f"not a fleet spec (format={fmt!r}, expected {FLEET_FORMAT!r})"
            )
        missing = {
            "machines", "spus", "placement", "scheme", "seed", "horizon_us",
            "faults",
        } - set(record)
        if missing:
            raise FleetSpecError(f"fleet spec missing fields: {sorted(missing)}")
        try:
            machines = [FleetMachineSpec(**m) for m in record["machines"]]
            spus = [FleetSpuSpec(**s) for s in record["spus"]]
        except TypeError as exc:
            raise FleetSpecError(f"bad machine/SPU fields: {exc}") from None
        try:
            faults = FleetFaultPlan.from_dicts(record["faults"])
        except FaultPlanError as exc:
            raise FleetSpecError(f"bad fleet fault plan: {exc}") from None
        return cls(
            machines=machines,
            spus=spus,
            placement=dict(record["placement"]),
            scheme=record["scheme"],
            seed=record["seed"],
            horizon_us=record["horizon_us"],
            faults=faults,
        )

    @classmethod
    def from_json(cls, text: str) -> "FleetSpec":
        try:
            record = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FleetSpecError(f"fleet spec is not valid JSON: {exc}") from None
        return cls.from_dict(record)
